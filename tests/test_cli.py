"""The command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "doom", "--policy", "PACT"])

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "gups", "--policy", "LRU2"])


class TestCommands:
    def test_list(self):
        code, text = run_cli("list")
        assert code == 0
        assert "bc-kron" in text and "PACT" in text and "8:1" in text

    def test_run(self):
        code, text = run_cli(
            "run", "--workload", "gups", "--policy", "PACT",
            "--ratio", "1:2", "--work", "2000000",
        )
        assert code == 0
        assert "slowdown vs DRAM-only" in text
        assert "pages promoted" in text

    def test_run_with_thp(self):
        code, text = run_cli(
            "run", "--workload", "gups", "--policy", "Memtis",
            "--thp", "--work", "2000000",
        )
        assert code == 0
        assert "slowdown" in text

    def test_sweep(self):
        code, text = run_cli(
            "sweep", "--workload", "masim", "--policies", "PACT", "NoTier",
            "--work", "2000000",
        )
        assert code == 0
        assert "8:1" in text and "1:8" in text
        assert "CXL (all-slow)" in text

    def test_compare(self):
        code, text = run_cli(
            "compare", "--workloads", "gups", "masim",
            "--policies", "PACT", "NoTier", "--work", "2000000",
        )
        assert code == 0
        assert "gups" in text and "masim" in text

    def test_calibrate(self):
        code, text = run_cli("calibrate", "--windows", "3")
        assert code == 0
        assert "fitted k" in text


class TestTrace:
    def test_jsonl_to_stdout(self):
        code, text = run_cli(
            "trace", "gups", "PACT", "--ratio", "1:2", "--work", "2000000",
        )
        assert code == 0
        rows = [json.loads(line) for line in text.splitlines()]
        assert rows
        assert rows[0]["window"] == 0
        for row in rows:
            assert "promoted" in row and "demoted" in row
            assert "hw/util_fast" in row["metrics"]
            assert "mem/occupancy_slow" in row["metrics"]
            assert "pact/eviction_bar" in row["metrics"]

    def test_downsampled_jsonl_file(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        code, text = run_cli(
            "trace", "gups", "PACT", "--work", "2000000",
            "--downsample", "4", "-o", str(target),
        )
        assert code == 0
        assert "wrote" in text and "machine/windows" in text
        rows = [json.loads(line) for line in target.read_text().splitlines()]
        assert all(row["window"] % 4 == 0 for row in rows)

    def test_csv_requires_output(self):
        code, text = run_cli(
            "trace", "gups", "PACT", "--format", "csv", "--work", "2000000",
        )
        assert code == 2
        assert "requires --output" in text

    def test_csv_file(self, tmp_path):
        target = tmp_path / "trace.csv"
        code, _ = run_cli(
            "trace", "gups", "NoTier", "--format", "csv",
            "--work", "2000000", "-o", str(target),
        )
        assert code == 0
        header = target.read_text().splitlines()[0]
        assert "window" in header and "stall_cycles" in header

    def test_timings_table(self):
        code, text = run_cli(
            "trace", "gups", "PACT", "--work", "2000000",
            "--timings", "-o", "/dev/null",
        )
        assert code == 0
        assert "stall_solve" in text and "wall time" in text


class TestPerfCommand:
    """``repro perf`` wiring; suite execution is stubbed for speed."""

    @staticmethod
    def fake_report(wps=100.0):
        return {
            "schema": 1,
            "quick": True,
            "repeats": 1,
            "calibration_ops_per_sec": 50.0,
            "scenarios": {
                "graph-pact": {
                    "windows": 96,
                    "windows_per_sec": wps,
                    "wall_seconds": 1.0,
                    "runtime_cycles": 2.0e9,
                    "spans": {"stall_solve": {"seconds": 0.01, "calls": 96}},
                }
            },
        }

    def _patched(self, monkeypatch, wps, tmp_path):
        from repro.perf import harness

        def fake_run_suite(quick, repeats, profile, progress=None, **kwargs):
            report = self.fake_report(wps)
            if progress is not None:
                for name, record in report["scenarios"].items():
                    progress(name, record)
            return report

        monkeypatch.setattr(harness, "run_suite", fake_run_suite)
        # Keep the repo-root trajectory copy out of the working tree.
        monkeypatch.setattr(
            harness, "DEFAULT_ROOT_REPORT_PATH", str(tmp_path / "BENCH_perf.json")
        )

    def test_parser_accepts_perf_flags(self):
        args = build_parser().parse_args(
            ["perf", "--quick", "--repeats", "3", "--threshold", "0.5"]
        )
        assert args.command == "perf"
        assert args.quick and args.repeats == 3 and args.threshold == 0.5

    def test_update_baseline_then_compare_ok(self, monkeypatch, tmp_path):
        self._patched(monkeypatch, wps=100.0, tmp_path=tmp_path)
        baseline = str(tmp_path / "baseline.json")
        output = str(tmp_path / "report.json")
        code, text = run_cli(
            "perf", "--quick", "--baseline", baseline,
            "--output", output, "--update-baseline",
        )
        assert code == 0
        assert "updated baseline" in text
        code, text = run_cli(
            "perf", "--quick", "--baseline", baseline, "--output", output
        )
        assert code == 0
        assert "OK" in text

    def test_regression_fails_with_exit_one(self, monkeypatch, tmp_path):
        from repro.perf import harness

        baseline = str(tmp_path / "baseline.json")
        harness.write_report(self.fake_report(wps=300.0), baseline)
        self._patched(monkeypatch, wps=100.0, tmp_path=tmp_path)
        code, text = run_cli(
            "perf", "--quick", "--baseline", baseline,
            "--output", str(tmp_path / "report.json"),
        )
        assert code == 1
        assert "FAIL" in text

    def test_missing_baseline_is_not_an_error(self, monkeypatch, tmp_path):
        self._patched(monkeypatch, wps=100.0, tmp_path=tmp_path)
        code, text = run_cli(
            "perf", "--quick",
            "--baseline", str(tmp_path / "none.json"),
            "--output", str(tmp_path / "report.json"),
        )
        assert code == 0
        assert "no baseline" in text
