"""The command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "doom", "--policy", "PACT"])

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "gups", "--policy", "LRU2"])


class TestCommands:
    def test_list(self):
        code, text = run_cli("list")
        assert code == 0
        assert "bc-kron" in text and "PACT" in text and "8:1" in text

    def test_run(self):
        code, text = run_cli(
            "run", "--workload", "gups", "--policy", "PACT",
            "--ratio", "1:2", "--work", "2000000",
        )
        assert code == 0
        assert "slowdown vs DRAM-only" in text
        assert "pages promoted" in text

    def test_run_with_thp(self):
        code, text = run_cli(
            "run", "--workload", "gups", "--policy", "Memtis",
            "--thp", "--work", "2000000",
        )
        assert code == 0
        assert "slowdown" in text

    def test_sweep(self):
        code, text = run_cli(
            "sweep", "--workload", "masim", "--policies", "PACT", "NoTier",
            "--work", "2000000",
        )
        assert code == 0
        assert "8:1" in text and "1:8" in text
        assert "CXL (all-slow)" in text

    def test_compare(self):
        code, text = run_cli(
            "compare", "--workloads", "gups", "masim",
            "--policies", "PACT", "NoTier", "--work", "2000000",
        )
        assert code == 0
        assert "gups" in text and "masim" in text

    def test_calibrate(self):
        code, text = run_cli("calibrate", "--windows", "3")
        assert code == 0
        assert "fitted k" in text


class TestTrace:
    def test_jsonl_to_stdout(self):
        code, text = run_cli(
            "trace", "gups", "PACT", "--ratio", "1:2", "--work", "2000000",
        )
        assert code == 0
        rows = [json.loads(line) for line in text.splitlines()]
        assert rows
        assert rows[0]["window"] == 0
        for row in rows:
            assert "promoted" in row and "demoted" in row
            assert "hw/util_fast" in row["metrics"]
            assert "mem/occupancy_slow" in row["metrics"]
            assert "pact/eviction_bar" in row["metrics"]

    def test_downsampled_jsonl_file(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        code, text = run_cli(
            "trace", "gups", "PACT", "--work", "2000000",
            "--downsample", "4", "-o", str(target),
        )
        assert code == 0
        assert "wrote" in text and "machine/windows" in text
        rows = [json.loads(line) for line in target.read_text().splitlines()]
        assert all(row["window"] % 4 == 0 for row in rows)

    def test_csv_requires_output(self):
        code, text = run_cli(
            "trace", "gups", "PACT", "--format", "csv", "--work", "2000000",
        )
        assert code == 2
        assert "requires --output" in text

    def test_csv_file(self, tmp_path):
        target = tmp_path / "trace.csv"
        code, _ = run_cli(
            "trace", "gups", "NoTier", "--format", "csv",
            "--work", "2000000", "-o", str(target),
        )
        assert code == 0
        header = target.read_text().splitlines()[0]
        assert "window" in header and "stall_cycles" in header

    def test_timings_table(self):
        code, text = run_cli(
            "trace", "gups", "PACT", "--work", "2000000",
            "--timings", "-o", "/dev/null",
        )
        assert code == 0
        assert "stall_solve" in text and "wall time" in text
