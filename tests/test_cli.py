"""The command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "doom", "--policy", "PACT"])

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "gups", "--policy", "LRU2"])


class TestCommands:
    def test_list(self):
        code, text = run_cli("list")
        assert code == 0
        assert "bc-kron" in text and "PACT" in text and "8:1" in text

    def test_run(self):
        code, text = run_cli(
            "run", "--workload", "gups", "--policy", "PACT",
            "--ratio", "1:2", "--work", "2000000",
        )
        assert code == 0
        assert "slowdown vs DRAM-only" in text
        assert "pages promoted" in text

    def test_run_with_thp(self):
        code, text = run_cli(
            "run", "--workload", "gups", "--policy", "Memtis",
            "--thp", "--work", "2000000",
        )
        assert code == 0
        assert "slowdown" in text

    def test_sweep(self):
        code, text = run_cli(
            "sweep", "--workload", "masim", "--policies", "PACT", "NoTier",
            "--work", "2000000",
        )
        assert code == 0
        assert "8:1" in text and "1:8" in text
        assert "CXL (all-slow)" in text

    def test_compare(self):
        code, text = run_cli(
            "compare", "--workloads", "gups", "masim",
            "--policies", "PACT", "NoTier", "--work", "2000000",
        )
        assert code == 0
        assert "gups" in text and "masim" in text

    def test_calibrate(self):
        code, text = run_cli("calibrate", "--windows", "3")
        assert code == 0
        assert "fitted k" in text
