"""TieredMemory: allocation, movement, capacity, LRU/activity, pinning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.units import CXL_SPEC, DRAM_SPEC
from repro.mem.page import Tier, UNALLOCATED
from repro.mem.tiered import CapacityError, TieredMemory

from conftest import assert_placement_consistent


def make_memory(footprint=256, fast=128, slow=256):
    return TieredMemory(footprint, fast, slow, DRAM_SPEC, CXL_SPEC)


class TestConstruction:
    def test_rejects_insufficient_capacity(self):
        with pytest.raises(CapacityError):
            make_memory(footprint=256, fast=100, slow=100)

    def test_rejects_empty_footprint(self):
        with pytest.raises(ValueError):
            make_memory(footprint=0)

    def test_starts_unallocated(self, memory):
        assert (memory.placement == UNALLOCATED).all()
        assert memory.used[Tier.FAST] == 0
        assert memory.used[Tier.SLOW] == 0


class TestFirstTouch:
    def test_fills_preferred_then_spills(self, memory):
        pages = np.arange(200)
        taken, spilled = memory.allocate_first_touch(pages)
        assert taken == 128 and spilled == 72
        # Early allocations land fast, later ones slow.
        assert (memory.placement[:128] == int(Tier.FAST)).all()
        assert (memory.placement[128:200] == int(Tier.SLOW)).all()
        assert_placement_consistent(memory)

    def test_order_decides_fast_placement(self, memory):
        order = np.arange(200)[::-1]
        memory.allocate_first_touch(order)
        # The *last* page ids were offered first, so they got fast slots.
        assert memory.placement[199] == int(Tier.FAST)
        assert memory.placement[0] == int(Tier.SLOW)

    def test_idempotent_on_allocated_pages(self, memory):
        memory.allocate_first_touch(np.arange(50))
        taken, spilled = memory.allocate_first_touch(np.arange(50))
        assert (taken, spilled) == (0, 0)
        assert_placement_consistent(memory)

    def test_duplicates_in_request_counted_once(self, memory):
        taken, spilled = memory.allocate_first_touch(np.array([3, 3, 3, 4]))
        assert taken == 2 and spilled == 0

    def test_prefer_slow(self, memory):
        memory.allocate_first_touch(np.arange(10), prefer=Tier.SLOW)
        assert (memory.placement[:10] == int(Tier.SLOW)).all()


class TestMove:
    def test_promote_and_demote_roundtrip(self, memory):
        memory.allocate_first_touch(np.arange(256))
        moved = memory.move(np.array([200, 201]), Tier.FAST)
        assert moved.size == 0  # fast tier is full
        freed = memory.move(np.array([0, 1]), Tier.SLOW)
        assert freed.size == 2
        moved = memory.move(np.array([200, 201]), Tier.FAST)
        assert set(moved) == {200, 201}
        assert_placement_consistent(memory)

    def test_move_skips_pages_already_there(self, memory):
        memory.allocate_first_touch(np.arange(256))
        moved = memory.move(np.array([0]), Tier.FAST)  # already fast
        assert moved.size == 0

    def test_move_clips_to_capacity(self, memory):
        memory.allocate_first_touch(np.arange(256))
        memory.move(np.arange(0, 10), Tier.SLOW)
        moved = memory.move(np.arange(128, 148), Tier.FAST)
        assert moved.size == 10
        assert_placement_consistent(memory)

    def test_move_ignores_unallocated(self, memory):
        moved = memory.move(np.array([5]), Tier.FAST)
        assert moved.size == 0


class TestLruAndActivity:
    def test_touch_updates_clock_and_activity(self, memory):
        memory.allocate_first_touch(np.arange(4))
        memory.touch(np.array([2]), window=3, counts=np.array([5]))
        assert memory.last_touch[2] == 3
        assert memory.activity[2] == pytest.approx(5.0)

    def test_activity_decays_lazily(self, memory):
        memory.allocate_first_touch(np.arange(4))
        memory.touch(np.array([1]), window=0, counts=np.array([10]))
        memory.touch(np.array([2]), window=5, counts=np.array([1]))
        assert memory.activity[1] == pytest.approx(10 * memory.activity_decay**5)

    def test_lru_victims_coldest_first(self, memory):
        memory.allocate_first_touch(np.arange(128))
        memory.touch(np.arange(0, 64), window=1, counts=np.full(64, 10))
        memory.touch(np.arange(64, 128), window=2, counts=np.full(64, 1))
        victims = memory.lru_victims(Tier.FAST, 10)
        assert all(v >= 64 for v in victims)  # low-activity pages first

    def test_lru_victims_respects_protect(self, memory):
        memory.allocate_first_touch(np.arange(128))
        victims = memory.lru_victims(Tier.FAST, 128, protect=np.arange(0, 120))
        assert victims.size == 8
        assert set(victims) == set(range(120, 128))

    def test_lru_victims_activity_floor(self, memory):
        memory.allocate_first_touch(np.arange(128))
        memory.touch(np.arange(128), window=1, counts=np.full(128, 50))
        victims = memory.lru_victims(Tier.FAST, 10, max_activity=1.0)
        assert victims.size == 0  # everything is active

    def test_fifo_mode_ranks_by_arrival(self, memory):
        memory.allocate_first_touch(np.arange(128))
        # Make page 100 extremely active; FIFO should still evict by age.
        memory.touch(np.array([0]), window=1, counts=np.array([1000]))
        fifo = memory.lru_victims(Tier.FAST, 1, fifo=True)
        assert fifo[0] == 0  # oldest arrival despite being hottest

    def test_mean_activity(self, memory):
        memory.allocate_first_touch(np.arange(2))
        memory.touch(np.array([0, 1]), window=0, counts=np.array([4, 8]))
        fast_mean = memory.mean_activity(Tier.FAST)
        assert fast_mean == pytest.approx(6.0)
        assert memory.mean_activity(Tier.SLOW) == 0.0


class TestPinning:
    def test_pinned_pages_resist_demotion(self, memory):
        memory.allocate_first_touch(np.arange(256))
        memory.move(np.arange(0, 4), Tier.SLOW)
        memory.move(np.arange(128, 132), Tier.FAST)
        memory.pin(np.array([128]))
        # 128 is in FAST; pin prevents demotion of slow copies... move it
        # back to SLOW should be blocked.
        moved = memory.move(np.array([128, 129]), Tier.SLOW)
        assert 128 not in moved
        assert 129 in moved
        memory.unpin(np.array([128]))
        moved = memory.move(np.array([128]), Tier.SLOW)
        assert 128 in moved


class TestQueries:
    def test_pages_in_tier(self, memory):
        memory.allocate_first_touch(np.arange(200))
        fast = memory.pages_in_tier(Tier.FAST)
        slow = memory.pages_in_tier(Tier.SLOW)
        assert fast.size == 128 and slow.size == 72
        assert np.intersect1d(fast, slow).size == 0

    def test_resident_fraction(self, memory):
        memory.allocate_first_touch(np.arange(200))
        assert memory.resident_fraction(Tier.FAST) == pytest.approx(128 / 200)

    def test_resident_fraction_empty(self, memory):
        assert memory.resident_fraction(Tier.FAST) == 0.0


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 255), st.booleans()), max_size=60))
def test_random_moves_preserve_invariants(ops):
    memory = make_memory()
    memory.allocate_first_touch(np.arange(256))
    for page, to_fast in ops:
        memory.move(np.array([page]), Tier.FAST if to_fast else Tier.SLOW)
    assert_placement_consistent(memory)
    # Every page remains allocated exactly once.
    assert (memory.placement != UNALLOCATED).all()


class TestIncrementalAccounting:
    """Generation-cached queries and O(delta) aggregates stay exact."""

    def make_debug_memory(self, footprint=256, fast=128, slow=256):
        return TieredMemory(
            footprint, fast, slow, DRAM_SPEC, CXL_SPEC, debug_accounting=True
        )

    def test_cross_check_passes_through_mixed_mutations(self):
        memory = self.make_debug_memory()
        rng = np.random.default_rng(0)
        memory.allocate_first_touch(rng.permutation(200))
        for window in range(1, 30):
            pages = rng.integers(0, 256, size=40)
            counts = rng.integers(0, 50, size=40)
            memory.touch(pages, window, counts=counts)
            memory.allocate_first_touch(rng.integers(0, 256, size=8))
            if window % 3 == 0:
                memory.move(rng.integers(0, 256, size=16), Tier.FAST)
            else:
                memory.move(rng.integers(0, 256, size=16), Tier.SLOW)
            # check_accounting ran after every mutation (debug mode);
            # also assert the public aggregates against full scans here.
            for tier in (Tier.FAST, Tier.SLOW):
                scan = np.flatnonzero(memory.placement == int(tier))
                assert np.array_equal(memory.pages_in_tier(tier), scan)
                expected_mean = (
                    float(memory.activity[scan].mean()) if scan.size else 0.0
                )
                assert memory.mean_activity(tier) == expected_mean
                assert memory.activity_sum(tier) == pytest.approx(
                    float(memory.activity[scan].sum()), rel=1e-9, abs=1e-6
                )

    def test_pages_in_tier_cached_until_placement_changes(self):
        memory = make_memory()
        memory.allocate_first_touch(np.arange(200))
        first = memory.pages_in_tier(Tier.FAST)
        assert memory.pages_in_tier(Tier.FAST) is first  # served from cache
        memory.move(np.array([0, 1]), Tier.SLOW)
        second = memory.pages_in_tier(Tier.FAST)
        assert second is not first
        assert 0 not in second and 1 not in second

    def test_touch_does_not_invalidate_residency_cache(self):
        memory = make_memory()
        memory.allocate_first_touch(np.arange(200))
        first = memory.pages_in_tier(Tier.SLOW)
        memory.touch(np.array([150, 151]), window=1)
        assert memory.pages_in_tier(Tier.SLOW) is first

    def test_mean_activity_tracks_touch_and_decay(self):
        memory = make_memory()
        memory.allocate_first_touch(np.arange(128))  # all fast
        memory.touch(np.arange(128), window=1)
        assert memory.mean_activity(Tier.FAST) == pytest.approx(1.0)
        memory.touch(np.array([0]), window=6)  # 5 windows of decay first
        resident = memory.pages_in_tier(Tier.FAST)
        assert memory.mean_activity(Tier.FAST) == float(
            memory.activity[resident].mean()
        )

    def test_mean_activity_exact_after_migration(self):
        memory = make_memory()
        memory.allocate_first_touch(np.arange(200))
        memory.touch(np.arange(200), window=1, counts=np.arange(200).astype(float))
        before = memory.mean_activity(Tier.FAST)
        memory.move(np.arange(0, 40), Tier.SLOW)
        after = memory.mean_activity(Tier.FAST)
        assert after != before
        resident = memory.pages_in_tier(Tier.FAST)
        assert after == float(memory.activity[resident].mean())

    def test_unallocated_touches_fold_in_on_allocation(self):
        memory = self.make_debug_memory()
        # Touch before allocation: activity accrues but belongs to no tier.
        memory.touch(np.array([5, 6]), window=1, counts=np.array([3.0, 4.0]))
        assert memory.activity_sum(Tier.FAST) == 0.0
        memory.allocate_first_touch(np.array([5, 6]))
        assert memory.activity_sum(Tier.FAST) == pytest.approx(7.0)

    def test_accounting_error_surfaces_divergence(self):
        from repro.mem.tiered import AccountingError

        memory = self.make_debug_memory()
        memory.allocate_first_touch(np.arange(50))
        memory._activity_sum[Tier.FAST] += 123.0  # corrupt on purpose
        with pytest.raises(AccountingError):
            memory.check_accounting()

    def test_lru_victims_mask_protection_matches_isin(self):
        rng = np.random.default_rng(7)
        for trial in range(10):
            memory = make_memory(footprint=512, fast=256, slow=512)
            memory.allocate_first_touch(rng.permutation(400))
            memory.touch(
                rng.integers(0, 400, 80), window=1,
                counts=rng.integers(0, 9, 80).astype(float),
            )
            protect = rng.choice(400, size=30, replace=False)
            got = memory.lru_victims(Tier.FAST, 40, protect=protect)
            resident = np.flatnonzero(memory.placement == int(Tier.FAST))
            legacy = resident[~np.isin(resident, protect)]
            keys = memory.activity[legacy]
            part = np.argpartition(keys, 40)[:40]
            expected = legacy[part[np.argsort(keys[part], kind="stable")]]
            assert np.array_equal(np.sort(got), np.sort(expected))
            # Scratch mask is cleaned up for the next call.
            assert not memory._protect_scratch.any()
