"""The experiment layer: specs, content-addressed caching, fan-out.

Covers the contracts the benches and CLI rely on:

* the same declared grid executed twice performs zero simulations the
  second time, even from a *fresh* store instance reading the same disk
  directory (the cross-process bench scenario);
* parallel execution is bit-identical to serial execution;
* any MachineConfig change invalidates cached entries;
* cache keys cover the window budget and the contender's full parameter
  set (regression: the old engine-local key omitted both);
* engine-level baseline helpers and runner-level requests share cache
  entries.
"""

from __future__ import annotations

import pytest

from repro.exp.cache import (
    ResultStore,
    result_from_dict,
    result_to_dict,
    set_default_store,
    reset_default_store,
)
from repro.exp.runner import run_experiment, run_requests
from repro.exp.spec import ExperimentSpec, PolicySpec, RunRequest, WorkloadSpec
from repro.sim.config import MachineConfig
from repro.sim.engine import ideal_baseline, slow_only_run
from repro.sim.machine import Machine
from repro.workloads.mlc import MlcContender

from conftest import TinyWorkload


def tiny_factory():
    """Module-level (hence picklable) fast workload factory."""
    return TinyWorkload(total_misses=120_000, misses_per_window=30_000)


def tiny_spec() -> WorkloadSpec:
    return WorkloadSpec.from_factory(tiny_factory, label="tiny")


def small_grid(config=None) -> ExperimentSpec:
    return ExperimentSpec(
        workloads=[tiny_spec()],
        policies=[PolicySpec("PACT"), PolicySpec("NoTier")],
        ratios=("1:1", "1:2"),
        config=config,
    )


@pytest.fixture
def count_runs(monkeypatch):
    """Count simulated runs in this process (solo and lockstep)."""
    from repro.sim.runbatch import MultiMachine

    calls = []
    original = Machine.run
    original_multi = MultiMachine.run

    def counting_run(self, *args, **kwargs):
        calls.append(self)
        return original(self, *args, **kwargs)

    def counting_multi_run(self, *args, **kwargs):
        # One lockstep execution simulates every member machine once.
        calls.extend(self.machines)
        return original_multi(self, *args, **kwargs)

    monkeypatch.setattr(Machine, "run", counting_run)
    monkeypatch.setattr(MultiMachine, "run", counting_multi_run)
    return calls


@pytest.fixture
def isolated_store():
    """Memory-only default store, restored afterwards."""
    store = set_default_store(ResultStore())
    yield store
    reset_default_store()


class TestCaching:
    def test_second_run_recomputes_nothing(self, tmp_path, count_runs):
        spec = small_grid()
        try:
            first_store = set_default_store(ResultStore(tmp_path / "cache"))
            first = run_experiment(spec)
            n_unique = len({r.key for r in spec.expand()})
            assert len(count_runs) == n_unique
            assert first_store.puts == n_unique

            # Fresh store over the same directory: what a second bench
            # process sees.  Zero new simulations.
            second_store = set_default_store(ResultStore(tmp_path / "cache"))
            count_runs.clear()
            second = run_experiment(spec)
            assert len(count_runs) == 0
            assert second_store.disk_hits == n_unique
            assert second_store.misses == 0
        finally:
            reset_default_store()

        for req in spec.expand():
            assert result_to_dict(first[req]) == result_to_dict(second[req])

    def test_duplicate_requests_deduped_by_key(self, isolated_store, count_runs):
        # expand() emits baselines once per (workload, seed, contender);
        # duplicates arriving through composed request lists (as the
        # benches build) must still execute exactly once.
        requests = small_grid().expand() + [
            RunRequest.ideal(tiny_spec()),
            RunRequest.slow_only(tiny_spec()),
        ]
        assert len(requests) > len({r.key for r in requests})
        run_requests(requests)
        assert len(count_runs) == len({r.key for r in requests})

    def test_config_change_invalidates(self, isolated_store, count_runs):
        run_experiment(small_grid())
        baseline_calls = len(count_runs)
        count_runs.clear()

        # Identical grid, same store: fully served from memory.
        run_experiment(small_grid())
        assert len(count_runs) == 0

        # Any config delta must recompute everything.
        run_experiment(small_grid(config=MachineConfig().with_(pebs_rate=800)))
        assert len(count_runs) == baseline_calls

    def test_no_cache_bypasses_store(self, isolated_store, count_runs):
        spec = small_grid()
        run_experiment(spec, use_cache=False)
        calls = len(count_runs)
        assert isolated_store.puts == 0
        count_runs.clear()
        run_experiment(spec, use_cache=False)
        assert len(count_runs) == calls

    def test_result_roundtrips_through_json(self, isolated_store):
        req = RunRequest(
            workload=tiny_spec(), policy=PolicySpec("PACT"), ratio="1:2", trace=True
        )
        result = run_requests([req])[req]
        restored = result_from_dict(result_to_dict(result))
        assert result_to_dict(restored) == result_to_dict(result)
        assert restored.trace is not None
        assert len(restored.trace) == len(result.trace)
        assert restored.tier_misses == result.tier_misses


class TestKeyCompleteness:
    def test_max_windows_in_key(self):
        a = RunRequest.ideal(tiny_spec())
        b = RunRequest.ideal(tiny_spec(), max_windows=3)
        assert a.key != b.key

    def test_contender_bandwidth_in_key(self):
        a = RunRequest.ideal(tiny_spec(), contender=MlcContender(threads=2))
        b = RunRequest.ideal(
            tiny_spec(), contender=MlcContender(threads=2, gbps_per_thread=16.0)
        )
        assert a.key != b.key

    def test_trace_kind_ratio_in_key(self):
        base = RunRequest(workload=tiny_spec(), policy=PolicySpec("PACT"))
        traced = RunRequest(workload=tiny_spec(), policy=PolicySpec("PACT"), trace=True)
        other_ratio = RunRequest(
            workload=tiny_spec(), policy=PolicySpec("PACT"), ratio="1:2"
        )
        assert len({base.key, traced.key, other_ratio.key}) == 3
        assert RunRequest.ideal(tiny_spec()).key != RunRequest.slow_only(tiny_spec()).key

    def test_policy_kwargs_in_key(self):
        a = RunRequest(workload=tiny_spec(), policy=PolicySpec("PACT"))
        b = RunRequest(
            workload=tiny_spec(), policy=PolicySpec("PACT", {"period_windows": 5})
        )
        assert a.key != b.key

    def test_baseline_shared_across_ratios_by_design(self):
        # The reference runs override capacity, so ratio must NOT key them.
        a = RunRequest.ideal(tiny_spec())
        b = RunRequest.ideal(tiny_spec())
        b.ratio = "1:8"
        assert a.key == b.key


class TestEngineInterop:
    def test_engine_baseline_serves_runner_request(self, isolated_store, count_runs):
        ideal_baseline(tiny_factory())
        slow_only_run(tiny_factory())
        engine_calls = len(count_runs)
        assert engine_calls == 2
        count_runs.clear()

        exp = run_requests(
            [RunRequest.ideal(tiny_spec()), RunRequest.slow_only(tiny_spec())]
        )
        assert len(count_runs) == 0  # both served from the engine's entries
        assert exp.baseline("tiny").runtime_cycles > 0

    def test_runner_request_serves_engine_baseline(self, isolated_store, count_runs):
        run_requests([RunRequest.ideal(tiny_spec())])
        count_runs.clear()
        ideal_baseline(tiny_factory())
        assert len(count_runs) == 0


class TestParallel:
    def test_parallel_matches_serial(self, tmp_path):
        spec = small_grid()
        try:
            set_default_store(ResultStore())
            serial = run_experiment(spec, jobs=1, use_cache=False)
            set_default_store(ResultStore())
            parallel = run_experiment(spec, jobs=2, use_cache=False)
        finally:
            reset_default_store()
        for req in spec.expand():
            assert result_to_dict(serial[req]) == result_to_dict(parallel[req]), req.display

    def test_parallel_fills_shared_disk_cache(self, tmp_path):
        spec = small_grid()
        try:
            store = set_default_store(ResultStore(tmp_path / "cache"))
            run_experiment(spec, jobs=2)
            n_unique = len({r.key for r in spec.expand()})
            assert store.puts == n_unique
            # A later serial run over the same directory is all hits.
            second = set_default_store(ResultStore(tmp_path / "cache"))
            run_experiment(spec, jobs=1)
            assert second.misses == 0
        finally:
            reset_default_store()


class TestFindSemantics:
    def test_find_raises_on_missing_and_ambiguous(self, isolated_store):
        spec = ExperimentSpec(
            workloads=[tiny_spec()],
            policies=[PolicySpec("NoTier")],
            ratios=("1:1", "1:2"),
        )
        exp = run_experiment(spec)
        with pytest.raises(KeyError):
            exp.find(workload="tiny", policy="PACT", ratio="1:1")
        with pytest.raises(KeyError):
            exp.find(workload="tiny", policy="NoTier")  # two ratios match
        one = exp.find(workload="tiny", policy="NoTier", ratio="1:2")
        assert one.ratio == "1:2"


def failing_factory():
    """Module-level factory (picklable) that always fails to build."""
    raise ValueError("boom at build")


def fake_result(**overrides):
    from repro.sim.metrics import RunResult

    base = dict(
        workload="w", policy="p", ratio="1:1", runtime_cycles=10.0, windows=2,
        promoted=1, demoted=0, migration_cost_cycles=1.0, total_stall_cycles=2.0,
        total_misses=100.0, tier_misses={},
    )
    base.update(overrides)
    return RunResult(**base)


class TestCacheFailurePaths:
    """Corrupt, partial, and stale cache files are misses, not crashes.

    Each bad file is also unlinked on detection, so it is parsed once
    rather than on every lookup for the rest of the campaign.
    """

    def test_valid_json_missing_result_key_is_miss_and_unlinked(self, tmp_path):
        import json

        from repro.exp.cache import CACHE_VERSION

        store = ResultStore(tmp_path)
        path = tmp_path / "deadbeef.json"
        path.write_text(json.dumps({"version": CACHE_VERSION, "fingerprint": None}))
        assert store.get("deadbeef") is None  # a miss, not a KeyError
        assert not path.exists()

    def test_stale_version_file_is_miss_and_unlinked(self, tmp_path):
        import json

        from repro.exp.cache import CACHE_VERSION, result_to_dict

        store = ResultStore(tmp_path)
        path = tmp_path / "cafe.json"
        path.write_text(
            json.dumps(
                {"version": CACHE_VERSION - 1, "result": result_to_dict(fake_result())}
            )
        )
        assert store.get("cafe") is None
        assert not path.exists()

    def test_corrupt_json_is_miss_and_unlinked(self, tmp_path):
        store = ResultStore(tmp_path)
        path = tmp_path / "f00d.json"
        path.write_text('{"version": 2, "result": {tru')  # torn write
        assert store.get("f00d") is None
        assert not path.exists()

    def test_result_field_of_wrong_shape_is_miss_and_unlinked(self, tmp_path):
        import json

        from repro.exp.cache import CACHE_VERSION

        store = ResultStore(tmp_path)
        path = tmp_path / "0ddb.json"
        path.write_text(json.dumps({"version": CACHE_VERSION, "result": [1, 2, 3]}))
        assert store.get("0ddb") is None
        assert not path.exists()

    def test_unserialisable_put_surfaces_and_leaves_no_tmp(self, tmp_path):
        store = ResultStore(tmp_path)
        bad = fake_result(workload_metrics={"x": object()})
        with pytest.raises(TypeError):
            store.put("bad", bad)
        assert list(tmp_path.glob("*.tmp")) == []
        assert not (tmp_path / "bad.json").exists()
        # The memory layer still serves it within this process.
        assert store.get("bad") is bad


class TestVanishedTraceFallback:
    """A deleted/unreadable .npt costs one re-record, never a crash."""

    def _request(self):
        return RunRequest(
            workload=tiny_spec(), policy=PolicySpec("NoTier"), replay=True
        )

    def test_deleted_npt_re_records(self, tmp_path):
        import os

        from repro.exp.runner import _prepare_replay, _replay_workload
        from repro.workloads import tracestore

        try:
            tracestore.set_default_trace_store(
                tracestore.TraceStore(tmp_path / "traces")
            )
            req = self._request()
            _prepare_replay([req])
            assert req.trace_path is not None
            os.unlink(req.trace_path)
            # A fresh store (cold memory layer, same directory) models a
            # later campaign whose .npt was evicted underneath it.
            fresh = tracestore.set_default_trace_store(
                tracestore.TraceStore(tmp_path / "traces")
            )
            replayed = _replay_workload(req, req.workload.build())
            assert isinstance(replayed, tracestore.ReplayWorkload)
            assert fresh.records == 1
        finally:
            tracestore.reset_default_trace_store()

    def test_read_error_falls_back_to_store(self, tmp_path, monkeypatch):
        from repro.exp.runner import _replay_workload
        from repro.workloads import tracestore

        def denied(path):
            raise OSError(13, "Permission denied", str(path))

        monkeypatch.setattr(tracestore, "read_npt", denied)
        try:
            store = tracestore.set_default_trace_store(tracestore.TraceStore())
            req = self._request()
            req.trace_path = str(tmp_path / "unreadable.npt")
            replayed = _replay_workload(req, req.workload.build())
            assert isinstance(replayed, tracestore.ReplayWorkload)
            assert store.records == 1
        finally:
            tracestore.reset_default_trace_store()


class TestWorkerFailureIdentity:
    """A failing request names itself, serial or parallel."""

    def _doomed(self):
        return RunRequest(
            workload=WorkloadSpec.from_factory(failing_factory, label="doomed"),
            policy=PolicySpec("NoTier"),
            replay=False,
        )

    def test_serial_failure_names_request(self):
        from repro.exp import parallel

        with pytest.raises(parallel.RequestExecutionError, match="doomed/NoTier"):
            parallel.execute_many([self._doomed()], jobs=1)

    def test_pool_failure_names_request(self):
        from repro.exp import parallel

        ok = RunRequest(
            workload=tiny_spec(), policy=PolicySpec("NoTier"), replay=False
        )
        with pytest.raises(parallel.RequestExecutionError) as excinfo:
            parallel.execute_many([ok, self._doomed()], jobs=2)
        assert "doomed" in str(excinfo.value)
        assert "ValueError" in str(excinfo.value)  # original type rides along

    def test_unpicklable_requests_fall_back_serially(self):
        from repro.exp import parallel

        lam = WorkloadSpec.from_factory(
            lambda: TinyWorkload(total_misses=60_000, misses_per_window=30_000),
            label="lam",
        )
        reqs = [
            RunRequest(workload=lam, policy=PolicySpec("NoTier"), replay=False),
            RunRequest(
                workload=lam, policy=PolicySpec("NoTier"), ratio="1:2", replay=False
            ),
        ]
        parallel.reset_unpicklable_warnings()
        with pytest.warns(RuntimeWarning, match="lam"):
            results = parallel.execute_many(reqs, jobs=2)
        assert len(results) == 2
        assert all(r.runtime_cycles > 0 for r in results)
