"""Runner helpers, baseline caching, and the slowdown metric."""

import pytest

from repro.sim.engine import (
    clear_baseline_cache,
    ideal_baseline,
    run_policy,
    slow_only_run,
)
from repro.sim.metrics import RunResult, improvement
from repro.sim.policy_api import NoTierPolicy

from conftest import TinyWorkload


def make_result(runtime, promoted=0):
    return RunResult(
        workload="w",
        policy="p",
        ratio="1:1",
        runtime_cycles=runtime,
        windows=10,
        promoted=promoted,
        demoted=promoted,
        migration_cost_cycles=0.0,
        total_stall_cycles=0.0,
        total_misses=0.0,
        tier_misses={},
    )


class TestMetrics:
    def test_slowdown(self):
        assert make_result(150.0).slowdown(make_result(100.0)) == pytest.approx(0.5)

    def test_slowdown_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            make_result(100.0).slowdown(make_result(0.0))

    def test_speedup_over(self):
        fast, slow = make_result(100.0), make_result(150.0)
        assert fast.speedup_over(slow) == pytest.approx(0.5)

    def test_improvement_from_slowdowns(self):
        # Self at 20% slowdown vs other at 50%: (1.5/1.2) - 1 = 25%.
        assert improvement(0.2, 0.5) == pytest.approx(0.25)

    def test_improvement_negative_when_worse(self):
        assert improvement(0.5, 0.2) < 0

    def test_runtime_ms(self):
        assert make_result(2.2e6).runtime_ms == pytest.approx(1.0)


class TestRunner:
    def test_ideal_baseline_has_no_slow_traffic(self, config):
        clear_baseline_cache()
        workload = TinyWorkload()
        base = ideal_baseline(workload, config=config)
        from repro.mem.page import Tier

        assert base.tier_misses[Tier.SLOW] == 0.0
        assert base.tier_misses[Tier.FAST] > 0.0

    def test_slow_only_run_slower_than_ideal(self, config):
        clear_baseline_cache()
        workload = TinyWorkload()
        base = ideal_baseline(workload, config=config)
        slow = slow_only_run(workload, config=config)
        assert slow.slowdown(base) > 0.1

    def test_baseline_cached(self, config):
        clear_baseline_cache()
        workload = TinyWorkload()
        a = ideal_baseline(workload, config=config)
        b = ideal_baseline(workload, config=config)
        assert a is b

    def test_cache_key_distinguishes_configs(self, config):
        clear_baseline_cache()
        workload = TinyWorkload()
        a = ideal_baseline(workload, config=config)
        b = ideal_baseline(workload, config=config.with_(counter_noise=0.02))
        assert a is not b

    def test_run_policy_end_to_end(self, config):
        clear_baseline_cache()
        workload = TinyWorkload()
        base = ideal_baseline(workload, config=config)
        result = run_policy(workload, NoTierPolicy(), ratio="1:1", config=config)
        assert 0.0 < result.slowdown(base) < 2.0
        assert result.policy == "NoTier"
        assert result.ratio == "1:1"
