"""Campaign service: persistent pool, SQLite store, failure isolation.

The contracts the 10k-run campaign story rests on:

* a campaign through the worker-pool service is bit-identical to serial
  ``run_requests`` on the same request list, for both store backends;
* the SQLite store round-trips results exactly, batches commits, reads
  legacy JSON-directory entries, and discards stale-version rows;
* a worker exception, crash, or hang loses only the affected request:
  the failure ledger names it, a retry completes it, and every other
  request's result is unaffected;
* zero traffic re-generation: after the driver's warm-up recording,
  neither the parent nor any worker records a stream again.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from functools import partial
from pathlib import Path

import pytest

from repro.exp.cache import (
    CACHE_VERSION,
    ResultStore,
    reset_default_store,
    result_to_dict,
    set_default_store,
)
from repro.exp.runner import run_requests
from repro.exp.service import (
    FAILURE_CRASH,
    FAILURE_EXCEPTION,
    FAILURE_TIMEOUT,
    CampaignDriver,
    run_campaign,
)
from repro.exp.spec import ExperimentSpec, PolicySpec, RunRequest, WorkloadSpec
from repro.exp.store import SqliteResultStore, open_store
from repro.sim.metrics import RunResult
from repro.workloads import tracestore

from conftest import TinyWorkload


def tiny_factory():
    return TinyWorkload(total_misses=120_000, misses_per_window=30_000)


def small_grid() -> ExperimentSpec:
    return ExperimentSpec(
        workloads=[WorkloadSpec.from_factory(tiny_factory, label="tiny")],
        policies=[PolicySpec("PACT"), PolicySpec("NoTier")],
        ratios=("1:1", "1:2"),
    )


def _in_worker() -> bool:
    return multiprocessing.current_process().name != "MainProcess"


def misbehaving_factory(mode: str, flag_path: str):
    """A workload factory that fails *inside worker processes only*.

    The parent builds workloads too (descriptor fingerprints, replay
    warm-up), so failures are keyed on the process name.  ``flag_path``
    arms one-shot modes: the first worker build trips the failure and
    leaves the flag behind; retries then build normally.

    The returned workload's parameters differ from ``tiny_factory``'s:
    requests fingerprint the *built instance*, and identical parameters
    would dedup the bad request onto the healthy one's cache key.
    """
    if _in_worker() and not os.path.exists(flag_path):
        Path(flag_path).touch()
        if mode == "raise":
            raise ValueError("injected workload failure")
        if mode == "crash":
            os._exit(13)
        if mode == "hang":
            time.sleep(120.0)
    return TinyWorkload(total_misses=120_000, misses_per_window=30_000, seed=11)


def misbehaving_spec(mode: str, flag_path, label: str) -> WorkloadSpec:
    return WorkloadSpec.from_factory(
        partial(misbehaving_factory, mode, str(flag_path)), label=label
    )


@pytest.fixture
def isolated_stores():
    """Memory-only default result + trace stores, restored afterwards."""
    store = set_default_store(ResultStore())
    trace_store = tracestore.set_default_trace_store(tracestore.TraceStore())
    yield store, trace_store
    reset_default_store()
    tracestore.reset_default_trace_store()


def fake_result(**overrides) -> RunResult:
    base = dict(
        workload="w", policy="p", ratio="1:1", runtime_cycles=10.0, windows=2,
        promoted=1, demoted=0, migration_cost_cycles=1.0, total_stall_cycles=2.0,
        total_misses=100.0, tier_misses={},
    )
    base.update(overrides)
    return RunResult(**base)


# ---------------------------------------------------------------------------
# SQLite result store.
# ---------------------------------------------------------------------------


class TestSqliteStore:
    def test_roundtrip_and_batched_commits(self, tmp_path):
        store = SqliteResultStore(tmp_path, batch_size=3)
        for i in range(5):
            store.put(f"k{i}", fake_result(windows=i + 1))
        assert store.commits == 1  # 3 puts flushed, 2 still pending
        store.flush()
        assert store.commits == 2

        fresh = SqliteResultStore(tmp_path)
        got = fresh.get("k4")
        assert got is not None and got.windows == 5
        assert fresh.disk_hits == 1
        assert result_to_dict(got) == result_to_dict(fake_result(windows=5))

    def test_pending_batch_flushed_on_close(self, tmp_path):
        store = SqliteResultStore(tmp_path, batch_size=100)
        store.put("k", fake_result())
        assert store.commits == 0
        store.close()
        assert SqliteResultStore(tmp_path).get("k") is not None

    def test_reads_legacy_json_entries(self, tmp_path):
        ResultStore(tmp_path).put("legacy", fake_result(windows=7))
        store = SqliteResultStore(tmp_path)
        got = store.get("legacy")
        assert got is not None and got.windows == 7
        assert store.json_migrations == 1
        store.flush()
        # Migrated: a fresh store finds it in the table even after the
        # JSON file disappears.
        (tmp_path / "legacy.json").unlink()
        assert SqliteResultStore(tmp_path).get("legacy") is not None

    def test_stale_version_row_deleted_on_detection(self, tmp_path):
        store = SqliteResultStore(tmp_path)
        store.put("k", fake_result())
        store.flush()
        store._conn.execute("UPDATE results SET version = ?", (CACHE_VERSION - 1,))
        store._conn.commit()
        store.clear_memory()
        assert store.get("k") is None
        assert store.count() == 0  # deleted, not re-parsed forever

    def test_unserialisable_result_surfaces_and_leaves_no_row(self, tmp_path):
        store = SqliteResultStore(tmp_path)
        with pytest.raises(TypeError):
            store.put("bad", fake_result(workload_metrics={"x": object()}))
        store.flush()
        assert store.count() == 0

    def test_open_store_backends(self, tmp_path):
        assert isinstance(open_store(tmp_path, "sqlite"), SqliteResultStore)
        json_store = open_store(tmp_path, "json")
        assert isinstance(json_store, ResultStore)
        assert not isinstance(json_store, SqliteResultStore)
        with pytest.raises(ValueError):
            open_store(tmp_path, "parquet")


# ---------------------------------------------------------------------------
# Campaign driver: equivalence.
# ---------------------------------------------------------------------------


class TestCampaignEquivalence:
    def test_campaign_matches_serial_run_requests(self, tmp_path):
        spec = small_grid()
        try:
            tracestore.set_default_trace_store(tracestore.TraceStore())
            set_default_store(ResultStore())
            serial = run_requests(spec.expand(), jobs=1, use_cache=False)

            tracestore.set_default_trace_store(
                tracestore.TraceStore(tmp_path / "traces")
            )
            sqlite_store = SqliteResultStore(tmp_path / "cache")
            campaign = run_campaign(
                spec.expand(), jobs=2, store=sqlite_store, use_cache=True
            )
        finally:
            reset_default_store()
            tracestore.reset_default_trace_store()

        assert campaign.ok
        for req in spec.expand():
            assert result_to_dict(serial[req]) == result_to_dict(campaign[req]), (
                req.display
            )
        # Zero traffic re-generation after warm-up, on either side of
        # the process boundary.
        assert campaign.stats.re_records == 0

    def test_sqlite_and_json_stores_equivalent_on_replayed_sweep(self, tmp_path):
        spec = small_grid()
        requests = spec.expand()
        try:
            tracestore.set_default_trace_store(
                tracestore.TraceStore(tmp_path / "traces")
            )
            json_store = ResultStore(tmp_path / "json-cache")
            via_json = run_campaign(requests, jobs=1, store=json_store)

            sqlite_store = SqliteResultStore(tmp_path / "sqlite-cache")
            via_sqlite = run_campaign(requests, jobs=1, store=sqlite_store)
            sqlite_store.flush()

            # Both campaigns replayed the same recorded stream...
            assert via_json.stats.re_records == 0
            assert via_sqlite.stats.re_records == 0
            assert via_sqlite.stats.warmup_records == 0  # stream shared
            # ...and a fresh store over either backend serves identical
            # results with zero simulations.
            reread = SqliteResultStore(tmp_path / "sqlite-cache")
            for req in requests:
                a = result_to_dict(via_json[req])
                assert a == result_to_dict(via_sqlite[req])
                assert a == result_to_dict(reread.get(req.key))
        finally:
            tracestore.reset_default_trace_store()

    def test_campaign_serves_existing_json_cache(self, tmp_path, isolated_stores):
        spec = small_grid()
        json_store = ResultStore(tmp_path / "cache")
        run_requests(spec.expand(), jobs=1, store=json_store)

        sqlite_store = SqliteResultStore(tmp_path / "cache")
        campaign = run_campaign(spec.expand(), jobs=2, store=sqlite_store)
        assert campaign.stats.executed == 0
        assert campaign.stats.cache_hits == len({r.key for r in spec.expand()})

    def test_driver_pool_persists_across_runs(self, isolated_stores):
        spec = small_grid()
        with CampaignDriver(jobs=2) as driver:
            first = driver.run(spec.expand())
            pids = [w.process.pid for w in driver.pool.workers]
            second = driver.run(spec.expand())
            assert [w.process.pid for w in driver.pool.workers] == pids
        assert first.ok and second.ok
        assert second.stats.executed == 0  # all cache hits on the rerun

    def test_campaign_gauges_published(self, isolated_stores):
        driver = CampaignDriver(jobs=1)
        result = driver.run(small_grid().expand())
        gauges = driver.registry.gauges()
        assert result.ok
        assert gauges["campaign/completed"] == result.stats.unique_requests
        assert gauges["campaign/queue_depth"] == 0
        assert gauges["campaign/re_records"] == 0
        assert 0.0 <= gauges["campaign/cache_hit_rate"] <= 1.0


# ---------------------------------------------------------------------------
# Campaign driver: failure isolation.
# ---------------------------------------------------------------------------


class TestFailureIsolation:
    def _grid(self, bad_spec) -> list:
        healthy = ExperimentSpec(
            workloads=[WorkloadSpec.from_factory(tiny_factory, label="tiny")],
            policies=[PolicySpec("NoTier")],
            ratios=("1:1",),
        )
        bad = RunRequest(
            workload=bad_spec, policy=PolicySpec("NoTier"), ratio="1:1", replay=False
        )
        return healthy.expand() + [bad]

    def test_worker_exception_loses_only_that_request(
        self, tmp_path, isolated_stores
    ):
        # retries=0: the single armed attempt is the final one.
        requests = self._grid(misbehaving_spec("raise", tmp_path / "armed.flag", "raisy"))
        campaign = run_campaign(requests, jobs=2, retries=0)
        failed = campaign.failed
        assert len(failed) == 1
        assert failed[0].kind == FAILURE_EXCEPTION
        assert "raisy" in failed[0].display
        assert "injected workload failure" in failed[0].error
        with pytest.raises(KeyError):
            campaign.result(requests[-1])
        # Every healthy request still completed.
        for req in requests[:-1]:
            assert campaign[req].runtime_cycles > 0

    def test_retry_completes_after_one_shot_exception(self, tmp_path, isolated_stores):
        requests = self._grid(misbehaving_spec("raise", tmp_path / "armed.flag", "raisy"))
        campaign = run_campaign(requests, jobs=2, retries=1)
        assert campaign.ok
        assert campaign.stats.retries == 1
        assert len(campaign.ledger) == 1
        assert not campaign.ledger[0].final
        assert campaign[requests[-1]].runtime_cycles > 0

    def test_worker_crash_is_isolated_and_retried(self, tmp_path, isolated_stores):
        requests = self._grid(misbehaving_spec("crash", tmp_path / "crashed.flag", "crashy"))
        campaign = run_campaign(requests, jobs=2, retries=1)
        assert campaign.ok, [rec.describe() for rec in campaign.ledger]
        kinds = [rec.kind for rec in campaign.ledger]
        assert kinds == [FAILURE_CRASH]
        assert "crashy" in campaign.ledger[0].display
        assert campaign.stats.respawns >= 1
        assert campaign[requests[-1]].runtime_cycles > 0
        for req in requests[:-1]:
            assert campaign[req].runtime_cycles > 0

    def test_hung_worker_killed_on_timeout(self, tmp_path, isolated_stores):
        requests = self._grid(misbehaving_spec("hang", tmp_path / "hung.flag", "hangy"))
        campaign = run_campaign(requests, jobs=2, retries=0, timeout=2.0)
        failed = campaign.failed
        assert len(failed) == 1
        assert failed[0].kind == FAILURE_TIMEOUT
        assert "hangy" in failed[0].display
        assert campaign.stats.respawns >= 1
        for req in requests[:-1]:
            assert campaign[req].runtime_cycles > 0

    def test_serial_campaign_honours_retries_and_ledger(self, tmp_path, isolated_stores):
        # jobs=1 runs in-process, so worker-name gating doesn't apply.
        # The parent builds once while fingerprinting (call 1); the first
        # execution attempt is call 2, and it fails.
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 2:
                raise ValueError("first attempt fails")
            return tiny_factory()

        bad = RunRequest(
            workload=WorkloadSpec.from_factory(flaky, label="flaky"),
            policy=PolicySpec("NoTier"),
            replay=False,
        )
        campaign = run_campaign([bad], jobs=1, retries=1)
        assert campaign.ok
        assert len(campaign.ledger) == 1
        assert campaign.ledger[0].kind == FAILURE_EXCEPTION
        assert "flaky" in campaign.ledger[0].display
