"""Baseline tiering systems: construction and characteristic behaviours."""

import numpy as np
import pytest

from repro.baselines import ALL_POLICIES, make_policy
from repro.baselines.alto import AltoPolicy
from repro.baselines.colloid import ColloidPolicy
from repro.baselines.memtis import MemtisPolicy
from repro.baselines.nbt import NbtPolicy
from repro.baselines.nomad import NomadPolicy
from repro.baselines.soar import SoarPolicy
from repro.baselines.tpp import TppPolicy
from repro.mem.page import Tier
from repro.sim.config import MachineConfig
from repro.sim.engine import clear_baseline_cache, ideal_baseline, run_policy
from repro.sim.machine import Machine

from conftest import TinyWorkload


@pytest.fixture(scope="module")
def tiny_results(config=None):
    """One run of every policy on the tiny workload at 1:1."""
    clear_baseline_cache()
    cfg = MachineConfig()
    results = {}
    base = ideal_baseline(TinyWorkload(), config=cfg)
    for name in ALL_POLICIES:
        results[name] = run_policy(TinyWorkload(), make_policy(name), ratio="1:1", config=cfg)
    return base, results


class TestRegistry:
    def test_all_policies_construct(self):
        for name in ALL_POLICIES:
            assert make_policy(name).name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy("FancyLRU")


class TestEveryPolicyRuns:
    def test_all_complete_and_report(self, tiny_results):
        base, results = tiny_results
        for name, result in results.items():
            assert result.runtime_cycles > 0, name
            assert result.windows > 0, name

    def test_tiering_beats_notier_for_top_systems(self, tiny_results):
        base, results = tiny_results
        notier = results["NoTier"].slowdown(base)
        for name in ("PACT", "Colloid", "Soar"):
            assert results[name].slowdown(base) < notier, name

    def test_memtis_has_no_signal_on_uniform_hotness(self, tiny_results):
        # Tiny's regions have identical access frequency: a hotness
        # histogram cannot separate them, so Memtis stays near NoTier.
        base, results = tiny_results
        assert results["Memtis"].slowdown(base) == pytest.approx(
            results["NoTier"].slowdown(base), abs=0.05
        )

    def test_pact_is_best_online_system(self, tiny_results):
        base, results = tiny_results
        pact = results["PACT"].slowdown(base)
        for name in ("Colloid", "Alto", "NBT", "TPP", "Memtis", "Nomad"):
            assert pact <= results[name].slowdown(base) * 1.05, name

    def test_tpp_migrates_orders_of_magnitude_more(self, tiny_results):
        _, results = tiny_results
        assert results["TPP"].promoted > 5 * max(results["PACT"].promoted, 1)

    def test_nomad_worst_tier(self, tiny_results):
        base, results = tiny_results
        assert results["Nomad"].slowdown(base) > results["NoTier"].slowdown(base)

    def test_notier_and_soar_never_migrate(self, tiny_results):
        _, results = tiny_results
        assert results["NoTier"].promoted == 0
        assert results["Soar"].promoted == 0


class TestTpp:
    def test_promotes_touched_slow_pages(self, config):
        machine = Machine(TinyWorkload(), TppPolicy(), config=config, ratio="1:1")
        machine.run(max_windows=3)
        assert machine.engine.total_promoted > 0

    def test_hint_fault_overhead_positive(self):
        policy = TppPolicy()
        class _Obs:
            touched_slow = np.arange(100)
            touched_fast = np.arange(50)
        assert policy.window_overhead_cycles(_Obs()) > 0


class TestNbt:
    def test_two_touch_filter(self, config):
        machine = Machine(TinyWorkload(), NbtPolicy(scan_fraction=1.0), config=config, ratio="1:1")
        machine.step()
        first_window = machine.engine.total_promoted
        machine.step()
        # Nothing can be promoted in window 0 (no prior fault history).
        assert first_window == 0
        assert machine.engine.total_promoted > 0


class TestColloidAlto:
    def test_colloid_promotes_under_latency_imbalance(self, config):
        machine = Machine(TinyWorkload(), ColloidPolicy(), config=config, ratio="1:1")
        machine.run(max_windows=10)
        assert machine.engine.total_promoted > 0

    def test_alto_throttles_promotions_under_high_mlp(self, config):
        # A stream-only workload (very high MLP) should see Alto promote
        # far less than Colloid.
        stream = TinyWorkload(chase_mlp=16.0, stream_mlp=16.0)
        colloid = Machine(TinyWorkload(chase_mlp=16.0, stream_mlp=16.0),
                          ColloidPolicy(), config=config, ratio="1:1").run()
        alto = Machine(stream, AltoPolicy(), config=config, ratio="1:1").run()
        assert alto.promoted < colloid.promoted


class TestMemtis:
    def test_thp_mode_decides_per_huge_page(self):
        cfg = MachineConfig(thp=True)
        workload = TinyWorkload(footprint_pages=2048)
        machine = Machine(workload, MemtisPolicy(), config=cfg, ratio="1:1")
        machine.run(max_windows=10)
        fast = machine.memory.pages_in_tier(Tier.FAST)
        # Placement moves in 512-page units: each huge page is either
        # fully fast or fully slow (footprint is huge-page aligned).
        huge = fast >> 9
        counts = np.bincount(huge, minlength=4)
        assert all(c in (0, 512) for c in counts)

    def test_budget_limits_per_window_migration(self, config):
        workload = TinyWorkload()
        machine = Machine(
            workload, MemtisPolicy(budget_fraction=0.01), config=config, ratio="1:1", trace=True
        )
        result = machine.run(max_windows=10)
        budget = int(machine.memory.capacity[Tier.FAST] * 0.01) + 1
        for rec in result.trace:
            assert rec.promoted <= budget


class TestNomad:
    def test_costlier_migration(self):
        assert NomadPolicy.migration_cost_multiplier > 1.0

    def test_reserves_fast_capacity(self, config):
        workload = TinyWorkload()
        machine = Machine(workload, NomadPolicy(), config=config, ratio="1:1")
        plain = Machine(TinyWorkload(), TppPolicy(), config=config, ratio="1:1")
        assert (
            machine.memory.capacity[Tier.FAST] < plain.memory.capacity[Tier.FAST]
        )


class TestSoar:
    def test_offline_profile_scores_objects(self, config):
        workload = TinyWorkload()
        policy = SoarPolicy(profile_windows=10)
        Machine(workload, policy, config=config, ratio="1:1")
        profile = policy._profile
        assert profile is not None
        # The chase region must profile as more critical per page.
        assert profile["chase"] > profile["stream"]

    def test_placement_plan_honours_profile(self, config):
        workload = TinyWorkload()
        policy = SoarPolicy(profile={"chase": 100.0, "stream": 1.0})
        machine = Machine(workload, policy, config=config, ratio="1:1")
        half = workload.footprint_pages // 2
        assert (machine.memory.placement[:half] == int(Tier.FAST)).all()

    def test_oversized_object_split_head_first(self, config):
        workload = TinyWorkload()
        policy = SoarPolicy(profile={"chase": 100.0, "stream": 1.0})
        machine = Machine(workload, policy, config=config, ratio="1:3")
        # Fast tier (25%) cannot hold the chase object (50%): its head
        # is placed, the tail spills.
        fast = machine.memory.pages_in_tier(Tier.FAST)
        assert fast.max() < workload.footprint_pages // 2

    def test_measured_run_starts_fresh_after_profiling(self, config):
        workload = TinyWorkload()
        policy = SoarPolicy(profile_windows=5)
        machine = Machine(workload, policy, config=config, ratio="1:1")
        assert not workload.done
        result = machine.run()
        assert workload.done
        assert result.windows == workload.total_misses // workload.misses_per_window
