"""Reservoir sampling: capacity, uniformity, quartile estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.reservoir import Reservoir


def test_fills_to_capacity_then_stays_bounded(rng):
    r = Reservoir(capacity=10, rng=rng)
    for i in range(100):
        r.offer(float(i))
    assert len(r) == 10
    assert r.seen == 100


def test_first_k_enter_directly(rng):
    r = Reservoir(capacity=5, rng=rng)
    for i in range(5):
        assert r.offer(float(i))
    assert sorted(r.values()) == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_invalid_capacity():
    with pytest.raises(ValueError):
        Reservoir(capacity=0)


def test_clear_resets(rng):
    r = Reservoir(capacity=4, rng=rng)
    r.offer_many([1.0, 2.0, 3.0])
    r.clear()
    assert len(r) == 0
    assert r.seen == 0


def test_quartiles_of_empty():
    assert Reservoir(capacity=4).quartiles() == (0.0, 0.0)


def test_uniform_sampling_statistics():
    """Each stream element should appear in the final sample with
    probability ~k/n (Vitter's invariant)."""
    n, k, trials = 400, 20, 600
    first_half_hits = 0
    for t in range(trials):
        r = Reservoir(capacity=k, rng=np.random.default_rng(t))
        r.offer_many(float(i) for i in range(n))
        first_half_hits += int((r.values() < n / 2).sum())
    mean_first_half = first_half_hits / trials
    # Expected k/2 elements from the first half; allow generous slack.
    assert mean_first_half == pytest.approx(k / 2, abs=1.0)


def test_quartiles_approximate_stream_quartiles():
    rng = np.random.default_rng(5)
    r = Reservoir(capacity=100, rng=rng)
    data = rng.exponential(scale=10.0, size=20_000)
    r.offer_many(data)
    q1, q3 = r.quartiles()
    tq1, tq3 = np.percentile(data, [25, 75])
    assert q1 == pytest.approx(tq1, rel=0.5)
    assert q3 == pytest.approx(tq3, rel=0.5)


@settings(max_examples=25)
@given(st.integers(1, 40), st.lists(st.floats(0, 1e6), max_size=200))
def test_size_never_exceeds_capacity(capacity, values):
    r = Reservoir(capacity=capacity, rng=np.random.default_rng(0))
    r.offer_many(values)
    assert len(r) == min(capacity, len(values))
    assert r.seen == len(values)


class TestBatchLoopEquivalence:
    """``offer_many`` must be bit-identical to looping ``offer``.

    The vectorised batch path replaced a per-value loop on the hot path
    (AdaptiveBinner.observe); identical buffer contents, stream counter,
    AND post-call RNG state guarantee every downstream draw -- and thus
    every simulated result -- is unchanged.
    """

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.integers(1, 50),
        st.lists(
            st.lists(st.floats(0, 1e9, allow_nan=False), max_size=80), max_size=5
        ),
    )
    def test_batches_match_loop_exactly(self, seed, capacity, batches):
        looped = Reservoir(capacity=capacity, rng=np.random.default_rng(seed))
        batched = Reservoir(capacity=capacity, rng=np.random.default_rng(seed))
        for batch in batches:
            for value in batch:
                looped.offer(value)
            batched.offer_many(batch)
        assert looped.seen == batched.seen
        assert np.array_equal(looped.values(), batched.values())
        # The generators consumed identical streams: their next draws agree.
        assert looped._rng.integers(0, 1 << 62) == batched._rng.integers(0, 1 << 62)

    def test_ndarray_and_iterable_inputs_agree(self):
        a = Reservoir(capacity=8, rng=np.random.default_rng(3))
        b = Reservoir(capacity=8, rng=np.random.default_rng(3))
        data = np.linspace(0.0, 99.0, 100)
        a.offer_many(data)
        b.offer_many(float(v) for v in data)
        assert np.array_equal(a.values(), b.values())
        assert a.seen == b.seen
