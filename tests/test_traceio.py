"""Trace export: JSON round-trips and CSV structure."""

import csv

import pytest

from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.policy_api import NoTierPolicy
from repro.sim.traceio import read_json, result_to_dict, write_json, write_trace_csv

from conftest import TinyWorkload


@pytest.fixture(scope="module")
def traced_result():
    machine = Machine(TinyWorkload(), NoTierPolicy(), config=MachineConfig(), trace=True)
    return machine.run(max_windows=6)


class TestJson:
    def test_dict_fields(self, traced_result):
        payload = result_to_dict(traced_result)
        assert payload["workload"] == "tiny"
        assert payload["policy"] == "NoTier"
        assert payload["windows"] == 6
        assert len(payload["trace"]) == 6
        assert payload["tier_misses"].keys() == {"fast", "slow"}

    def test_trace_optional(self, traced_result):
        payload = result_to_dict(traced_result, include_trace=False)
        assert "trace" not in payload

    def test_round_trip(self, traced_result, tmp_path):
        path = write_json(traced_result, tmp_path / "run.json")
        loaded = read_json(path)
        assert loaded["runtime_cycles"] == pytest.approx(traced_result.runtime_cycles)
        assert loaded["trace"][0]["window"] == 0

    def test_creates_parent_dirs(self, traced_result, tmp_path):
        path = write_json(traced_result, tmp_path / "a" / "b" / "run.json")
        assert path.exists()


class TestCsv:
    def test_structure(self, traced_result, tmp_path):
        path = write_trace_csv(traced_result, tmp_path / "trace.csv")
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0][0] == "window"
        assert len(rows) == 7  # header + 6 windows
        assert float(rows[1][1]) > 0  # duration_cycles

    def test_requires_trace(self, tmp_path):
        machine = Machine(TinyWorkload(), NoTierPolicy(), config=MachineConfig())
        result = machine.run(max_windows=2)
        with pytest.raises(ValueError):
            write_trace_csv(result, tmp_path / "x.csv")
