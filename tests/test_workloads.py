"""Workload generators: determinism, work accounting, structure."""

import numpy as np
import pytest

from repro.mem.page import Tier
from repro.workloads import (
    ALL_WORKLOADS,
    EVAL_WORKLOADS,
    ColocatedWorkload,
    Gups,
    Masim,
    MlcContender,
    Silo,
    generate_corpus,
    make_workload,
    spread_counts,
    zipf_weights,
)
from repro.workloads.graph import GraphWorkload


class TestHelpers:
    def test_spread_counts_conserves_total(self, rng):
        counts = spread_counts(rng, 100, 5000)
        assert counts.sum() == 5000
        assert counts.size == 100

    def test_spread_counts_weighted(self, rng):
        weights = np.array([1.0, 0.0, 3.0])
        counts = spread_counts(rng, 3, 40_000, weights)
        assert counts[1] == 0
        assert counts[2] > counts[0]

    def test_spread_counts_zero_misses(self, rng):
        assert spread_counts(rng, 4, 0).sum() == 0

    def test_spread_counts_rejects_bad_weights(self, rng):
        with pytest.raises(ValueError):
            spread_counts(rng, 2, 10, np.zeros(2))

    def test_zipf_weights_monotone_unshuffled(self):
        w = zipf_weights(10, 1.0)
        assert (np.diff(w) < 0).all()

    def test_zipf_weights_shuffle(self, rng):
        w = zipf_weights(100, 1.0, rng)
        assert not (np.diff(w) < 0).all()


class TestRegistry:
    def test_all_names_construct(self):
        for name in ALL_WORKLOADS:
            w = make_workload(name)
            assert w.footprint_pages > 0
            assert w.total_misses > 0
            assert w.objects, name

    def test_eval_suite_has_twelve(self):
        assert len(EVAL_WORKLOADS) == 12
        assert len(ALL_WORKLOADS) == 13

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_workload("doom3")

    def test_kwargs_forwarded(self):
        w = make_workload("gups", total_misses=123_456)
        assert w.total_misses == 123_456


class TestWorkloadContract:
    """Every workload must satisfy the generator contract."""

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_window_emission(self, name):
        w = make_workload(name, total_misses=2_000_000)
        w.reset()
        traffic = w.next_window()
        assert traffic.groups
        emitted = traffic.total_misses()
        assert emitted == pytest.approx(w.misses_per_window, rel=0.05)
        for group in traffic.groups:
            assert group.mlp >= 1.0
            assert (group.pages >= 0).all()
            assert (group.pages < w.footprint_pages).all()
            assert (group.counts > 0).all()

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_work_runs_to_completion(self, name):
        w = make_workload(name, total_misses=1_000_000, misses_per_window=250_000)
        w.reset()
        windows = 0
        while not w.done and windows < 100:
            w.next_window()
            windows += 1
        assert w.done
        assert w.progress == 1.0

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_reset_gives_identical_stream(self, name):
        w = make_workload(name, total_misses=1_000_000)
        w.reset()
        first = w.next_window()
        w.reset()
        second = w.next_window()
        assert len(first.groups) == len(second.groups)
        for a, b in zip(first.groups, second.groups):
            assert np.array_equal(a.pages, b.pages)
            assert np.array_equal(a.counts, b.counts)
            assert a.mlp == b.mlp

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_allocation_order_is_permutation(self, name):
        w = make_workload(name)
        order = w.allocation_order()
        assert order.size == w.footprint_pages
        assert np.unique(order).size == w.footprint_pages


class TestMasim:
    def test_patterns(self):
        assert len(Masim(pattern="mixed").objects) == 2
        assert len(Masim(pattern="sequential").objects) == 1
        with pytest.raises(ValueError):
            Masim(pattern="diagonal")

    def test_mixed_emits_both_patterns(self, rng):
        w = Masim(pattern="mixed")
        w.reset()
        labels = {g.label for g in w.next_window().groups}
        assert labels == {"seq", "chase"}

    def test_sequential_mlp_exceeds_random(self):
        seq = Masim(pattern="sequential")
        seq.reset()
        rnd = Masim(pattern="random")
        rnd.reset()
        assert seq.next_window().groups[0].mlp > rnd.next_window().groups[0].mlp


class TestGups:
    def test_phases_alternate(self):
        w = Gups(phase_windows=2, total_misses=10**7)
        w.reset()
        phases = []
        for _ in range(6):
            w.next_window()
            phases.append(w.phase_name())
        assert "sequential" in phases and "random" in phases

    def test_half_loads(self):
        w = Gups()
        w.reset()
        assert w.next_window().groups[0].load_fraction == 0.5


class TestGraph:
    def test_kernel_and_graph_validation(self):
        with pytest.raises(ValueError):
            GraphWorkload("pagerank", "kron")
        with pytest.raises(ValueError):
            GraphWorkload("bc", "roadnet")

    def test_kron_has_pooled_csr_object(self):
        w = make_workload("bc-kron")
        assert any(o.name == "csr_pool" for o in w.objects)

    def test_urand_keeps_separate_objects(self):
        w = make_workload("bc-urand")
        names = {o.name for o in w.objects}
        assert "vertices" in names and "edges" in names

    def test_frontier_narrows_for_sssp(self):
        w = make_workload("sssp-kron", total_misses=5_000_000)
        w.reset()
        assert w._frontier_fraction() > 0.4
        w._consumed = int(w.total_misses * 0.95)
        assert w._frontier_fraction() < 0.2

    def test_sub_phases_change_mix(self):
        w = make_workload("bc-kron", total_misses=10**8)
        w.reset()
        chase_fracs = []
        for _ in range(10):
            traffic = w.next_window()
            chase = sum(g.total_misses for g in traffic.groups if g.label == "vertex-chase")
            chase_fracs.append(chase / traffic.total_misses())
        assert max(chase_fracs) > 2 * min(chase_fracs)


class TestSilo:
    def test_scan_windows_interleave(self):
        w = Silo(total_misses=10**7)
        w.reset()
        phases = []
        for _ in range(8):
            w.next_window()
            phases.append(w.phase_name())
        assert "scan" in phases and "txn" in phases

    def test_log_is_store_dominated(self):
        w = Silo()
        w.reset()
        log_groups = [g for g in w.next_window().groups if g.label == "log"]
        assert log_groups and log_groups[0].load_fraction < 0.5


class TestMlc:
    def test_bytes_scale_with_threads_and_duration(self):
        one = MlcContender(threads=1)
        eight = MlcContender(threads=8)
        d = 2.2e7  # 10 ms
        assert eight.bytes_for_duration(d) == pytest.approx(8 * one.bytes_for_duration(d))
        # 1 thread x 8 GB/s over 10 ms ~ 80 MB.
        assert one.bytes_for_duration(d) == pytest.approx(8 * 1024**3 * 0.01, rel=0.01)

    def test_zero_threads_inject_nothing(self):
        assert MlcContender(threads=0).extra_bytes(1e7) == {}

    def test_extra_bytes_target_tier(self):
        extra = MlcContender(threads=2, tier=Tier.FAST).extra_bytes(1e7)
        assert set(extra) == {Tier.FAST}


class TestColocation:
    def test_merges_address_spaces(self):
        a = Masim(pattern="sequential", footprint_pages=1000, total_misses=10**6)
        b = Masim(pattern="random", footprint_pages=500, total_misses=10**6)
        colo = ColocatedWorkload([a, b])
        assert colo.footprint_pages == 1500
        assert colo.member_pages(1).min() == 1000

    def test_traffic_offsets_into_member_ranges(self):
        a = Masim(pattern="sequential", footprint_pages=1000, total_misses=10**6)
        b = Masim(pattern="random", footprint_pages=500, total_misses=10**6)
        colo = ColocatedWorkload([a, b])
        colo.reset()
        traffic = colo.next_window()
        member_b_pages = np.concatenate(
            [g.pages for g in traffic.groups if g.label.startswith("masim-random")]
        )
        assert member_b_pages.min() >= 1000
        assert member_b_pages.max() < 1500

    def test_member_finish_windows_recorded(self):
        a = Masim(pattern="sequential", footprint_pages=500, total_misses=400_000,
                  misses_per_window=200_000)
        b = Masim(pattern="random", footprint_pages=500, total_misses=800_000,
                  misses_per_window=200_000)
        colo = ColocatedWorkload([a, b])
        colo.reset()
        while not colo.done:
            colo.next_window()
        assert colo.member_finish_window[0] < colo.member_finish_window[1]

    def test_requires_members(self):
        with pytest.raises(ValueError):
            ColocatedWorkload([])


class TestCorpus:
    def test_ninety_six_workloads(self):
        corpus = generate_corpus()
        assert len(corpus) == 96
        names = {w.name for w in corpus}
        assert len(names) == 96

    def test_spans_mlp_grid(self):
        corpus = generate_corpus()
        mlps = {w.mlp for w in corpus}
        assert min(mlps) == 1.5 and max(mlps) == 16.0

    def test_deterministic_seeds(self):
        a = generate_corpus()[5]
        b = generate_corpus()[5]
        a.reset()
        b.reset()
        ga = a.next_window().groups[0]
        gb = b.next_window().groups[0]
        assert np.array_equal(ga.counts, gb.counts)
