"""CHA/TOR counters, PEBS sampler, and the perf registry."""

import numpy as np
import pytest

from repro.common.units import CXL_SPEC, DRAM_SPEC
from repro.hw.cha import ChaTorCounters, littles_law_mlp
from repro.hw.pebs import PebsBatch, PebsSampler
from repro.hw.perf import PerfCounters
from repro.hw.stall import GroupTierShare, StallModel
from repro.mem.page import Tier


def solved_shares(mlp=4.0, misses=40_000, tier=Tier.SLOW, load_fraction=1.0):
    pages = np.arange(64)
    counts = np.full(64, misses // 64, dtype=np.int64)
    share = GroupTierShare(
        group_index=0, tier=tier, pages=pages, counts=counts, mlp=mlp,
        load_fraction=load_fraction,
    )
    model = StallModel(DRAM_SPEC, CXL_SPEC)
    return model.solve([share], compute_cycles=1e6).shares


class TestTorCounters:
    def test_mlp_recovered_from_deltas(self):
        cha = ChaTorCounters(noise=0.0)
        before = cha.read()
        cha.advance(solved_shares(mlp=6.0))
        after = cha.read()
        assert after.mlp_since(before, Tier.SLOW) == pytest.approx(6.0, rel=0.01)

    def test_mlp_with_noise_close(self):
        cha = ChaTorCounters(noise=0.02, rng=np.random.default_rng(1))
        before = cha.read()
        cha.advance(solved_shares(mlp=4.0))
        after = cha.read()
        assert after.mlp_since(before, Tier.SLOW) == pytest.approx(4.0, rel=0.15)

    def test_counters_are_cumulative(self):
        cha = ChaTorCounters(noise=0.0)
        cha.advance(solved_shares())
        mid = cha.read()
        cha.advance(solved_shares())
        end = cha.read()
        assert end.occupancy[Tier.SLOW] > mid.occupancy[Tier.SLOW]

    def test_idle_tier_reports_unit_mlp(self):
        cha = ChaTorCounters(noise=0.0)
        before = cha.read()
        cha.advance(solved_shares(tier=Tier.SLOW))
        after = cha.read()
        assert after.mlp_since(before, Tier.FAST) == 1.0

    def test_mlp_floor_is_one(self):
        cha = ChaTorCounters(noise=0.0)
        snap = cha.read()
        assert snap.mlp_since(snap, Tier.SLOW) == 1.0


class TestLittlesLaw:
    def test_matches_formula(self):
        # 64 bytes/ns over 100ns latency -> 100 lines in flight.
        assert littles_law_mlp(64.0 * 1000, 100.0, 1000.0) == pytest.approx(100.0)

    def test_floor(self):
        assert littles_law_mlp(0.0, 100.0, 1000.0) == 1.0
        assert littles_law_mlp(100.0, 100.0, 0.0) == 1.0

    def test_overestimates_with_prefetch_bytes(self):
        demand = littles_law_mlp(1e6, 190.0, 1e5)
        with_prefetch = littles_law_mlp(1.5e6, 190.0, 1e5)
        assert with_prefetch > demand


class TestPebs:
    def test_sampling_rate_statistics(self):
        sampler = PebsSampler(rate=100, rng=np.random.default_rng(0))
        batch = sampler.sample(solved_shares(misses=640_000))
        # ~1% of events sampled.
        assert batch.total_records == pytest.approx(6400, rel=0.1)
        assert batch.estimated_accesses().sum() == pytest.approx(640_000, rel=0.1)

    def test_only_requested_tiers_sampled(self):
        sampler = PebsSampler(rate=10, rng=np.random.default_rng(0))
        shares = solved_shares(tier=Tier.FAST)
        batch = sampler.sample(shares, tiers=(Tier.SLOW,))
        assert batch.total_records == 0
        both = sampler.sample(shares, tiers=(Tier.SLOW, Tier.FAST))
        assert both.total_records > 0

    def test_loads_only_thins_write_traffic(self):
        rng = np.random.default_rng(0)
        all_loads = PebsSampler(rate=10, rng=np.random.default_rng(0)).sample(
            solved_shares(load_fraction=1.0)
        )
        half_loads = PebsSampler(rate=10, rng=rng).sample(
            solved_shares(load_fraction=0.5)
        )
        assert half_loads.total_records < all_loads.total_records * 0.7

    def test_overhead_scales_with_records(self):
        sampler = PebsSampler(rate=10, cycles_per_record=100.0, rng=np.random.default_rng(0))
        batch = sampler.sample(solved_shares())
        assert batch.overhead_cycles == batch.total_records * 100.0

    def test_empty_batch(self):
        batch = PebsBatch.empty(rate=400)
        assert batch.total_records == 0
        assert batch.rate == 400

    def test_latency_reporting(self):
        sampler = PebsSampler(rate=5, rng=np.random.default_rng(0), report_latency=True)
        shares = solved_shares(mlp=4.0)
        batch = sampler.sample(shares)
        assert batch.latencies is not None
        # Exposed latency = effective latency / MLP = unit stall cost.
        assert batch.latencies[0] == pytest.approx(shares[0].unit_stall_cycles, rel=1e-6)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PebsSampler(rate=0)

    def test_merges_duplicate_pages_across_groups(self):
        model = StallModel(DRAM_SPEC, CXL_SPEC)
        pages = np.arange(8)
        shares = [
            GroupTierShare(0, Tier.SLOW, pages, np.full(8, 5000, dtype=np.int64), 2.0),
            GroupTierShare(1, Tier.SLOW, pages, np.full(8, 5000, dtype=np.int64), 8.0),
        ]
        solved = model.solve(shares, 1e6).shares
        batch = PebsSampler(rate=10, rng=np.random.default_rng(0)).sample(solved)
        assert np.unique(batch.pages).size == batch.pages.size


class TestPerfCounters:
    def test_deltas(self):
        model = StallModel(DRAM_SPEC, CXL_SPEC)
        perf = PerfCounters(noise=0.0)
        shares = solved_shares()
        out = model.solve(shares, compute_cycles=1e6)
        before = perf.read()
        perf.advance(out)
        delta = perf.read().delta(before)
        assert delta.llc_misses[Tier.SLOW] == pytest.approx(
            out.tier_loads[Tier.SLOW].misses, rel=1e-6
        )
        assert delta.stall_cycles[Tier.SLOW] == pytest.approx(
            out.tier_loads[Tier.SLOW].stall_cycles, rel=1e-6
        )
        assert delta.cycles == pytest.approx(out.duration_cycles)

    def test_totals(self):
        model = StallModel(DRAM_SPEC, CXL_SPEC)
        perf = PerfCounters(noise=0.0)
        out = model.solve(solved_shares(), compute_cycles=1e6)
        before = perf.read()
        perf.advance(out)
        delta = perf.read().delta(before)
        assert delta.total_llc_misses == pytest.approx(sum(delta.llc_misses.values()))
        assert delta.total_stall_cycles == pytest.approx(sum(delta.stall_cycles.values()))

    def test_noise_is_small_multiplicative(self):
        model = StallModel(DRAM_SPEC, CXL_SPEC)
        perf = PerfCounters(noise=0.01, rng=np.random.default_rng(0))
        out = model.solve(solved_shares(misses=1_000_000), compute_cycles=1e6)
        before = perf.read()
        perf.advance(out)
        delta = perf.read().delta(before)
        truth = out.tier_loads[Tier.SLOW].misses
        assert delta.llc_misses[Tier.SLOW] == pytest.approx(truth, rel=0.05)
        assert delta.llc_misses[Tier.SLOW] != truth


def _legacy_pebs_sample(rng, shares, tiers, rate, cycles_per_record, loads_only, report_latency):
    """The pre-vectorisation per-share loop, kept verbatim as the oracle."""
    all_pages = []
    all_records = []
    all_latency = []
    for share in shares:
        if share.tier not in tiers:
            continue
        counts = share.counts
        if loads_only:
            counts = rng.binomial(counts, share.load_fraction)
        records = rng.binomial(counts, 1.0 / rate)
        hit = records > 0
        if hit.any():
            all_pages.append(share.pages[hit])
            all_records.append(records[hit])
            if report_latency:
                all_latency.append(np.full(int(hit.sum()), share.unit_stall_cycles))
    if not all_pages:
        return PebsBatch.empty(rate)
    pages = np.concatenate(all_pages)
    records = np.concatenate(all_records)
    uniq, inverse = np.unique(pages, return_inverse=True)
    merged = np.zeros(uniq.size, dtype=np.int64)
    np.add.at(merged, inverse, records)
    latencies = None
    if report_latency:
        lat = np.concatenate(all_latency)
        weighted = np.zeros(uniq.size, dtype=float)
        np.add.at(weighted, inverse, lat * records)
        latencies = weighted / np.maximum(merged, 1)
    total = int(merged.sum())
    return PebsBatch(
        pages=uniq, counts=merged, rate=rate,
        overhead_cycles=total * cycles_per_record, latencies=latencies,
    )


class TestPebsVectorisedEquivalence:
    """The batched merge must replay the legacy loop's exact draws.

    The binomial draws stay sequenced per share (the record draw thins
    the load draw's output), so with equal seeds the two implementations
    must consume the same RNG stream and emit identical batches --
    pages, counts, latencies, overhead, and post-call generator state.
    """

    def _random_shares(self, rng, n_shares, footprint=4096):
        shares = []
        for i in range(n_shares):
            size = int(rng.integers(1, 200))
            pages = rng.choice(footprint, size=size, replace=False)
            counts = rng.integers(0, 2000, size=size)
            shares.append(
                GroupTierShare(
                    group_index=i,
                    tier=Tier.SLOW if rng.random() < 0.7 else Tier.FAST,
                    pages=np.sort(pages),
                    counts=counts,
                    mlp=4.0,
                    load_fraction=float(rng.uniform(0.1, 1.0)),
                    unit_stall_cycles=float(rng.uniform(50.0, 400.0)),
                )
            )
        return shares

    @pytest.mark.parametrize("report_latency", [False, True])
    @pytest.mark.parametrize("loads_only", [False, True])
    def test_distribution_identical_to_loop(self, report_latency, loads_only):
        meta_rng = np.random.default_rng(99)
        for trial in range(20):
            shares = self._random_shares(meta_rng, n_shares=int(meta_rng.integers(0, 6)))
            tiers = (Tier.SLOW,) if trial % 2 == 0 else (Tier.SLOW, Tier.FAST)
            sampler = PebsSampler(
                rate=7,
                rng=np.random.default_rng(trial),
                loads_only=loads_only,
                report_latency=report_latency,
            )
            got = sampler.sample(shares, tiers=tiers)
            oracle_rng = np.random.default_rng(trial)
            want = _legacy_pebs_sample(
                oracle_rng, shares, tiers, rate=7,
                cycles_per_record=sampler.cycles_per_record,
                loads_only=loads_only, report_latency=report_latency,
            )
            assert np.array_equal(got.pages, want.pages)
            assert np.array_equal(got.counts, want.counts)
            assert got.counts.dtype == np.int64
            assert got.overhead_cycles == want.overhead_cycles
            if report_latency and want.latencies is not None:
                assert np.array_equal(got.latencies, want.latencies)
            else:
                assert got.latencies is None and want.latencies is None
            assert np.array_equal(got.estimated_accesses(), want.estimated_accesses())
            # Same stream position afterwards: the next draws agree.
            assert sampler._rng.integers(0, 1 << 62) == oracle_rng.integers(0, 1 << 62)

    def test_all_zero_counts_yield_empty_batch(self):
        share = GroupTierShare(
            group_index=0, tier=Tier.SLOW, pages=np.arange(10),
            counts=np.zeros(10, dtype=np.int64), mlp=1.0,
        )
        batch = PebsSampler(rate=4, rng=np.random.default_rng(0)).sample([share])
        assert batch.pages.size == 0
        assert batch.overhead_cycles == 0.0
