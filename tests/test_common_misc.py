"""EWMA, RNG derivation, and table formatting."""

import numpy as np
import pytest

from repro.common.ewma import Ewma
from repro.common.rngutil import child_seeds, make_rng, split
from repro.common.tables import format_count, format_pct, format_series, format_table


class TestEwma:
    def test_first_sample_primes(self):
        e = Ewma(alpha=0.5)
        assert not e.primed
        assert e.update(10.0) == 10.0
        assert e.primed

    def test_smoothing(self):
        e = Ewma(alpha=0.5)
        e.update(0.0)
        assert e.update(10.0) == pytest.approx(5.0)
        assert e.update(10.0) == pytest.approx(7.5)

    def test_alpha_one_tracks_exactly(self):
        e = Ewma(alpha=1.0)
        e.update(3.0)
        assert e.update(9.0) == 9.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)
        with pytest.raises(ValueError):
            Ewma(alpha=1.5)

    def test_reset(self):
        e = Ewma(alpha=0.3)
        e.update(5.0)
        e.reset()
        assert not e.primed
        assert e.value == 0.0


class TestRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7).random(5)
        b = make_rng(7).random(5)
        assert np.array_equal(a, b)

    def test_split_streams_are_independent_and_stable(self):
        (p1,) = split(11, "pebs")
        (p2,) = split(11, "pebs")
        assert np.array_equal(p1.random(4), p2.random(4))
        (q,) = split(11, "cha")
        assert not np.array_equal(p1.random(4), q.random(4))

    def test_split_unaffected_by_extra_labels(self):
        a, _ = split(3, "x", "y")
        (b,) = split(3, "x")
        assert np.array_equal(a.random(3), b.random(3))

    def test_child_seeds_distinct(self):
        seeds = list(child_seeds(1, 20))
        assert len(set(seeds)) == 20


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["long-cell", 3]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.500" in lines[2]

    def test_format_count_paper_style(self):
        assert format_count(550_000) == "550K"
        assert format_count(1_200_000) == "1.2M"
        assert format_count(42) == "42"
        assert format_count(3_000_000_000) == "3.0B"

    def test_format_pct_signed(self):
        assert format_pct(0.105) == "+10.5%"
        assert format_pct(-0.02) == "-2.0%"

    def test_format_series(self):
        out = format_series("promotions", [1, 2], [10.0, 20.0], unit="pages")
        assert "promotions" in out
        assert out.count("\n") == 2
