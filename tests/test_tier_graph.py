"""Tier-graph tests: N-part ratios, topologies, compression, multi-hop.

Covers the tier-graph core along four axes:

* ``parse_ratio`` N-part parsing with exact two-part back-compat,
* topology construction, default-pair normalisation, and cache-key
  fingerprints (topology enters the key only when non-default),
* N-tier ``TieredMemory`` + multi-hop migration conservation properties,
* end-to-end equivalence: a three-tier hierarchy with an empty middle
  tier reproduces the two-tier golden digests bit for bit.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.baselines import make_policy
from repro.common.units import CXL_SPEC, DRAM_SPEC, NUMA_SPEC, NVME_SPEC
from repro.exp.cache import canonical, content_hash, result_to_dict
from repro.exp.spec import PolicySpec, RunRequest, WorkloadSpec
from repro.mem.page import Tier, tier_from_label, tier_key, tier_label
from repro.mem.tiered import TieredMemory
from repro.mem.topology import (
    CompressionSpec,
    TierDef,
    TierTopology,
    default_topology,
    make_topology,
)
from repro.sim.config import MachineConfig, parse_ratio, parse_ratio_parts
from repro.sim.engine import run_policy
from repro.sim.migration import MigrationEngine
from repro.workloads import make_workload

from test_golden_digests import GOLDEN_DIGESTS


# -- ratio parsing ----------------------------------------------------------------


class TestParseRatio:
    def test_two_part_exact_values(self):
        assert parse_ratio("1:4") == 1.0 / 5.0
        assert parse_ratio("1:1") == 0.5
        assert parse_ratio("8:1") == 8.0 / 9.0

    def test_n_part_values(self):
        assert parse_ratio_parts("1:4:16") == [1.0 / 21.0, 4.0 / 21.0, 16.0 / 21.0]
        assert parse_ratio("1:4:16") == 1.0 / 21.0

    def test_zero_middle_part_matches_two_part_exactly(self):
        # "1:0:4" must yield the *bit-identical* tier-0 fraction as
        # "1:4" -- the empty-middle digest equivalence depends on it.
        assert parse_ratio("1:0:4") == parse_ratio("1:4")

    @pytest.mark.parametrize("bad", ["1-1", "1", "", "a:b", "1:", ":4", "nan:1", "inf:2"])
    def test_malformed_strings_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_ratio(bad)

    @pytest.mark.parametrize("bad", ["0:1", "1:0", "-1:4", "1:-4"])
    def test_two_part_requires_both_positive(self, bad):
        # The historical two-part contract: zeros were never allowed.
        with pytest.raises(ValueError, match="positive"):
            parse_ratio(bad)

    @pytest.mark.parametrize("bad", ["0:1:4", "1:4:0", "1:-1:4"])
    def test_n_part_endpoint_and_sign_rules(self, bad):
        with pytest.raises(ValueError, match="positive"):
            parse_ratio(bad)

    def test_n_part_allows_zero_middles(self):
        assert parse_ratio_parts("2:0:0:2") == [0.5, 0.0, 0.0, 0.5]


class TestTierCapacities:
    def test_two_tier_matches_legacy_helpers(self):
        config = MachineConfig()
        caps = config.tier_capacities(1000, "1:4")
        assert caps == [config.fast_capacity(1000, "1:4"), config.slow_capacity(1000)]

    def test_three_tier_split_and_bottom_slack(self):
        config = MachineConfig(topology=make_topology("dram-cxl-nvme"))
        caps = config.tier_capacities(1000, "1:4:16")
        assert len(caps) == 3
        assert caps[0] == int(np.ceil(1000 / 21.0))
        assert caps[1] == int(np.ceil(1000 * 4.0 / 21.0))
        assert caps[2] == config.slow_capacity(1000)

    def test_short_ratio_padded_with_last_part(self):
        config = MachineConfig(topology=make_topology("dram-cxl-nvme"))
        assert config.tier_capacities(1000, "1:4") == config.tier_capacities(1000, "1:4:4")

    def test_zero_middle_gives_empty_interior_tier(self):
        config = MachineConfig(topology=make_topology("dram-cxl-nvme"))
        caps = config.tier_capacities(1000, "1:0:4")
        assert caps[0] == config.fast_capacity(1000, "1:4")
        assert caps[1] == 0

    def test_too_many_parts_rejected(self):
        config = MachineConfig(topology=make_topology("dram-cxl-nvme"))
        with pytest.raises(ValueError, match="parts"):
            config.tier_capacities(1000, "1:2:3:4")


# -- tier keys and labels ---------------------------------------------------------


class TestTierKeys:
    def test_low_tiers_stay_enums(self):
        assert tier_key(0) is Tier.FAST
        assert tier_key(1) is Tier.SLOW
        assert tier_key(2) == 2 and not isinstance(tier_key(2), Tier)

    def test_labels_round_trip(self):
        for i in range(5):
            assert tier_from_label(tier_label(i)) == i
        assert tier_label(0) == "FAST" and tier_label(2) == "TIER2"
        with pytest.raises(ValueError):
            tier_from_label("bogus")


# -- topology construction --------------------------------------------------------


class TestTopology:
    def test_needs_at_least_two_tiers(self):
        with pytest.raises(ValueError):
            TierTopology(tiers=(TierDef(DRAM_SPEC),))

    def test_rejects_unknown_demotion_mode(self):
        with pytest.raises(ValueError):
            TierTopology(tiers=(TierDef(DRAM_SPEC), TierDef(CXL_SPEC)), demotion="sideways")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            make_topology("dram-tape")

    def test_compression_folds_latency_into_spec(self):
        tier = TierDef(CXL_SPEC, compression=CompressionSpec(latency_ns=40.0))
        spec = tier.effective_spec()
        assert spec.latency_ns == CXL_SPEC.latency_ns + 40.0
        assert spec.name.endswith("+z")

    def test_page_ratios_are_seeded_and_bounded(self):
        comp = CompressionSpec(ratio=2.0, spread=0.5, seed=7)
        a = comp.page_ratios(512)
        b = comp.page_ratios(512)
        np.testing.assert_array_equal(a, b)
        assert a.min() >= 1.0  # a "compressed" page never grows
        assert a.max() <= 2.0 * 1.5
        costs = comp.page_frame_costs(512)
        np.testing.assert_allclose(costs, 1.0 / a)

    def test_default_pair_normalises_to_none(self):
        config = MachineConfig(topology=default_topology())
        assert config.topology is None
        assert config.num_tiers == 2

    def test_non_default_topology_is_kept(self):
        config = MachineConfig(topology=make_topology("dram-cxlz-nvme"))
        assert config.topology is not None
        assert config.num_tiers == 3
        assert config.demotion_mode == "through"


# -- cache-key fingerprints -------------------------------------------------------


def _request_key(config: MachineConfig) -> str:
    request = RunRequest(
        kind="policy",
        workload=WorkloadSpec.registry("gups", total_misses=1_000_000),
        policy=PolicySpec(name="PACT"),
        ratio="1:4",
        seed=0,
        config=config,
    )
    return content_hash(request.fingerprint())


class TestFingerprints:
    def test_default_pair_topology_fingerprints_like_no_topology(self):
        # The key invariant behind keeping CACHE_VERSION at 2: spelling
        # out the default pair must not orphan existing cached results.
        assert _request_key(MachineConfig(topology=default_topology())) == _request_key(
            MachineConfig()
        )

    def test_canonical_omits_topology_only_when_none(self):
        assert "topology" not in canonical(MachineConfig())
        doc = canonical(MachineConfig(topology=make_topology("dram-cxlz-nvme")))
        assert "topology" in doc

    def test_non_default_topology_changes_the_key(self):
        base = _request_key(MachineConfig())
        assert _request_key(MachineConfig(topology=make_topology("dram-cxl-nvme"))) != base
        assert _request_key(MachineConfig(topology=make_topology("dram-cxlz-nvme"))) != base

    def test_demotion_mode_is_part_of_the_key(self):
        through = _request_key(MachineConfig(topology=make_topology("dram-cxl-nvme")))
        direct = _request_key(
            MachineConfig(topology=make_topology("dram-cxl-nvme", demotion="direct"))
        )
        assert through != direct


# -- N-tier memory + multi-hop migration ------------------------------------------


def _three_tier_memory(footprint=300, caps=(100, 100, 400)):
    return TieredMemory(
        footprint_pages=footprint,
        capacities=list(caps),
        specs=[DRAM_SPEC, CXL_SPEC, NVME_SPEC],
    )


def _used_total(memory):
    return sum(memory.used)


class TestNTierMemory:
    def test_first_touch_spills_down_in_tier_order(self):
        memory = _three_tier_memory()
        memory.allocate_first_touch(np.arange(300), prefer=Tier.FAST)
        assert memory.used == [100, 100, 100]
        place = memory.placement
        assert (place[:100] == 0).all() and (place[100:200] == 1).all()
        assert (place[200:] == 2).all()

    def test_move_with_explicit_source_conserves_pages(self):
        memory = _three_tier_memory()
        memory.allocate_first_touch(np.arange(300), prefer=Tier.FAST)
        moved = memory.move(np.arange(50), 2, src=0)
        assert moved.size == 50
        assert _used_total(memory) == 300
        assert memory.used == [50, 100, 150]

    def test_compressed_tier_admits_beyond_page_capacity(self):
        # Every page compresses 2x, so 50 frames hold 100 pages.
        costs = [None, np.full(200, 0.5), None]
        memory = TieredMemory(
            footprint_pages=200,
            capacities=[50, 50, 200],
            specs=[DRAM_SPEC, CXL_SPEC, NVME_SPEC],
            page_frame_costs=costs,
        )
        memory.allocate_first_touch(np.arange(200), prefer=Tier.FAST)
        assert memory.used == [50, 100, 50]
        assert memory.frames_used(1) == pytest.approx(50.0)
        memory.check_accounting()


def _engine(memory, demotion="through"):
    topology = TierTopology(
        tiers=(TierDef(DRAM_SPEC), TierDef(CXL_SPEC), TierDef(NVME_SPEC)),
        demotion=demotion,
    )
    return MigrationEngine(memory, MachineConfig(topology=topology))


class TestMultiHopMigration:
    def test_demote_through_cascades_out_of_a_full_middle_tier(self):
        memory = _three_tier_memory(footprint=200, caps=(100, 100, 400))
        memory.allocate_first_touch(np.arange(200), prefer=Tier.FAST)
        assert memory.used == [100, 100, 0]
        engine = _engine(memory, demotion="through")
        outcome = engine.demote(np.arange(30))
        # 30 pages moved fast->middle; the full middle tier first pushed
        # 30 of its own victims middle->bottom.
        assert outcome.demoted == 60
        assert memory.used == [70, 100, 30]
        assert _used_total(memory) == 200
        assert set(outcome.link_bytes) == {0, 1, 2}

    def test_demote_direct_skips_the_middle_tier(self):
        memory = _three_tier_memory(footprint=200, caps=(100, 100, 400))
        memory.allocate_first_touch(np.arange(200), prefer=Tier.FAST)
        engine = _engine(memory, demotion="direct")
        outcome = engine.demote(np.arange(30))
        assert outcome.demoted == 30
        assert memory.used == [70, 100, 30]
        # Only the fast and bottom links carried traffic.
        assert set(outcome.link_bytes) == {0, 2}

    def test_promotion_pulls_from_every_lower_tier(self):
        memory = _three_tier_memory(footprint=300, caps=(150, 100, 400))
        memory.allocate_first_touch(np.arange(300), prefer=Tier.FAST)
        memory.move(np.arange(100), 2, src=0)  # leave tier0 half-empty
        engine = _engine(memory)
        pages = np.concatenate([np.arange(150, 170), np.arange(250, 270)])
        outcome = engine.promote(pages)
        assert outcome.promoted == 40
        assert _used_total(memory) == 300
        assert (memory.tier_of(pages) == 0).all()

    def test_admission_hook_gates_individual_hops(self):
        memory = _three_tier_memory(footprint=200, caps=(100, 100, 400))
        memory.allocate_first_touch(np.arange(200), prefer=Tier.FAST)
        engine = _engine(memory, demotion="direct")
        engine.admission = lambda src, dst, pages: pages[pages % 2 == 0]
        outcome = engine.demote(np.arange(30))
        assert outcome.demoted == 15
        assert (memory.tier_of(np.arange(1, 30, 2)) == 0).all()

    def test_two_tier_link_bytes_match_legacy_split(self):
        memory = TieredMemory(200, 100, 400, DRAM_SPEC, CXL_SPEC)
        memory.allocate_first_touch(np.arange(150), prefer=Tier.FAST)
        engine = MigrationEngine(memory, MachineConfig())
        outcome = engine.demote(np.arange(20))
        assert outcome.link_bytes == {
            0: outcome.bytes_moved / 2.0,
            1: outcome.bytes_moved / 2.0,
        }


# -- end-to-end: empty middle tier reproduces the two-tier digests -----------------


def _digest_with_ratio_label(result, ratio_label):
    # The ratio string is an input label, not an output; rewrite it so
    # "1:0:4" digests can be compared against the "1:4" goldens.
    return content_hash(canonical(result_to_dict(dataclasses.replace(result, ratio=ratio_label))))


@pytest.mark.parametrize(
    "policy,workload",
    [("PACT", "gups"), ("Memtis", "bc-kron"), ("NoTier", "gups")],
)
def test_empty_middle_tier_reproduces_two_tier_digests(policy, workload):
    # DRAM -> (empty NUMA tier) -> CXL with ratio 1:0:4: the machine
    # elides the zero-capacity interior tier, so the run must be
    # bit-identical to the recorded two-tier 1:4 golden digest.
    topology = TierTopology(
        tiers=(TierDef(DRAM_SPEC), TierDef(NUMA_SPEC), TierDef(CXL_SPEC))
    )
    config = MachineConfig(topology=topology)
    result = run_policy(
        make_workload(workload, total_misses=2_000_000),
        make_policy(policy),
        ratio="1:0:4",
        config=config,
        seed=0,
    )
    assert _digest_with_ratio_label(result, "1:4") == GOLDEN_DIGESTS[(policy, workload, False, 0)]


# -- end-to-end: three live tiers --------------------------------------------------


def _three_tier_result(policy="PACT", demotion="through", topology="dram-cxlz-nvme"):
    config = MachineConfig(topology=make_topology(topology, demotion=demotion))
    return run_policy(
        make_workload("gups", total_misses=1_000_000),
        make_policy(policy),
        ratio="1:4:16",
        config=config,
        seed=0,
    )


class TestThreeTierEndToEnd:
    def test_run_reports_three_tiers_of_misses(self):
        result = _three_tier_result()
        assert set(result.tier_misses) == {Tier.FAST, Tier.SLOW, 2}
        assert result.total_misses == pytest.approx(sum(result.tier_misses.values()))
        assert result.runtime_cycles > 0

    def test_demotion_mode_is_a_live_ablation(self):
        through = _three_tier_result(demotion="through")
        direct = _three_tier_result(demotion="direct")
        assert through.runtime_cycles != direct.runtime_cycles

    def test_result_round_trips_through_the_cache_codec(self):
        from repro.exp.cache import result_from_dict

        result = _three_tier_result()
        doc = result_to_dict(result)
        assert set(doc["tier_misses"]) == {"FAST", "SLOW", "TIER2"}
        back = result_from_dict(doc)
        assert back.tier_misses == result.tier_misses


# -- observability gauge names -----------------------------------------------------


class TestTierGauges:
    def _summary(self, config):
        from repro.obs import Observability

        result = run_policy(
            make_workload("gups", total_misses=500_000),
            make_policy("PACT"),
            ratio="1:4" if config.topology is None else "1:4:16",
            config=config,
            seed=0,
            obs=Observability(),
        )
        return result.metrics_summary

    def test_default_pair_keeps_legacy_gauge_names(self):
        summary = self._summary(MachineConfig())
        assert "hw/util_fast" in summary
        assert "hw/util_slow" in summary
        assert "mem/occupancy_fast" in summary
        assert "machine/fast_resident_fraction" in summary
        assert not any(name.startswith("machine/tier0/") for name in summary)

    def test_n_tier_topology_publishes_per_tier_gauges(self):
        summary = self._summary(MachineConfig(topology=make_topology("dram-cxlz-nvme")))
        for i in range(3):
            assert f"machine/tier{i}/util" in summary
            assert f"machine/tier{i}/occupancy" in summary
            assert f"machine/tier{i}/effective_latency_cycles" in summary
        assert "machine/tier0/resident_fraction" in summary
        assert "hw/util_fast" not in summary


# -- CLI ---------------------------------------------------------------------------


class TestCliTopology:
    def test_three_tier_run_smoke(self, capsys, tmp_path):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(
            [
                "run",
                "--workload", "gups",
                "--policy", "PACT",
                "--ratio", "1:4:16",
                "--topology", "dram-cxlz-nvme",
                "--work", "500000",
                "--no-cache",
                "--trace-dir", str(tmp_path),
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "tier2 LLC misses" in text

    def test_list_includes_topologies(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        assert main(["list"], out=out) == 0
        assert "topologies: " in out.getvalue()
        assert "dram-cxlz-nvme" in out.getvalue()
