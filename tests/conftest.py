"""Shared fixtures: a small, fast workload and machine configuration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mem.page import ObjectRegion, Tier
from repro.mem.tiered import TieredMemory
from repro.sim.config import MachineConfig
from repro.workloads.base import Workload, region_group


class TinyWorkload(Workload):
    """Two-region workload: a hot low-MLP half and a cold high-MLP half.

    Small enough that a full run takes milliseconds, with an
    unambiguous criticality structure tests can assert against.
    """

    def __init__(
        self,
        footprint_pages: int = 512,
        total_misses: int = 600_000,
        misses_per_window: int = 30_000,
        seed: int = 7,
        chase_mlp: float = 2.0,
        stream_mlp: float = 16.0,
    ):
        half = footprint_pages // 2
        self.chase_mlp = chase_mlp
        self.stream_mlp = stream_mlp
        super().__init__(
            name="tiny",
            footprint_pages=footprint_pages,
            total_misses=total_misses,
            misses_per_window=misses_per_window,
            compute_cycles_per_miss=20.0,
            seed=seed,
            objects=[
                ObjectRegion("chase", 0, half),
                ObjectRegion("stream", half, footprint_pages - half),
            ],
        )

    def allocation_order(self):
        # Streamed bulk data allocates first; critical chase region last.
        return self._order_from_regions(["stream", "chase"])

    def _emit(self, budget, rng):
        # Alternate chase-dominated and stream-dominated windows so the
        # two regions genuinely differ in per-access stall cost (the
        # phased behaviour PAC attribution relies on, §4.2).
        chase, stream = self.objects
        if self.window_index % 2 == 0:
            mix = (0.85, 0.15)
        else:
            mix = (0.15, 0.85)
        chase_misses = int(budget * mix[0])
        return [
            region_group(rng, chase, chase_misses, self.chase_mlp, label="chase"),
            region_group(rng, stream, budget - chase_misses, self.stream_mlp, label="stream"),
        ]


@pytest.fixture
def tiny_workload():
    return TinyWorkload()


@pytest.fixture
def config():
    return MachineConfig()


@pytest.fixture
def memory():
    return TieredMemory(
        footprint_pages=256,
        fast_capacity_pages=128,
        slow_capacity_pages=256,
        fast_spec=MachineConfig().fast_spec,
        slow_spec=MachineConfig().slow_spec,
    )


@pytest.fixture
def rng():
    return np.random.default_rng(123)


def assert_placement_consistent(memory: TieredMemory) -> None:
    """Invariant: used counters match placement array, capacities hold."""
    fast = int((memory.placement == int(Tier.FAST)).sum())
    slow = int((memory.placement == int(Tier.SLOW)).sum())
    assert memory.used[Tier.FAST] == fast
    assert memory.used[Tier.SLOW] == slow
    assert fast <= memory.capacity[Tier.FAST]
    assert slow <= memory.capacity[Tier.SLOW]
