"""Edge-case coverage across the policy API, engine cache, and config."""

import numpy as np
import pytest

from repro.sim.config import MachineConfig
from repro.sim.engine import clear_baseline_cache, ideal_baseline
from repro.sim.policy_api import Decision, no_pages
from repro.workloads import MlcContender
from repro.mem.page import Tier

from conftest import TinyWorkload


class TestDecision:
    def test_none_is_empty(self):
        assert Decision.none().empty

    def test_promote_makes_nonempty(self):
        assert not Decision(promote=np.array([1])).empty

    def test_demote_lru_makes_nonempty(self):
        assert not Decision(demote_lru=3).empty

    def test_no_pages_is_int64(self):
        arr = no_pages()
        assert arr.size == 0 and arr.dtype == np.int64


class TestBaselineCacheKeys:
    def test_contention_distinguishes_baselines(self, config):
        clear_baseline_cache()
        quiet = ideal_baseline(TinyWorkload(), config=config)
        loud = ideal_baseline(
            TinyWorkload(), config=config, contender=MlcContender(threads=4)
        )
        assert quiet is not loud
        assert loud.runtime_cycles > quiet.runtime_cycles

    def test_contender_tier_distinguishes(self, config):
        clear_baseline_cache()
        fast_side = ideal_baseline(
            TinyWorkload(), config=config, contender=MlcContender(threads=2, tier=Tier.FAST)
        )
        slow_side = ideal_baseline(
            TinyWorkload(), config=config, contender=MlcContender(threads=2, tier=Tier.SLOW)
        )
        assert fast_side is not slow_side
        # Slow-link noise does not stall an all-DRAM run.
        assert fast_side.runtime_cycles > slow_side.runtime_cycles

    def test_cache_bypass(self, config):
        clear_baseline_cache()
        a = ideal_baseline(TinyWorkload(), config=config, use_cache=False)
        b = ideal_baseline(TinyWorkload(), config=config, use_cache=False)
        assert a is not b
        assert a.runtime_cycles == pytest.approx(b.runtime_cycles)


class TestMigrationCostModel:
    def test_mixed_batch_cost_composition(self):
        cfg = MachineConfig()
        only_pages = cfg.migration_cycles(pages_4k=100)
        only_huge = cfg.migration_cycles(huge_pages=2)
        both = cfg.migration_cycles(pages_4k=100, huge_pages=2)
        assert both == pytest.approx(only_pages + only_huge)

    def test_zero_migration_is_free(self):
        assert MachineConfig().migration_cycles(0, 0) == 0.0

    def test_slow_capacity_slack(self):
        cfg = MachineConfig(slow_slack=1.5)
        assert cfg.slow_capacity(1000) == 1500
        # Slack below 1.0 is clamped: the slow tier always holds the footprint.
        assert MachineConfig(slow_slack=0.5).slow_capacity(1000) == 1000


class TestWorkloadGuards:
    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            TinyWorkload(total_misses=0)
        with pytest.raises(ValueError):
            TinyWorkload(footprint_pages=0)

    def test_progress_clamps_to_one(self):
        w = TinyWorkload()
        w.reset()
        w._consumed = w.total_misses * 2
        assert w.progress == 1.0
        assert w.done
