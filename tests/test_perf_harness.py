"""repro.perf: suite shape, measurement records, and regression gating."""

import copy
import json

import pytest

from repro.perf import harness


class TestSuiteDefinition:
    def test_full_suite_covers_three_workloads_three_policies(self):
        suite = harness.scenarios(quick=False)
        assert len(suite) == 11
        assert {s.workload for s in suite} == {"bc-kron", "silo", "gpt-2"}
        assert {s.policy for s in suite} == {"PACT", "Memtis", "NoTier"}
        assert len({s.name for s in suite}) == 11
        multi = [s for s in suite if isinstance(s, harness.MultiRunScenario)]
        assert [s.name for s in multi] == ["graph-pact-multi", "memtis-multi"]
        for m in multi:
            assert len(m.runs()) == len(m.seeds) * len(m.ratios)

    def test_quick_subset_shares_parameters_with_full_suite(self):
        full = {s.name: s for s in harness.scenarios(quick=False)}
        quick = harness.scenarios(quick=True)
        assert tuple(s.name for s in quick) == harness.QUICK_NAMES
        for s in quick:
            assert s == full[s.name]  # identical params, not a cheap variant


def tiny_scenario():
    return harness.PerfScenario(
        name="tiny", workload="gups", policy="NoTier", total_misses=400_000
    )


class TestMeasurement:
    def test_run_scenario_record_fields(self):
        record = harness.run_scenario(tiny_scenario(), repeats=1, profile=True)
        assert record["windows"] > 0
        assert record["windows_per_sec"] > 0.0
        assert record["runtime_cycles"] > 0.0
        assert "stall_solve" in record["spans"]

    def test_run_scenario_without_profile_skips_spans(self):
        record = harness.run_scenario(tiny_scenario(), repeats=1, profile=False)
        assert "spans" not in record

    def test_timed_and_profiled_runs_agree_on_results(self):
        # run_scenario raises if the profiled repeat diverges; two calls
        # must also agree with each other (the simulator is deterministic).
        a = harness.run_scenario(tiny_scenario(), repeats=1, profile=False)
        b = harness.run_scenario(tiny_scenario(), repeats=1, profile=True)
        assert a["runtime_cycles"] == b["runtime_cycles"]
        assert a["windows"] == b["windows"]

    def test_calibration_score_positive(self):
        assert harness.calibration_score(repeats=1) > 0.0


def tiny_multi_scenario():
    return harness.MultiRunScenario(
        name="tiny-multi",
        workload="gups",
        policy="NoTier",
        total_misses=400_000,
        seeds=(0, 1),
        ratios=("1:2", "1:4"),
    )


class TestMultiRunMeasurement:
    def test_replay_and_live_modes_agree_bit_exactly(self, tmp_path):
        from repro.workloads.tracestore import TraceStore

        store = TraceStore(str(tmp_path / "traces"))
        replayed = harness.run_multi_scenario(
            tiny_multi_scenario(), repeats=1, profile=True, trace_store=store
        )
        live = harness.run_multi_scenario(
            tiny_multi_scenario(), repeats=1, profile=False, trace_store=None
        )
        assert replayed["runs"] == 4
        assert len(replayed["run_runtime_cycles"]) == 4
        # Lockstep replay vs serial live generation: same results exactly.
        assert replayed["run_runtime_cycles"] == live["run_runtime_cycles"]
        assert replayed["runtime_cycles"] == live["runtime_cycles"]
        assert replayed["windows"] == live["windows"]
        assert "stall_solve" in replayed["spans"]

    def test_without_profile_skips_spans(self):
        record = harness.run_multi_scenario(
            tiny_multi_scenario(), repeats=1, profile=False
        )
        assert "spans" not in record


def fake_report(wps=100.0, calibration=50.0, cycles=1.25e9):
    return {
        "schema": harness.PERF_SCHEMA,
        "calibration_ops_per_sec": calibration,
        "scenarios": {
            "graph-pact": {
                "windows_per_sec": wps,
                "runtime_cycles": cycles,
                "windows": 96,
            }
        },
    }


class TestCompare:
    def test_identical_reports_pass(self):
        report = fake_report()
        assert harness.compare(report, copy.deepcopy(report)) == []

    def test_regression_beyond_threshold_fails(self):
        problems = harness.compare(fake_report(wps=60.0), fake_report(wps=100.0))
        assert len(problems) == 1
        assert "graph-pact" in problems[0]

    def test_regression_within_threshold_passes(self):
        assert harness.compare(fake_report(wps=80.0), fake_report(wps=100.0)) == []

    def test_calibration_normalisation_absorbs_slow_host(self):
        # Half the throughput on a half-speed machine is not a regression.
        current = fake_report(wps=50.0, calibration=25.0)
        assert harness.compare(current, fake_report()) == []

    def test_bit_identity_mismatch_always_fails(self):
        current = fake_report(cycles=1.25e9 + 1.0)
        problems = harness.compare(current, fake_report(), threshold=0.99)
        assert any("bit-identical" in p for p in problems)

    def test_per_run_cycles_mismatch_fails(self):
        current, baseline = fake_report(), fake_report()
        current["scenarios"]["graph-pact"]["run_runtime_cycles"] = [1.0, 2.0]
        baseline["scenarios"]["graph-pact"]["run_runtime_cycles"] = [1.0, 3.0]
        problems = harness.compare(current, baseline)
        assert any("per-run" in p for p in problems)

    def test_matching_per_run_cycles_pass(self):
        current, baseline = fake_report(), fake_report()
        current["scenarios"]["graph-pact"]["run_runtime_cycles"] = [1.0, 2.0]
        baseline["scenarios"]["graph-pact"]["run_runtime_cycles"] = [1.0, 2.0]
        assert harness.compare(current, baseline) == []

    def test_scenarios_missing_from_baseline_are_skipped(self):
        current = fake_report()
        current["scenarios"]["new-scenario"] = {
            "windows_per_sec": 1.0,
            "runtime_cycles": 1.0,
        }
        assert harness.compare(current, fake_report()) == []

    def test_missing_calibration_reported(self):
        report = fake_report()
        broken = {k: v for k, v in report.items() if k != "calibration_ops_per_sec"}
        assert harness.compare(broken, report) != []


class TestReportIo:
    def test_write_then_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "out" / "BENCH_perf.json")
        report = fake_report()
        harness.write_report(report, path)
        assert harness.load_report(path) == report
        # Deterministic serialisation: sorted keys, trailing newline.
        text = (tmp_path / "out" / "BENCH_perf.json").read_text()
        assert text.endswith("\n")
        assert json.loads(text) == report

    def test_load_missing_returns_none(self, tmp_path):
        assert harness.load_report(str(tmp_path / "nope.json")) is None

    def test_span_rows_formatting(self):
        record = {"spans": {"stall_solve": {"seconds": 0.0123, "calls": 96}}}
        rows = harness.span_rows(record)
        assert rows == [["stall_solve", "12.3 ms", "96"]]

    def test_committed_baseline_matches_suite(self):
        baseline = harness.load_report(harness.DEFAULT_BASELINE_PATH)
        if baseline is None:
            pytest.skip("no committed baseline in this checkout")
        suite_names = {s.name for s in harness.scenarios(quick=False)}
        assert set(baseline["scenarios"]) == suite_names
        assert baseline["calibration_ops_per_sec"] > 0.0
