"""The machine: window loop, accounting invariants, migration costs."""

import numpy as np
import pytest

from repro.mem.page import Tier, UNALLOCATED
from repro.sim.config import MachineConfig, MigrationCost, parse_ratio, PAPER_RATIOS
from repro.sim.machine import Machine
from repro.sim.migration import MigrationEngine
from repro.sim.policy_api import Decision, NoTierPolicy, SlowOnlyPolicy, TieringPolicy
from repro.mem.tiered import TieredMemory
from repro.common.units import CXL_SPEC, DRAM_SPEC

from conftest import TinyWorkload, assert_placement_consistent


class TestRatioParsing:
    def test_known_ratios(self):
        assert parse_ratio("1:1") == pytest.approx(0.5)
        assert parse_ratio("8:1") == pytest.approx(8 / 9)
        assert parse_ratio("1:8") == pytest.approx(1 / 9)

    def test_all_paper_ratios_parse(self):
        for ratio in PAPER_RATIOS:
            assert 0.0 < parse_ratio(ratio) < 1.0

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_ratio("1-1")
        with pytest.raises(ValueError):
            parse_ratio("0:1")

    def test_rejects_non_finite(self):
        # Regression: float("nan") > 0 is False but "nan:1" previously
        # slipped past the positivity check via NaN comparison rules.
        for bad in ("nan:1", "1:nan", "inf:1", "1:inf", "-inf:2"):
            with pytest.raises(ValueError):
                parse_ratio(bad)


class TestMachineConfig:
    def test_fast_capacity(self):
        cfg = MachineConfig()
        assert cfg.fast_capacity(900, "1:2") == 300

    def test_with_override(self):
        cfg = MachineConfig().with_(thp=True, pebs_rate=800)
        assert cfg.thp and cfg.pebs_rate == 800
        assert MachineConfig().thp is False

    def test_migration_cycles(self):
        cfg = MachineConfig(migration=MigrationCost(page_fixed_us=1.0, page_copy_us=1.0))
        # 2 us per page at 2.2 GHz = 4400 cycles.
        assert cfg.migration_cycles(pages_4k=1) == pytest.approx(4400.0)

    def test_huge_page_migration_amortises(self):
        cfg = MachineConfig()
        loose = cfg.migration_cycles(pages_4k=512)
        huge = cfg.migration_cycles(pages_4k=0, huge_pages=1)
        assert huge < loose / 3  # 2MB moves are far cheaper per byte


class TestMachineRun:
    def test_run_completes_workload(self, config):
        workload = TinyWorkload()
        result = Machine(workload, NoTierPolicy(), config=config).run()
        assert workload.done
        assert result.windows == workload.total_misses // workload.misses_per_window
        assert result.runtime_cycles > 0

    def test_preallocation_covers_footprint(self, config):
        workload = TinyWorkload()
        machine = Machine(workload, NoTierPolicy(), config=config, ratio="1:1")
        assert (machine.memory.placement != UNALLOCATED).all()
        assert_placement_consistent(machine.memory)

    def test_allocation_order_respected(self, config):
        workload = TinyWorkload()
        machine = Machine(workload, NoTierPolicy(), config=config, ratio="1:1")
        half = workload.footprint_pages // 2
        # TinyWorkload allocates the stream half first; at 1:1 it fills
        # the fast tier, stranding the chase half on slow.
        assert (machine.memory.placement[half:] == int(Tier.FAST)).all()
        assert (machine.memory.placement[:half] == int(Tier.SLOW)).all()

    def test_slow_only_policy_places_everything_slow(self, config):
        workload = TinyWorkload()
        machine = Machine(
            workload, SlowOnlyPolicy(), config=config, fast_capacity_override=0
        )
        assert (machine.memory.placement == int(Tier.SLOW)).all()

    def test_deterministic_given_seed(self, config):
        r1 = Machine(TinyWorkload(), NoTierPolicy(), config=config, seed=5).run()
        r2 = Machine(TinyWorkload(), NoTierPolicy(), config=config, seed=5).run()
        assert r1.runtime_cycles == pytest.approx(r2.runtime_cycles)
        assert r1.total_misses == pytest.approx(r2.total_misses)

    def test_trace_collects_window_records(self, config):
        result = Machine(
            TinyWorkload(), NoTierPolicy(), config=config, trace=True
        ).run(max_windows=5)
        assert result.trace is not None and len(result.trace) == 5
        rec = result.trace[0]
        assert rec.duration_cycles > 0
        assert rec.slow_misses + rec.fast_misses > 0

    def test_no_trace_by_default(self, config):
        result = Machine(TinyWorkload(), NoTierPolicy(), config=config).run(max_windows=3)
        assert result.trace is None

    def test_misses_accounted(self, config):
        workload = TinyWorkload()
        result = Machine(workload, NoTierPolicy(), config=config).run()
        assert result.total_misses == pytest.approx(workload.total_misses, rel=0.05)


class _PromoteEverything(TieringPolicy):
    """Degenerate policy used to test cost accounting."""

    name = "promote-all"
    synchronous_migration = True
    needs_pebs = False

    def observe(self, obs):
        return Decision(promote=obs.touched_slow, demote_lru=obs.touched_slow.size,
                        demote_victim_mode="fifo")


class TestMigrationAccounting:
    def test_sync_migration_cost_lands_in_runtime(self, config):
        workload = TinyWorkload()
        quiet = Machine(TinyWorkload(), NoTierPolicy(), config=config, ratio="1:1").run()
        churny = Machine(workload, _PromoteEverything(), config=config, ratio="1:1").run()
        assert churny.promoted > 0
        assert churny.migration_cost_cycles > 0
        assert churny.runtime_cycles > quiet.runtime_cycles

    def test_promotion_and_demotion_counts_match_engine(self, config):
        workload = TinyWorkload()
        machine = Machine(workload, _PromoteEverything(), config=config, ratio="1:1")
        result = machine.run(max_windows=10)
        assert result.promoted == machine.engine.total_promoted
        assert result.demoted == machine.engine.total_demoted

    def test_placement_consistent_after_churny_run(self, config):
        machine = Machine(TinyWorkload(), _PromoteEverything(), config=config, ratio="1:2")
        machine.run(max_windows=15)
        assert_placement_consistent(machine.memory)


class TestMigrationEngineThp:
    def _engine(self, thp):
        memory = TieredMemory(2048, 1024, 2048, DRAM_SPEC, CXL_SPEC)
        memory.allocate_first_touch(np.arange(2048))
        return MigrationEngine(memory, MachineConfig(thp=thp)), memory

    def test_thp_expands_to_whole_huge_page(self):
        engine, memory = self._engine(thp=True)
        memory.move(np.arange(0, 512), Tier.SLOW)  # free half the fast tier
        outcome = engine.promote(np.array([1030]))
        # Page 1030 lives in huge page 2 -> pages 1024..1535 move; only
        # those currently slow actually migrate.
        assert outcome.promoted == 0 or outcome.promoted % 1 == 0
        moved_fast = memory.placement[1024:1536] == int(Tier.FAST)
        assert moved_fast.all() or outcome.promoted == 0

    def test_thp_cost_cheaper_than_page_wise(self):
        engine_thp, mem_thp = self._engine(thp=True)
        engine_4k, mem_4k = self._engine(thp=False)
        # Demote one full fast-resident huge page (pages 512..1023) each way.
        thp_out = engine_thp.demote(np.array([600]))
        pagewise = engine_4k.demote(np.arange(512, 1024))
        assert thp_out.demoted == pagewise.demoted == 512
        assert thp_out.cost_cycles < pagewise.cost_cycles / 3

    def test_4k_mode_moves_only_selected(self):
        engine, memory = self._engine(thp=False)
        memory.move(np.arange(0, 4), Tier.SLOW)
        outcome = engine.promote(np.array([1030, 1031]))
        assert outcome.promoted == 2
        assert memory.placement[1032] == int(Tier.SLOW)
