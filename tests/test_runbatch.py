"""Multi-run lockstep simulation and run-axis request grouping.

The multi-run path is purely an execution strategy: R seeds/ratios of
one (workload, policy) stepped in lockstep with batched stall solves
must be **bit-identical** to running each machine alone, and the
grouping in the experiment layer must be invisible to callers -- same
results, same cache entries, same failure isolation.
"""

from __future__ import annotations

import pytest

from repro.baselines import make_policy
from repro.exp.cache import (
    ResultStore,
    reset_default_store,
    result_to_dict,
    set_default_store,
)
from repro.exp.runner import (
    MULTIRUN_ENV,
    execute_request,
    execute_request_group,
    group_requests,
    run_requests,
)
from repro.exp.service import CampaignDriver
from repro.exp.spec import ExperimentSpec, PolicySpec, RunRequest, WorkloadSpec
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.runbatch import MultiMachine
from repro.workloads import make_workload, tracestore
from repro.workloads.tracestore import ReplayWorkload, record_stream

from conftest import TinyWorkload

SEEDS = (0, 1, 2)
RATIOS = ("1:2", "1:4")


def tiny_factory():
    return TinyWorkload(total_misses=120_000, misses_per_window=30_000)


def tiny_spec() -> WorkloadSpec:
    return WorkloadSpec.from_factory(tiny_factory, label="tiny")


def multi_grid(policies=("PACT", "NoTier")) -> ExperimentSpec:
    return ExperimentSpec(
        workloads=[tiny_spec()],
        policies=[PolicySpec(p) for p in policies],
        ratios=RATIOS,
        seeds=SEEDS,
    )


@pytest.fixture
def isolated_stores():
    store = set_default_store(ResultStore())
    trace_store = tracestore.set_default_trace_store(tracestore.TraceStore())
    yield store, trace_store
    reset_default_store()
    tracestore.reset_default_trace_store()


def build_machine(data, policy_name, ratio, seed):
    return Machine(
        workload=ReplayWorkload(data),
        policy=make_policy(policy_name),
        config=MachineConfig(),
        ratio=ratio,
        seed=seed,
    )


class TestMultiMachine:
    @pytest.mark.parametrize("policy_name", ["PACT", "Memtis", "NoTier"])
    def test_lockstep_matches_serial_bit_exactly(self, policy_name):
        data = record_stream(
            make_workload("gups", total_misses=600_000, seed=4), max_windows=512
        )
        grid = [(s, r) for s in SEEDS for r in RATIOS]
        serial = [build_machine(data, policy_name, r, s).run() for s, r in grid]
        multi = MultiMachine(
            [build_machine(data, policy_name, r, s) for s, r in grid]
        ).run()
        assert len(multi) == len(serial)
        for lock, solo in zip(multi, serial):
            assert result_to_dict(lock) == result_to_dict(solo)

    def test_rejects_live_workloads(self):
        machines = [
            Machine(
                workload=make_workload("gups", total_misses=200_000),
                policy=make_policy("NoTier"),
                config=MachineConfig(),
                ratio="1:2",
                seed=s,
            )
            for s in (0, 1)
        ]
        with pytest.raises(ValueError, match="replay"):
            MultiMachine(machines)

    def test_rejects_looping_replay(self):
        data = record_stream(
            make_workload("gups", total_misses=200_000), max_windows=512
        )
        machines = [
            Machine(
                workload=ReplayWorkload(data, loop=True),
                policy=make_policy("NoTier"),
                config=MachineConfig(),
                ratio="1:2",
                seed=s,
            )
            for s in (0, 1)
        ]
        with pytest.raises(ValueError, match="replay"):
            MultiMachine(machines)

    def test_rejects_mismatched_traces(self):
        data_a = record_stream(
            make_workload("gups", total_misses=200_000, seed=0), max_windows=512
        )
        data_b = record_stream(
            make_workload("gups", total_misses=200_000, seed=1), max_windows=512
        )
        with pytest.raises(ValueError, match="same recorded trace"):
            MultiMachine(
                [
                    build_machine(data_a, "NoTier", "1:2", 0),
                    build_machine(data_b, "NoTier", "1:2", 0),
                ]
            )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MultiMachine([])


class TestGrouping:
    def test_seed_ratio_grid_collapses_per_policy(self, isolated_stores):
        requests = [r for r in multi_grid().expand() if r.kind == "policy"]
        units = group_requests(requests)
        groups = [u for u in units if isinstance(u, list)]
        assert len(groups) == 2  # one per policy
        for group in groups:
            assert len(group) == len(SEEDS) * len(RATIOS)
            assert len({r.policy.name for r in group}) == 1
        # Member order within each group follows request order.
        flat = [r.key for g in groups for r in g]
        in_order = [r.key for r in requests if r.key in set(flat)]
        assert sorted(flat) == sorted(in_order)

    def test_trace_and_obs_requests_stay_single(self, isolated_stores):
        base = dict(workload=tiny_spec(), policy=PolicySpec("PACT"))
        requests = [
            RunRequest(ratio=r, seed=s, trace=True, **base)
            for s in (0, 1)
            for r in RATIOS
        ]
        assert all(not isinstance(u, list) for u in group_requests(requests))

    def test_non_replay_requests_stay_single(self, isolated_stores):
        requests = [
            RunRequest(
                workload=tiny_spec(), policy=PolicySpec("PACT"),
                ratio=r, seed=s, replay=False,
            )
            for s in (0, 1)
            for r in RATIOS
        ]
        assert all(not isinstance(u, list) for u in group_requests(requests))

    def test_env_switch_disables_grouping(self, isolated_stores, monkeypatch):
        requests = [r for r in multi_grid().expand() if r.kind == "policy"]
        monkeypatch.setenv(MULTIRUN_ENV, "1")
        assert all(not isinstance(u, list) for u in group_requests(requests))

    def test_different_policies_never_share_a_group(self, isolated_stores):
        requests = [r for r in multi_grid().expand() if r.kind == "policy"]
        for unit in group_requests(requests):
            if isinstance(unit, list):
                assert len({r.policy.name for r in unit}) == 1


class TestRunRequestsFanout:
    def test_grouped_and_serial_results_identical(self, isolated_stores, monkeypatch):
        spec = multi_grid()
        grouped = run_requests(spec.expand(), use_cache=False)

        monkeypatch.setenv(MULTIRUN_ENV, "1")
        serial = run_requests(spec.expand(), use_cache=False)
        for req in spec.expand():
            assert result_to_dict(grouped[req]) == result_to_dict(serial[req]), (
                req.display
            )

    def test_every_member_lands_in_cache(self, isolated_stores):
        store, _ = isolated_stores
        spec = multi_grid(policies=("PACT",))
        run_requests(spec.expand())
        for req in spec.expand():
            assert store.get(req.key) is not None

    def test_parallel_grouped_matches_serial(self, isolated_stores):
        spec = multi_grid(policies=("PACT",))
        jobs2 = run_requests(spec.expand(), jobs=2, use_cache=False)
        jobs1 = run_requests(spec.expand(), jobs=1, use_cache=False)
        for req in spec.expand():
            assert result_to_dict(jobs2[req]) == result_to_dict(jobs1[req])

    def test_group_falls_back_to_serial_when_lockstep_rejects(
        self, isolated_stores, monkeypatch
    ):
        spec = multi_grid(policies=("PACT",))
        requests = [r for r in spec.expand() if r.kind == "policy"]

        def rejecting_init(self, machines):
            raise ValueError("injected lockstep rejection")

        monkeypatch.setattr(MultiMachine, "__init__", rejecting_init)
        fellback = execute_request_group(requests)
        monkeypatch.undo()
        expected = [execute_request(r) for r in requests]
        for got, want in zip(fellback, expected):
            assert result_to_dict(got) == result_to_dict(want)


class TestCampaignMultiRun:
    def test_campaign_groups_match_serial_run_requests(self, isolated_stores):
        spec = multi_grid()
        with CampaignDriver(jobs=1) as driver:
            campaign = driver.run(spec.expand())
        assert campaign.ok
        serial = run_requests(spec.expand(), use_cache=False)
        for req in spec.expand():
            assert result_to_dict(campaign[req]) == result_to_dict(serial[req]), (
                req.display
            )

    def test_pooled_campaign_matches_serial(self, isolated_stores):
        spec = multi_grid(policies=("PACT",))
        with CampaignDriver(jobs=2) as driver:
            campaign = driver.run(spec.expand())
        assert campaign.ok
        serial = run_requests(spec.expand(), use_cache=False)
        for req in spec.expand():
            assert result_to_dict(campaign[req]) == result_to_dict(serial[req])

    def test_failed_group_requeues_members_as_singles(
        self, isolated_stores, monkeypatch
    ):
        from repro.exp import runner

        spec = multi_grid(policies=("PACT",))
        original = runner.execute_request_group
        calls = {"n": 0}

        def failing_once(requests):
            calls["n"] += 1
            raise RuntimeError("injected group failure")

        # The serial path resolves the group executor through the runner
        # module at call time; failing it forces the requeue-as-singles
        # recovery (singles go through execute_request, untouched here).
        monkeypatch.setattr(runner, "execute_request_group", failing_once)
        with CampaignDriver(jobs=1) as driver:
            campaign = driver.run(spec.expand())
        monkeypatch.setattr(runner, "execute_request_group", original)
        # The group failure is never final: members re-ran as singles.
        assert calls["n"] == 1
        assert campaign.ok
        assert campaign.stats.retries >= 1
        assert any(not rec.final for rec in campaign.ledger)
        serial = run_requests(spec.expand(), use_cache=False)
        for req in spec.expand():
            assert result_to_dict(campaign[req]) == result_to_dict(serial[req])
