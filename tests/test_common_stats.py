"""Statistics helpers: pearson, quartiles, CDFs, streaming moments."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.stats import (
    StreamingStats,
    cdf_points,
    geometric_mean,
    pearson,
    quantiles_linear,
    quartiles,
)


class TestQuantilesLinear:
    """The fast path must be np.quantile bit for bit, not approximately."""

    @settings(max_examples=150)
    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=400),
        st.lists(st.floats(0.0, 1.0), min_size=1, max_size=4),
    )
    def test_matches_numpy_exactly(self, values, qs):
        arr = np.asarray(values, dtype=np.float64)
        q = np.asarray(qs, dtype=np.float64)
        np.testing.assert_array_equal(quantiles_linear(arr, q), np.quantile(arr, q))

    @pytest.mark.parametrize("n", [1, 2, 3, 100])
    def test_edge_quantiles(self, n):
        arr = np.random.default_rng(n).random(n)
        q = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
        np.testing.assert_array_equal(quantiles_linear(arr, q), np.quantile(arr, q))

    def test_input_not_mutated(self):
        arr = np.array([3.0, 1.0, 2.0])
        quantiles_linear(arr, np.array([0.5]))
        assert arr.tolist() == [3.0, 1.0, 2.0]


class TestPearson:
    def test_perfect_positive(self):
        x = [1.0, 2.0, 3.0, 4.0]
        assert pearson(x, [2 * v for v in x]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = [1.0, 2.0, 3.0, 4.0]
        assert pearson(x, [-v for v in x]) == pytest.approx(-1.0)

    def test_zero_variance_returns_zero(self):
        assert pearson([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_short_input_returns_zero(self):
        assert pearson([1.0], [2.0]) == 0.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            pearson([1.0, 2.0], [1.0])

    def test_matches_numpy(self, rng):
        x = rng.normal(size=200)
        y = 0.7 * x + rng.normal(scale=0.5, size=200)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1], abs=1e-10)


class TestQuartiles:
    def test_known_values(self):
        q1, q3 = quartiles([1.0, 2.0, 3.0, 4.0, 5.0])
        assert q1 == pytest.approx(2.0)
        assert q3 == pytest.approx(4.0)

    def test_empty_returns_zeros(self):
        assert quartiles([]) == (0.0, 0.0)

    @given(st.lists(st.floats(0, 1e6), min_size=4, max_size=60))
    def test_ordering(self, values):
        q1, q3 = quartiles(values)
        assert q1 <= q3


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_empty_is_zero(self):
        assert geometric_mean([]) == 0.0


class TestCdf:
    def test_sorted_and_normalised(self):
        xs, fracs = cdf_points([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert fracs[-1] == pytest.approx(1.0)
        assert fracs[0] == pytest.approx(1 / 3)

    def test_empty(self):
        xs, fracs = cdf_points([])
        assert xs.size == 0 and fracs.size == 0


class TestStreamingStats:
    def test_mean_and_variance_match_numpy(self, rng):
        data = rng.normal(5.0, 2.0, size=500)
        s = StreamingStats()
        s.add_many(data)
        assert s.mean == pytest.approx(float(data.mean()), rel=1e-9)
        assert s.variance == pytest.approx(float(data.var()), rel=1e-6)
        assert s.min == pytest.approx(float(data.min()))
        assert s.max == pytest.approx(float(data.max()))

    def test_variance_of_single_sample_is_zero(self):
        s = StreamingStats()
        s.add(3.0)
        assert s.variance == 0.0
        assert s.std == 0.0

    @settings(max_examples=30)
    @given(
        st.lists(st.floats(-1e4, 1e4), min_size=1, max_size=50),
        st.lists(st.floats(-1e4, 1e4), min_size=1, max_size=50),
    )
    def test_merge_equals_combined_stream(self, a, b):
        sa, sb, sc = StreamingStats(), StreamingStats(), StreamingStats()
        sa.add_many(a)
        sb.add_many(b)
        sc.add_many(a + b)
        merged = sa.merge(sb)
        assert merged.count == sc.count
        assert merged.mean == pytest.approx(sc.mean, rel=1e-6, abs=1e-6)
        assert merged.variance == pytest.approx(sc.variance, rel=1e-4, abs=1e-4)

    def test_merge_with_empty(self):
        s = StreamingStats()
        s.add(1.0)
        assert s.merge(StreamingStats()) is s
        assert StreamingStats().merge(s) is s
