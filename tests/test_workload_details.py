"""Workload-specific behaviours: phases, regions, and access structure."""

import numpy as np
import pytest

from repro.hw.access import WindowTraffic
from repro.workloads import (
    Bwaves,
    Deepsjeng,
    Gpt2Inference,
    RedisYcsbC,
    Xz,
    make_workload,
)


class TestWindowTraffic:
    def test_touched_pages_unique_and_counted(self, rng):
        w = make_workload("gups", total_misses=2_000_000)
        w.reset()
        traffic = w.next_window()
        touched = traffic.touched_pages()
        assert np.unique(touched).size == touched.size
        assert traffic.total_misses() > 0

    def test_empty_traffic(self):
        traffic = WindowTraffic(groups=[], compute_cycles=0.0)
        assert traffic.touched_pages().size == 0
        assert traffic.total_misses() == 0


class TestBwaves:
    def test_sweeps_rotate_between_arrays(self):
        w = Bwaves(total_misses=10**8)
        w.reset()
        active_sets = []
        for _ in range(13):
            traffic = w.next_window()
            pages = traffic.touched_pages()
            quarter = w.footprint_pages // 4
            active_sets.append(frozenset(np.unique(pages // quarter).tolist()))
        assert len(set(active_sets)) > 1  # different array pairs over time

    def test_streaming_mlp_is_high(self):
        w = Bwaves()
        w.reset()
        for group in w.next_window().groups:
            assert group.mlp >= 15.0


class TestXz:
    def test_dictionary_window_slides(self):
        w = Xz(total_misses=10**8, slide_windows=2)
        w.reset()
        def hot_dict_pages():
            traffic = w.next_window()
            group = next(g for g in traffic.groups if g.label == "dict-match")
            order = np.argsort(group.counts)[::-1]
            return set(group.pages[order[:50]].tolist())
        first = hot_dict_pages()
        for _ in range(7):
            w.next_window()
        later = hot_dict_pages()
        overlap = len(first & later) / 50
        assert overlap < 0.8  # the hot window has moved


class TestDeepsjeng:
    def test_transposition_probes_low_mlp(self):
        w = Deepsjeng()
        w.reset()
        tt = next(g for g in w.next_window().groups if g.label == "tt-probe")
        assert tt.mlp < 4.0

    def test_tt_uniform_eval_skewed(self):
        w = Deepsjeng(total_misses=10**8)
        w.reset()
        # Aggregate several windows to smooth the multinomial noise.
        tt_counts = np.zeros(w.objects[0].num_pages)
        eval_counts = np.zeros(w.objects[1].num_pages)
        for _ in range(10):
            for g in w.next_window().groups:
                if g.label == "tt-probe":
                    np.add.at(tt_counts, g.pages, g.counts)
                else:
                    np.add.at(eval_counts, g.pages - w.objects[1].start_page, g.counts)
        # Coefficient of variation: eval tables are far more skewed.
        tt_cv = tt_counts.std() / tt_counts.mean()
        eval_cv = eval_counts.std() / eval_counts.mean()
        assert eval_cv > 2 * tt_cv


class TestGpt2:
    def test_kv_cache_grows_with_progress(self):
        w = Gpt2Inference(total_misses=4_000_000)
        w.reset()
        early = w._kv_valid_pages()
        w._consumed = int(w.total_misses * 0.9)
        late = w._kv_valid_pages()
        assert late > 3 * early

    def test_gemm_attention_alternation(self):
        w = Gpt2Inference(total_misses=10**8)
        w.reset()
        phases = []
        for _ in range(10):
            w.next_window()
            phases.append(w.phase_name().split("-")[0])
        assert "gemm" in phases and "attention" in phases

    def test_weights_dominate_gemm_windows(self):
        w = Gpt2Inference(total_misses=10**8)
        w.reset()
        traffic = w.next_window()  # window 0 is a GEMM window
        by_label = {g.label: g.total_misses for g in traffic.groups}
        assert by_label["weights"] > 4 * by_label["embed"]


class TestRedis:
    def test_ops_conversion(self):
        w = RedisYcsbC()
        assert w.ops_for_misses(60.0) == pytest.approx(10.0)

    def test_value_popularity_is_zipfian(self):
        w = RedisYcsbC(total_misses=10**8)
        w.reset()
        values = next(g for g in w.next_window().groups if g.label == "values")
        counts = np.sort(values.counts)[::-1]
        # Top decile of touched pages should carry a large traffic share.
        top = counts[: max(counts.size // 10, 1)].sum()
        assert top / counts.sum() > 0.3
