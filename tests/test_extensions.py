"""Trace replay, multi-seed statistics, and terminal charts."""

import numpy as np
import pytest

from repro.analysis.repeat import RepeatedResult, repeat_runs, significantly_better
from repro.common.charts import bar_chart, series_with_sparkline, sparkline
from repro.sim.engine import clear_baseline_cache, ideal_baseline, run_policy
from repro.sim.machine import Machine
from repro.sim.policy_api import NoTierPolicy
from repro.workloads.tracefile import (
    TraceWorkload,
    record_trace,
    write_trace,
)

from conftest import TinyWorkload


def small_trace():
    return {
        "name": "toy",
        "footprint_pages": 16,
        "windows": [
            {"groups": [{"pages": [0, 1], "counts": [5, 3], "mlp": 2.0}]},
            {"groups": [{"pages": [8, 9], "counts": [4, 4], "mlp": 8.0, "label": "s"}]},
        ],
    }


class TestTraceWorkload:
    def test_replays_windows_exactly(self):
        w = TraceWorkload(small_trace(), loop=False)
        w.reset()
        first = w.next_window()
        assert list(first.groups[0].pages) == [0, 1]
        assert first.groups[0].total_misses == 8
        second = w.next_window()
        assert second.groups[0].mlp == 8.0
        assert w.done

    def test_looping_stretches_work(self):
        w = TraceWorkload(small_trace(), loop=True)
        w.set_total_misses(64)  # 16 misses per loop -> 4 loops
        w.reset()
        windows = 0
        while not w.done and windows < 50:
            w.next_window()
            windows += 1
        assert windows == 8

    def test_validation(self):
        bad = small_trace()
        bad["windows"][0]["groups"][0]["pages"] = [99]  # outside footprint
        with pytest.raises(ValueError):
            TraceWorkload(bad)
        with pytest.raises(ValueError):
            TraceWorkload({"footprint_pages": 4, "windows": []})

    def test_record_and_replay_round_trip(self, config):
        source = TinyWorkload()
        trace = record_trace(source, windows=4)
        assert len(trace["windows"]) == 4
        replay = TraceWorkload(trace, loop=False)
        result = Machine(replay, NoTierPolicy(), config=config).run()
        assert result.windows == 4
        assert result.total_misses > 0

    def test_file_round_trip(self, tmp_path):
        path = write_trace(small_trace(), tmp_path / "t.json")
        w = TraceWorkload.from_file(path, loop=False)
        assert w.footprint_pages == 16

    def test_runs_under_pact(self, config):
        clear_baseline_cache()
        trace = record_trace(TinyWorkload(), windows=12)
        from repro.baselines import make_policy

        workload = TraceWorkload(trace, loop=False)
        baseline = ideal_baseline(TraceWorkload(trace, loop=False), config=config)
        result = run_policy(workload, make_policy("PACT"), ratio="1:2", config=config)
        assert result.slowdown(baseline) < 1.5


class TestRepeat:
    def test_statistics(self):
        clear_baseline_cache()
        rep = repeat_runs(TinyWorkload, "PACT", ratio="1:2", seeds=(0, 1, 2))
        assert rep.n == 3
        assert rep.mean_slowdown > 0
        assert rep.ci95_slowdown >= 0
        assert "PACT" in rep.summary()

    def test_single_seed_has_zero_ci(self):
        rep = RepeatedResult("w", "p", "1:1", np.array([0.2]), np.array([10.0]))
        assert rep.ci95_slowdown == 0.0
        assert rep.std_slowdown == 0.0

    def test_significance_helper(self):
        a = RepeatedResult("w", "a", "1:1", np.array([0.10, 0.11, 0.09]), np.zeros(3))
        b = RepeatedResult("w", "b", "1:1", np.array([0.50, 0.52, 0.48]), np.zeros(3))
        assert significantly_better(a, b)
        assert not significantly_better(b, a)
        assert not significantly_better(a, a)


class TestCharts:
    def test_sparkline_shape(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_flat_and_empty(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"
        assert sparkline([]) == ""

    def test_bar_chart(self):
        out = bar_chart({"PACT": 0.1, "TPP": 0.4})
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") > lines[0].count("#")

    def test_series_with_sparkline(self):
        out = series_with_sparkline("promos", [1.0, 2.0])
        assert "promos" in out and "max 2" in out
