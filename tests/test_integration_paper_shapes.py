"""End-to-end integration tests asserting the paper's headline shapes.

These use reduced work budgets so the whole module runs in well under a
minute, but exercise the full pipeline: workload -> hardware -> counters
-> policy -> migration -> runtime.
"""

import pytest

from repro.baselines import make_policy
from repro.mem.page import Tier
from repro.sim.config import MachineConfig
from repro.sim.engine import clear_baseline_cache, ideal_baseline, run_policy, slow_only_run
from repro.sim.machine import Machine
from repro.workloads import ColocatedWorkload, Masim, MlcContender, make_workload

WORK = 12_000_000  # misses per run: ~48 windows


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_baseline_cache()


def bckron():
    return make_workload("bc-kron", total_misses=WORK)


@pytest.fixture(scope="module")
def bckron_baseline():
    return ideal_baseline(bckron())


class TestBcKronShapes:
    """Figure 4 / Table 2 shapes on the flagship workload."""

    def test_pact_beats_hotness_baselines_at_one_to_one(self, bckron_baseline):
        pact = run_policy(bckron(), make_policy("PACT"), ratio="1:1")
        for name in ("Colloid", "NBT", "TPP", "Nomad"):
            other = run_policy(bckron(), make_policy(name), ratio="1:1")
            assert pact.slowdown(bckron_baseline) < other.slowdown(bckron_baseline), name

    def test_pact_beats_notier_at_every_ratio(self, bckron_baseline):
        for ratio in ("8:1", "1:1", "1:8"):
            pact = run_policy(bckron(), make_policy("PACT"), ratio=ratio)
            notier = run_policy(bckron(), make_policy("NoTier"), ratio=ratio)
            assert pact.slowdown(bckron_baseline) < notier.slowdown(bckron_baseline)

    def test_notier_is_flat_bad(self, bckron_baseline):
        generous = run_policy(bckron(), make_policy("NoTier"), ratio="8:1")
        tight = run_policy(bckron(), make_policy("NoTier"), ratio="1:8")
        assert generous.slowdown(bckron_baseline) > 0.2
        assert tight.slowdown(bckron_baseline) < 0.8

    def test_slow_only_bounds_notier(self, bckron_baseline):
        cxl = slow_only_run(bckron())
        notier = run_policy(bckron(), make_policy("NoTier"), ratio="1:8")
        assert notier.slowdown(bckron_baseline) <= cxl.slowdown(bckron_baseline) * 1.05

    def test_colloid_migrates_multiples_of_pact_under_pressure(self):
        pact = run_policy(bckron(), make_policy("PACT"), ratio="1:8")
        colloid = run_policy(bckron(), make_policy("Colloid"), ratio="1:8")
        assert colloid.promoted > 2 * pact.promoted

    def test_tpp_catastrophic(self, bckron_baseline):
        tpp = run_policy(bckron(), make_policy("TPP"), ratio="1:1")
        notier = run_policy(bckron(), make_policy("NoTier"), ratio="1:1")
        assert tpp.slowdown(bckron_baseline) > 2 * notier.slowdown(bckron_baseline)
        assert tpp.promoted > 20 * max(
            run_policy(bckron(), make_policy("PACT"), ratio="1:1").promoted, 1
        )


class TestGpt2Signature:
    """§5.3: on gpt-2 every hotness system loses to first-touch; PACT wins."""

    def test_pact_only_system_beating_notier(self):
        workload = make_workload("gpt-2", total_misses=WORK)
        base = ideal_baseline(workload)
        notier = run_policy(workload, make_policy("NoTier"), ratio="1:1").slowdown(base)
        pact = run_policy(workload, make_policy("PACT"), ratio="1:1").slowdown(base)
        assert pact < notier
        for name in ("Colloid", "NBT", "Nomad"):
            other = run_policy(workload, make_policy(name), ratio="1:1").slowdown(base)
            assert other > notier * 0.98, name


class TestPacVsFrequency:
    """§5.6: PAC-based selection beats frequency-based selection."""

    def test_pac_never_loses_to_frequency(self):
        for wname in ("bc-urand", "bc-kron"):
            workload = make_workload(wname, total_misses=WORK)
            base = ideal_baseline(workload)
            pact = run_policy(workload, make_policy("PACT"), ratio="1:2").slowdown(base)
            freq = run_policy(workload, make_policy("Frequency"), ratio="1:2").slowdown(base)
            assert pact <= freq * 1.03, wname

    def test_pac_wins_when_frequency_misleads(self):
        workload = make_workload("bc-urand", total_misses=WORK)
        base = ideal_baseline(workload)
        pact = run_policy(workload, make_policy("PACT"), ratio="1:4").slowdown(base)
        freq = run_policy(workload, make_policy("Frequency"), ratio="1:4").slowdown(base)
        assert pact < freq


class TestBandwidthContention:
    """§5.8: PACT stays effective under MLC bandwidth pressure."""

    def test_contention_inflates_runtime(self):
        workload = bckron()
        quiet = ideal_baseline(workload)
        noisy = ideal_baseline(workload, contender=MlcContender(threads=8))
        assert noisy.runtime_cycles > quiet.runtime_cycles * 1.1

    def test_pact_at_least_matches_colloid_under_contention(self):
        contender = MlcContender(threads=4)
        workload = bckron()
        base = ideal_baseline(workload, contender=contender)
        pact = run_policy(workload, make_policy("PACT"), ratio="1:1", contender=contender)
        colloid = run_policy(workload, make_policy("Colloid"), ratio="1:1", contender=contender)
        # Saturated DRAM compresses all slowdowns toward zero; compare
        # with an absolute tolerance rather than a ratio.
        assert pact.slowdown(base) <= colloid.slowdown(base) + 0.02

    def test_fewer_migrations_than_colloid_under_mild_contention(self):
        contender = MlcContender(threads=1)
        pact = run_policy(bckron(), make_policy("PACT"), ratio="1:2", contender=contender)
        colloid = run_policy(bckron(), make_policy("Colloid"), ratio="1:2", contender=contender)
        assert pact.promoted < colloid.promoted


class TestColocation:
    """§5.9: uniform attribution stays effective with mixed patterns."""

    @pytest.fixture(scope="class")
    def colo(self):
        def build():
            return ColocatedWorkload(
                [
                    # The prefetched streaming process retires loads
                    # ~1.7x faster than the serialised chaser, so it
                    # finishes its work earlier -- the asymmetry that
                    # lets phase-level attribution separate the two.
                    Masim(pattern="sequential", footprint_pages=4096,
                          total_misses=WORK // 2, misses_per_window=160_000, seed=31),
                    Masim(pattern="random", footprint_pages=4096,
                          total_misses=WORK // 2, misses_per_window=95_000, seed=32),
                ]
            )
        return build

    def test_pact_prioritises_the_low_mlp_process(self, colo):
        workload = colo()
        machine = Machine(workload, make_policy("PACT"), ratio="1:1", seed=3)
        machine.run()
        fast = machine.memory.pages_in_tier(Tier.FAST)
        random_pages = int((fast >= 4096).sum())
        sequential_pages = int((fast < 4096).sum())
        assert random_pages > sequential_pages

    def test_pact_beats_colloid_with_fewer_promotions(self, colo):
        base = ideal_baseline(colo())
        pact = run_policy(colo(), make_policy("PACT"), ratio="1:1")
        colloid = run_policy(colo(), make_policy("Colloid"), ratio="1:1")
        assert pact.slowdown(base) <= colloid.slowdown(base) * 1.05
        assert pact.promoted < colloid.promoted


class TestThp:
    """Figure 5: PACT remains effective with 2MB pages; Memtis improves."""

    def test_pact_works_under_thp(self):
        cfg = MachineConfig(thp=True)
        workload = bckron()
        base = ideal_baseline(workload, config=cfg)
        pact = run_policy(workload, make_policy("PACT"), ratio="1:1", config=cfg)
        notier = run_policy(workload, make_policy("NoTier"), ratio="1:1", config=cfg)
        assert pact.slowdown(base) < notier.slowdown(base)

    def test_thp_migrations_are_huge_page_aligned(self):
        cfg = MachineConfig(thp=True)
        workload = bckron()
        machine = Machine(workload, make_policy("PACT"), config=cfg, ratio="1:1")
        machine.run(max_windows=20)
        # Promotions counted in 4KB pages must be multiples of whole-2MB
        # moves except where the footprint edge clips a huge page.
        assert machine.engine.total_promoted % 512 in range(0, 512)


class TestSensitivityDirections:
    """Figure 10 directional claims."""

    def test_sparser_pebs_sampling_degrades(self):
        workload = bckron()
        dense_cfg = MachineConfig(pebs_rate=200)
        sparse_cfg = MachineConfig(pebs_rate=4000)
        dense = run_policy(workload, make_policy("PACT"), ratio="1:2", config=dense_cfg)
        sparse = run_policy(workload, make_policy("PACT"), ratio="1:2", config=sparse_cfg)
        dense_base = ideal_baseline(workload, config=dense_cfg)
        sparse_base = ideal_baseline(workload, config=sparse_cfg)
        assert dense.slowdown(dense_base) <= sparse.slowdown(sparse_base) * 1.1

    def test_longer_period_not_better(self):
        workload = bckron()
        base = ideal_baseline(workload)
        short = run_policy(
            workload, make_policy("PACT", period_windows=1), ratio="1:2"
        )
        long = run_policy(
            workload, make_policy("PACT", period_windows=20), ratio="1:2"
        )
        assert short.slowdown(base) <= long.slowdown(base) * 1.05
