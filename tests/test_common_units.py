"""Units, constants, and tier specifications."""

import pytest

from repro.common import units


def test_page_geometry():
    assert units.PAGE_SIZE == 4096
    assert units.HUGE_PAGE_SIZE == 2 * 1024 * 1024
    assert units.PAGES_PER_HUGE_PAGE == 512


def test_cycle_conversions_roundtrip():
    ns = 123.4
    assert units.cycles_to_ns(units.ns_to_cycles(ns)) == pytest.approx(ns)


def test_cycles_to_ms():
    # 2.2 GHz: 2.2e6 cycles per ms.
    assert units.cycles_to_ms(2.2e6) == pytest.approx(1.0)


def test_testbed_latencies_match_paper():
    assert units.DRAM_SPEC.latency_ns == 90.0
    assert units.NUMA_SPEC.latency_ns == 140.0
    assert units.CXL_SPEC.latency_ns == 190.0
    # CXL is ~2.1x DRAM latency (§5.1).
    assert units.CXL_SPEC.latency_ns / units.DRAM_SPEC.latency_ns == pytest.approx(2.11, abs=0.01)


def test_latency_cycles_at_testbed_frequency():
    assert units.DRAM_SPEC.latency_cycles == pytest.approx(90.0 * 2.2)


def test_bandwidth_bytes_per_ns():
    # 52 GB/s is ~55.8 bytes/ns.
    assert units.DRAM_SPEC.bytes_per_ns() == pytest.approx(55.83, rel=0.01)


def test_latency_configs_cover_three_setups():
    names = [spec.name for spec in units.LATENCY_CONFIGS]
    assert names == ["dram", "numa", "cxl"]


def test_tier_spec_is_immutable():
    with pytest.raises(AttributeError):
        units.DRAM_SPEC.latency_ns = 100.0
