"""Fine-grained behaviours of individual baseline policies."""

import numpy as np
import pytest

from repro.baselines.alto import AltoPolicy
from repro.baselines.colloid import ColloidPolicy
from repro.baselines.memtis import MemtisPolicy
from repro.baselines.nomad import NomadPolicy
from repro.hw.pebs import PebsBatch
from repro.hw.perf import PerfDelta
from repro.mem.page import Tier
from repro.mem.tiered import TieredMemory
from repro.sim.config import MachineConfig
from repro.sim.policy_api import Observation


def make_obs(
    memory,
    window=0,
    fast_latency=200.0,
    slow_latency=450.0,
    slow_misses=50_000.0,
    pebs_pages=None,
    pebs_counts=None,
    tor_mlp=None,
    touched_slow=None,
):
    if pebs_pages is None:
        pebs_pages = np.arange(100, 160)
        pebs_counts = np.ones(60, dtype=np.int64)
    perf = PerfDelta(
        cycles=4.4e7,
        llc_misses={Tier.FAST: 100_000.0, Tier.SLOW: slow_misses},
        stall_cycles={Tier.FAST: 1e6, Tier.SLOW: 8e6},
        bytes={Tier.FAST: 1e7, Tier.SLOW: 5e6},
        effective_latency_cycles={Tier.FAST: fast_latency, Tier.SLOW: slow_latency},
    )
    return Observation(
        window=window,
        window_cycles=4.4e7,
        perf=perf,
        tor_mlp=tor_mlp or {Tier.FAST: 8.0, Tier.SLOW: 3.0},
        pebs=PebsBatch(pages=pebs_pages, counts=pebs_counts, rate=400, overhead_cycles=0.0),
        memory=memory,
        touched_slow=touched_slow if touched_slow is not None else np.arange(200, 260),
    )


@pytest.fixture
def mem256():
    config = MachineConfig()
    memory = TieredMemory(256, 128, 256, config.fast_spec, config.slow_spec)
    memory.allocate_first_touch(np.arange(256))
    return memory


class TestColloidMechanics:
    def test_no_promotion_when_balanced(self, mem256):
        policy = ColloidPolicy()
        obs = make_obs(mem256, fast_latency=450.0, slow_latency=450.0)
        assert policy.observe(obs).empty

    def test_no_promotion_when_fast_slower(self, mem256):
        policy = ColloidPolicy()
        obs = make_obs(mem256, fast_latency=600.0, slow_latency=450.0)
        assert policy.observe(obs).empty

    def test_promotes_hottest_sampled_pages(self, mem256):
        policy = ColloidPolicy()
        counts = np.ones(60, dtype=np.int64)
        counts[10] = 50  # page 138 is the hottest sampled slow page
        obs = make_obs(mem256, pebs_pages=np.arange(128, 188), pebs_counts=counts)
        decision = policy.observe(obs)
        assert 138 in decision.promote

    def test_volume_scales_with_imbalance(self, mem256):
        small = ColloidPolicy().observe(make_obs(mem256, slow_latency=250.0,
                                                 pebs_pages=np.arange(128, 250),
                                                 pebs_counts=np.ones(122, dtype=np.int64)))
        big = ColloidPolicy().observe(make_obs(mem256, slow_latency=900.0,
                                               pebs_pages=np.arange(128, 250),
                                               pebs_counts=np.ones(122, dtype=np.int64)))
        assert big.promote.size >= small.promote.size


class TestAltoMechanics:
    def test_high_mlp_throttles(self, mem256):
        shared = dict(
            pebs_pages=np.arange(128, 250),
            pebs_counts=np.ones(122, dtype=np.int64),
        )
        colloid = ColloidPolicy().observe(make_obs(mem256, **shared))
        alto = AltoPolicy().observe(
            make_obs(mem256, tor_mlp={Tier.FAST: 16.0, Tier.SLOW: 16.0}, **shared)
        )
        assert alto.promote.size < max(colloid.promote.size, 1)

    def test_low_mlp_runs_at_full_gain(self, mem256):
        policy = AltoPolicy(mlp_reference=2.0)
        policy.observe(make_obs(mem256, tor_mlp={Tier.FAST: 1.5, Tier.SLOW: 1.5}))
        assert policy.gain == pytest.approx(policy._base_gain)


class TestMemtisMechanics:
    def test_cooling_halves_counters(self, mem256):
        policy = MemtisPolicy(cooling_period_windows=2)

        class _M:
            config = MachineConfig()
            class workload:
                footprint_pages = 256
        policy.attach(_M())
        policy.observe(make_obs(mem256, window=1))
        before = policy._hotness.sum()
        policy.observe(
            make_obs(mem256, window=2, pebs_pages=np.array([0]), pebs_counts=np.array([0]))
        )
        assert policy._hotness.sum() <= before * 0.55


class TestNomadMechanics:
    def test_abort_rate_grows_with_pressure(self):
        policy = NomadPolicy(seed=1)
        # Pressure 1.0 (full fast tier) vs 0.5: fewer survivors at 1.0.
        full = min(0.9, max(1.0 - 0.5, 0.0) * policy.abort_pressure_scale / 4.0)
        empty = min(0.9, max(0.5 - 0.5, 0.0) * policy.abort_pressure_scale / 4.0)
        assert full > empty == 0.0

    def test_window_overhead_scales_with_touched(self):
        policy = NomadPolicy()

        class _Obs:
            touched_slow = np.arange(100)
            touched_fast = np.arange(0)

        class _Obs2:
            touched_slow = np.arange(1000)
            touched_fast = np.arange(0)

        assert policy.window_overhead_cycles(_Obs2()) == pytest.approx(
            10 * policy.window_overhead_cycles(_Obs())
        )
