"""Property tests for the vectorised policy window loop (ISSUE 10).

Every optimisation in this PR is gated on exactness, and each gets an
explicit oracle here:

* the fused plan/apply migration path (:meth:`MigrationEngine.apply_window`)
  against the per-hop reference (:meth:`apply_window_legacy`) over
  randomised placements, multi-tier cascades, direct demotion, THP
  expansion, and admission-hook trimming;
* the scalar small-batch stall solves against the vectorised paths they
  shortcut (bit-identity, not closeness);
* the lazily-recomputed per-tier activity sums against a from-scratch
  masked sum after arbitrary touch/move/first-touch interleavings;
* the tracker's incrementally-merged tracked-page list against a
  ``flatnonzero`` rebuild;
* ``TieredMemory.cold_count`` (the memoised space-budget input) against
  the gather-and-compare it replaced;
* the attach-time prestaged plans (:class:`EntryMetaPlan`,
  :class:`PebsPosPlan` + :meth:`KeyedPebsSampler.merge_window_pos`)
  against the live per-window computation they replace.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.hw.stall as stall_mod
from repro.common.units import CXL_SPEC, DRAM_SPEC
from repro.hw.access import AccessGroup
from repro.hw.drawplan import build_entry_meta, build_pebs_pos
from repro.hw.stall import StallModel
from repro.hw.substream import KeyedPebsSampler, PebsRecordPlan
from repro.mem.page import Tier
from repro.mem.tiered import TieredMemory
from repro.mem.topology import make_topology
from repro.sim.config import MachineConfig
from repro.sim.migration import MigrationEngine
from repro.sim.policy_api import Decision


# -- randomised state builders ---------------------------------------------------


def make_config(num_tiers=2, thp=False, demotion="through"):
    topology = None
    if num_tiers == 3:
        topology = make_topology("dram-cxl-nvme", demotion=demotion)
    return MachineConfig(thp=thp, topology=topology)


def make_memory(config, footprint, fast, mid=None):
    if config.topology is None:
        return TieredMemory(footprint, fast, footprint, DRAM_SPEC, CXL_SPEC)
    caps = [fast, footprint if mid is None else mid, footprint]
    return TieredMemory(
        footprint,
        capacities=caps,
        specs=config.topology.effective_specs(),
        page_frame_costs=config.topology.page_frame_costs(footprint),
    )


def randomise_state(memory, rng, windows=4):
    """Allocate every page and build up believable LRU/activity state."""
    footprint = memory.footprint_pages
    memory.allocate_first_touch(rng.permutation(footprint))
    for w in range(1, windows + 1):
        n = int(rng.integers(1, footprint))
        pages = np.unique(rng.integers(0, footprint, size=n))
        counts = rng.integers(1, 50, size=pages.size).astype(float)
        memory.touch(pages, window=w, counts=counts)


def clone_memory(memory, config, footprint, fast, mid=None):
    """A second memory with identical observable state."""
    other = make_memory(config, footprint, fast, mid=mid)
    other.placement[:] = memory.placement
    other.activity[:] = memory.activity
    other.last_touch[:] = memory.last_touch
    other.arrival[:] = memory.arrival
    other.used = list(memory.used)
    other._frames_used = list(memory._frames_used)
    other._last_decay_window = memory._last_decay_window
    other._arrival_counter = memory._arrival_counter
    # Derived caches rebuild lazily; mark the sums stale so both sides
    # recompute from the same activity array.
    other._activity_sums_stale = True
    other._placement_gen += 1
    other._activity_gen += 1
    return other


def random_decision(rng, footprint):
    kind = rng.integers(0, 4)
    promote = np.unique(rng.integers(0, footprint, size=int(rng.integers(0, 40))))
    demote = np.unique(rng.integers(0, footprint, size=int(rng.integers(0, 40))))
    demote_lru = int(rng.integers(0, footprint // 2)) if kind != 1 else 0
    mode = ("cold", "lru_tail", "fifo")[int(rng.integers(0, 3))]
    return Decision(
        promote=promote.astype(np.int64),
        demote=demote.astype(np.int64),
        demote_lru=demote_lru,
        demote_victim_mode=mode,
    )


def assert_outcomes_equal(fused, legacy):
    assert fused.promoted == legacy.promoted
    assert fused.demoted == legacy.demoted
    assert fused.cost_cycles == legacy.cost_cycles
    assert fused.bytes_moved == legacy.bytes_moved
    assert fused.link_bytes == legacy.link_bytes
    np.testing.assert_array_equal(fused.promoted_pages, legacy.promoted_pages)
    np.testing.assert_array_equal(fused.demoted_pages, legacy.demoted_pages)


def run_fused_vs_legacy(seed, num_tiers=2, thp=False, demotion="through", admission=None):
    rng = np.random.default_rng(seed)
    footprint = int(rng.integers(96, 512))
    fast = int(rng.integers(16, footprint))
    mid = int(rng.integers(8, footprint)) if num_tiers == 3 else None
    config = make_config(num_tiers=num_tiers, thp=thp, demotion=demotion)

    mem_a = make_memory(config, footprint, fast, mid=mid)
    randomise_state(mem_a, rng)
    mem_b = clone_memory(mem_a, config, footprint, fast, mid=mid)

    eng_a = MigrationEngine(mem_a, config)
    eng_b = MigrationEngine(mem_b, config)
    if admission is not None:
        eng_a.admission = admission
        eng_b.admission = admission

    for trial in range(3):
        decision = random_decision(rng, footprint)
        fused = eng_a.apply_window(decision)
        legacy = eng_b.apply_window_legacy(decision)
        assert_outcomes_equal(fused, legacy)
        np.testing.assert_array_equal(mem_a.placement, mem_b.placement)
        assert mem_a.used == mem_b.used
        assert mem_a._frames_used == mem_b._frames_used
        # Keep the two LRU states in lockstep for the next trial.
        w = 10 + trial
        pages = np.unique(rng.integers(0, footprint, size=30))
        counts = rng.integers(1, 9, size=pages.size).astype(float)
        mem_a.touch(pages, window=w, counts=counts)
        mem_b.touch(pages, window=w, counts=counts)
    assert eng_a.total_promoted == eng_b.total_promoted
    assert eng_a.total_demoted == eng_b.total_demoted
    assert eng_a.total_cost_cycles == eng_b.total_cost_cycles


class TestFusedApplyMatchesLegacy:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_two_tier(self, seed):
        run_fused_vs_legacy(seed)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_three_tier_demote_through_cascades(self, seed):
        run_fused_vs_legacy(seed, num_tiers=3, demotion="through")

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_three_tier_direct(self, seed):
        run_fused_vs_legacy(seed, num_tiers=3, demotion="direct")

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_thp_expansion(self, seed):
        run_fused_vs_legacy(seed, thp=True)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_admission_hook_trims_hops(self, seed):
        def admit(src, dst, pages):
            # Deterministically veto a slice of every hop.
            return pages[pages % 3 != 0]

        run_fused_vs_legacy(seed, num_tiers=3, admission=admit)

    def test_empty_decision_is_a_noop(self):
        config = make_config()
        memory = make_memory(config, 128, 64)
        randomise_state(memory, np.random.default_rng(0))
        engine = MigrationEngine(memory, config)
        before = memory.placement.copy()
        outcome = engine.apply_window(Decision.none())
        assert outcome.promoted == outcome.demoted == 0
        assert outcome.cost_cycles == 0.0
        np.testing.assert_array_equal(memory.placement, before)

    def test_demote_lru_nonpositive_skips_victim_walk(self):
        config = make_config()
        memory = make_memory(config, 128, 64)
        randomise_state(memory, np.random.default_rng(1))
        engine = MigrationEngine(memory, config)
        outcome = engine.demote_lru(0, protect=np.empty(0, dtype=np.int64))
        assert outcome.demoted == 0 and outcome.cost_cycles == 0.0


# -- scalar stall solves ---------------------------------------------------------


def random_groups(rng, footprint, n_groups):
    groups = []
    for gi in range(n_groups):
        n = int(rng.integers(1, 64))
        pages = rng.choice(footprint, size=min(n, footprint), replace=False).astype(np.int64)
        counts = rng.integers(1, 500, size=pages.size).astype(np.int64)
        groups.append(
            AccessGroup(
                pages=pages,
                counts=counts,
                mlp=float(rng.uniform(1.0, 12.0)),
                load_fraction=float(rng.uniform(0.1, 1.0)),
                label=f"g{gi}",
            )
        )
    return groups


def assert_hw_equal(a, b):
    assert a.duration_cycles == b.duration_cycles
    for tier in a.tier_loads:
        va, vb = a.tier_loads[tier], b.tier_loads[tier]
        assert va.stall_cycles == vb.stall_cycles
        assert va.effective_latency_cycles == vb.effective_latency_cycles
        assert va.utilisation == vb.utilisation
        assert va.mlp == vb.mlp


class TestScalarSolveMatchesVectorised:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_solve_batch(self, seed):
        rng = np.random.default_rng(seed)
        footprint = 256
        placement = rng.choice(np.array([0, 1], dtype=np.int8), size=footprint)
        groups = random_groups(rng, footprint, int(rng.integers(1, 8)))
        compute = float(rng.uniform(1e5, 1e7))
        extra = {Tier.FAST: float(rng.uniform(0, 1e8)), Tier.SLOW: float(rng.uniform(0, 1e8))}

        model = StallModel(DRAM_SPEC, CXL_SPEC)
        batch = model.split_groups(groups, placement)
        assert batch.n <= stall_mod._SCALAR_SOLVE_ROWS
        scalar = model.solve(batch, compute, extra_bytes=extra)
        scalar_units = batch.unit_stall_cycles.copy()

        saved = stall_mod._SCALAR_SOLVE_ROWS
        try:
            stall_mod._SCALAR_SOLVE_ROWS = -1
            batch2 = model.split_groups(groups, placement)
            vector = model.solve(batch2, compute, extra_bytes=extra)
        finally:
            stall_mod._SCALAR_SOLVE_ROWS = saved
        assert_hw_equal(scalar, vector)
        np.testing.assert_array_equal(scalar_units, batch2.unit_stall_cycles)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_solve_many(self, seed):
        rng = np.random.default_rng(seed)
        footprint = 256
        model = StallModel(DRAM_SPEC, CXL_SPEC)
        R = int(rng.integers(2, 6))
        windows = []
        for _ in range(R):
            placement = rng.choice(np.array([0, 1], dtype=np.int8), size=footprint)
            windows.append((random_groups(rng, footprint, int(rng.integers(1, 6))), placement))
        computes = [float(rng.uniform(1e5, 1e7)) for _ in range(R)]
        extras = [None] * R
        extra_cycles = [float(rng.uniform(0, 1e5)) for _ in range(R)]

        # One splitting model per run, as the multi-run driver holds:
        # split_groups hands out views of per-model scratch columns.
        models = [StallModel(DRAM_SPEC, CXL_SPEC) for _ in range(R)]
        batches = [m.split_groups(g, p) for m, (g, p) in zip(models, windows)]
        scalar = model.solve_many(batches, computes, extras, extra_cycles)
        scalar_units = [b.unit_stall_cycles.copy() for b in batches]

        saved = stall_mod._SCALAR_SOLVE_ROWS
        try:
            stall_mod._SCALAR_SOLVE_ROWS = -1
            batches2 = [m.split_groups(g, p) for m, (g, p) in zip(models, windows)]
            vector = model.solve_many(batches2, computes, extras, extra_cycles)
        finally:
            stall_mod._SCALAR_SOLVE_ROWS = saved
        for r in range(R):
            assert_hw_equal(scalar[r], vector[r])
            np.testing.assert_array_equal(scalar_units[r], batches2[r].unit_stall_cycles)


# -- lazy activity sums / incremental caches -------------------------------------


class TestLazyActivitySums:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_matches_from_scratch_sum(self, seed):
        rng = np.random.default_rng(seed)
        footprint = int(rng.integers(64, 512))
        fast = int(rng.integers(16, footprint))
        memory = TieredMemory(footprint, fast, footprint, DRAM_SPEC, CXL_SPEC)
        memory.allocate_first_touch(rng.permutation(footprint))
        for w in range(1, 6):
            pages = np.unique(rng.integers(0, footprint, size=int(rng.integers(1, 200))))
            memory.touch(pages, window=w, counts=rng.integers(1, 20, size=pages.size).astype(float))
            if rng.integers(0, 2):
                movable = np.flatnonzero(memory.placement == int(Tier.SLOW))
                if movable.size:
                    memory.move(movable[: int(rng.integers(1, movable.size + 1))], Tier.FAST)
            for tier in memory.tiers:
                resident = memory.placement == int(tier)
                expected = float(memory.activity[resident].sum())
                assert memory.activity_sum(tier) == pytest.approx(expected, rel=1e-9)
        memory.check_accounting()

    def test_check_accounting_refreshes_stale_sums(self):
        memory = TieredMemory(128, 64, 128, DRAM_SPEC, CXL_SPEC)
        memory.allocate_first_touch(np.arange(128))
        memory.touch(np.arange(64), window=1, counts=np.full(64, 3.0))
        assert memory._activity_sums_stale
        memory.check_accounting()
        assert not memory._activity_sums_stale


class TestIncrementalCachesMatchRebuild:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_tracker_list_matches_flatnonzero(self, seed):
        from repro.core.tracker import PacTracker

        rng = np.random.default_rng(seed)
        footprint = int(rng.integers(32, 256))
        tracker = PacTracker(footprint)
        for _ in range(6):
            pages = np.unique(rng.integers(0, footprint, size=int(rng.integers(1, 40))))
            stalls = rng.uniform(0, 100, size=pages.size)
            counts = rng.integers(1, 10, size=pages.size)
            tracker.update(pages, stalls, counts)
            if rng.integers(0, 3) == 0:
                drop = np.unique(rng.integers(0, footprint, size=int(rng.integers(1, 10))))
                tracker.drop(drop)
            np.testing.assert_array_equal(
                tracker.tracked_pages(), np.flatnonzero(tracker.tracked)
            )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_cold_count_matches_gather(self, seed):
        rng = np.random.default_rng(seed)
        footprint = int(rng.integers(64, 256))
        memory = TieredMemory(footprint, footprint // 2, footprint, DRAM_SPEC, CXL_SPEC)
        memory.allocate_first_touch(rng.permutation(footprint))
        pages = np.unique(rng.integers(0, footprint, size=footprint // 2))
        memory.touch(pages, window=1, counts=rng.integers(1, 30, size=pages.size).astype(float))
        threshold = float(rng.uniform(0.0, 15.0))
        resident = np.flatnonzero(memory.placement == int(Tier.FAST))
        expected = int(np.count_nonzero(memory.activity[resident] <= threshold))
        assert memory.cold_count(Tier.FAST, threshold) == expected
        # Memoised second query returns the same value.
        assert memory.cold_count(Tier.FAST, threshold) == expected

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_binner_threshold_matches_top_bin_mask(self, seed):
        from repro.core.binning import AdaptiveBinner

        rng = np.random.default_rng(seed)
        binner = AdaptiveBinner(rng=np.random.default_rng(seed + 1))
        values = rng.uniform(0, 100, size=int(rng.integers(2, 300)))
        values[rng.random(values.size) < 0.2] = 0.0
        binner.observe(values, n_tracked=values.size, n_candidates=5)
        positive = values > 0.0
        if positive.any():
            threshold = binner.top_bin_threshold(float(values[positive].max()))
            if threshold <= 0.0:
                fast_mask = positive
            else:
                fast_mask = positive & (values >= threshold)
            np.testing.assert_array_equal(fast_mask, binner.top_bin_mask(values))


# -- prestaged trace plans -------------------------------------------------------


class _FakeTrace:
    def __init__(self, columns):
        self.columns = columns


def random_trace_columns(rng, num_windows=5, max_groups=3, footprint=200):
    wgp = [0]
    gpp = [0]
    pages_parts = []
    counts_parts = []
    for _ in range(num_windows):
        n_groups = int(rng.integers(1, max_groups + 1))
        window_pages = np.sort(
            rng.choice(footprint, size=int(rng.integers(1, 60)), replace=False)
        )
        splits = np.sort(rng.choice(window_pages.size + 1, size=n_groups - 1))
        chunks = np.split(window_pages, splits)
        for chunk in chunks:
            pages_parts.append(chunk.astype(np.int64))
            counts_parts.append(rng.integers(1, 50, size=chunk.size).astype(np.int64))
            gpp.append(gpp[-1] + chunk.size)
        wgp.append(wgp[-1] + n_groups)
    return {
        "window_group_ptr": np.asarray(wgp, dtype=np.int64),
        "group_page_ptr": np.asarray(gpp, dtype=np.int64),
        "pages": np.concatenate(pages_parts),
        "counts": np.concatenate(counts_parts),
    }


class TestPrestagedPlans:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_entry_meta_matches_per_window_recompute(self, seed):
        rng = np.random.default_rng(seed)
        cols = random_trace_columns(rng)
        num_tiers = 2
        meta = build_entry_meta(_FakeTrace(cols), num_tiers)
        wgp = cols["window_group_ptr"]
        gpp = cols["group_page_ptr"]
        assert meta.counts_positive  # every generated count is >= 1
        for w in range(wgp.size - 1):
            e0, e1 = gpp[wgp[w]], gpp[wgp[w + 1]]
            key_base, counts_f = meta.window(w)
            np.testing.assert_array_equal(
                counts_f, cols["counts"][e0:e1].astype(np.float64)
            )
            expected_base = np.concatenate(
                [
                    np.full(gpp[g + 1] - gpp[g], (g - wgp[w]) * num_tiers, dtype=np.intp)
                    for g in range(wgp[w], wgp[w + 1])
                ]
            )
            if key_base is None:
                # Single-group trace: the base is the all-zeros no-op.
                assert not (expected_base != 0).any()
            else:
                np.testing.assert_array_equal(key_base, expected_base)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_pebs_pos_merge_matches_live_merge(self, seed):
        rng = np.random.default_rng(seed)
        footprint = 200
        cols = random_trace_columns(rng, footprint=footprint)
        wgp = cols["window_group_ptr"]
        gpp = cols["group_page_ptr"]
        entry_ptr = np.asarray(gpp[wgp], dtype=np.int64)
        records = rng.integers(0, 3, size=cols["pages"].size).astype(np.int64)
        plan = PebsRecordPlan(records, entry_ptr)
        pos = build_pebs_pos(plan, _FakeTrace(cols))
        sampler = KeyedPebsSampler(
            seed=7, rate=101, cycles_per_record=10.0, sampled_codes=[1], num_tiers=2
        )
        placement = rng.choice(np.array([0, 1], dtype=np.int8), size=footprint)
        for w in range(wgp.size - 1):
            pages = cols["pages"][entry_ptr[w] : entry_ptr[w + 1]]
            recs = plan.window_records(w)
            live = sampler.merge_window(recs, pages, placement)
            pos_idx, pages_pos, recs_pos, srt = pos.window(w)
            fused = sampler.merge_window_pos(
                pos_idx, pages_pos, recs_pos, placement[pages], srt
            )
            np.testing.assert_array_equal(fused.pages, live.pages)
            np.testing.assert_array_equal(fused.counts, live.counts)
            assert fused.overhead_cycles == live.overhead_cycles
            assert fused.latencies is None and live.latencies is None

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_pebs_pos_merge_all_codes(self, seed):
        """A sampler observing every tier must keep the -1 wraparound
        semantics of the legacy mask (no tier selection at all)."""
        rng = np.random.default_rng(seed)
        footprint = 150
        cols = random_trace_columns(rng, footprint=footprint)
        wgp = cols["window_group_ptr"]
        gpp = cols["group_page_ptr"]
        entry_ptr = np.asarray(gpp[wgp], dtype=np.int64)
        records = rng.integers(0, 2, size=cols["pages"].size).astype(np.int64)
        plan = PebsRecordPlan(records, entry_ptr)
        pos = build_pebs_pos(plan, _FakeTrace(cols))
        sampler = KeyedPebsSampler(
            seed=3, rate=59, cycles_per_record=5.0, sampled_codes=[0, 1], num_tiers=2
        )
        placement = rng.choice(np.array([0, 1], dtype=np.int8), size=footprint)
        for w in range(wgp.size - 1):
            pages = cols["pages"][entry_ptr[w] : entry_ptr[w + 1]]
            live = sampler.merge_window(plan.window_records(w), pages, placement)
            pos_idx, pages_pos, recs_pos, srt = pos.window(w)
            fused = sampler.merge_window_pos(
                pos_idx, pages_pos, recs_pos, placement[pages], srt
            )
            np.testing.assert_array_equal(fused.pages, live.pages)
            np.testing.assert_array_equal(fused.counts, live.counts)
            assert fused.overhead_cycles == live.overhead_cycles
