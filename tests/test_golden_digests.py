"""Golden ``RunResult`` digests: the hot-path optimisations must be exact.

The expected hashes below were recorded by running the *pre-optimisation*
simulator (commit 0bc9088, before the incremental tier accounting, top-k
candidate selection, and PEBS/traffic vectorisation) over a small
(policy x workload x THP x contender) matrix.  Every future run must
reproduce them bit-for-bit: same seeds in, same ``runtime_cycles``,
placements, migration counts, and serialised result out.  If an
intentional behaviour change breaks these, re-record the digests AND
bump ``CACHE_VERSION`` -- the two must move together, because cached
results from an older simulator would otherwise be served as current.
"""

from __future__ import annotations

import pytest

from repro.baselines import make_policy
from repro.exp.cache import CACHE_VERSION, canonical, content_hash, result_to_dict
from repro.exp.spec import PolicySpec, RunRequest, WorkloadSpec
from repro.mem.page import Tier
from repro.sim.config import MachineConfig
from repro.sim.engine import run_policy
from repro.workloads import make_workload
from repro.workloads.mlc import MlcContender

#: (policy, workload, thp, contender_threads) -> pre-optimisation digest.
GOLDEN_DIGESTS = {
    ("PACT", "bc-kron", False, 0): "c108a8b943090b51cee45c2d340a71d3acc1b3df7eb615cdabc39cab0771352b",
    ("PACT", "bc-kron", True, 0): "a7b803d506341ebbb28500766097f4f0f494e9a25b77b613a13b92f728d67f17",
    ("PACT", "bc-kron", False, 2): "6ef9f8e31c7561822c0cc6abfe859d0939841ebd50f81589ca733500996646eb",
    ("PACT", "gups", False, 0): "e78d25afa4061eddcff7afdb47dff1954af3afbeff3db68cbc680d522126c1f4",
    ("PACT", "gups", True, 0): "40737ae6bca2f0cc4058d509b832d469c662f51462fbf93841fe76c8528f087c",
    ("PACT", "gups", False, 2): "58f738280c7e380aa25cd15b8782252ab70d94c942ecdda5efb9533f3e8d4bfe",
    ("Memtis", "bc-kron", False, 0): "d53fe0f5c274d12ce58bfafbc835053f02afbf3814b01fae2be33943185731b1",
    ("Memtis", "bc-kron", True, 0): "ff9249e1c9191d2dc7ae54d17f4116f710db67b841c6efc0d292c2e191f34a11",
    ("Memtis", "bc-kron", False, 2): "e3e96c409eed213b484283b8f09c1284f123befa57753f5e8c17337403f77dc0",
    ("Memtis", "gups", False, 0): "02bd6aadf537bc4ac6108ce53f426f1b6d4efdefc38616303af99340fa4c6c02",
    ("Memtis", "gups", True, 0): "02bd6aadf537bc4ac6108ce53f426f1b6d4efdefc38616303af99340fa4c6c02",
    ("Memtis", "gups", False, 2): "275de98097addb48a446436fd81bba1d25fd36856b9e569bb3da6f3c6a34a984",
    ("NoTier", "bc-kron", False, 0): "92f9b045d0fc858b38ae16a1c14dfc8314c82bf0ae806f10b3ac1aea35a250d7",
    ("NoTier", "bc-kron", True, 0): "92f9b045d0fc858b38ae16a1c14dfc8314c82bf0ae806f10b3ac1aea35a250d7",
    ("NoTier", "bc-kron", False, 2): "70a73f084d6bb19fb9384bd69bf12bffa5370898b4b61479e0b10c24ef31206c",
    ("NoTier", "gups", False, 0): "8c351e95f6c5f2f16f6ffdaf99cb1398e3d5987d5910a8b8b342b5fb0ae499a2",
    ("NoTier", "gups", True, 0): "8c351e95f6c5f2f16f6ffdaf99cb1398e3d5987d5910a8b8b342b5fb0ae499a2",
    ("NoTier", "gups", False, 2): "8409211002a91ba06c6f4dd5157946d432030e1f050b90ac8e5e05ae6915bfe3",
}

#: The same matrix under RNG schema 2 (counter-keyed substreams,
#: :mod:`repro.hw.substream`).  Schema 2 is a *different* draw
#: convention by design -- per-(seed, purpose, window) Philox keys
#: instead of sequential streams -- so these digests differ from
#: ``GOLDEN_DIGESTS`` yet must be every bit as stable: live, replayed,
#: and prestaged execution all have to reproduce them exactly.
GOLDEN_DIGESTS_SCHEMA2 = {
    ("Memtis", "bc-kron", False, 0): "72483878461f0d53f5d3e2a5c07b0812014d9e8e498e2b15418ba2587985dd14",
    ("Memtis", "bc-kron", False, 2): "a6e0bcabc1ad0ad98dae5eb56bf897d3c067e92ae3e3ae42f6208d425f8f63fa",
    ("Memtis", "bc-kron", True, 0): "0e7e72e4e2d1010b0820e53369d2723fd9a8f792f4227fdf2c8ecd652a54d7bd",
    ("Memtis", "gups", False, 0): "dc182507cf474119f3a19a2a8a16a13500660fb5a11bdca27f5abdb942af3245",
    ("Memtis", "gups", False, 2): "7f7c6820d77ed03f8670d0a549bc0e3213b306e1623ee8d60d72c1b1763349de",
    ("Memtis", "gups", True, 0): "dc182507cf474119f3a19a2a8a16a13500660fb5a11bdca27f5abdb942af3245",
    ("NoTier", "bc-kron", False, 0): "d4def1df6ca9f12d7eecb8e9e5e68d9936a2b4400f5704a4138ba556f9c50195",
    ("NoTier", "bc-kron", False, 2): "b739700df6a9245bdf934a9becf41bfb3e9f820c9e445682bc5108897810a432",
    ("NoTier", "bc-kron", True, 0): "d4def1df6ca9f12d7eecb8e9e5e68d9936a2b4400f5704a4138ba556f9c50195",
    ("NoTier", "gups", False, 0): "c723a78ed057c1de34f1fa4c7a6c2e88a0e186db242e37d35e6a7bc6aa3661ad",
    ("NoTier", "gups", False, 2): "edb03f98c389cfbc955d71600039393b4de73f6af8a3a304278cde0a96764f17",
    ("NoTier", "gups", True, 0): "c723a78ed057c1de34f1fa4c7a6c2e88a0e186db242e37d35e6a7bc6aa3661ad",
    ("PACT", "bc-kron", False, 0): "85ea1002d2bf39c8d795f2f5d4f3757c6c733f709bd8f84ff5b4170196075460",
    ("PACT", "bc-kron", False, 2): "22c93ecc479b0ced9c8c029b9c32e3978d826bf04d8f0ade5e6c9ff4662f7ffa",
    ("PACT", "bc-kron", True, 0): "2b585196bcbdff528a8c6ca3a4c04723b9af2747c54f1146999176db7240f1bf",
    ("PACT", "gups", False, 0): "10a700c7048d234fe131302aabaf233b755b02f447ecb07d8c1cf7c1b575e0a4",
    ("PACT", "gups", False, 2): "854214d10e6c4be26c574371d550c5e0eadf1b15a3b1b60ee56c5bc4220db62a",
    ("PACT", "gups", True, 0): "30dccb4e30e96946544885f6934242b8e8f34fa9f868141ad7b6e809191d6062",
}

#: Two pinned cache keys: request fingerprints are input-derived, so
#: they must survive performance work untouched (a key change silently
#: orphans every cached result).
GOLDEN_CACHE_KEYS = [
    (
        dict(workload="bc-kron", policy="PACT", ratio="1:4", seed=0, thp=False),
        "059342919c9350773556f3bf2a18fc2bc799e5fc9aab8211e301a8161b736e84",
    ),
    (
        dict(workload="gups", policy="Memtis", ratio="1:2", seed=1, thp=True),
        "128186336c41ce5c47acc188fb5838da14a9cf4da776a041b87cbec91486db60",
    ),
]


def result_digest(
    policy, workload, thp, contender_threads, trace_store=None, rng_schema=None
):
    config = MachineConfig(thp=thp, rng_schema=rng_schema)
    contender = (
        MlcContender(threads=contender_threads, tier=Tier.SLOW)
        if contender_threads
        else None
    )
    instance = make_workload(workload, total_misses=2_000_000)
    if trace_store is not None:
        instance = trace_store.replay(instance)
    result = run_policy(
        instance,
        make_policy(policy),
        ratio="1:4",
        config=config,
        seed=0,
        contender=contender,
    )
    return content_hash(canonical(result_to_dict(result)))


#: Extended scenarios beyond the original 18-entry matrix: a CHMU-sampler
#: run (the CXL 3.2 hotness-monitoring path never covered above) and a
#: traced colocation run (multi-member traffic, per-member metrics, and
#: the window-trace serialisation, which pins the columnar recorder).
#: Recorded with the same pre-columnar simulator as ``GOLDEN_DIGESTS``.
GOLDEN_CHMU_DIGEST = "b8ad260258a3e5cb40b9674db35ba6e2685e4adef172b8e15f234ffb0a3fc8e0"
GOLDEN_COLOCATION_DIGEST = "516ecd91d8a20b2ea03a227249f79eff6bf16be40f4caeb0cc75b4d6e555fb2d"
GOLDEN_CHMU_DIGEST_SCHEMA2 = "74826f45978e894750e2b0058c63adadf8153d459d133023f0f48ca631233d07"
GOLDEN_COLOCATION_DIGEST_SCHEMA2 = "af7298151612fc9e08c45918bec6df99a0fcacece78ad1ae8c3a3df4b2f53ca6"


def chmu_digest(trace_store=None, rng_schema=None):
    workload = make_workload("gups", total_misses=2_000_000)
    if trace_store is not None:
        workload = trace_store.replay(workload)
    result = run_policy(
        workload,
        make_policy("PACT", access_sampler="chmu"),
        ratio="1:4",
        config=MachineConfig(rng_schema=rng_schema),
        seed=0,
    )
    return content_hash(canonical(result_to_dict(result)))


def colocation_digest(trace_store=None, rng_schema=None):
    from repro.workloads import ColocatedWorkload, Masim

    workload = ColocatedWorkload(
        [
            Masim(
                pattern="sequential",
                footprint_pages=6_144,
                total_misses=1_000_000,
                misses_per_window=160_000,
                seed=41,
            ),
            Masim(
                pattern="random",
                footprint_pages=6_144,
                total_misses=1_000_000,
                misses_per_window=95_000,
                seed=42,
            ),
        ]
    )
    if trace_store is not None:
        workload = trace_store.replay(workload)
    result = run_policy(
        workload,
        make_policy("PACT"),
        ratio="1:1",
        config=MachineConfig(rng_schema=rng_schema),
        seed=8,
        trace=True,
    )
    return content_hash(canonical(result_to_dict(result)))


class TestGoldenDigests:
    @pytest.mark.parametrize(
        "policy,workload,thp,contender", sorted(GOLDEN_DIGESTS), ids=lambda v: str(v)
    )
    def test_run_result_bit_identical(self, policy, workload, thp, contender):
        expected = GOLDEN_DIGESTS[(policy, workload, thp, contender)]
        assert result_digest(policy, workload, thp, contender) == expected

    def test_chmu_sampler_bit_identical(self):
        assert chmu_digest() == GOLDEN_CHMU_DIGEST

    def test_colocation_traced_bit_identical(self):
        assert colocation_digest() == GOLDEN_COLOCATION_DIGEST

    def test_cache_version_pinned(self):
        # The digests above were recorded against CACHE_VERSION 2; a
        # version bump must come with re-recorded digests (and vice
        # versa: identical results need no bump).
        assert CACHE_VERSION == 2

    @pytest.mark.parametrize("params,expected", GOLDEN_CACHE_KEYS, ids=["pact", "memtis"])
    def test_cache_keys_stable(self, params, expected):
        request = RunRequest(
            workload=WorkloadSpec.registry(params["workload"], total_misses=2_000_000),
            policy=PolicySpec(name=params["policy"]),
            ratio=params["ratio"],
            seed=params["seed"],
            config=MachineConfig(thp=params["thp"]),
        )
        assert content_hash(request.fingerprint()) == expected


@pytest.fixture(scope="module")
def trace_store():
    """One in-memory trace store shared across the replay matrix.

    Each distinct workload is recorded exactly once; the 18-scenario
    matrix then replays those recordings, which is precisely the
    record-once/replay-many contract the digests must pin.
    """
    from repro.workloads.tracestore import TraceStore

    return TraceStore()


class TestGoldenDigestsReplayed:
    """The same matrix through record -> replay: bit-identical or bust."""

    @pytest.mark.parametrize(
        "policy,workload,thp,contender", sorted(GOLDEN_DIGESTS), ids=lambda v: str(v)
    )
    def test_replay_bit_identical(self, policy, workload, thp, contender, trace_store):
        expected = GOLDEN_DIGESTS[(policy, workload, thp, contender)]
        assert (
            result_digest(policy, workload, thp, contender, trace_store=trace_store)
            == expected
        )

    def test_chmu_sampler_replay_bit_identical(self, trace_store):
        assert chmu_digest(trace_store=trace_store) == GOLDEN_CHMU_DIGEST

    def test_colocation_traced_replay_bit_identical(self, trace_store):
        assert colocation_digest(trace_store=trace_store) == GOLDEN_COLOCATION_DIGEST

    def test_store_records_each_workload_once(self, trace_store):
        # Re-running a scenario must hit the existing recording, not
        # record again: record-once is what makes replay worth having.
        before = trace_store.stats()
        result_digest("PACT", "gups", False, 0, trace_store=trace_store)
        result_digest("NoTier", "gups", False, 0, trace_store=trace_store)
        after = trace_store.stats()
        assert after["records"] <= before["records"] + 1
        assert after["memory_hits"] >= before["memory_hits"] + 1


class TestGoldenDigestsSchema2:
    """The counter-keyed schema: live draws reproduce the pinned hashes."""

    @pytest.mark.parametrize(
        "policy,workload,thp,contender",
        sorted(GOLDEN_DIGESTS_SCHEMA2),
        ids=lambda v: str(v),
    )
    def test_run_result_bit_identical(self, policy, workload, thp, contender):
        expected = GOLDEN_DIGESTS_SCHEMA2[(policy, workload, thp, contender)]
        assert (
            result_digest(policy, workload, thp, contender, rng_schema=2) == expected
        )

    def test_chmu_sampler_bit_identical(self):
        assert chmu_digest(rng_schema=2) == GOLDEN_CHMU_DIGEST_SCHEMA2

    def test_colocation_traced_bit_identical(self):
        assert colocation_digest(rng_schema=2) == GOLDEN_COLOCATION_DIGEST_SCHEMA2

    def test_schemas_draw_distinct_streams(self):
        # Sanity: schema 2 is a different convention, not a relabelling.
        # If the two matrices ever collide, the schema plumbing is being
        # ignored somewhere (e.g. the config normalisation ate the field).
        assert set(GOLDEN_DIGESTS_SCHEMA2.values()).isdisjoint(
            set(GOLDEN_DIGESTS.values())
        )


class TestGoldenDigestsSchema2Replayed:
    """Replay prestages every schema-2 draw; prestaged == live == pinned."""

    @pytest.mark.parametrize(
        "policy,workload,thp,contender",
        sorted(GOLDEN_DIGESTS_SCHEMA2),
        ids=lambda v: str(v),
    )
    def test_replay_bit_identical(self, policy, workload, thp, contender, trace_store):
        expected = GOLDEN_DIGESTS_SCHEMA2[(policy, workload, thp, contender)]
        assert (
            result_digest(
                policy, workload, thp, contender, trace_store=trace_store, rng_schema=2
            )
            == expected
        )

    def test_chmu_sampler_replay_bit_identical(self, trace_store):
        assert chmu_digest(trace_store=trace_store, rng_schema=2) == GOLDEN_CHMU_DIGEST_SCHEMA2

    def test_colocation_traced_replay_bit_identical(self, trace_store):
        assert (
            colocation_digest(trace_store=trace_store, rng_schema=2)
            == GOLDEN_COLOCATION_DIGEST_SCHEMA2
        )
