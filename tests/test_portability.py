"""The AMD portability path: Little's-law MLP instead of TOR counters.

§4.2.2: AMD platforms expose LLC misses (IBS) and stalls but no
TOR-like queues; MLP can instead be estimated as latency x bandwidth
via Little's Law.  The estimate overestimates absolute MLP (prefetch
traffic) but tracks its temporal variation, which is all PAC needs --
the k calibration absorbs the constant factor.
"""

import pytest

from repro.baselines import make_policy
from repro.core.pact import PactPolicy
from repro.core.sampling import PacSampler
from repro.core.tracker import PacTracker
from repro.core.pac import PacModelCoefficients
from repro.sim.config import MachineConfig
from repro.sim.engine import clear_baseline_cache, ideal_baseline, run_policy
from repro.sim.machine import Machine
from repro.workloads import make_workload

from conftest import TinyWorkload


def test_sampler_rejects_unknown_source():
    with pytest.raises(ValueError):
        PacSampler(PacTracker(8), PacModelCoefficients(400.0), mlp_source="psychic")


def test_littles_law_mlp_overestimates_but_tracks(config):
    """Both sources must rank the same pages at the top, with the
    Little's-law MLP estimate biased high."""
    results = {}
    for source in ("tor", "littles_law"):
        workload = TinyWorkload()
        policy = PactPolicy(mlp_source=source)
        machine = Machine(workload, policy, config=config, fast_capacity_override=0, seed=3)
        machine.run(max_windows=12)
        results[source] = policy
    assert results["littles_law"].sampler.last_mlp > results["tor"].sampler.last_mlp
    # Criticality ordering is preserved: chase half outranks stream half.
    for source, policy in results.items():
        half = policy.tracker.footprint_pages // 2
        chase = policy.tracker.pac[:half].mean()
        stream = policy.tracker.pac[half:].mean()
        assert chase > stream, source


def test_pact_effective_on_amd_style_counters():
    """End to end: PACT with Little's-law MLP still beats NoTier."""
    clear_baseline_cache()
    cfg = MachineConfig()
    workload = make_workload("bc-kron", total_misses=8_000_000)
    base = ideal_baseline(workload, config=cfg)
    amd_pact = run_policy(
        workload, PactPolicy(mlp_source="littles_law"), ratio="1:2", config=cfg
    )
    intel_pact = run_policy(workload, PactPolicy(), ratio="1:2", config=cfg)
    notier = run_policy(workload, make_policy("NoTier"), ratio="1:2", config=cfg)
    assert amd_pact.slowdown(base) < notier.slowdown(base)
    # The two counter paths land close together.
    assert amd_pact.slowdown(base) == pytest.approx(intel_pact.slowdown(base), abs=0.06)
