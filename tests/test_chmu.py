"""CHMU (CXL 3.2 hotness-monitoring) access-sampling backend."""

import numpy as np
import pytest

from repro.baselines import make_policy
from repro.common.units import CXL_SPEC, DRAM_SPEC
from repro.core.pact import PactPolicy
from repro.hw.chmu import ChmuSampler
from repro.hw.stall import GroupTierShare, StallModel
from repro.mem.page import Tier
from repro.sim.config import MachineConfig
from repro.sim.engine import clear_baseline_cache, ideal_baseline, run_policy
from repro.workloads import make_workload


def solved_shares(tier=Tier.SLOW, misses=8_000):
    pages = np.arange(16)
    counts = np.full(16, misses // 16, dtype=np.int64)
    share = GroupTierShare(0, tier, pages, counts, mlp=4.0)
    return StallModel(DRAM_SPEC, CXL_SPEC).solve([share], 1e6).shares


class TestChmuSampler:
    def test_exact_counts(self):
        chmu = ChmuSampler(footprint_pages=64)
        batch = chmu.sample(solved_shares())
        assert batch.rate == 1
        assert batch.total_records == 8_000
        assert np.array_equal(batch.estimated_accesses(), batch.counts)

    def test_only_own_tier_visible(self):
        chmu = ChmuSampler(footprint_pages=64)
        batch = chmu.sample(solved_shares(tier=Tier.FAST))
        assert batch.total_records == 0

    def test_epoch_gating(self):
        chmu = ChmuSampler(footprint_pages=64, epoch_windows=3)
        assert chmu.sample(solved_shares()).total_records == 0
        assert chmu.sample(solved_shares()).total_records == 0
        batch = chmu.sample(solved_shares())
        assert batch.total_records == 3 * 8_000  # whole epoch drained

    def test_hotlist_bounds_report_size(self):
        chmu = ChmuSampler(footprint_pages=64, hotlist_size=4)
        pages = np.arange(16)
        counts = np.arange(1, 17, dtype=np.int64) * 100
        share = GroupTierShare(0, Tier.SLOW, pages, counts, mlp=4.0)
        shares = StallModel(DRAM_SPEC, CXL_SPEC).solve([share], 1e6).shares
        batch = chmu.sample(shares)
        assert batch.pages.size == 4
        # The hotlist keeps the hottest pages.
        assert set(batch.pages) == {12, 13, 14, 15}

    def test_counters_clear_after_drain(self):
        chmu = ChmuSampler(footprint_pages=64)
        first = chmu.sample(solved_shares())
        second = chmu.sample(solved_shares())
        assert first.total_records == second.total_records

    def test_validation(self):
        with pytest.raises(ValueError):
            ChmuSampler(footprint_pages=8, hotlist_size=0)
        with pytest.raises(ValueError):
            ChmuSampler(footprint_pages=8, epoch_windows=0)


class TestPactOnChmu:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            PactPolicy(access_sampler="telepathy")

    def test_pact_with_chmu_beats_notier(self):
        clear_baseline_cache()
        cfg = MachineConfig()
        workload = make_workload("bc-kron", total_misses=8_000_000)
        base = ideal_baseline(workload, config=cfg)
        chmu_pact = run_policy(
            workload, PactPolicy(access_sampler="chmu"), ratio="1:2", config=cfg
        )
        notier = run_policy(workload, make_policy("NoTier"), ratio="1:2", config=cfg)
        assert chmu_pact.slowdown(base) < notier.slowdown(base)

    def test_chmu_at_least_as_accurate_as_pebs(self):
        """Exact controller-side counts should match or beat 1-in-400
        sampled counts for the same policy."""
        clear_baseline_cache()
        cfg = MachineConfig()
        workload = make_workload("bc-kron", total_misses=8_000_000)
        base = ideal_baseline(workload, config=cfg)
        chmu = run_policy(
            workload, PactPolicy(access_sampler="chmu"), ratio="1:2", config=cfg
        )
        pebs = run_policy(workload, PactPolicy(), ratio="1:2", config=cfg)
        assert chmu.slowdown(base) <= pebs.slowdown(base) + 0.03
