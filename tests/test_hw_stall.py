"""Ground-truth stall model: MLP amortisation, latency, contention."""

import numpy as np
import pytest

from repro.common.units import CXL_SPEC, DRAM_SPEC, NUMA_SPEC
from repro.hw.access import AccessGroup
from repro.hw.stall import GroupTierShare, StallModel
from repro.mem.page import Tier, UNALLOCATED


def make_model():
    return StallModel(DRAM_SPEC, CXL_SPEC)


def one_share(misses=10_000, mlp=4.0, tier=Tier.SLOW, pages=None):
    n = 16
    if pages is None:
        pages = np.arange(n)
    counts = np.full(pages.size, misses // pages.size, dtype=np.int64)
    return GroupTierShare(group_index=0, tier=tier, pages=pages, counts=counts, mlp=mlp)


class TestSplitGroups:
    def test_splits_by_placement(self):
        model = make_model()
        placement = np.array([0, 0, 1, 1], dtype=np.int8)
        group = AccessGroup(pages=np.arange(4), counts=np.array([1, 2, 3, 4]), mlp=3.0)
        shares = model.split_groups([group], placement)
        assert len(shares) == 2
        fast = next(s for s in shares if s.tier == Tier.FAST)
        slow = next(s for s in shares if s.tier == Tier.SLOW)
        assert fast.misses == 3
        assert slow.misses == 7
        assert fast.mlp == 3.0

    def test_unallocated_pages_excluded(self):
        model = make_model()
        placement = np.full(4, UNALLOCATED, dtype=np.int8)
        group = AccessGroup(pages=np.arange(4), counts=np.ones(4, dtype=np.int64), mlp=2.0)
        assert model.split_groups([group], placement) == []

    def test_load_fraction_propagates(self):
        model = make_model()
        placement = np.zeros(2, dtype=np.int8)
        group = AccessGroup(
            pages=np.arange(2), counts=np.ones(2, dtype=np.int64), mlp=2.0, load_fraction=0.5
        )
        shares = model.split_groups([group], placement)
        assert shares[0].load_fraction == 0.5


class TestSolve:
    def test_mlp_amortises_stalls(self):
        model = make_model()
        low = model.solve([one_share(mlp=2.0)], compute_cycles=1e6)
        high = model.solve([one_share(mlp=16.0)], compute_cycles=1e6)
        # 8x MLP -> ~8x fewer stall cycles (same traffic, light load).
        ratio = low.total_stall_cycles / high.total_stall_cycles
        assert ratio == pytest.approx(8.0, rel=0.1)

    def test_slow_tier_stalls_exceed_fast(self):
        model = make_model()
        slow = model.solve([one_share(tier=Tier.SLOW)], compute_cycles=1e6)
        fast = model.solve([one_share(tier=Tier.FAST)], compute_cycles=1e6)
        assert (
            slow.total_stall_cycles / fast.total_stall_cycles
            == pytest.approx(CXL_SPEC.latency_ns / DRAM_SPEC.latency_ns, rel=0.15)
        )

    def test_duration_is_compute_plus_stalls_plus_extra(self):
        model = make_model()
        out = model.solve([one_share()], compute_cycles=5e5, extra_cycles=1e5)
        assert out.duration_cycles == pytest.approx(
            5e5 + 1e5 + out.total_stall_cycles, rel=0.05
        )

    def test_bandwidth_contention_inflates_latency(self):
        model = make_model()
        quiet = model.solve([one_share()], compute_cycles=2e6)
        noisy = model.solve(
            [one_share()],
            compute_cycles=2e6,
            extra_bytes={Tier.SLOW: 5e7},  # hammer the slow link
        )
        quiet_lat = quiet.tier_loads[Tier.SLOW].effective_latency_cycles
        noisy_lat = noisy.tier_loads[Tier.SLOW].effective_latency_cycles
        assert noisy_lat > quiet_lat * 1.2
        assert noisy.total_stall_cycles > quiet.total_stall_cycles

    def test_utilisation_capped(self):
        model = make_model()
        out = model.solve(
            [one_share()], compute_cycles=1e5, extra_bytes={Tier.FAST: 1e12}
        )
        assert out.tier_loads[Tier.FAST].utilisation <= 0.96

    def test_empty_window(self):
        model = make_model()
        out = model.solve([], compute_cycles=1000.0)
        assert out.total_stall_cycles == 0.0
        assert out.duration_cycles >= 1000.0

    def test_per_page_ground_truth_sums_to_share_stalls(self):
        model = make_model()
        share = one_share(misses=8000, mlp=4.0)
        out = model.solve([share], compute_cycles=1e6)
        solved = out.shares[0]
        assert solved.per_page_stalls().sum() == pytest.approx(
            solved.stall_cycles(), rel=1e-9
        )

    def test_numa_latency_between_dram_and_cxl(self):
        dram = StallModel(DRAM_SPEC, DRAM_SPEC).solve([one_share()], 1e6)
        numa = StallModel(DRAM_SPEC, NUMA_SPEC).solve([one_share()], 1e6)
        cxl = StallModel(DRAM_SPEC, CXL_SPEC).solve([one_share()], 1e6)
        assert (
            dram.total_stall_cycles < numa.total_stall_cycles < cxl.total_stall_cycles
        )

    def test_harmonic_tier_mlp(self):
        model = make_model()
        shares = [one_share(misses=10_000, mlp=2.0), one_share(misses=10_000, mlp=8.0)]
        out = model.solve(shares, compute_cycles=1e6)
        # Miss-weighted harmonic mean of 2 and 8 with equal misses: 3.2.
        assert out.tier_loads[Tier.SLOW].mlp == pytest.approx(3.2, rel=1e-6)


class TestAccessGroupValidation:
    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            AccessGroup(pages=np.arange(3), counts=np.arange(2), mlp=2.0)

    def test_nonpositive_mlp_rejected(self):
        with pytest.raises(ValueError):
            AccessGroup(pages=np.arange(2), counts=np.arange(2), mlp=0.0)

    def test_bad_load_fraction_rejected(self):
        with pytest.raises(ValueError):
            AccessGroup(pages=np.arange(2), counts=np.arange(2), mlp=1.0, load_fraction=1.5)
