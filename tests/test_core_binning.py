"""Adaptive binning: Freedman-Diaconis widths, scaling, top-bin selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binning import AdaptiveBinner


def make_binner(**kwargs):
    kwargs.setdefault("rng", np.random.default_rng(0))
    return AdaptiveBinner(**kwargs)


class TestConstruction:
    def test_rejects_too_few_bins(self):
        with pytest.raises(ValueError):
            make_binner(num_bins=1)

    def test_rejects_bad_t_scale(self):
        with pytest.raises(ValueError):
            make_binner(t_scale=1.0)


class TestWidthAdaptation:
    def test_width_set_from_observations(self):
        b = make_binner()
        values = np.random.default_rng(1).uniform(0, 100, size=500)
        b.observe(values, n_tracked=500, n_candidates=10)
        assert b.width > 0.0

    def test_scaling_widens_when_candidates_scarce(self):
        b = make_binner(t_scale=50.0)
        values = np.random.default_rng(1).exponential(10.0, size=1000)
        b.observe(values, n_tracked=1000, n_candidates=100)
        w_balanced = b.width
        # Starved candidate supply (ratio >> t_scale) -> width grows.
        for _ in range(4):
            b.observe(values, n_tracked=1000, n_candidates=1)
        assert b.width > w_balanced

    def test_scaling_narrows_when_candidates_flood(self):
        b = make_binner(t_scale=50.0)
        values = np.random.default_rng(1).exponential(10.0, size=1000)
        b.observe(values, n_tracked=1000, n_candidates=1)
        w_wide = b.width
        for _ in range(6):
            b.observe(values, n_tracked=1000, n_candidates=900)
        assert b.width < w_wide

    def test_static_mode_freezes_first_width(self):
        b = make_binner(adaptive=False)
        values = np.random.default_rng(1).uniform(0, 100, size=400)
        b.observe(values, n_tracked=400, n_candidates=5)
        w0 = b.width
        b.observe(values * 100, n_tracked=400, n_candidates=5)
        assert b.width == w0

    def test_no_scaling_mode_tracks_fd_only(self):
        b = make_binner(scaling=False)
        values = np.random.default_rng(1).uniform(0, 100, size=400)
        b.observe(values, n_tracked=400, n_candidates=1)
        w1 = b.width
        b.observe(values, n_tracked=400, n_candidates=1)
        # Without scaling, starved candidates do not widen the bins.
        assert b.width == pytest.approx(w1, rel=0.2)

    def test_explicit_static_width(self):
        b = make_binner(static_width=5.0)
        values = np.random.default_rng(1).uniform(0, 100, size=400)
        b.observe(values, n_tracked=400, n_candidates=5)
        assert b.width == 5.0


class TestTopBin:
    def test_selects_extreme_slice(self):
        b = make_binner(static_width=10.0)
        values = np.array([1.0, 5.0, 50.0, 95.0, 100.0])
        mask = b.top_bin_mask(values)
        # Slice [90, 100]: the two highest values.
        assert list(values[mask]) == [95.0, 100.0]

    def test_zero_values_never_candidates(self):
        b = make_binner(static_width=1000.0)
        values = np.array([0.0, 0.0, 5.0])
        mask = b.top_bin_mask(values)
        assert not mask[0] and not mask[1]

    def test_empty_input(self):
        b = make_binner()
        assert b.top_bin_mask(np.array([])).size == 0

    def test_all_zero(self):
        b = make_binner(static_width=1.0)
        assert not b.top_bin_mask(np.zeros(5)).any()

    def test_narrower_width_fewer_candidates(self):
        values = np.random.default_rng(3).exponential(10.0, size=2000)
        wide = make_binner(static_width=30.0).top_bin_mask(values).sum()
        narrow = make_binner(static_width=3.0).top_bin_mask(values).sum()
        assert narrow <= wide

    def test_unset_width_selects_all_positive(self):
        b = make_binner()
        values = np.array([0.0, 1.0, 2.0])
        mask = b.top_bin_mask(values)
        assert list(mask) == [False, True, True]

    @settings(max_examples=30)
    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=100), st.floats(0.1, 1e5))
    def test_candidates_always_include_max(self, values, width):
        values = np.asarray(values)
        b = make_binner(static_width=width)
        mask = b.top_bin_mask(values)
        if (values > 0).any():
            assert mask[np.argmax(values)]


class TestAssignBins:
    def test_priority_bins_clamped(self):
        b = make_binner(static_width=1.0, num_bins=10)
        bins = b.assign_bins(np.array([0.5, 5.5, 100.0]))
        assert list(bins) == [0, 5, 9]

    def test_debug_info_keys(self):
        b = make_binner()
        info = b.debug_info()
        assert {"bin_width", "scale_exp", "reservoir_seen"} <= set(info)
