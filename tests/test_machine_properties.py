"""Property-based invariants of the full simulation machine.

These drive the machine with randomised decision streams and assert the
invariants no policy, however adversarial, may break: placement
consistency, capacity bounds, monotone counters, work conservation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.page import UNALLOCATED
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.policy_api import Decision, Observation, TieringPolicy

from conftest import TinyWorkload, assert_placement_consistent


class RandomPolicy(TieringPolicy):
    """Migrates random page sets each window (fuzzing adversary)."""

    name = "random-fuzzer"
    synchronous_migration = True

    def __init__(self, seed, footprint):
        self._rng = np.random.default_rng(seed)
        self._footprint = footprint

    def observe(self, obs: Observation) -> Decision:
        n_promote = int(self._rng.integers(0, 60))
        n_demote = int(self._rng.integers(0, 60))
        mode = ("cold", "lru_tail", "fifo")[int(self._rng.integers(0, 3))]
        return Decision(
            promote=self._rng.integers(0, self._footprint, size=n_promote),
            demote=self._rng.integers(0, self._footprint, size=n_demote),
            demote_lru=int(self._rng.integers(0, 20)),
            demote_victim_mode=mode,
        )


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10**6), thp=st.booleans())
def test_random_migration_preserves_invariants(seed, thp):
    workload = TinyWorkload(footprint_pages=1024, total_misses=150_000,
                            misses_per_window=30_000)
    config = MachineConfig(thp=thp)
    machine = Machine(workload, RandomPolicy(seed, 1024), config=config, ratio="1:2",
                      seed=seed)
    result = machine.run()
    assert_placement_consistent(machine.memory)
    # Every page stays allocated exactly once.
    assert (machine.memory.placement != UNALLOCATED).all()
    # Runtime and counters are sane and monotone.
    assert result.runtime_cycles > 0
    assert result.total_misses == pytest.approx(workload.total_misses, rel=0.1)
    assert result.promoted == machine.engine.total_promoted
    assert result.migration_cost_cycles >= 0


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_runtime_never_below_ideal(seed):
    """No policy can make a constrained machine faster than all-DRAM."""
    config = MachineConfig()
    ideal = Machine(
        TinyWorkload(), RandomPolicy(seed, 512), config=config,
        fast_capacity_override=512, seed=seed,
    ).run()
    constrained = Machine(
        TinyWorkload(), RandomPolicy(seed, 512), config=config, ratio="1:3", seed=seed
    ).run()
    assert constrained.runtime_cycles >= ideal.runtime_cycles * 0.98


def test_work_conservation_across_policies(config):
    """Total emitted misses are identical whatever the policy does."""
    totals = []
    for seed in (1, 2):
        machine = Machine(TinyWorkload(), RandomPolicy(seed, 512), config=config,
                          ratio="1:1", seed=seed)
        result = machine.run()
        totals.append(result.windows)
    assert totals[0] == totals[1]
