"""Property tests for the columnar stall pipeline (ISSUE 4).

Three solver properties the vectorisation must preserve:

* **bit-identity**: the :class:`~repro.hw.stall.ShareBatch` path and the
  legacy object-per-share path (``split_groups_legacy`` + the ordered
  accumulation loop) produce *exactly* equal floats on randomized
  windows -- same shares, same unit costs, same tier loads, same
  duration;
* **monotonicity**: injected link traffic (``extra_bytes``) can only
  lengthen the window -- duration is monotone non-decreasing;
* **convergence health**: after ``_FIXED_POINT_ITERATIONS`` damped
  iterations the relative residual stays below a sane bound across the
  full workload corpus.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import make_policy
from repro.common.units import CXL_SPEC, DRAM_SPEC
from repro.hw.access import AccessGroup
from repro.hw.stall import ShareBatch, StallModel, split_groups_legacy
from repro.mem.page import Tier
from repro.obs import Observability
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads import ALL_WORKLOADS, make_workload


def make_model():
    return StallModel(DRAM_SPEC, CXL_SPEC)


def random_window(seed):
    """A randomized (groups, placement) pair spanning both tiers.

    Placement mixes FAST, SLOW, and UNALLOCATED pages; groups overlap
    pages, vary in MLP/load_fraction, and include single-page extremes.
    """
    rng = np.random.default_rng(seed)
    footprint = int(rng.integers(64, 2048))
    placement = rng.choice(
        np.array([-1, 0, 1], dtype=np.int8), size=footprint, p=[0.1, 0.4, 0.5]
    )
    groups = []
    for gi in range(int(rng.integers(1, 8))):
        n = int(rng.integers(1, min(footprint, 256) + 1))
        pages = rng.choice(footprint, size=n, replace=False).astype(np.int64)
        counts = rng.integers(1, 1000, size=n).astype(np.int64)
        groups.append(
            AccessGroup(
                pages=pages,
                counts=counts,
                mlp=float(rng.uniform(1.0, 16.0)),
                load_fraction=float(rng.uniform(0.1, 1.0)),
                label=f"g{gi}",
            )
        )
    return groups, placement


class TestBatchMatchesLegacy:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_split_groups_matches_legacy(self, seed):
        groups, placement = random_window(seed)
        model = make_model()
        batch = model.split_groups(groups, placement)
        legacy = split_groups_legacy(groups, placement)
        assert isinstance(batch, ShareBatch)
        assert len(batch) == len(legacy)
        for i, share in enumerate(legacy):
            assert int(batch.group_index[i]) == share.group_index
            assert batch.tiers[i] == share.tier
            assert float(batch.mlp[i]) == share.mlp
            assert float(batch.load_fraction[i]) == share.load_fraction
            assert batch.labels[i] == share.label
            assert int(batch.misses[i]) == share.misses
            np.testing.assert_array_equal(batch.pages_of(i), share.pages)
            np.testing.assert_array_equal(batch.counts_of(i), share.counts)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_solve_bit_identical_to_legacy_loop(self, seed):
        groups, placement = random_window(seed)
        rng = np.random.default_rng(seed + 1)
        compute = float(rng.uniform(1e5, 1e7))
        extra_cycles = float(rng.uniform(0.0, 1e5))
        extra_bytes = {
            Tier.FAST: float(rng.uniform(0.0, 1e8)),
            Tier.SLOW: float(rng.uniform(0.0, 1e8)),
        }
        model = make_model()
        batch = model.split_groups(groups, placement)
        vec = model.solve(batch, compute, extra_bytes=extra_bytes, extra_cycles=extra_cycles)
        vec_units = [float(u) for u in batch.unit_stall_cycles]

        legacy_shares = split_groups_legacy(groups, placement)
        ref = model.solve(
            legacy_shares, compute, extra_bytes=extra_bytes, extra_cycles=extra_cycles
        )

        # Exact float equality everywhere -- this is the bit-identity
        # contract that keeps the golden digests green.
        assert vec.duration_cycles == ref.duration_cycles
        assert vec.total_stall_cycles == ref.total_stall_cycles
        for tier in (Tier.FAST, Tier.SLOW):
            v, r = vec.tier_loads[tier], ref.tier_loads[tier]
            assert v.misses == r.misses
            assert v.bytes == r.bytes
            assert v.stall_cycles == r.stall_cycles
            assert v.effective_latency_cycles == r.effective_latency_cycles
            assert v.utilisation == r.utilisation
            assert v.mlp == r.mlp
        assert vec_units == [s.unit_stall_cycles for s in legacy_shares]

    def test_empty_window_solves_identically(self):
        model = make_model()
        batch = model.split_groups([], np.empty(0, dtype=np.int8))
        vec = model.solve(batch, 1e6)
        ref = model.solve([], 1e6)
        assert vec.duration_cycles == ref.duration_cycles
        for tier in (Tier.FAST, Tier.SLOW):
            assert vec.tier_loads[tier].mlp == ref.tier_loads[tier].mlp == 1.0


class TestDurationMonotoneInExtraBytes:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_duration_non_decreasing(self, seed):
        groups, placement = random_window(seed)
        model = make_model()
        rng = np.random.default_rng(seed + 2)
        compute = float(rng.uniform(1e5, 1e7))
        prev = None
        for extra in (0.0, 1e3, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10):
            # The batch aliases model scratch, so re-split per solve.
            batch = model.split_groups(groups, placement)
            hw = model.solve(
                batch,
                compute,
                extra_bytes={Tier.SLOW: extra, Tier.FAST: 0.5 * extra},
            )
            if prev is not None:
                assert hw.duration_cycles >= prev, (
                    f"duration shrank when extra_bytes grew to {extra:g}"
                )
            prev = hw.duration_cycles


class TestFixedPointResidual:
    #: Observed corpus max is ~0.095 (cold-start first windows); the
    #: damped 4-iteration solve must stay comfortably convergent.
    RESIDUAL_BOUND = 0.15

    @pytest.mark.parametrize("workload", ALL_WORKLOADS)
    def test_residual_bounded_across_corpus(self, workload):
        obs = Observability(trace=True)
        machine = Machine(
            make_workload(workload, total_misses=1_500_000),
            make_policy("PACT"),
            config=MachineConfig(),
            ratio="1:4",
            seed=0,
            obs=obs,
        )
        machine.run()
        residuals = [
            rec.metrics.get("stall/fixed_point_residual", 0.0)
            for rec in obs.recorder.records()
        ]
        assert residuals, "traced run recorded no windows"
        assert max(residuals) < self.RESIDUAL_BOUND
