"""PAC model: Equation 1, k fitting, stall attribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.units import CXL_SPEC
from repro.core.pac import PacModelCoefficients, attribute_stalls, fit_k


class TestEquationOne:
    def test_stalls_scale_with_misses(self):
        m = PacModelCoefficients(k_cycles=400.0)
        assert m.tier_stalls(2000, 4.0) == pytest.approx(2 * m.tier_stalls(1000, 4.0))

    def test_mlp_amortises(self):
        m = PacModelCoefficients(k_cycles=400.0)
        assert m.tier_stalls(1000, 8.0) == pytest.approx(m.tier_stalls(1000, 4.0) / 2)

    def test_rejects_nonpositive_mlp(self):
        with pytest.raises(ValueError):
            PacModelCoefficients(k_cycles=400.0).tier_stalls(1000, 0.0)

    def test_default_uses_tier_latency(self):
        m = PacModelCoefficients.default_for(CXL_SPEC)
        assert m.k_cycles == pytest.approx(CXL_SPEC.latency_cycles)


class TestFitK:
    def test_exact_linear_data(self):
        x = np.array([1.0, 2.0, 3.0])
        assert fit_k(x, 418.0 * x) == pytest.approx(418.0)

    def test_noisy_data_recovers_slope(self, rng):
        x = rng.uniform(1e4, 1e6, size=300)
        y = 350.0 * x * np.exp(rng.normal(0, 0.05, size=300))
        assert fit_k(x, y) == pytest.approx(350.0, rel=0.05)

    def test_requires_traffic(self):
        with pytest.raises(ValueError):
            fit_k([0.0, 0.0], [1.0, 2.0])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_k([1.0], [1.0, 2.0])

    @settings(max_examples=30)
    @given(st.floats(1.0, 1e4), st.integers(2, 40))
    def test_recovers_arbitrary_slope(self, k, n):
        x = np.linspace(1, 100, n)
        assert fit_k(x, k * x) == pytest.approx(k, rel=1e-6)


class TestAttribution:
    def test_proportional_attribution_sums_to_total(self):
        counts = np.array([1, 2, 3, 4], dtype=float)
        out = attribute_stalls(100.0, counts)
        assert out.sum() == pytest.approx(100.0)
        assert out[3] == pytest.approx(40.0)

    def test_attribution_is_frequency_proportional(self):
        counts = np.array([10, 30], dtype=float)
        out = attribute_stalls(80.0, counts)
        assert out[1] / out[0] == pytest.approx(3.0)

    def test_latency_weighted_attribution(self):
        # Equal counts, 3x latency -> 3x attribution (§4.3.7 extension).
        counts = np.array([10.0, 10.0])
        latencies = np.array([100.0, 300.0])
        out = attribute_stalls(40.0, counts, latencies)
        assert out[0] == pytest.approx(10.0)
        assert out[1] == pytest.approx(30.0)

    def test_empty_input(self):
        out = attribute_stalls(100.0, np.array([]))
        assert out.size == 0

    def test_zero_counts(self):
        out = attribute_stalls(100.0, np.zeros(3))
        assert (out == 0).all()

    @settings(max_examples=40)
    @given(
        st.floats(0, 1e9),
        st.lists(st.integers(0, 10**6), min_size=1, max_size=40),
    )
    def test_conservation_property(self, total, counts):
        out = attribute_stalls(total, np.array(counts, dtype=float))
        if sum(counts) > 0:
            assert out.sum() == pytest.approx(total, rel=1e-9, abs=1e-6)
        assert (out >= 0).all()
