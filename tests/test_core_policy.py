"""Migration planner (Algorithm 2), cooling config, and PACT policy units."""

import numpy as np
import pytest

from repro.core.cooling import CoolingConfig
from repro.core.pact import FrequencyPolicy, PactPolicy
from repro.core.policy import MigrationPlanner
from repro.core.tracker import PacTracker
from repro.mem.page import Tier
from repro.sim.machine import Machine
from repro.sim.policy_api import Observation

from conftest import TinyWorkload


class _FakeMemory:
    def __init__(self, free):
        self._free = free

    def free_pages(self, tier):
        return self._free


def fake_obs(free=100):
    return Observation(
        window=0,
        window_cycles=1e6,
        perf=None,
        tor_mlp={},
        pebs=None,
        memory=_FakeMemory(free),
    )


class TestMigrationPlanner:
    def test_balanced_demotion_with_m_zero(self):
        p = MigrationPlanner(m=0)
        decision = p.plan(np.arange(10), fake_obs(free=100))
        # Enough free space, but the balancing rule still keeps
        # N_demoted >= N_promoted (Algorithm 2, m = 0).
        assert decision.promote.size == 10
        assert decision.demote_lru == 10

    def test_proactive_margin(self):
        p = MigrationPlanner(m=5)
        decision = p.plan(np.arange(10), fake_obs(free=100))
        assert decision.demote_lru == 15

    def test_space_deficit_forces_demotion(self):
        p = MigrationPlanner(m=0)
        decision = p.plan(np.arange(50), fake_obs(free=10))
        assert decision.demote_lru >= 40

    def test_no_candidates_no_orders(self):
        p = MigrationPlanner(m=0)
        assert p.plan(np.array([], dtype=np.int64), fake_obs()).empty

    def test_promotion_cap(self):
        p = MigrationPlanner(m=0, max_promotions_per_window=4)
        decision = p.plan(np.arange(10), fake_obs())
        assert decision.promote.size == 4

    def test_victims_come_from_lru_tail(self):
        p = MigrationPlanner(m=0)
        decision = p.plan(np.arange(3), fake_obs())
        assert decision.demote_victim_mode == "lru_tail"

    def test_totals_accumulate(self):
        p = MigrationPlanner(m=0)
        p.plan(np.arange(3), fake_obs())
        p.plan(np.arange(2), fake_obs())
        assert p.promoted_total == 5
        assert p.demoted_total >= 5


class TestCoolingConfig:
    def test_default_is_pure_accumulation(self):
        c = CoolingConfig.none()
        assert c.alpha == 1.0
        assert c.distance_threshold is None

    def test_halving_and_reset_factories(self):
        assert CoolingConfig.halving(100).distance_factor == 0.5
        assert CoolingConfig.reset(100).distance_factor == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CoolingConfig(alpha=2.0)
        with pytest.raises(ValueError):
            CoolingConfig(distance_threshold=0)
        with pytest.raises(ValueError):
            CoolingConfig(distance_factor=-0.1)

    def test_apply_distance_cooling_noop_when_disabled(self):
        t = PacTracker(8)
        t.update(np.array([0]), np.array([5.0]), np.array([1]))
        assert CoolingConfig.none().apply_distance_cooling(t) == 0


class TestPactPolicyConstruction:
    def test_rejects_unknown_metric(self):
        with pytest.raises(ValueError):
            PactPolicy(metric="hotness")

    def test_frequency_variant_forces_metric(self):
        assert FrequencyPolicy().metric == "frequency"

    def test_latency_weighted_requests_pebs_latency(self):
        assert PactPolicy(latency_weighted=True).wants_pebs_latency
        assert not PactPolicy().wants_pebs_latency

    def test_background_migration(self):
        assert not PactPolicy().synchronous_migration


class TestPactPolicyBehaviour:
    def test_promotes_critical_region_first(self, config):
        workload = TinyWorkload()
        policy = PactPolicy()
        machine = Machine(workload, policy, config=config, ratio="1:3", seed=2)
        machine.run(max_windows=20)
        fast = machine.memory.pages_in_tier(Tier.FAST)
        half = workload.footprint_pages // 2
        chase_in_fast = int((fast < half).sum())
        stream_in_fast = int((fast >= half).sum())
        # The chase region was allocated last (slow tier), but PACT must
        # have pulled it into the fast tier ahead of the stream pages.
        assert chase_in_fast > stream_in_fast

    def test_debug_info_exposes_internals(self, config):
        workload = TinyWorkload()
        policy = PactPolicy()
        machine = Machine(workload, policy, config=config, ratio="1:1", seed=2)
        machine.run(max_windows=5)
        info = policy.debug_info()
        assert "bin_width" in info and "tracked" in info
        assert info["tracked"] > 0

    def test_cooldown_blocks_repromotions(self, config):
        workload = TinyWorkload()
        policy = PactPolicy(promotion_cooldown_windows=10**6)
        machine = Machine(workload, policy, config=config, ratio="1:3", seed=2)
        machine.run(max_windows=40)
        promoted_once = machine.engine.total_promoted
        # With an infinite cooldown each page promotes at most once.
        assert promoted_once <= workload.footprint_pages

    def test_eviction_bar_limits_churn(self, config):
        workload = TinyWorkload()
        relaxed = PactPolicy(promotion_cooldown_windows=0)
        machine = Machine(workload, relaxed, config=config, ratio="1:3", seed=2)
        result = machine.run(max_windows=40)
        # Even with no cooldown the swap-profitability bar keeps total
        # promotions well below footprint-sized rotation per window.
        assert result.promoted < workload.footprint_pages * 3
