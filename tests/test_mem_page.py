"""Page geometry, huge-page expansion, object regions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.page import (
    HUGE_SHIFT,
    ObjectRegion,
    Tier,
    expand_huge_pages,
    huge_page_of,
)


def test_tier_values():
    assert int(Tier.FAST) == 0
    assert int(Tier.SLOW) == 1


def test_huge_shift_is_512_pages():
    assert 1 << HUGE_SHIFT == 512


def test_huge_page_of():
    pages = np.array([0, 511, 512, 1023, 1024])
    assert list(huge_page_of(pages)) == [0, 0, 1, 1, 2]


def test_expand_huge_pages_full_regions():
    pages = expand_huge_pages(np.array([1]), footprint_pages=2048)
    assert pages.size == 512
    assert pages.min() == 512
    assert pages.max() == 1023


def test_expand_huge_pages_clips_to_footprint():
    pages = expand_huge_pages(np.array([1]), footprint_pages=700)
    assert pages.size == 700 - 512
    assert pages.max() == 699


def test_expand_deduplicates():
    pages = expand_huge_pages(np.array([0, 0, 1]), footprint_pages=2048)
    assert pages.size == 1024
    assert np.unique(pages).size == 1024


@given(st.integers(0, 10_000))
def test_huge_page_roundtrip(page):
    huge = huge_page_of(np.array([page]))[0]
    expanded = expand_huge_pages(np.array([huge]), footprint_pages=10_512)
    assert page in expanded


class TestObjectRegion:
    def test_pages_and_bounds(self):
        r = ObjectRegion("heap", 10, 5)
        assert list(r.pages()) == [10, 11, 12, 13, 14]
        assert r.end_page == 15
        assert r.contains(10) and r.contains(14)
        assert not r.contains(15) and not r.contains(9)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ObjectRegion("x", 0, 0)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            ObjectRegion("x", -1, 4)
