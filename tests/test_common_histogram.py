"""Freedman-Diaconis rule and bin assignment."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.histogram import (
    bin_index,
    bin_indices,
    freedman_diaconis_width,
    histogram_counts,
)


class TestFreedmanDiaconis:
    def test_formula(self):
        # W = 2 * IQR / cbrt(n)
        assert freedman_diaconis_width(1.0, 3.0, 8) == pytest.approx(2 * 2.0 / 2.0)

    def test_zero_iqr_degenerates(self):
        assert freedman_diaconis_width(2.0, 2.0, 100) == 0.0

    def test_no_data_degenerates(self):
        assert freedman_diaconis_width(1.0, 3.0, 0) == 0.0

    @given(
        st.floats(0, 1e6),
        st.floats(0, 1e6),
        st.integers(1, 10**9),
    )
    def test_nonnegative(self, q1, extra, n):
        assert freedman_diaconis_width(q1, q1 + extra, n) >= 0.0

    def test_width_shrinks_with_more_data(self):
        w_small = freedman_diaconis_width(0.0, 10.0, 10)
        w_big = freedman_diaconis_width(0.0, 10.0, 10_000)
        assert w_big < w_small


class TestBinIndex:
    def test_basic_mapping(self):
        assert bin_index(0.5, width=1.0, num_bins=10) == 0
        assert bin_index(5.5, width=1.0, num_bins=10) == 5

    def test_clamps_to_top_bin(self):
        assert bin_index(1e9, width=1.0, num_bins=10) == 9

    def test_zero_width_routes_by_positivity(self):
        assert bin_index(5.0, width=0.0, num_bins=10) == 9
        assert bin_index(0.0, width=0.0, num_bins=10) == 0

    def test_invalid_num_bins(self):
        with pytest.raises(ValueError):
            bin_index(1.0, 1.0, 0)

    def test_vectorised_matches_scalar(self):
        values = [0.1, 3.7, 25.0, 0.0]
        vec = bin_indices(values, width=2.0, num_bins=8)
        scalars = [bin_index(v, 2.0, 8) for v in values]
        assert list(vec) == scalars


class TestHistogramCounts:
    def test_counts_sum_to_input_size(self):
        values = np.linspace(0, 100, 57)
        counts = histogram_counts(values, width=10.0, num_bins=12)
        assert counts.sum() == 57
        assert counts.size == 12

    def test_clamped_tail_accumulates_in_top_bin(self):
        values = [100.0, 200.0, 300.0]
        counts = histogram_counts(values, width=1.0, num_bins=5)
        assert counts[4] == 3
