"""The repro.obs layer and the simulator-loop edge-case fixes.

Covers the PR's two halves together, because each guards the other:

* observability primitives (registry, bounded trace ring, profiler) and
  their zero-perturbation / deterministic-telemetry guarantees,
* the loop fixes the instrumentation exists to catch -- empty windows
  that must count toward ``max_windows``, the eviction bar that must
  decay in quiet phases, and the THP budget that must never overshoot
  the per-window promotion cap.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.pact import PactPolicy
from repro.exp.cache import ResultStore, result_from_dict, result_to_dict
from repro.exp.runner import run_requests
from repro.exp.report import metrics_table
from repro.exp.spec import RunRequest, WorkloadSpec
from repro.hw.access import WindowTraffic
from repro.mem.page import Tier
from repro.obs import (
    NULL_OBS,
    MetricsRegistry,
    NullRecorder,
    Observability,
    SpanProfiler,
    TraceRecorder,
)
from repro.sim.machine import Machine
from repro.sim.metrics import WindowRecord
from repro.sim.config import MachineConfig
from repro.sim.policy_api import NoTierPolicy
from repro.workloads.base import Workload

from conftest import TinyWorkload


# ---------------------------------------------------------------------------
# Workload stubs.
# ---------------------------------------------------------------------------


class StuckWorkload(Workload):
    """Emits empty windows forever without consuming its work budget.

    Models an app stalled on I/O: the regression this guards against is
    ``Machine.run`` spinning forever because empty windows skipped the
    window counter and ``max_windows`` never bound.
    """

    def __init__(self):
        super().__init__(
            name="stuck", footprint_pages=64, total_misses=1000,
            misses_per_window=100, seed=3,
        )

    def _emit(self, budget, rng):  # pragma: no cover - next_window overridden
        return []

    def next_window(self) -> WindowTraffic:
        return WindowTraffic(groups=[], compute_cycles=0.0, done=False)


class BurstyWorkload(TinyWorkload):
    """A tiny workload that idles (no traffic) every other window."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._calls = 0

    def _on_reset(self):
        super()._on_reset()
        self._calls = 0

    def next_window(self) -> WindowTraffic:
        self._calls += 1
        if self._calls % 2 == 0:
            return WindowTraffic(groups=[], compute_cycles=0.0, done=self.done)
        return super().next_window()


# ---------------------------------------------------------------------------
# Primitives.
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.count("a", 4)
        assert reg.counter_value("a") == 5.0

    def test_gauges_hold_latest(self):
        reg = MetricsRegistry()
        reg.gauge("g", 1.0)
        reg.gauge("g", 7.5)
        assert reg.gauge_value("g") == 7.5

    def test_bulk_accessors_sorted(self):
        reg = MetricsRegistry()
        reg.gauge("z", 1.0)
        reg.gauge("a", 2.0)
        reg.count("y", 3.0)
        reg.count("b")
        assert list(reg.gauges()) == ["a", "z"]
        assert reg.counters() == {"b": 1.0, "y": 3.0}
        assert list(reg.counters()) == ["b", "y"]

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for v in (1.0, 3.0, 8.0):
            reg.observe("h", v)
        snap = reg.snapshot()
        assert snap["h/count"] == 3.0
        assert snap["h/mean"] == pytest.approx(4.0)
        assert snap["h/min"] == 1.0 and snap["h/max"] == 8.0

    def test_snapshot_sorted_and_flat(self):
        reg = MetricsRegistry()
        reg.gauge("z", 1.0)
        reg.count("a", 2.0)
        reg.observe("m", 5.0)
        keys = list(reg.snapshot().keys())
        assert keys == sorted(keys)


def _record(window: int) -> WindowRecord:
    return WindowRecord(
        window=window, duration_cycles=1.0, stall_cycles=0.0, slow_misses=0,
        fast_misses=0, promoted=0, demoted=0, mlp_slow=1.0, mlp_fast=1.0,
        fast_resident_fraction=0.5,
    )


class TestTraceRecorder:
    def test_ring_bounds_memory(self):
        rec = TraceRecorder(capacity=8)
        for i in range(20):
            rec.append(_record(i))
        assert len(rec) == 8
        assert rec.dropped == 12
        assert [r.window for r in rec.records()] == list(range(12, 20))

    def test_downsampling(self):
        rec = TraceRecorder(capacity=100, downsample=4)
        for i in range(20):
            rec.append(_record(i))
        assert [r.window for r in rec.records()] == [0, 4, 8, 12, 16]
        assert rec.skipped == 15

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)
        with pytest.raises(ValueError):
            TraceRecorder(downsample=0)

    def test_jsonl_export(self, tmp_path):
        rec = TraceRecorder(capacity=4)
        for i in range(3):
            rec.append(_record(i))
        path = tmp_path / "trace.jsonl"
        assert rec.write_jsonl(path) == 3
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["window"] for r in rows] == [0, 1, 2]

    def test_csv_export(self, tmp_path):
        rec = TraceRecorder(capacity=4)
        rec.append(_record(0))
        path = tmp_path / "trace.csv"
        assert rec.write_csv(path) == 1
        header = path.read_text().splitlines()[0]
        assert "window" in header and "duration_cycles" in header

    def test_null_recorder_stores_nothing(self):
        rec = NullRecorder()
        rec.append(_record(0))
        assert len(rec) == 0 and rec.records() == []


class TestSpanProfiler:
    def test_accumulates_spans(self):
        prof = SpanProfiler()
        with prof.profile("work"):
            pass
        with prof.profile("work"):
            pass
        timings = prof.timings()
        assert timings["work"]["calls"] == 2.0
        assert timings["work"]["seconds"] >= 0.0

    def test_disabled_is_noop(self):
        prof = SpanProfiler(enabled=False)
        with prof.profile("work"):
            pass
        assert prof.timings() == {}

    def test_timings_never_in_summary(self):
        obs = Observability()
        with obs.profile("hot"):
            pass
        assert "hot" not in obs.summary()
        assert "hot" in obs.timings()


# ---------------------------------------------------------------------------
# Loop fix: empty windows.
# ---------------------------------------------------------------------------


class TestEmptyWindows:
    def test_stuck_workload_terminates_at_max_windows(self, config):
        machine = Machine(StuckWorkload(), NoTierPolicy(), config=config)
        result = machine.run(max_windows=50)
        assert result.windows == 50
        assert result.empty_windows == 50

    def test_pending_overhead_flushed_not_dropped(self, config):
        machine = Machine(StuckWorkload(), NoTierPolicy(), config=config)
        machine._pending_overhead_cycles = 12_345.0
        result = machine.run(max_windows=10)
        assert result.runtime_cycles == pytest.approx(12_345.0)

    def test_bursty_workload_still_finishes(self, config):
        workload = BurstyWorkload()
        result = Machine(workload, NoTierPolicy(), config=config).run()
        assert workload.done
        # Idle windows count toward the window clock and are reported.
        assert result.empty_windows > 0
        assert result.windows > result.empty_windows

    def test_empty_windows_metric_published(self, config):
        obs = Observability(trace=False)
        machine = Machine(StuckWorkload(), NoTierPolicy(), config=config, obs=obs)
        machine.run(max_windows=7)
        summary = obs.summary()
        assert summary["machine/empty_windows"] == 7.0
        assert summary["machine/windows"] == 7.0


# ---------------------------------------------------------------------------
# Loop fix: eviction-bar decay.
# ---------------------------------------------------------------------------


class TestEvictionBarDecay:
    def _attached_policy(self, config):
        policy = PactPolicy()
        machine = Machine(TinyWorkload(), policy, config=config, ratio="1:2")
        return machine, policy

    def test_bar_decays_geometrically_when_quiet(self, config):
        _, policy = self._attached_policy(config)
        policy._eviction_bar = 100.0
        policy._demoted_since_plan = False
        policy._decay_eviction_bar()
        assert policy._eviction_bar == pytest.approx(80.0)
        policy._decay_eviction_bar()
        assert policy._eviction_bar == pytest.approx(64.0)

    def test_bar_snaps_to_zero(self, config):
        _, policy = self._attached_policy(config)
        policy._eviction_bar = 1e-10
        for _ in range(50):
            policy._decay_eviction_bar()
        assert policy._eviction_bar == 0.0

    def test_demotion_windows_do_not_decay(self, config):
        _, policy = self._attached_policy(config)
        policy._eviction_bar = 100.0
        policy._demoted_since_plan = True
        policy._decay_eviction_bar()
        assert policy._eviction_bar == 100.0
        # ... and the flag resets so the *next* quiet window decays.
        policy._decay_eviction_bar()
        assert policy._eviction_bar == pytest.approx(80.0)

    def test_promotions_resume_after_demotion_burst(self, config):
        """A huge bar (one demotion burst's residue) no longer suppresses
        promotions indefinitely: quiet windows decay it back down."""
        policy = PactPolicy()
        machine = Machine(
            TinyWorkload(total_misses=6_000_000), policy, config=config, ratio="1:2"
        )
        for _ in range(3):
            machine.step()
        policy._eviction_bar = 1e12
        before = machine.engine.total_promoted
        for _ in range(12):
            machine.step()
        assert policy._eviction_bar < 1e12 * 0.8**5
        machine.run(max_windows=400)
        assert machine.engine.total_promoted > before

    def test_bar_exposed_in_debug_info(self, config):
        _, policy = self._attached_policy(config)
        policy._eviction_bar = 3.5
        assert policy.debug_info()["eviction_bar"] == 3.5


# ---------------------------------------------------------------------------
# Loop fix: THP promotion budget.
# ---------------------------------------------------------------------------


class TestThpPromotionBudget:
    def test_tiny_fast_tier_never_overshoots_cap(self):
        """Cap below one huge page: the old ``max(want // 512, 1)`` floor
        promoted a whole 2MB region anyway; now nothing is promoted."""
        config = MachineConfig(thp=True)
        workload = TinyWorkload(footprint_pages=4096, total_misses=300_000)
        machine = Machine(
            workload, PactPolicy(), config=config, fast_capacity_override=768
        )
        # Sanity: the per-window cap genuinely cannot fit one huge page.
        cap = max(int(0.08 * machine.memory.capacity[Tier.FAST]), 64)
        assert cap < 512
        result = machine.run(max_windows=20)
        assert result.promoted == 0

    def test_promotions_stay_within_cap_per_window(self):
        config = MachineConfig(thp=True)
        workload = TinyWorkload(footprint_pages=25_600, total_misses=300_000)
        machine = Machine(
            workload, PactPolicy(), config=config, ratio="1:1", trace=True
        )
        result = machine.run(max_windows=20)
        cap = max(int(0.08 * machine.memory.capacity[Tier.FAST]), 64)
        assert result.promoted > 0
        for rec in result.trace:
            assert rec.promoted <= cap


# ---------------------------------------------------------------------------
# Zero perturbation + cache/parallel telemetry.
# ---------------------------------------------------------------------------


class TestZeroPerturbation:
    def test_obs_off_run_is_bit_identical_to_obs_on(self, config):
        plain = Machine(TinyWorkload(), PactPolicy(), config=config, ratio="1:2").run()
        observed = Machine(
            TinyWorkload(), PactPolicy(), config=config, ratio="1:2",
            obs=Observability(),
        ).run()
        assert observed.runtime_cycles == plain.runtime_cycles
        assert observed.promoted == plain.promoted
        assert observed.demoted == plain.demoted
        assert observed.total_misses == plain.total_misses
        assert plain.metrics_summary == {}
        assert observed.metrics_summary["machine/windows"] == observed.windows

    def test_null_obs_is_disabled_and_shared(self, config):
        machine = Machine(TinyWorkload(), NoTierPolicy(), config=config)
        assert machine.obs is NULL_OBS
        assert not machine.obs.enabled
        assert machine.result().metrics_summary == {}

    def test_obs_flag_absent_from_disabled_fingerprint(self):
        spec = WorkloadSpec.registry("gups", total_misses=600_000)
        off = RunRequest(workload=spec, policy="PACT", ratio="1:2")
        on = RunRequest(workload=spec, policy="PACT", ratio="1:2", obs=True)
        assert "obs" not in off.fingerprint()
        assert on.fingerprint()["obs"] is True
        assert on.key != off.key

    def test_summary_roundtrips_through_result_serialisation(self, config):
        obs = Observability(trace=False)
        machine = Machine(BurstyWorkload(), NoTierPolicy(), config=config, obs=obs)
        result = machine.run()
        back = result_from_dict(result_to_dict(result))
        assert back.metrics_summary == result.metrics_summary
        assert back.empty_windows == result.empty_windows


def _obs_requests():
    spec = WorkloadSpec.registry("gups", total_misses=600_000)
    return [
        RunRequest(workload=spec, policy="PACT", ratio="1:2", obs=True),
        RunRequest(workload=spec, policy="NoTier", ratio="1:2", obs=True),
    ]


class TestExpTelemetry:
    def test_serial_equals_parallel_telemetry(self):
        serial = run_requests(
            _obs_requests(), jobs=1, store=ResultStore(), use_cache=False
        )
        fanned = run_requests(
            _obs_requests(), jobs=2, store=ResultStore(), use_cache=False
        )
        for req_s, req_p in zip(_obs_requests(), _obs_requests()):
            summary_s = serial[req_s].metrics_summary
            summary_p = fanned[req_p].metrics_summary
            assert summary_s and summary_s == summary_p

    def test_telemetry_survives_disk_cache(self, tmp_path):
        requests = _obs_requests()
        first = run_requests(requests, store=ResultStore(tmp_path / "cache"))
        # A fresh store instance reading the same directory: pure disk hit.
        store = ResultStore(tmp_path / "cache")
        second = run_requests(requests, store=store)
        assert store.disk_hits == len(requests)
        for req in requests:
            assert second[req].metrics_summary == first[req].metrics_summary
            assert second[req].metrics_summary["machine/windows"] > 0

    def test_metrics_table_renders(self):
        result = run_requests(_obs_requests(), store=ResultStore(), use_cache=False)
        table = metrics_table(result, "gups", ["PACT", "NoTier"], "1:2")
        assert "machine/windows" in table
        assert "PACT" in table and "NoTier" in table
