"""Algorithm 1: the PAC sampling pipeline, validated against ground truth."""

import numpy as np
import pytest

from repro.core.cooling import CoolingConfig
from repro.core.pac import PacModelCoefficients
from repro.core.sampling import PacSampler
from repro.core.tracker import PacTracker
from repro.hw.pebs import PebsBatch
from repro.hw.perf import PerfDelta
from repro.mem.page import Tier
from repro.sim.policy_api import Observation

from conftest import TinyWorkload


def make_obs(window=0, slow_misses=10_000.0, t1=4_000_000.0, t2=1_000_000.0,
             pages=None, counts=None, latencies=None):
    if pages is None:
        pages = np.array([1, 2, 3])
        counts = np.array([1, 2, 7])
    pebs = PebsBatch(
        pages=pages,
        counts=counts,
        rate=400,
        overhead_cycles=0.0,
        latencies=latencies,
    )
    perf = PerfDelta(
        cycles=1e7,
        llc_misses={Tier.FAST: 0.0, Tier.SLOW: slow_misses},
        stall_cycles={Tier.FAST: 0.0, Tier.SLOW: 0.0},
        bytes={},
        effective_latency_cycles={},
    )
    return Observation(
        window=window,
        window_cycles=1e7,
        perf=perf,
        tor_mlp={Tier.SLOW: t1 / t2, Tier.FAST: 1.0},
        pebs=pebs,
        memory=None,
        tor_occupancy_delta={Tier.SLOW: t1, Tier.FAST: 0.0},
        tor_busy_delta={Tier.SLOW: t2, Tier.FAST: 0.0},
    )


def make_sampler(footprint=64, k=418.0, **kwargs):
    tracker = PacTracker(footprint)
    sampler = PacSampler(tracker, PacModelCoefficients(k_cycles=k), **kwargs)
    return tracker, sampler


class TestAlgorithmOne:
    def test_stall_estimate_follows_equation_one(self):
        tracker, sampler = make_sampler()
        sampler.ingest(make_obs(slow_misses=10_000, t1=4e6, t2=1e6))
        # MLP = 4; S = k * misses / MLP = 418 * 10000 / 4.
        assert sampler.last_mlp == pytest.approx(4.0)
        assert sampler.last_stall_estimate == pytest.approx(418 * 10_000 / 4)

    def test_attribution_proportional_to_counts(self):
        tracker, sampler = make_sampler()
        sampler.ingest(make_obs())
        total = sampler.last_stall_estimate
        assert tracker.pac[3] == pytest.approx(total * 0.7)
        assert tracker.pac[2] == pytest.approx(total * 0.2)
        assert tracker.pac[1] == pytest.approx(total * 0.1)

    def test_pac_conserves_estimated_stalls(self):
        tracker, sampler = make_sampler()
        sampler.ingest(make_obs())
        assert tracker.pac.sum() == pytest.approx(sampler.last_stall_estimate)

    def test_accumulation_across_windows(self):
        tracker, sampler = make_sampler()
        sampler.ingest(make_obs(window=0))
        first = tracker.pac[3]
        sampler.ingest(make_obs(window=1))
        assert tracker.pac[3] == pytest.approx(2 * first)

    def test_alpha_cooling(self):
        tracker, sampler = make_sampler(cooling=CoolingConfig(alpha=0.0))
        sampler.ingest(make_obs(window=0))
        first = tracker.pac[3]
        sampler.ingest(make_obs(window=1))
        assert tracker.pac[3] == pytest.approx(first)  # full recency

    def test_no_samples_still_estimates_stalls(self):
        tracker, sampler = make_sampler()
        done = sampler.ingest(
            make_obs(pages=np.array([], dtype=np.int64), counts=np.array([], dtype=np.int64))
        )
        assert done
        assert sampler.last_stall_estimate > 0
        assert len(tracker) == 0

    def test_mlp_floor(self):
        tracker, sampler = make_sampler()
        sampler.ingest(make_obs(t1=100.0, t2=1e6))  # ratio << 1
        assert sampler.last_mlp == 1.0


class TestPeriodAggregation:
    def test_period_gates_attribution(self):
        tracker, sampler = make_sampler(period_windows=3)
        assert not sampler.ingest(make_obs(window=0))
        assert not sampler.ingest(make_obs(window=1))
        assert len(tracker) == 0
        assert sampler.ingest(make_obs(window=2))
        assert len(tracker) == 3

    def test_aggregated_equals_three_windows_worth(self):
        tracker3, sampler3 = make_sampler(period_windows=3)
        for w in range(3):
            sampler3.ingest(make_obs(window=w))
        tracker1, sampler1 = make_sampler(period_windows=1)
        for w in range(3):
            sampler1.ingest(make_obs(window=w))
        assert tracker3.pac[3] == pytest.approx(tracker1.pac[3], rel=1e-9)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            make_sampler(period_windows=0)


class TestLatencyWeighted:
    def test_latency_weighting_shifts_attribution(self):
        tracker, sampler = make_sampler(latency_weighted=True)
        pages = np.array([1, 2])
        counts = np.array([5, 5])
        latencies = np.array([100.0, 300.0])
        sampler.ingest(make_obs(pages=pages, counts=counts, latencies=latencies))
        assert tracker.pac[2] == pytest.approx(3 * tracker.pac[1], rel=1e-9)

    def test_falls_back_to_proportional_without_latencies(self):
        tracker, sampler = make_sampler(latency_weighted=True)
        pages = np.array([1, 2])
        counts = np.array([5, 5])
        sampler.ingest(make_obs(pages=pages, counts=counts))
        assert tracker.pac[1] == pytest.approx(tracker.pac[2])


class TestEndToEndAccuracy:
    def test_pac_ranking_matches_ground_truth_criticality(self, config):
        """Run the tiny workload slow-only; PAC must rank the chase
        region's pages above the stream region's despite equal counts."""
        from repro.sim.machine import Machine
        from repro.core.pact import PactPolicy

        workload = TinyWorkload()
        policy = PactPolicy()
        machine = Machine(
            workload, policy, config=config, fast_capacity_override=0, seed=1
        )
        machine.run(max_windows=15)
        tracker = policy.tracker
        half = workload.footprint_pages // 2
        chase_pac = tracker.pac[:half]
        stream_pac = tracker.pac[half:]
        # Same access counts per region; chase pages must carry clearly
        # more attributed stall (MLP 2 vs 16 -> ~8x in aggregate).
        assert chase_pac.mean() > 2.0 * stream_pac.mean()
