"""Schema-2 counter-keyed RNG substreams: the properties that make them safe.

Schema 2 (:mod:`repro.hw.substream`) replaces sequential per-subsystem
streams with Philox substreams keyed by (seed, purpose, window).  Three
properties carry the whole design and are pinned here:

* **Identity, not position**: a draw's value depends only on its key,
  never on which other windows were drawn, in what order, or by which
  member of a multi-run group.  That is what makes whole-run prestaging
  and lockstep execution trivially exact.
* **Prestaged == live**: the attach-time tensors slice to exactly the
  values the live fallback would draw window by window.
* **Same marginals as schema 1**: the keyed draws follow the same
  distributions as the sequential streams they replace (two-stage
  binomial thinning, log-normal jitter), so schema choice shifts no
  statistics -- only the pairing of random numbers with windows.

Plus the config plumbing: schema 1 must canonicalise away (pinned cache
keys survive), schema 2 must materialise in fingerprints, and the
``REPRO_RNG_SCHEMA`` escape hatch must never poison schema-1 keys.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.stats as stats

from repro.baselines import make_policy
from repro.common.rngutil import make_rng, philox_key
from repro.exp.cache import canonical, content_hash, result_to_dict
from repro.hw.drawplan import ENV_DISABLE
from repro.hw.substream import (
    KeyedJitter,
    KeyedPebsSampler,
    entry_load_fractions,
    plan_keyed_records,
)
from repro.sim.config import ENV_RNG_SCHEMA, MachineConfig
from repro.sim.engine import run_policy
from repro.sim.machine import Machine
from repro.sim.runbatch import MultiMachine
from repro.workloads import make_workload
from repro.workloads.tracestore import ReplayWorkload, TraceStore, record_stream


def pebs_sampler(seed=7, rate=4, loads_only=True):
    return KeyedPebsSampler(
        seed=seed,
        rate=rate,
        cycles_per_record=100.0,
        sampled_codes=[1],
        num_tiers=2,
        loads_only=loads_only,
    )


def window_inputs(rng, n_windows=24, n_entries=64):
    """Deterministic per-window (counts, load-fraction) draw inputs."""
    out = []
    for _ in range(n_windows):
        counts = rng.integers(1, 200, size=n_entries).astype(np.int64)
        lf = np.full(n_entries, float(rng.uniform(0.3, 0.9)))
        out.append((counts, lf))
    return out


class TestKeyedDrawInvariance:
    def test_window_order_irrelevant(self):
        inputs = window_inputs(np.random.default_rng(3))
        in_order = [
            pebs_sampler().window_records(w, c, lf) for w, (c, lf) in enumerate(inputs)
        ]
        order = np.random.default_rng(4).permutation(len(inputs))
        shuffled = {int(w): pebs_sampler().window_records(int(w), *inputs[w]) for w in order}
        for w, expected in enumerate(in_order):
            np.testing.assert_array_equal(shuffled[w], expected)

    def test_draw_independent_of_other_windows(self):
        # A sampler that drew windows 0..N-1 and a fresh one that draws
        # only window k must agree: no cross-window stream sequencing.
        inputs = window_inputs(np.random.default_rng(5))
        warm = pebs_sampler()
        all_draws = [warm.window_records(w, c, lf) for w, (c, lf) in enumerate(inputs)]
        k = 17
        solo = pebs_sampler().window_records(k, *inputs[k])
        np.testing.assert_array_equal(solo, all_draws[k])

    def test_multi_run_interleaving_irrelevant(self):
        # Two runs (seeds) drawing in lockstep, in reversed member
        # order, or serially all see identical per-(seed, window) values.
        inputs = window_inputs(np.random.default_rng(6), n_windows=8)
        serial = {
            seed: [
                pebs_sampler(seed=seed).window_records(w, c, lf)
                for w, (c, lf) in enumerate(inputs)
            ]
            for seed in (11, 12)
        }
        a, b = pebs_sampler(seed=11), pebs_sampler(seed=12)
        for w, (c, lf) in enumerate(inputs):
            # Member order flipped relative to `serial`'s seed order.
            got_b = b.window_records(w, c, lf)
            got_a = a.window_records(w, c, lf)
            np.testing.assert_array_equal(got_a, serial[11][w])
            np.testing.assert_array_equal(got_b, serial[12][w])

    def test_draw_stage_is_decision_independent(self):
        # Policies differ in which tiers they sample (merge stage), but
        # the draw stage must not depend on that: common random numbers.
        inputs = window_inputs(np.random.default_rng(7), n_windows=4)
        slow_only = pebs_sampler()
        both_tiers = KeyedPebsSampler(
            seed=7,
            rate=4,
            cycles_per_record=100.0,
            sampled_codes=[0, 1],
            num_tiers=2,
        )
        for w, (c, lf) in enumerate(inputs):
            np.testing.assert_array_equal(
                slow_only.window_records(w, c, lf), both_tiers.window_records(w, c, lf)
            )

    def test_keys_distinct_per_seed_and_purpose(self):
        keys = {
            tuple(philox_key(seed, purpose))
            for seed in (0, 1, 2)
            for purpose in ("pebs", "cha", "perf")
        }
        assert len(keys) == 9

    def test_jitter_prestage_matches_live(self):
        sizes = np.array([8, 0, 12, 4, 0, 2], dtype=np.int64)
        planned = KeyedJitter(seed=3, purpose="cha", noise=0.05)
        planned.prestage(sizes)
        live = KeyedJitter(seed=3, purpose="cha", noise=0.05)
        for w, n in enumerate(sizes):
            np.testing.assert_array_equal(
                planned.window_values(w, int(n)), live.window_values(w, int(n))
            )

    def test_prestaged_records_match_live(self):
        # Whole-run plan over real trace columns == per-window live
        # draws over the replayed windows, entry for entry.
        data = record_stream(
            make_workload("gups", total_misses=400_000, seed=2), max_windows=512
        )
        sampler = pebs_sampler(seed=9)
        plan = plan_keyed_records(sampler, data)
        live = pebs_sampler(seed=9)
        replay = ReplayWorkload(data)
        w = 0
        while not replay.done:
            traffic = replay.next_window()
            if traffic.groups:
                counts = np.concatenate([g.counts for g in traffic.groups])
                lf = entry_load_fractions(traffic.groups)
                np.testing.assert_array_equal(
                    plan.window_records(w), live.window_records(w, counts, lf)
                )
            else:
                assert plan.window_records(w).size == 0
            w += 1


class TestMarginalEquivalence:
    """Keyed draws are a re-pairing, not a re-distribution."""

    def test_pebs_thinning_marginals_match_schema1(self):
        counts = np.full(250, 40, dtype=np.int64)
        lf = np.full(250, 0.7)
        rate = 4
        keyed = pebs_sampler(seed=13, rate=rate)
        sample2 = np.concatenate(
            [keyed.window_records(w, counts, lf) for w in range(320)]
        )
        # Schema 1 draws the identical two-stage thinning from one
        # sequential stream.
        rng = make_rng(13)
        sample1 = rng.binomial(
            rng.binomial(np.tile(counts, 320), 0.7), 1.0 / rate
        )
        hi = int(max(sample1.max(), sample2.max())) + 1
        table = np.vstack(
            [np.bincount(sample1, minlength=hi), np.bincount(sample2, minlength=hi)]
        )
        table = table[:, table.sum(axis=0) >= 10]
        _, p, _, _ = stats.chi2_contingency(table)
        assert p > 1e-3

    def test_jitter_marginals_match_schema1(self):
        noise = 0.05
        jitter = KeyedJitter(seed=21, purpose="cha", noise=noise)
        sample2 = np.concatenate([jitter.window_values(w, 40) for w in range(200)])
        sample1 = np.exp(make_rng(22).normal(0.0, noise, size=8_000))
        assert stats.ks_2samp(sample1, sample2).pvalue > 1e-3


class TestConfigSchema:
    def test_schema1_normalises_to_none(self):
        assert MachineConfig().rng_schema is None
        assert MachineConfig(rng_schema=1).rng_schema is None
        assert MachineConfig(rng_schema=1).rng_schema_effective == 1

    def test_schema2_materialises(self):
        cfg = MachineConfig(rng_schema=2)
        assert cfg.rng_schema == 2
        assert cfg.rng_schema_effective == 2

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="rng_schema"):
            MachineConfig(rng_schema=3)

    def test_env_sets_default(self, monkeypatch):
        monkeypatch.setenv(ENV_RNG_SCHEMA, "2")
        assert MachineConfig().rng_schema_effective == 2
        # An explicit schema always beats the environment.
        assert MachineConfig(rng_schema=1).rng_schema_effective == 1

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_RNG_SCHEMA, "fast")
        with pytest.raises(ValueError, match=ENV_RNG_SCHEMA):
            MachineConfig()

    def test_schema1_fingerprint_unchanged(self, monkeypatch):
        # The compatibility contract: schema-1 configs hash exactly as
        # they did before the field existed, even when set via the env.
        base = content_hash(canonical(MachineConfig()))
        assert content_hash(canonical(MachineConfig(rng_schema=1))) == base
        monkeypatch.setenv(ENV_RNG_SCHEMA, "1")
        assert content_hash(canonical(MachineConfig())) == base
        assert "rng_schema" not in str(canonical(MachineConfig()))

    def test_schema2_fingerprint_distinct(self):
        assert content_hash(canonical(MachineConfig(rng_schema=2))) != content_hash(
            canonical(MachineConfig())
        )
        assert "rng_schema" in str(canonical(MachineConfig(rng_schema=2)))


class TestSchema2EndToEnd:
    @pytest.mark.parametrize("policy_name", ["PACT", "Memtis"])
    def test_prestaged_matches_forced_live(self, policy_name, monkeypatch):
        store = TraceStore()
        workload = store.replay(make_workload("gups", total_misses=500_000))

        def digest():
            result = run_policy(
                store.replay(make_workload("gups", total_misses=500_000)),
                make_policy(policy_name),
                ratio="1:4",
                config=MachineConfig(rng_schema=2),
                seed=0,
            )
            return content_hash(canonical(result_to_dict(result)))

        run_policy(  # prime the recording once
            workload, make_policy("NoTier"), ratio="1:4", config=MachineConfig()
        )
        prestaged = digest()
        monkeypatch.setenv(ENV_DISABLE, "1")
        assert digest() == prestaged

    def test_multimachine_lockstep_matches_serial(self):
        data = record_stream(
            make_workload("gups", total_misses=500_000, seed=4), max_windows=512
        )
        grid = [(s, r) for s in (0, 1) for r in ("1:2", "1:4")]

        def machine(seed, ratio):
            return Machine(
                workload=ReplayWorkload(data),
                policy=make_policy("Memtis"),
                config=MachineConfig(rng_schema=2),
                ratio=ratio,
                seed=seed,
            )

        serial = [machine(s, r).run() for s, r in grid]
        multi = MultiMachine([machine(s, r) for s, r in grid]).run()
        for lock, solo in zip(multi, serial):
            assert result_to_dict(lock) == result_to_dict(solo)
