"""The binary trace store: record-once, replay-bit-identically.

Covers the ``.npt`` on-disk format (round-trip, corruption handling),
:class:`ReplayWorkload` exact and looping modes, the content-addressed
:class:`TraceStore` (dedup, disk persistence, corrupt-file recovery),
the batched ``Workload.next_windows`` contract, runner integration
(replay on/off produce identical results and cache keys), and the
once-per-offender un-picklable warning in ``execute_many``.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.baselines import make_policy
from repro.exp.cache import canonical, content_hash, result_to_dict, workload_fingerprint
from repro.sim.config import MachineConfig
from repro.sim.engine import run_policy
from repro.workloads import make_workload
from repro.workloads.tracefile import TraceWorkload, record_trace
from repro.workloads.tracestore import (
    ReplayWorkload,
    TraceExhausted,
    TraceFormatError,
    TraceStore,
    npt_from_trace_dict,
    read_npt,
    record_stream,
    record_to_file,
    replay_enabled,
    set_replay_override,
    trace_dict_from_npt,
    write_npt,
)


def small_workload(name="masim", **kwargs):
    kwargs.setdefault("total_misses", 400_000)
    return make_workload(name, **kwargs)


def run_digest(workload, policy="PACT", ratio="1:4", seed=0):
    result = run_policy(
        workload, make_policy(policy), ratio=ratio, config=MachineConfig(), seed=seed
    )
    return content_hash(canonical(result_to_dict(result)))


def stream_windows(workload):
    """Exhaust a workload's stream; returns the list of WindowTraffic."""
    workload.reset()
    out = []
    while not workload.done and len(out) < 10_000:
        out.append(workload.next_window())
    workload.reset()
    return out


def assert_streams_equal(live, replayed):
    assert len(live) == len(replayed)
    for a, b in zip(live, replayed):
        assert a.phase == b.phase
        assert a.done == b.done
        assert a.compute_cycles == pytest.approx(b.compute_cycles)
        assert len(a.groups) == len(b.groups)
        for ga, gb in zip(a.groups, b.groups):
            np.testing.assert_array_equal(np.asarray(ga.pages), np.asarray(gb.pages))
            np.testing.assert_array_equal(np.asarray(ga.counts), np.asarray(gb.counts))
            assert ga.mlp == pytest.approx(gb.mlp)
            assert ga.load_fraction == pytest.approx(gb.load_fraction)
            assert ga.label == gb.label


class TestNptRoundTrip:
    def test_write_then_mmap_read_preserves_columns(self, tmp_path):
        data = record_stream(small_workload())
        path = tmp_path / "masim.npt"
        write_npt(data, path)
        loaded = read_npt(path)  # mmap by default
        assert loaded.workload == data.workload
        assert loaded.fingerprint == data.fingerprint
        assert loaded.phases == data.phases
        assert loaded.labels == data.labels
        assert loaded.objects == data.objects
        assert loaded.final_metrics == data.final_metrics
        assert loaded.path == path
        for name, col in data.columns.items():
            np.testing.assert_array_equal(np.asarray(loaded.columns[name]), col)

    def test_mmap_and_eager_reads_agree(self, tmp_path):
        path = tmp_path / "t.npt"
        record_to_file(small_workload(), path)
        mapped = read_npt(path, mmap=True)
        eager = read_npt(path, mmap=False)
        for name in mapped.columns:
            np.testing.assert_array_equal(
                np.asarray(mapped.columns[name]), eager.columns[name]
            )

    def test_replayed_stream_equals_live(self, tmp_path):
        live = small_workload()
        path = tmp_path / "t.npt"
        record_to_file(small_workload(), path)
        replay = ReplayWorkload.from_file(path)
        assert_streams_equal(stream_windows(live), stream_windows(replay))

    def test_machine_run_over_replay_is_bit_identical(self, tmp_path):
        path = tmp_path / "t.npt"
        record_to_file(small_workload(), path)
        live_digest = run_digest(small_workload())
        replay_digest = run_digest(ReplayWorkload.from_file(path))
        assert replay_digest == live_digest

    def test_replay_fingerprint_matches_live_workload(self, tmp_path):
        path = tmp_path / "t.npt"
        record_to_file(small_workload(), path)
        replay = ReplayWorkload.from_file(path)
        assert workload_fingerprint(replay) == workload_fingerprint(small_workload())

    def test_final_metrics_survive_round_trip(self, tmp_path):
        live = small_workload("gpt-2")
        expected = None
        if hasattr(live, "final_metrics"):
            stream_windows(live)  # some workloads finalise metrics lazily
            expected = live.final_metrics()
        path = tmp_path / "t.npt"
        record_to_file(small_workload("gpt-2"), path)
        replay = ReplayWorkload.from_file(path)
        if expected is not None:
            assert replay.final_metrics() == expected


class TestCorruption:
    def _valid_bytes(self, tmp_path):
        path = tmp_path / "ok.npt"
        record_to_file(small_workload(), path)
        return path.read_bytes()

    def test_bad_magic(self, tmp_path):
        raw = self._valid_bytes(tmp_path)
        bad = tmp_path / "bad_magic.npt"
        bad.write_bytes(b"XXXX" + raw[4:])
        with pytest.raises(TraceFormatError, match="bad magic"):
            read_npt(bad)

    def test_truncated_header(self, tmp_path):
        raw = self._valid_bytes(tmp_path)
        bad = tmp_path / "short.npt"
        bad.write_bytes(raw[:16])
        with pytest.raises(TraceFormatError, match="truncated header"):
            read_npt(bad)

    def test_truncated_column_data(self, tmp_path):
        raw = self._valid_bytes(tmp_path)
        bad = tmp_path / "cut.npt"
        bad.write_bytes(raw[: len(raw) - 64])
        with pytest.raises(TraceFormatError, match="truncated column"):
            read_npt(bad)

    def test_wrong_format_version(self, tmp_path):
        raw = self._valid_bytes(tmp_path)
        header_len = int.from_bytes(raw[4:8], "little")
        header = json.loads(raw[8 : 8 + header_len])
        header["format_version"] = 99
        blob = json.dumps(header, sort_keys=True).encode()
        # Keep the payload in place: pad the header blob to its old size.
        blob += b" " * (header_len - len(blob))
        bad = tmp_path / "vers.npt"
        bad.write_bytes(raw[:4] + len(blob).to_bytes(4, "little") + blob + raw[8 + header_len:])
        with pytest.raises(TraceFormatError, match="format version"):
            read_npt(bad)

    def test_empty_file(self, tmp_path):
        bad = tmp_path / "empty.npt"
        bad.write_bytes(b"")
        with pytest.raises(TraceFormatError):
            read_npt(bad)

    def test_corrupt_header_json(self, tmp_path):
        raw = self._valid_bytes(tmp_path)
        header_len = int.from_bytes(raw[4:8], "little")
        bad = tmp_path / "json.npt"
        bad.write_bytes(raw[:8] + b"\xff" * header_len + raw[8 + header_len:])
        with pytest.raises(TraceFormatError, match="corrupt header"):
            read_npt(bad)

    def test_store_treats_corrupt_file_as_miss_and_rerecords(self, tmp_path):
        store = TraceStore(tmp_path)
        key, data = store.ensure(small_workload(), 200_000)
        path = store.path_for(key)
        assert path is not None and path.is_file()
        # Clobber the on-disk trace and drop the memory copy: the next
        # lookup must fall through to a fresh recording, not crash.
        path.write_bytes(b"garbage")
        store.clear_memory()
        replay = store.replay(small_workload())
        assert store.stats()["records"] == 2
        assert run_digest(replay) == run_digest(small_workload())


class TestJsonBinaryConversion:
    def test_json_trace_to_npt_and_back(self, tmp_path):
        trace = record_trace(small_workload(), windows=6)
        path = tmp_path / "conv.npt"
        npt_from_trace_dict(trace, path)
        restored = trace_dict_from_npt(path)
        assert restored["footprint_pages"] == trace["footprint_pages"]
        assert len(restored["windows"]) == len(trace["windows"])
        for wa, wb in zip(trace["windows"], restored["windows"]):
            assert len(wa["groups"]) == len(wb["groups"])
            for ga, gb in zip(wa["groups"], wb["groups"]):
                assert ga["pages"] == gb["pages"]
                assert ga["counts"] == gb["counts"]
                assert ga["mlp"] == pytest.approx(gb["mlp"])
                assert ga["label"] == gb["label"]

    def test_json_and_binary_replays_emit_identical_traffic(self, tmp_path):
        trace = record_trace(small_workload(), windows=6)
        path = tmp_path / "conv.npt"
        npt_from_trace_dict(trace, path)
        json_stream = stream_windows(TraceWorkload(trace, loop=False))
        npt_stream = stream_windows(ReplayWorkload.from_file(path))
        assert_streams_equal(json_stream, npt_stream)

    def test_tracefile_from_file_dispatches_npt(self, tmp_path):
        path = tmp_path / "t.npt"
        record_to_file(small_workload(), path)
        loaded = TraceWorkload.from_file(path, loop=False)
        assert isinstance(loaded, ReplayWorkload)


class TestReplayWorkload:
    def test_exhaustion_raises(self, tmp_path):
        path = tmp_path / "t.npt"
        record_to_file(small_workload(), path)
        replay = ReplayWorkload.from_file(path)
        windows = stream_windows(replay)
        replay.reset()
        for _ in windows:
            replay.next_window()
        with pytest.raises(TraceExhausted):
            replay.next_window()

    def test_loop_mode_wraps_and_stretches(self, tmp_path):
        path = tmp_path / "t.npt"
        record_to_file(small_workload(), path)
        replay = ReplayWorkload.from_file(path, loop=True)
        one_pass = replay.trace_windows
        replay.set_total_misses(replay.total_misses * 3)
        count = 0
        while not replay.done and count < 100_000:
            replay.next_window()
            count += 1
        assert count > one_pass  # wrapped past the recorded end

    def test_exact_mode_rejects_set_total_misses(self, tmp_path):
        path = tmp_path / "t.npt"
        record_to_file(small_workload(), path)
        replay = ReplayWorkload.from_file(path)
        with pytest.raises(ValueError, match="non-looping"):
            replay.set_total_misses(123)

    def test_allocation_order_is_writable_copy(self, tmp_path):
        path = tmp_path / "t.npt"
        record_to_file(small_workload(), path)
        replay = ReplayWorkload.from_file(path)
        order = replay.allocation_order()
        order[0] = -1  # must not raise (memmap columns are read-only)
        assert replay.allocation_order()[0] != -1

    def test_flat_columns_match_groups(self, tmp_path):
        path = tmp_path / "t.npt"
        record_to_file(small_workload(), path)
        replay = ReplayWorkload.from_file(path)
        traffic = replay.next_window()
        assert traffic.flat_pages is not None
        np.testing.assert_array_equal(
            np.asarray(traffic.flat_pages),
            np.concatenate([np.asarray(g.pages) for g in traffic.groups]),
        )
        np.testing.assert_array_equal(
            np.asarray(traffic.flat_counts),
            np.concatenate([np.asarray(g.counts) for g in traffic.groups]),
        )


class TestTraceStore:
    def test_ensure_records_once_then_hits_memory(self):
        store = TraceStore()
        key1, _ = store.ensure(small_workload(), 200_000)
        key2, _ = store.ensure(small_workload(), 200_000)
        assert key1 == key2
        stats = store.stats()
        assert stats["records"] == 1
        assert stats["memory_hits"] == 1
        assert stats["misses"] == 1

    def test_different_budget_is_a_different_stream(self):
        store = TraceStore()
        key_full, _ = store.ensure(small_workload(), 200_000)
        key_short, _ = store.ensure(small_workload(), 3)
        assert key_full != key_short

    def test_disk_persistence_across_store_instances(self, tmp_path):
        first = TraceStore(tmp_path)
        key, data = first.ensure(small_workload(), 200_000)
        assert data.path is not None
        second = TraceStore(tmp_path)
        _, again = second.ensure(small_workload(), 200_000)
        stats = second.stats()
        assert stats["records"] == 0
        assert stats["disk_hits"] == 1
        assert again.path == data.path

    def test_replay_wraps_and_is_idempotent(self):
        store = TraceStore()
        replay = store.replay(small_workload())
        assert isinstance(replay, ReplayWorkload)
        assert store.replay(replay) is replay  # no double-wrapping

    def test_memory_budget_evicts_oldest(self):
        store = TraceStore(memory_budget_bytes=1)
        store.ensure(small_workload(), 200_000)
        store.ensure(small_workload("gups", total_misses=400_000), 200_000)
        # Over-budget with two memory-only entries: the first is evicted,
        # so re-ensuring it records again.
        store.ensure(small_workload(), 200_000)
        assert store.stats()["records"] == 3


class TestNextWindows:
    @pytest.mark.parametrize("name", ["masim", "gups", "bc-kron"])
    def test_batched_equals_serial(self, name):
        serial = small_workload(name)
        serial.reset()
        serial_stream = []
        while not serial.done:
            serial_stream.append(serial.next_window())
        batched = small_workload(name)
        batched.reset()
        batched_stream = []
        while not batched.done:
            batched_stream.extend(batched.next_windows(7))
        assert_streams_equal(serial_stream, batched_stream)

    @pytest.mark.parametrize("name", ["masim", "gups"])
    def test_consumed_after_is_stamped_per_window(self, name):
        workload = small_workload(name)
        workload.reset()
        windows = workload.next_windows(5)
        assert 2 <= len(windows) <= 5
        consumed = [w.extra["consumed_after"] for w in windows]
        assert consumed == sorted(consumed)
        assert len(set(consumed)) == len(consumed)  # strictly per-window

    def test_respects_done(self):
        workload = small_workload("gups", total_misses=100_000)
        workload.reset()
        windows = workload.next_windows(10_000)
        assert windows[-1].done
        assert workload.next_windows(5) == []


class TestRunnerIntegration:
    def _requests(self, replay):
        from repro.exp.spec import PolicySpec, RunRequest, WorkloadSpec

        return [
            RunRequest(
                workload=WorkloadSpec.registry("masim", total_misses=400_000),
                policy=PolicySpec(name=policy),
                ratio="1:4",
                seed=0,
                config=MachineConfig(),
                replay=replay,
            )
            for policy in ("PACT", "NoTier")
        ]

    def test_replay_on_and_off_give_identical_results(self):
        from repro.exp.runner import run_requests
        from repro.workloads import tracestore

        tracestore.reset_default_trace_store()
        try:
            live = run_requests(self._requests(replay=False), use_cache=False)
            replayed = run_requests(self._requests(replay=True), use_cache=False)
            for req_live, req_replay in zip(
                self._requests(False), self._requests(True)
            ):
                a = result_to_dict(live.result(req_live))
                b = result_to_dict(replayed.result(req_replay))
                assert canonical(a) == canonical(b)
        finally:
            tracestore.reset_default_trace_store()

    def test_replay_flag_does_not_change_cache_key(self):
        on, off = self._requests(True)[0], self._requests(False)[0]
        assert on.key == off.key
        assert content_hash(on.fingerprint()) == content_hash(off.fingerprint())

    def test_trace_path_attached_when_store_is_disk_backed(self, tmp_path):
        from repro.exp.runner import _prepare_replay
        from repro.workloads import tracestore

        previous = tracestore.set_default_trace_store(tracestore.TraceStore(tmp_path))
        try:
            requests = self._requests(replay=True)
            _prepare_replay(requests)
            paths = {req.trace_path for req in requests}
            assert len(paths) == 1  # one stream serves both policies
            (path,) = paths
            assert path is not None and path.endswith(".npt")
        finally:
            tracestore.set_default_trace_store(previous)

    def test_replay_override_tristate(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_REPLAY", raising=False)
        previous = set_replay_override(None)
        try:
            assert replay_enabled()
            monkeypatch.setenv("REPRO_NO_REPLAY", "1")
            assert not replay_enabled()
            set_replay_override(True)
            assert replay_enabled()
            set_replay_override(False)
            monkeypatch.delenv("REPRO_NO_REPLAY", raising=False)
            assert not replay_enabled()
        finally:
            set_replay_override(previous)


class TestUnpicklableWarning:
    def _lambda_requests(self):
        from repro.exp.spec import PolicySpec, RunRequest, WorkloadSpec

        spec = WorkloadSpec.from_factory(
            lambda: make_workload("masim", total_misses=400_000), label="lam"
        )
        return [
            RunRequest(
                workload=spec,
                policy=PolicySpec(name=policy),
                ratio="1:4",
                seed=0,
                replay=False,
            )
            for policy in ("PACT", "NoTier")
        ]

    def test_warns_once_per_offending_factory(self):
        from repro.exp.parallel import execute_many, reset_unpicklable_warnings

        reset_unpicklable_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            execute_many(self._lambda_requests(), jobs=2)
            execute_many(self._lambda_requests(), jobs=2)
        relevant = [w for w in caught if "not picklable" in str(w.message)]
        assert len(relevant) == 1

    def test_reset_allows_warning_again(self):
        from repro.exp.parallel import execute_many, reset_unpicklable_warnings

        reset_unpicklable_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            execute_many(self._lambda_requests(), jobs=2)
            reset_unpicklable_warnings()
            execute_many(self._lambda_requests(), jobs=2)
        relevant = [w for w in caught if "not picklable" in str(w.message)]
        assert len(relevant) == 2
