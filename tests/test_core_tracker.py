"""PAC tracker: accumulation, cooling hooks, hash-table semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tracker import PacTracker


def test_starts_empty():
    t = PacTracker(100)
    assert len(t) == 0
    assert t.tracked_pages().size == 0


def test_rejects_empty_footprint():
    with pytest.raises(ValueError):
        PacTracker(0)


def test_update_accumulates():
    t = PacTracker(10)
    t.update(np.array([1, 2]), np.array([5.0, 7.0]), np.array([1, 2]))
    t.update(np.array([1]), np.array([3.0]), np.array([1]))
    assert t.pac[1] == pytest.approx(8.0)
    assert t.pac[2] == pytest.approx(7.0)
    assert t.frequency[1] == 2.0
    assert len(t) == 2


def test_alpha_cooling_on_update():
    t = PacTracker(10)
    t.update(np.array([3]), np.array([10.0]), np.array([1]))
    t.update(np.array([3]), np.array([10.0]), np.array([1]), alpha=0.5)
    assert t.pac[3] == pytest.approx(0.5 * 10.0 + 10.0)


def test_invalid_alpha():
    t = PacTracker(10)
    with pytest.raises(ValueError):
        t.update(np.array([0]), np.array([1.0]), np.array([1]), alpha=1.5)


def test_sample_counter_advances():
    t = PacTracker(10)
    t.update(np.array([0, 1]), np.array([1.0, 1.0]), np.array([3, 4]))
    assert t.sample_counter == 7
    assert t.last_sample_counter[0] == 7


def test_distance_cooling_halves_stale_pages():
    t = PacTracker(10)
    t.update(np.array([0]), np.array([8.0]), np.array([1]))
    t.update(np.array([1]), np.array([4.0]), np.array([100]))
    cooled = t.cool_distant(distance_threshold=50, factor=0.5)
    assert cooled == 1  # page 0 is 100 samples behind
    assert t.pac[0] == pytest.approx(4.0)
    assert t.pac[1] == pytest.approx(4.0)  # fresh page untouched


def test_distance_cooling_applies_once_per_episode():
    t = PacTracker(10)
    t.update(np.array([0]), np.array([8.0]), np.array([1]))
    t.update(np.array([1]), np.array([4.0]), np.array([100]))
    t.cool_distant(50, 0.5)
    cooled_again = t.cool_distant(50, 0.5)
    assert cooled_again == 0
    assert t.pac[0] == pytest.approx(4.0)


def test_distance_cooling_reset_mode():
    t = PacTracker(10)
    t.update(np.array([0]), np.array([8.0]), np.array([1]))
    t.update(np.array([1]), np.array([4.0]), np.array([100]))
    t.cool_distant(50, 0.0)
    assert t.pac[0] == 0.0


def test_invalid_distance_threshold():
    t = PacTracker(10)
    with pytest.raises(ValueError):
        t.cool_distant(0, 0.5)


def test_drop_forgets_pages():
    t = PacTracker(10)
    t.update(np.array([4, 5]), np.array([1.0, 2.0]), np.array([1, 1]))
    t.drop(np.array([4]))
    assert len(t) == 1
    assert t.pac[4] == 0.0
    assert list(t.tracked_pages()) == [5]


def test_values_for_metrics():
    t = PacTracker(10)
    t.update(np.array([2]), np.array([9.0]), np.array([4]))
    assert t.values_for(np.array([2]), "pac")[0] == 9.0
    assert t.values_for(np.array([2]), "frequency")[0] == 4.0
    with pytest.raises(ValueError):
        t.values_for(np.array([2]), "hotness")


def test_memory_overhead_accounting():
    t = PacTracker(100)
    t.update(np.arange(10), np.ones(10), np.ones(10, dtype=np.int64))
    assert t.memory_overhead_bytes() == 250  # 25 B per tracked page (§4.6)


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(st.integers(0, 63), st.floats(0, 1e6), st.integers(1, 1000)),
        max_size=50,
    )
)
def test_pure_accumulation_equals_sum(updates):
    """With alpha=1, PAC must equal the exact sum of attributions."""
    t = PacTracker(64)
    expected = np.zeros(64)
    for page, stall, count in updates:
        t.update(np.array([page]), np.array([stall]), np.array([count]))
        expected[page] += stall
    assert np.allclose(t.pac, expected)
