"""Top-k candidate selection equals the full sort it replaced."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.units import PAGES_PER_HUGE_PAGE
from repro.core.pact import _top_k_indices


def legacy_top_k_set(values, k):
    return set(np.argsort(values)[::-1][:k].tolist())


class TestTopKIndices:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.integers(1, 300),
        st.integers(1, 310),
    )
    def test_matches_full_sort_or_falls_back(self, seed, n, k):
        values = np.random.default_rng(seed).random(n)
        got = _top_k_indices(values, k)
        if got is None:
            # Fallback is only declared when ties straddle the boundary.
            order = np.argsort(values)[::-1]
            assert k < n
            assert values[order[k - 1]] == values[order[k]]
            return
        assert len(got) == min(k, n)
        assert set(got.tolist()) == legacy_top_k_set(values, k)
        # Descending order within the selection.
        assert (np.diff(values[got]) <= 0).all()

    def test_tie_at_boundary_forces_fallback(self):
        values = np.array([5.0, 3.0, 3.0, 1.0])
        assert _top_k_indices(values, 2) is None

    def test_tie_inside_selection_is_fine(self):
        values = np.array([5.0, 5.0, 3.0, 1.0])
        got = _top_k_indices(values, 2)
        assert got is not None
        assert set(got.tolist()) == {0, 1}

    def test_k_at_least_n_returns_full_ranking(self):
        values = np.array([2.0, 9.0, 4.0])
        got = _top_k_indices(values, 5)
        assert np.array_equal(got, np.argsort(values)[::-1])


class TestThpHugePageSelection:
    """The reduceat peak ranking must pick the same huge pages as the
    legacy sort-all-pages-then-dedupe path."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 5_000), st.integers(1, 6))
    def test_peak_ranking_matches_legacy_dedupe(self, seed, want_huge):
        rng = np.random.default_rng(seed)
        footprint = 16 * PAGES_PER_HUGE_PAGE
        n = int(rng.integers(1, 800))
        elig_pages = np.sort(rng.choice(footprint, size=n, replace=False))
        elig_values = rng.random(n)

        # Legacy: rank pages desc, keep first page per huge page, slice.
        order = np.argsort(elig_values)[::-1]
        ranked = elig_pages[order]
        _, first = np.unique(ranked >> 9, return_index=True)
        legacy = ranked[np.sort(first)][:want_huge]

        # Optimised: per-huge peak via reduceat over the ascending runs.
        huge = elig_pages >> 9
        starts = np.flatnonzero(np.r_[True, huge[1:] != huge[:-1]])
        peaks = np.maximum.reduceat(elig_values, starts)
        top = _top_k_indices(peaks, want_huge)
        if top is None:
            pytest.skip("peak tie at boundary: production falls back to legacy")
        candidates = elig_pages[starts[top]]

        # Representative pages may differ; the huge-page sets must not.
        assert set((candidates >> 9).tolist()) == set((legacy >> 9).tolist())
        assert candidates.size == legacy.size
