"""Calibration of Equation 1's k, model-fit analysis, improvement CDFs."""

import pytest

from repro.analysis.correlation import aggregate_per_workload, evaluate_stall_model
from repro.analysis.improvement import pooled_improvements, summarize_improvements
from repro.analysis.sweep import run_sweep
from repro.common.units import CXL_SPEC
from repro.core.calibration import CalibrationPoint, calibrate_k, collect_points
from repro.mem.page import Tier
from repro.sim.engine import clear_baseline_cache
from repro.workloads.corpus import generate_corpus

from conftest import TinyWorkload


@pytest.fixture(scope="module")
def mini_corpus():
    """A 12-point slice of the corpus grid (fast enough for unit tests)."""
    return generate_corpus(total_misses=1_500_000, misses_per_window=150_000)[::8]


class TestCalibration:
    def test_collect_points_produces_observations(self, mini_corpus):
        points = collect_points(mini_corpus[:3], max_windows_each=5)
        assert len(points) >= 12
        for p in points:
            assert p.llc_misses > 0
            assert p.mlp >= 1.0
            assert p.stall_cycles > 0

    def test_calibrated_k_close_to_tier_latency(self, mini_corpus):
        """Under light load, Equation 1's k converges to the slow tier's
        loaded latency in cycles (the model's physical meaning)."""
        coeff = calibrate_k(mini_corpus, max_windows_each=5)
        assert coeff.k_cycles == pytest.approx(CXL_SPEC.latency_cycles, rel=0.35)

    def test_fast_tier_calibration_yields_smaller_k(self, mini_corpus):
        slow = calibrate_k(mini_corpus, tier=Tier.SLOW, max_windows_each=4)
        fast = calibrate_k(mini_corpus, tier=Tier.FAST, max_windows_each=4)
        assert fast.k_cycles < slow.k_cycles

    def test_empty_calibration_rejected(self):
        with pytest.raises(ValueError):
            calibrate_k([], max_windows_each=3)


class TestModelFit:
    def test_model_beats_raw_misses(self, mini_corpus):
        """The Figure 2 claim: Equation 1 correlates with stalls far
        better than raw LLC-miss counts across a diverse corpus."""
        fit = evaluate_stall_model(mini_corpus, CXL_SPEC, max_windows_each=6)
        assert fit.pearson_model > 0.97
        assert fit.pearson_model > fit.pearson_misses
        assert fit.num_workloads == len(mini_corpus)

    def test_aggregate_per_workload_merges_windows(self):
        points = [
            CalibrationPoint("w", 100.0, 2.0, 50.0),
            CalibrationPoint("w", 100.0, 2.0, 50.0),
            CalibrationPoint("v", 10.0, 1.0, 5.0),
        ]
        merged = aggregate_per_workload(points)
        assert len(merged) == 2
        w = next(p for p in merged if p.workload == "w")
        assert w.llc_misses == 200.0
        assert w.mlp == pytest.approx(2.0)


class TestImprovement:
    def test_summaries(self):
        slowdowns = {
            "a": {"PACT": 0.2, "Colloid": 0.5, "NBT": 0.26},
            "b": {"PACT": 0.1, "Colloid": 0.1, "NBT": 0.32},
        }
        summaries = summarize_improvements(slowdowns, competitors=("Colloid", "NBT"))
        assert summaries["Colloid"].max == pytest.approx(0.25)
        assert summaries["Colloid"].min == pytest.approx(0.0)
        assert len(summaries["NBT"].improvements) == 2

    def test_missing_subject_rejected(self):
        with pytest.raises(ValueError):
            summarize_improvements({"a": {"Colloid": 0.5}})

    def test_pooled(self):
        slowdowns = {"a": {"PACT": 0.2, "Colloid": 0.5, "NBT": 0.3}}
        pooled = pooled_improvements(
            summarize_improvements(slowdowns, competitors=("Colloid", "NBT"))
        )
        assert len(pooled.improvements) == 2

    def test_cdf_shape(self):
        slowdowns = {"a": {"PACT": 0.2, "Colloid": 0.5}}
        s = summarize_improvements(slowdowns, competitors=("Colloid",))["Colloid"]
        xs, fracs = s.cdf()
        assert xs.size == 1 and fracs[0] == 1.0


class TestSweep:
    def test_grid_runs_and_tables(self):
        clear_baseline_cache()
        result = run_sweep(
            {"tiny": TinyWorkload},
            policies=["PACT", "NoTier"],
            ratios=["1:1", "1:2"],
        )
        assert len(result.cells) == 4
        table = result.slowdown_table("1:1")
        assert "tiny" in table and "PACT" in table["tiny"]
        promo = result.promotions_table("tiny")
        assert promo["NoTier"]["1:1"] == 0
        assert result.slow_only["tiny"] > 0
        assert result.cell("tiny", "PACT", "1:2").slowdown < result.slow_only["tiny"]

    def test_missing_cell_raises(self):
        clear_baseline_cache()
        result = run_sweep({"tiny": TinyWorkload}, ["NoTier"], ["1:1"])
        with pytest.raises(KeyError):
            result.cell("tiny", "PACT", "1:1")
