"""Whole-run draw plans: plan-fed paths must be bit-identical to live.

Every optimisation in :mod:`repro.hw.drawplan` claims *exact* result
preservation -- the same RNG bit stream, the same float summation
order, the same share rows.  These tests assert that claim directly:
chunked jitter streams against scalar draws, the whole-run static split
against the per-window splitter, pre-drawn PEBS/CHMU sample plans
against live sampling, and finally full machine runs with plans on,
plans off, and no replay at all.
"""

import numpy as np
import pytest

from repro.baselines import make_policy
from repro.hw import drawplan
from repro.hw.chmu import ChmuSampler
from repro.hw.pebs import PebsSampler
from repro.hw.stall import StallModel
from repro.common.units import CXL_SPEC, DRAM_SPEC
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.policy_api import NoTierPolicy
from repro.workloads import make_workload
from repro.workloads.tracestore import ReplayWorkload, record_stream


def recorded(total_misses=600_000, seed=7, name="gups"):
    return record_stream(
        make_workload(name, total_misses=total_misses, seed=seed), max_windows=512
    )


class TestNormalDrawStream:
    @pytest.mark.parametrize("chunk", [1, 3, 8, 64, 8192])
    def test_prefix_matches_scalar_draws(self, chunk):
        seed, scale = 42, 0.05
        stream = drawplan.NormalDrawStream(
            np.random.default_rng(seed), scale, chunk=chunk
        )
        live = np.random.default_rng(seed)
        taken = []
        for n in (1, 2, 1, 5, 3, 1, 7):
            taken.extend(stream.take(n).tolist())
        expected = [float(np.exp(live.normal(0.0, scale))) for _ in taken]
        assert taken == expected  # bit-exact, not approx

    def test_take_matches_vector_draw(self):
        stream = drawplan.NormalDrawStream(np.random.default_rng(3), 0.02, chunk=4)
        got = np.concatenate([stream.take(5), stream.take(6)])
        expect = np.exp(np.random.default_rng(3).normal(0.0, 0.02, size=11))
        np.testing.assert_array_equal(got, expect)

    def test_rejects_zero_scale(self):
        with pytest.raises(ValueError):
            drawplan.NormalDrawStream(np.random.default_rng(0), 0.0)


def static_placement_for(data, num_tiers=2, seed=0):
    """A frozen pseudo-random placement covering every recorded page."""
    footprint = int(np.asarray(data.columns["pages"]).max()) + 1
    return np.random.default_rng(seed).integers(
        0, num_tiers, size=footprint, dtype=np.int64
    )


def assert_batches_equal(plan_batch, live_batch):
    assert plan_batch.n == live_batch.n
    np.testing.assert_array_equal(plan_batch.group_index, live_batch.group_index)
    np.testing.assert_array_equal(plan_batch.tier_codes, live_batch.tier_codes)
    np.testing.assert_array_equal(plan_batch.mlp, live_batch.mlp)
    np.testing.assert_array_equal(plan_batch.load_fraction, live_batch.load_fraction)
    np.testing.assert_array_equal(plan_batch.misses, live_batch.misses)
    assert plan_batch.labels == live_batch.labels
    for i in range(plan_batch.n):
        np.testing.assert_array_equal(plan_batch.pages_of(i), live_batch.pages_of(i))
        np.testing.assert_array_equal(plan_batch.counts_of(i), live_batch.counts_of(i))


class TestStaticSplit:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_live_split_on_every_window(self, seed):
        data = recorded(total_misses=400_000, seed=seed)
        placement = static_placement_for(data, seed=seed)
        batches = drawplan.build_static_batches(data, placement, num_tiers=2)
        assert len(batches) == data.num_windows
        model = StallModel(DRAM_SPEC, CXL_SPEC)
        replay = ReplayWorkload(data)
        for w in range(data.num_windows):
            traffic = replay.next_window()
            if not traffic.groups:
                assert batches[w] is None
                continue
            live = model.split_groups(traffic.groups, placement)
            assert_batches_equal(batches[w], live)

    def test_empty_window_entries_are_none(self):
        data = recorded(total_misses=200_000)
        placement = static_placement_for(data)
        batches = drawplan.build_static_batches(data, placement, num_tiers=2)
        wgp = np.asarray(data.columns["window_group_ptr"])
        for w in range(data.num_windows):
            assert (batches[w] is None) == (wgp[w + 1] == wgp[w])


class TestSamplerPlans:
    def test_pebs_plan_replays_live_draw_sequence(self):
        data = recorded(total_misses=400_000, seed=11)
        placement = static_placement_for(data, seed=11)
        batches = drawplan.build_static_batches(data, placement, num_tiers=2)
        tiers = Machine(
            workload=ReplayWorkload(data), policy=NoTierPolicy(),
            config=MachineConfig(), ratio="1:2", seed=0,
        )._pebs_tiers()
        plan_sampler = PebsSampler(rate=61, rng=np.random.default_rng(5))
        plan = drawplan.plan_pebs_batches(plan_sampler, batches, tiers)
        live_sampler = PebsSampler(rate=61, rng=np.random.default_rng(5))
        for w, batch in enumerate(batches):
            if batch is None:
                continue
            live = live_sampler.sample(batch, tiers=tiers)
            planned = plan.batch_for(w)
            np.testing.assert_array_equal(planned.pages, live.pages)
            np.testing.assert_array_equal(planned.counts, live.counts)
            assert planned.overhead_cycles == live.overhead_cycles

    def test_chmu_plan_matches_live_epochs(self):
        data = recorded(total_misses=400_000, seed=13)
        placement = static_placement_for(data, seed=13)
        footprint = placement.size
        batches = drawplan.build_static_batches(data, placement, num_tiers=2)
        plan_sampler = ChmuSampler(footprint_pages=footprint, epoch_windows=2)
        plan = drawplan.plan_chmu_batches(plan_sampler, batches)
        live = ChmuSampler(footprint_pages=footprint, epoch_windows=2)
        for w, batch in enumerate(batches):
            if batch is None:
                continue
            live_batch = live.sample(batch)
            planned = plan.batch_for(w)
            np.testing.assert_array_equal(planned.pages, live_batch.pages)
            np.testing.assert_array_equal(planned.counts, live_batch.counts)


class StaticChmuPolicy(NoTierPolicy):
    """Static policy observed through the CHMU sampler (plan coverage)."""

    name = "StaticChmu"
    needs_pebs = True
    access_sampler = "chmu"


def run_once(policy, workload, ratio="1:2", seed=0):
    machine = Machine(
        workload=workload,
        policy=policy,
        config=MachineConfig(),
        ratio=ratio,
        seed=seed,
    )
    return machine.run(), machine


class TestMachineBitIdentity:
    @pytest.mark.parametrize(
        "policy_name", ["NoTier", "CXL", "PACT", "Memtis", "Soar"]
    )
    def test_plan_on_off_and_live_agree(self, policy_name, monkeypatch):
        data = recorded(total_misses=500_000, seed=3)
        live_result, _ = run_once(
            make_policy(policy_name),
            make_workload("gups", total_misses=500_000, seed=3),
        )
        planned, machine = run_once(make_policy(policy_name), ReplayWorkload(data))
        monkeypatch.setenv(drawplan.ENV_DISABLE, "1")
        unplanned, bare = run_once(make_policy(policy_name), ReplayWorkload(data))
        assert bare._split_plan is None and bare._pebs_plan is None
        assert planned.runtime_cycles == unplanned.runtime_cycles
        assert planned.runtime_cycles == live_result.runtime_cycles
        if getattr(machine.policy, "static_placement", False):
            assert machine._split_plan is not None

    def test_chmu_policy_engages_sample_plan(self, monkeypatch):
        data = recorded(total_misses=400_000, seed=9)
        planned, machine = run_once(StaticChmuPolicy(), ReplayWorkload(data))
        assert machine._pebs_plan is not None
        monkeypatch.setenv(drawplan.ENV_DISABLE, "1")
        unplanned, _ = run_once(StaticChmuPolicy(), ReplayWorkload(data))
        assert planned.runtime_cycles == unplanned.runtime_cycles


class TestSolvePlan:
    def test_plan_outcomes_match_live_solves(self):
        data = recorded(total_misses=400_000, seed=17)
        placement = static_placement_for(data, seed=17)
        batches = drawplan.build_static_batches(data, placement, num_tiers=2)
        model = StallModel(DRAM_SPEC, CXL_SPEC)
        plan = drawplan.plan_window_solves(
            model, batches, data.columns["window_compute"]
        )
        compute = np.asarray(data.columns["window_compute"])
        live_model = StallModel(DRAM_SPEC, CXL_SPEC)
        for w, batch in enumerate(batches):
            if batch is None:
                continue
            live = live_model.solve(batch, float(compute[w]))
            planned = plan.outcome_for(w)
            assert planned.duration_cycles == live.duration_cycles
            assert planned.compute_cycles == live.compute_cycles
            for tier in planned.tier_loads:
                assert (
                    planned.tier_loads[tier].stall_cycles
                    == live.tier_loads[tier].stall_cycles
                )

    def test_static_no_pebs_replay_engages_solve_plan(self):
        data = recorded(total_misses=300_000)
        _, machine = run_once(make_policy("NoTier"), ReplayWorkload(data))
        assert machine._solve_plan is not None

    def test_observability_keeps_live_solves(self):
        data = recorded(total_misses=300_000)
        machine = Machine(
            workload=ReplayWorkload(data),
            policy=make_policy("NoTier"),
            config=MachineConfig(),
            ratio="1:2",
            seed=0,
            trace=True,
        )
        assert machine._solve_plan is None

    def test_pebs_policy_keeps_live_solves(self):
        data = recorded(total_misses=300_000)
        _, machine = run_once(StaticChmuPolicy(), ReplayWorkload(data))
        assert machine._solve_plan is None


class TestTouchSkip:
    def test_static_no_activity_policy_skips_touch(self):
        data = recorded(total_misses=300_000)
        result, machine = run_once(make_policy("NoTier"), ReplayWorkload(data))
        assert machine._skip_touch
        # Nothing reads the activity state, and indeed none accrued.
        assert float(machine.memory.activity.sum()) == 0.0
        assert result.runtime_cycles > 0.0

    def test_dynamic_policy_keeps_touch(self):
        data = recorded(total_misses=300_000)
        _, machine = run_once(make_policy("PACT"), ReplayWorkload(data))
        assert not machine._skip_touch
        assert float(machine.memory.activity.sum()) > 0.0


class TestAttachGating:
    def test_live_workload_gets_no_plans(self):
        _, machine = run_once(
            make_policy("NoTier"), make_workload("gups", total_misses=200_000)
        )
        assert machine._split_plan is None
        assert machine._pebs_plan is None

    def test_looping_replay_gets_no_plans(self):
        data = recorded(total_misses=200_000)
        _, machine = run_once(make_policy("NoTier"), ReplayWorkload(data, loop=True))
        assert machine._split_plan is None

    def test_dynamic_policy_gets_jitter_streams_only(self):
        data = recorded(total_misses=200_000)
        machine = Machine(
            workload=ReplayWorkload(data),
            policy=make_policy("PACT"),
            config=MachineConfig(),
            ratio="1:2",
            seed=0,
        )
        assert machine._split_plan is None
        if machine.cha.noise > 0.0:
            assert machine.cha._jitter_stream is not None

    def test_env_switch_disables_everything(self, monkeypatch):
        monkeypatch.setenv(drawplan.ENV_DISABLE, "1")
        data = recorded(total_misses=200_000)
        _, machine = run_once(make_policy("NoTier"), ReplayWorkload(data))
        assert machine._split_plan is None
        assert machine.cha._jitter_stream is None

    def test_static_migration_guard_trips(self):
        data = recorded(total_misses=200_000)

        from repro.sim.policy_api import Decision

        class LyingPolicy(NoTierPolicy):
            name = "Lying"
            static_placement = True

            def observe(self, obs):  # noqa: ARG002
                # First-touch pages land in the fast tier; demoting them
                # is a real migration a static policy must never issue.
                return Decision(demote=np.arange(4, dtype=np.int64))

        with pytest.raises(RuntimeError, match="static_placement"):
            run_once(LyingPolicy(), ReplayWorkload(data))
