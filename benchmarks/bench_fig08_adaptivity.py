"""Figure 8: PACT's adaptive page selection on sssp-kron.

(a) Promotion activity spikes early while PAC variance is high, then
    stabilises with intermittent bursts;
(b) the adaptive bin width tracks shifts in the PAC distribution.

Plus the headline comparison: PACT needs an order of magnitude fewer
migrations than Colloid on this workload while achieving a lower
slowdown (paper: 180K vs. 8M+, 18% vs. 25%).
"""

from __future__ import annotations

import numpy as np

from repro.baselines import make_policy
from repro.common.tables import format_series, format_table
from repro.sim.engine import ideal_baseline, run_policy
from repro.sim.machine import Machine

from conftest import bench_workload, emit, once


def test_fig08_adaptivity(benchmark, config):
    def run():
        workload = bench_workload("sssp-kron")
        policy = make_policy("PACT")
        machine = Machine(workload, policy, config=config, ratio="1:2", seed=5, trace=True)
        pact = machine.run()
        baseline = ideal_baseline(bench_workload("sssp-kron"), config=config)
        colloid = run_policy(
            bench_workload("sssp-kron"), make_policy("Colloid"), ratio="1:2", config=config
        )
        return pact, colloid, baseline

    pact, colloid, baseline = once(benchmark, run)

    promotions = np.array([rec.promoted for rec in pact.trace])
    widths = np.array([rec.policy_debug.get("bin_width", 0.0) for rec in pact.trace])
    n = promotions.size
    early = promotions[: n // 4].sum()
    late = promotions[3 * n // 4 :].sum()

    report = format_table(
        ["metric", "PACT", "Colloid", "paper"],
        [
            ["slowdown", f"{pact.slowdown(baseline):.3f}", f"{colloid.slowdown(baseline):.3f}", "18% vs 25%"],
            ["promotions", f"{pact.promoted}", f"{colloid.promoted}", "180K vs 8M+"],
        ],
    )
    report += (
        f"\n\npromotions, first quarter of run: {early} "
        f"vs last quarter: {late} (front-loaded spike then stabilise, Fig 8a)"
    )
    report += "\n\n" + format_series(
        "promotions per window (first 32)", list(range(min(32, n))), promotions[:32].tolist()
    )
    report += "\n\n" + format_series(
        "adaptive bin width per window (first 32)", list(range(min(32, n))), widths[:32].tolist()
    )
    emit("fig08_adaptivity", report)

    assert pact.slowdown(baseline) < colloid.slowdown(baseline)
    assert pact.promoted < colloid.promoted
    assert early > late  # promotion activity front-loaded
    # Bin width genuinely adapts over the run.
    positive = widths[widths > 0]
    assert positive.size and positive.max() / positive.min() > 1.5
