"""Figure 8: PACT's adaptive page selection on sssp-kron.

(a) Promotion activity spikes early while PAC variance is high, then
    stabilises with intermittent bursts;
(b) the adaptive bin width tracks shifts in the PAC distribution.

Plus the headline comparison: PACT needs an order of magnitude fewer
migrations than Colloid on this workload while achieving a lower
slowdown (paper: 180K vs. 8M+, 18% vs. 25%).
"""

from __future__ import annotations

import numpy as np

from repro.common.tables import format_series, format_table
from repro.exp import RunRequest, run_requests
from repro.exp.spec import PolicySpec

from conftest import BENCH_JOBS, bench_spec, emit, once


def test_fig08_adaptivity(benchmark, config):
    sssp = bench_spec("sssp-kron")
    pact_req = RunRequest(
        workload=sssp, policy=PolicySpec("PACT"), ratio="1:2",
        config=config, seed=5, trace=True,
    )
    colloid_req = RunRequest(
        workload=sssp, policy=PolicySpec("Colloid"), ratio="1:2", config=config
    )
    ideal_req = RunRequest.ideal(sssp, config=config)
    requests = [pact_req, colloid_req, ideal_req]

    exp = once(benchmark, lambda: run_requests(requests, jobs=BENCH_JOBS))
    pact, colloid, baseline = (exp[r] for r in requests)

    promotions = np.array([rec.promoted for rec in pact.trace])
    widths = np.array([rec.policy_debug.get("bin_width", 0.0) for rec in pact.trace])
    n = promotions.size
    early = promotions[: n // 4].sum()
    late = promotions[3 * n // 4 :].sum()

    report = format_table(
        ["metric", "PACT", "Colloid", "paper"],
        [
            ["slowdown", f"{pact.slowdown(baseline):.3f}", f"{colloid.slowdown(baseline):.3f}", "18% vs 25%"],
            ["promotions", f"{pact.promoted}", f"{colloid.promoted}", "180K vs 8M+"],
        ],
    )
    report += (
        f"\n\npromotions, first quarter of run: {early} "
        f"vs last quarter: {late} (front-loaded spike then stabilise, Fig 8a)"
    )
    report += "\n\n" + format_series(
        "promotions per window (first 32)", list(range(min(32, n))), promotions[:32].tolist()
    )
    report += "\n\n" + format_series(
        "adaptive bin width per window (first 32)", list(range(min(32, n))), widths[:32].tolist()
    )
    emit("fig08_adaptivity", report)

    assert pact.slowdown(baseline) < colloid.slowdown(baseline)
    assert pact.promoted < colloid.promoted
    assert early > late  # promotion activity front-loaded
    # Bin width genuinely adapts over the run.
    positive = widths[widths > 0]
    assert positive.size and positive.max() / positive.min() > 1.5
