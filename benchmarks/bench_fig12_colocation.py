"""Figure 12: colocated access patterns (sequential + random masim).

Two masim processes -- one streaming (high MLP), one pointer-chasing
(low MLP) -- share one tiered address space with the fast tier sized to
half their combined footprint.  Paper: PACT identifies the low-MLP
process's pages as the dominant criticality source, improving over
Colloid by 112% (sequential member), 28% (random member), and 61%
aggregate, with 300K promotions vs. Colloid's 12M.
"""

from __future__ import annotations

import numpy as np

from repro.common.tables import format_table
from repro.exp import RunRequest, run_requests
from repro.exp.spec import PolicySpec, WorkloadSpec
from repro.workloads import ColocatedWorkload, Masim

from conftest import BENCH_JOBS, BENCH_WORK, emit, once

MEMBER_PAGES = 6_144  # each process: "6GB working set", scaled


def build_colocation():
    return ColocatedWorkload(
        [
            # The streaming process retires loads ~1.7x faster than the
            # pointer chaser, finishing its equal share of work earlier.
            Masim(pattern="sequential", footprint_pages=MEMBER_PAGES,
                  total_misses=BENCH_WORK // 2, misses_per_window=160_000, seed=41),
            Masim(pattern="random", footprint_pages=MEMBER_PAGES,
                  total_misses=BENCH_WORK // 2, misses_per_window=95_000, seed=42),
        ]
    )


def member_runtimes(result):
    """Per-member wall-clock runtime: elapsed time at the member's finish.

    All members share the machine's wall clock (bandwidth contention and
    synchronous migration cost stretch every co-running window), so a
    member's runtime is the cumulative window duration up to the window
    in which it completed its work.
    """
    durations = np.cumsum([rec.duration_cycles for rec in result.trace])
    out = []
    for finish in result.workload_metrics["member_finish_window"]:
        idx = len(durations) - 1 if finish < 0 else min(finish, len(durations) - 1)
        out.append(float(durations[idx]))
    return out


def test_fig12_colocation(benchmark, config):
    coloc = WorkloadSpec.from_factory(build_colocation, label="masim-coloc")
    requests = {
        name: RunRequest(
            workload=coloc, policy=PolicySpec(name), ratio="1:1",
            config=config, seed=8, trace=True,
        )
        for name in ("PACT", "Colloid")
    }
    exp = once(benchmark, lambda: run_requests(list(requests.values()), jobs=BENCH_JOBS))
    pact, colloid = exp[requests["PACT"]], exp[requests["Colloid"]]

    pact_rt = member_runtimes(pact)
    colloid_rt = member_runtimes(colloid)
    # The random member's pages sit above the sequential member's in the
    # shared address space; count them in the final fast-tier snapshot.
    pact_random_fast = int((np.asarray(pact.fast_pages) >= MEMBER_PAGES).sum())

    member_names = ("sequential", "random")
    rows = []
    improvements = []
    for i, name in enumerate(member_names):
        gain = colloid_rt[i] / pact_rt[i] - 1
        improvements.append(gain)
        rows.append(
            [name, f"{pact_rt[i] / 2.2e6:.0f} ms", f"{colloid_rt[i] / 2.2e6:.0f} ms", f"{gain:+.1%}"]
        )
    aggregate = colloid.runtime_cycles / pact.runtime_cycles - 1
    rows.append(
        ["aggregate", f"{pact.runtime_ms:.0f} ms", f"{colloid.runtime_ms:.0f} ms", f"{aggregate:+.1%}"]
    )
    report = format_table(
        ["member", "PACT runtime", "Colloid runtime", "PACT improvement"], rows
    )
    report += (
        f"\n\npromotions: PACT {pact.promoted} vs Colloid {colloid.promoted}"
        f"\nfast-tier pages from the random (low-MLP) member under PACT: "
        f"{pact_random_fast}/{MEMBER_PAGES}"
        "\npaper: +112% (sequential), +28% (random), +61% aggregate;"
        " 300K vs 12M promotions."
    )
    emit("fig12_colocation", report)

    assert aggregate > 0.0  # PACT wins overall
    assert pact.promoted < colloid.promoted
    # Both members improve (or at worst break even).
    assert all(g > -0.05 for g in improvements)
    # PACT gives the low-MLP member the majority of the fast tier.
    assert pact_random_fast > MEMBER_PAGES // 2
