"""Figure 5: bc-kron with transparent huge pages (2MB migration units).

Under THP, PEBS still reports 4KB-granular accesses and PACT tracks
criticality at 4KB, but migrations move whole 2MB regions (amortised
cost).  Paper shapes: PACT remains lowest across ratios; Memtis becomes
the second-best system thanks to its per-huge-page hotness decisions;
Colloid/NBT lose ground relative to their 4KB results.
"""

from __future__ import annotations

from repro.analysis.sweep import run_sweep
from repro.common.tables import format_count, format_table

from conftest import bench_workload, emit, once

THP_POLICIES = ("PACT", "Memtis", "Colloid", "NBT", "Nomad", "NoTier")
THP_RATIOS = ("8:1", "2:1", "1:1", "1:2", "1:8")


def test_fig05_bckron_thp(benchmark, config, paper_ratios):
    thp_config = config.with_(thp=True)

    def run():
        return run_sweep(
            {"bc-kron": lambda: bench_workload("bc-kron")},
            policies=list(THP_POLICIES),
            ratios=list(THP_RATIOS),
            config=thp_config,
        )

    sweep = once(benchmark, run)

    rows = []
    for policy in THP_POLICIES:
        row = [policy]
        for ratio in THP_RATIOS:
            row.append(f"{sweep.cell('bc-kron', policy, ratio).slowdown:.3f}")
        rows.append(row)
    rows.append(["CXL (all-slow)"] + [f"{sweep.slow_only['bc-kron']:.3f}"] * len(THP_RATIOS))
    report = format_table(["policy"] + list(THP_RATIOS), rows)

    promo = sweep.promotions_table("bc-kron")
    report += "\n\npromotions (4KB-page equivalents):\n" + format_table(
        ["policy"] + list(THP_RATIOS),
        [
            [p] + [format_count(promo[p][r]) for r in THP_RATIOS]
            for p in ("PACT", "Memtis", "Colloid", "NBT")
        ],
    )
    report += (
        "\n\npaper: PACT lowest across nearly all ratios; Memtis 2nd (THP-aware),"
        "\nlagging PACT by 1-19%; Colloid/NBT degrade under THP."
    )
    emit("fig05_bckron_thp", report)

    for ratio in THP_RATIOS:
        pact = sweep.cell("bc-kron", "PACT", ratio).slowdown
        assert pact < sweep.cell("bc-kron", "NoTier", ratio).slowdown
        assert pact <= sweep.cell("bc-kron", "Memtis", ratio).slowdown * 1.05, ratio
