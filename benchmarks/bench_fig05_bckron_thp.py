"""Figure 5: bc-kron with transparent huge pages (2MB migration units).

Under THP, PEBS still reports 4KB-granular accesses and PACT tracks
criticality at 4KB, but migrations move whole 2MB regions (amortised
cost).  Paper shapes: PACT remains lowest across ratios; Memtis becomes
the second-best system thanks to its per-huge-page hotness decisions;
Colloid/NBT lose ground relative to their 4KB results.
"""

from __future__ import annotations

from repro.exp import ExperimentSpec, run_experiment
from repro.exp import report as exp_report

from conftest import BENCH_JOBS, bench_spec, emit, once

THP_POLICIES = ("PACT", "Memtis", "Colloid", "NBT", "Nomad", "NoTier")
THP_RATIOS = ("8:1", "2:1", "1:1", "1:2", "1:8")


def test_fig05_bckron_thp(benchmark, config):
    spec = ExperimentSpec(
        workloads={"bc-kron": bench_spec("bc-kron")},
        policies=list(THP_POLICIES),
        ratios=list(THP_RATIOS),
        config=config.with_(thp=True),
    )
    exp = once(benchmark, lambda: run_experiment(spec, jobs=BENCH_JOBS))

    report = exp_report.ratio_table(exp, "bc-kron", THP_POLICIES, THP_RATIOS)
    report += "\n\npromotions (4KB-page equivalents):\n" + exp_report.promotion_table(
        exp, "bc-kron", ("PACT", "Memtis", "Colloid", "NBT"), THP_RATIOS
    )
    report += (
        "\n\npaper: PACT lowest across nearly all ratios; Memtis 2nd (THP-aware),"
        "\nlagging PACT by 1-19%; Colloid/NBT degrade under THP."
    )
    emit("fig05_bckron_thp", report)

    for ratio in THP_RATIOS:
        pact = exp.slowdown("bc-kron", "PACT", ratio)
        assert pact < exp.slowdown("bc-kron", "NoTier", ratio)
        assert pact <= exp.slowdown("bc-kron", "Memtis", ratio) * 1.05, ratio
