"""Figure 4 + Table 2: bc-kron with 4KB pages across seven tier ratios.

Reproduces the flagship comparison: slowdown (vs. DRAM-only) of PACT
against the seven baselines and NoTier at fast:slow ratios from 8:1 to
1:8, plus the promotion-count table.  Paper shapes: PACT lowest and
stable; Colloid/NBT degrade with pressure; TPP catastrophic; Nomad
>100%; NoTier flat-bad; PACT promotes multiples fewer pages than
Colloid/NBT and orders of magnitude fewer than TPP.
"""

from __future__ import annotations

import pytest

from repro.analysis.sweep import run_sweep
from repro.common.tables import format_count, format_table

from conftest import MAIN_POLICIES, bench_workload, emit, once


@pytest.fixture(scope="module")
def bckron_sweep(benchmark_disable_gc=None):
    return None  # placeholder; the sweep runs inside the benchmarked test


def test_fig04_and_table2_bckron_4kb(benchmark, config, paper_ratios):
    def run():
        return run_sweep(
            {"bc-kron": lambda: bench_workload("bc-kron")},
            policies=list(MAIN_POLICIES),
            ratios=list(paper_ratios),
            config=config,
        )

    sweep = once(benchmark, run)

    # --- Figure 4: slowdown rows (policies x ratios). -----------------
    slow_rows = []
    for policy in MAIN_POLICIES:
        row = [policy]
        for ratio in paper_ratios:
            row.append(f"{sweep.cell('bc-kron', policy, ratio).slowdown:.3f}")
        slow_rows.append(row)
    slow_rows.append(
        ["CXL (all-slow)"] + [f"{sweep.slow_only['bc-kron']:.3f}"] * len(paper_ratios)
    )
    fig4 = format_table(["policy"] + list(paper_ratios), slow_rows)

    # --- Table 2: promotion counts. ------------------------------------
    promo = sweep.promotions_table("bc-kron")
    promo_rows = []
    for policy in ("PACT", "Colloid", "NBT", "Alto", "Nomad", "TPP", "Memtis"):
        promo_rows.append(
            [policy] + [format_count(promo[policy][r]) for r in paper_ratios]
        )
    tab2 = format_table(["policy"] + list(paper_ratios), promo_rows)

    ratios_vs_colloid = [
        promo["Colloid"][r] / max(promo["PACT"][r], 1) for r in paper_ratios
    ]
    notes = (
        "Colloid/PACT promotion ratio per ratio: "
        + ", ".join(f"{r:.1f}x" for r in ratios_vs_colloid)
        + "\npaper Table 2: PACT 550K-907K (flat); Colloid 1.2M-9M (2.1-10.4x PACT);"
        "\nTPP 116M-285M; Memtis 1.3K-15K; Nomad 5K-32K."
    )
    emit("fig04_bckron_4kb", fig4 + "\n\n--- Table 2: promotions ---\n" + tab2 + "\n\n" + notes)

    # Shape assertions.
    for ratio in paper_ratios:
        pact = sweep.cell("bc-kron", "PACT", ratio).slowdown
        for rival in ("Colloid", "NBT", "TPP", "Nomad", "NoTier"):
            assert pact < sweep.cell("bc-kron", rival, ratio).slowdown * 1.02, (ratio, rival)
    assert promo["TPP"]["1:1"] > 20 * promo["PACT"]["1:1"]
