"""Figure 4 + Table 2: bc-kron with 4KB pages across seven tier ratios.

Reproduces the flagship comparison: slowdown (vs. DRAM-only) of PACT
against the seven baselines and NoTier at fast:slow ratios from 8:1 to
1:8, plus the promotion-count table.  Paper shapes: PACT lowest and
stable; Colloid/NBT degrade with pressure; TPP catastrophic; Nomad
>100%; NoTier flat-bad; PACT promotes multiples fewer pages than
Colloid/NBT and orders of magnitude fewer than TPP.
"""

from __future__ import annotations

from repro.exp import ExperimentSpec, run_experiment
from repro.exp import report

from conftest import BENCH_JOBS, MAIN_POLICIES, bench_spec, emit, once


def test_fig04_and_table2_bckron_4kb(benchmark, config, paper_ratios):
    spec = ExperimentSpec(
        workloads={"bc-kron": bench_spec("bc-kron")},
        policies=list(MAIN_POLICIES),
        ratios=list(paper_ratios),
        config=config,
    )
    exp = once(benchmark, lambda: run_experiment(spec, jobs=BENCH_JOBS))

    # --- Figure 4: slowdown rows (policies x ratios). -----------------
    fig4 = report.ratio_table(exp, "bc-kron", MAIN_POLICIES, paper_ratios)

    # --- Table 2: promotion counts. ------------------------------------
    tab2_policies = ("PACT", "Colloid", "NBT", "Alto", "Nomad", "TPP", "Memtis")
    tab2 = report.promotion_table(exp, "bc-kron", tab2_policies, paper_ratios)

    promo = {
        p: {r: exp.promotions("bc-kron", p, r) for r in paper_ratios}
        for p in ("PACT", "Colloid", "TPP")
    }
    ratios_vs_colloid = [
        promo["Colloid"][r] / max(promo["PACT"][r], 1) for r in paper_ratios
    ]
    notes = (
        "Colloid/PACT promotion ratio per ratio: "
        + ", ".join(f"{r:.1f}x" for r in ratios_vs_colloid)
        + "\npaper Table 2: PACT 550K-907K (flat); Colloid 1.2M-9M (2.1-10.4x PACT);"
        "\nTPP 116M-285M; Memtis 1.3K-15K; Nomad 5K-32K."
    )
    emit("fig04_bckron_4kb", fig4 + "\n\n--- Table 2: promotions ---\n" + tab2 + "\n\n" + notes)

    # Shape assertions.
    for ratio in paper_ratios:
        pact = exp.slowdown("bc-kron", "PACT", ratio)
        for rival in ("Colloid", "NBT", "TPP", "Nomad", "NoTier"):
            assert pact < exp.slowdown("bc-kron", rival, ratio) * 1.02, (ratio, rival)
    assert promo["TPP"]["1:1"] > 20 * promo["PACT"]["1:1"]
