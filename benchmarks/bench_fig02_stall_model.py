"""Figure 2: per-tier stall modelling across 96 workloads x 3 configs.

Fits Equation 1 (stalls = k * misses / MLP) on the synthetic corpus
pinned to each latency configuration and compares its correlation with
measured stalls against raw LLC-miss counts.  Paper result: Pearson
r >= 0.98 for the model vs. 0.82-0.89 for misses alone.
"""

from __future__ import annotations

from repro.common.tables import format_table
from repro.common.units import LATENCY_CONFIGS
from repro.analysis.correlation import evaluate_stall_model
from repro.workloads.corpus import generate_corpus

from conftest import emit, once


def test_fig02_stall_model(benchmark, config):
    corpus = generate_corpus(total_misses=3_000_000, misses_per_window=200_000)

    def run():
        return [
            evaluate_stall_model(corpus, spec, base_config=config, max_windows_each=10)
            for spec in LATENCY_CONFIGS
        ]

    fits = once(benchmark, run)

    rows = [
        [
            f.config_name,
            f"{f.num_workloads}",
            f"{f.k_cycles:.0f}",
            f"{f.pearson_model:.4f}",
            f"{f.pearson_misses:.4f}",
        ]
        for f in fits
    ]
    report = format_table(
        ["config", "workloads", "fitted k (cyc)", "r (Eq.1 model)", "r (raw misses)"], rows
    )
    report += (
        "\n\npaper: r(model) = 0.98 across dram/numa/cxl; r(misses) = 0.82-0.89."
    )
    emit("fig02_stall_model", report)

    for f in fits:
        assert f.pearson_model > 0.97, f.config_name
        assert f.pearson_model > f.pearson_misses, f.config_name
