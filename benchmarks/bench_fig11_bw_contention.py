"""Figure 11: bandwidth contention with MLC co-location.

bc-kron runs while 1-8 Intel-MLC-style threads (8 GB/s each) stream
against the local DRAM node; eight threads saturate the 52 GB/s link.
Slowdowns are normalised to a DRAM-only baseline under the *same*
contention.  Paper: PACT sustains performance comparable to or better
than Colloid (4KB) and Memtis (THP) while promoting substantially fewer
pages (3.5-4.7x fewer than Colloid; 2.2x fewer than Memtis).
"""

from __future__ import annotations

from repro.baselines import make_policy
from repro.common.tables import format_table
from repro.sim.engine import ideal_baseline, run_policy
from repro.workloads import MlcContender

from conftest import bench_workload, emit, once

THREAD_COUNTS = (1, 2, 4, 8)
RATIO = "1:1"


def contended_cell(policy_name, threads, config, **policy_kwargs):
    contender = MlcContender(threads=threads)
    base = ideal_baseline(bench_workload("bc-kron"), config=config, contender=contender)
    res = run_policy(
        bench_workload("bc-kron"),
        make_policy(policy_name, **policy_kwargs),
        ratio=RATIO,
        config=config,
        contender=contender,
    )
    return res.slowdown(base), res.promoted


def test_fig11_bw_contention(benchmark, config):
    thp_config = config.with_(thp=True)

    def run():
        rows_4k, rows_thp = [], []
        for threads in THREAD_COUNTS:
            pact = contended_cell("PACT", threads, config)
            colloid = contended_cell("Colloid", threads, config)
            rows_4k.append((threads, pact, colloid))
            pact_thp = contended_cell("PACT", threads, thp_config)
            memtis = contended_cell("Memtis", threads, thp_config)
            rows_thp.append((threads, pact_thp, memtis))
        return rows_4k, rows_thp

    rows_4k, rows_thp = once(benchmark, run)

    tbl_4k = format_table(
        ["MLC threads", "PACT slowdn", "PACT promos", "Colloid slowdn", "Colloid promos"],
        [
            [t, f"{p[0]:.3f}", p[1], f"{c[0]:.3f}", c[1]]
            for t, p, c in rows_4k
        ],
    )
    tbl_thp = format_table(
        ["MLC threads", "PACT slowdn", "PACT promos", "Memtis slowdn", "Memtis promos"],
        [
            [t, f"{p[0]:.3f}", p[1], f"{m[0]:.3f}", m[1]]
            for t, p, m in rows_thp
        ],
    )
    report = (
        "--- 4KB pages: PACT vs Colloid under contention ---\n" + tbl_4k
        + "\n\n--- THP: PACT vs Memtis under contention ---\n" + tbl_thp
        + "\n\npaper: PACT comparable-or-better at every contention level,"
        "\nwith 3.5-4.7x fewer promotions than Colloid and 2.2x fewer than Memtis."
    )
    report += (
        "\nnote: at full saturation (8 threads) slowdowns can go negative --"
        "\na tiered run offloads traffic from the saturated DRAM link that the"
        "\nDRAM-only baseline must fight through; Colloid's latency balancing"
        "\nexploits that regime maximally (its design thesis)."
    )
    emit("fig11_bw_contention", report)

    for threads, pact, colloid in rows_4k:
        if threads <= 4:
            assert pact[0] <= colloid[0] + 0.03, threads
    for threads, pact, memtis in rows_thp:
        if threads <= 4:
            assert pact[0] <= memtis[0] + 0.05, threads
