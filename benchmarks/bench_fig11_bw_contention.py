"""Figure 11: bandwidth contention with MLC co-location.

bc-kron runs while 1-8 Intel-MLC-style threads (8 GB/s each) stream
against the local DRAM node; eight threads saturate the 52 GB/s link.
Slowdowns are normalised to a DRAM-only baseline under the *same*
contention.  Paper: PACT sustains performance comparable to or better
than Colloid (4KB) and Memtis (THP) while promoting substantially fewer
pages (3.5-4.7x fewer than Colloid; 2.2x fewer than Memtis).
"""

from __future__ import annotations

from repro.common.tables import format_table
from repro.exp import ExperimentSpec, run_experiment
from repro.workloads import MlcContender

from conftest import BENCH_JOBS, bench_spec, emit, once

THREAD_COUNTS = (1, 2, 4, 8)
RATIO = "1:1"


def test_fig11_bw_contention(benchmark, config):
    contenders = {t: MlcContender(threads=t) for t in THREAD_COUNTS}
    # Two experiments (PACT appears in both, under different page sizes);
    # keeping them separate keeps lookups unambiguous, and the shared
    # store dedupes nothing between them anyway (configs differ).
    spec_4k = ExperimentSpec(
        workloads={"bc-kron": bench_spec("bc-kron")},
        policies=["PACT", "Colloid"],
        ratios=[RATIO],
        config=config,
        contenders=tuple(contenders.values()),
        include_slow_only=False,
    )
    spec_thp = ExperimentSpec(
        workloads={"bc-kron": bench_spec("bc-kron")},
        policies=["PACT", "Memtis"],
        ratios=[RATIO],
        config=config.with_(thp=True),
        contenders=tuple(contenders.values()),
        include_slow_only=False,
    )

    def run():
        return (
            run_experiment(spec_4k, jobs=BENCH_JOBS),
            run_experiment(spec_thp, jobs=BENCH_JOBS),
        )

    exp_4k, exp_thp = once(benchmark, run)

    def cell(exp, policy, contender):
        base = exp.baseline("bc-kron", contender=contender)
        res = exp.find(
            workload="bc-kron", policy=policy, ratio=RATIO, contender=contender
        )
        return res.slowdown(base), res.promoted

    rows_4k = [
        (t, cell(exp_4k, "PACT", c), cell(exp_4k, "Colloid", c))
        for t, c in contenders.items()
    ]
    rows_thp = [
        (t, cell(exp_thp, "PACT", c), cell(exp_thp, "Memtis", c))
        for t, c in contenders.items()
    ]

    tbl_4k = format_table(
        ["MLC threads", "PACT slowdn", "PACT promos", "Colloid slowdn", "Colloid promos"],
        [
            [t, f"{p[0]:.3f}", p[1], f"{c[0]:.3f}", c[1]]
            for t, p, c in rows_4k
        ],
    )
    tbl_thp = format_table(
        ["MLC threads", "PACT slowdn", "PACT promos", "Memtis slowdn", "Memtis promos"],
        [
            [t, f"{p[0]:.3f}", p[1], f"{m[0]:.3f}", m[1]]
            for t, p, m in rows_thp
        ],
    )
    report = (
        "--- 4KB pages: PACT vs Colloid under contention ---\n" + tbl_4k
        + "\n\n--- THP: PACT vs Memtis under contention ---\n" + tbl_thp
        + "\n\npaper: PACT comparable-or-better at every contention level,"
        "\nwith 3.5-4.7x fewer promotions than Colloid and 2.2x fewer than Memtis."
    )
    report += (
        "\nnote: at full saturation (8 threads) slowdowns can go negative --"
        "\na tiered run offloads traffic from the saturated DRAM link that the"
        "\nDRAM-only baseline must fight through; Colloid's latency balancing"
        "\nexploits that regime maximally (its design thesis)."
    )
    emit("fig11_bw_contention", report)

    for threads, pact, colloid in rows_4k:
        if threads <= 4:
            assert pact[0] <= colloid[0] + 0.03, threads
    for threads, pact, memtis in rows_thp:
        if threads <= 4:
            assert pact[0] <= memtis[0] + 0.05, threads
