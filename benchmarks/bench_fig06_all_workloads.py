"""Figure 6: all 12 workloads at the 1:1 ratio, every system.

Paper shapes: PACT outperforms (almost) all hotness-based systems with
only marginal losses in the remaining cases; on gpt-2 every hotness
system is worse than NoTier and PACT is the only one better; Soar/Alto
trade wins with PACT per workload.
"""

from __future__ import annotations

from repro.exp import ExperimentSpec, run_experiment
from repro.exp import report as exp_report
from repro.workloads import EVAL_WORKLOADS

from conftest import BENCH_JOBS, MAIN_POLICIES, bench_spec, emit, once


def test_fig06_all_workloads(benchmark, config):
    spec = ExperimentSpec(
        workloads={name: bench_spec(name, wide=True) for name in EVAL_WORKLOADS},
        policies=list(MAIN_POLICIES),
        ratios=["1:1"],
        config=config,
    )
    exp = once(benchmark, lambda: run_experiment(spec, jobs=BENCH_JOBS))

    report = exp_report.workload_table(exp, EVAL_WORKLOADS, MAIN_POLICIES, "1:1")

    # Scorecard: how often is PACT the best online system?
    table = exp.slowdown_table("1:1")
    online = [p for p in MAIN_POLICIES if p not in ("Soar", "NoTier")]
    wins = 0
    worst_gap = 0.0
    for wname in EVAL_WORKLOADS:
        pact = table[wname]["PACT"]
        best_rival = min(table[wname][p] for p in online if p != "PACT")
        if pact <= best_rival + 1e-9:
            wins += 1
        else:
            worst_gap = max(worst_gap, (1 + pact) / (1 + best_rival) - 1)
    report += (
        f"\n\nPACT best-of-online on {wins}/{len(EVAL_WORKLOADS)} workloads; "
        f"largest gap where beaten: {worst_gap:.1%} "
        "(paper: avg gap 4.1%, max 11.8%)."
    )
    emit("fig06_all_workloads", report)

    assert wins >= len(EVAL_WORKLOADS) // 2
    assert worst_gap < 0.20
    # gpt-2 signature: only PACT beats NoTier.
    gpt2 = table["gpt-2"]
    assert gpt2["PACT"] < gpt2["NoTier"]
    for rival in ("Colloid", "NBT", "Nomad", "TPP"):
        assert gpt2[rival] > gpt2["NoTier"] * 0.98, rival
