"""Figure 7: CDFs of PACT's improvement over Colloid/NBT/Memtis.

Runs the 12-workload suite at the 1:2 and 2:1 ratios and reports the
distribution of PACT's relative runtime improvement over the three
strongest competitors.  Paper: average improvement ~9.95% (1:2) and
~10.66% (2:1), with peaks of 57% and 61%.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.improvement import pooled_improvements, summarize_improvements
from repro.common.tables import format_table
from repro.exp import ExperimentSpec, run_experiment
from repro.workloads import EVAL_WORKLOADS

from conftest import BENCH_JOBS, bench_spec, emit, once

COMPETITORS = ("Colloid", "NBT", "Memtis")
RATIOS = ("1:2", "2:1")


def test_fig07_improvement_cdf(benchmark, config):
    spec = ExperimentSpec(
        workloads={name: bench_spec(name, wide=True) for name in EVAL_WORKLOADS},
        policies=["PACT"] + list(COMPETITORS),
        ratios=list(RATIOS),
        config=config,
        include_slow_only=False,
    )
    exp = once(benchmark, lambda: run_experiment(spec, jobs=BENCH_JOBS))

    sections = []
    for ratio in RATIOS:
        summaries = summarize_improvements(
            exp.slowdown_table(ratio), competitors=COMPETITORS
        )
        pooled = pooled_improvements(summaries)
        rows = [
            [name, f"{s.mean:+.1%}", f"{s.min:+.1%}", f"{s.max:+.1%}"]
            for name, s in summaries.items()
        ]
        rows.append(["all (pooled)", f"{pooled.mean:+.1%}", f"{pooled.min:+.1%}", f"{pooled.max:+.1%}"])
        table = format_table(["vs. competitor", "mean", "min", "max"], rows)

        xs, fracs = pooled.cdf()
        deciles = np.interp([0.25, 0.5, 0.75, 0.9], fracs, xs)
        cdf_line = "pooled CDF quartiles (p25/p50/p75/p90): " + "/".join(
            f"{v:+.1%}" for v in deciles
        )
        sections.append(f"--- ratio {ratio} ---\n{table}\n{cdf_line}")

        # Shape assertions: clear average win, bounded worst case.
        assert pooled.mean > 0.02, ratio
        assert pooled.min > -0.15, ratio

    sections.append(
        "paper: avg +9.95% (1:2) / +10.66% (2:1); peaks +57%/+61%; similar CDFs at both ratios."
    )
    emit("fig07_improvement_cdf", "\n\n".join(sections))
