"""Shared infrastructure for the paper-reproduction benchmark harness.

Every bench regenerates one table or figure of the paper's evaluation
(§5) and prints the corresponding rows/series.  Output also lands in
``benchmarks/out/<bench>.txt`` so results survive quiet pytest runs.

Benches declare their grids through :mod:`repro.exp`; results are
content-addressed and persisted under ``benchmarks/.cache`` so running
any two figure benches back-to-back (even in separate processes) reuses
every shared ideal/slow-only baseline.  Knobs:

* ``REPRO_BENCH_WORK`` -- misses per run (fidelity vs. runtime),
* ``REPRO_JOBS`` -- worker processes for cache misses (default serial),
* ``REPRO_NO_CACHE=1`` -- disable the disk cache,
* ``REPRO_CACHE_DIR`` -- cache somewhere other than benchmarks/.cache.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.exp.cache import ResultStore, reset_default_store, set_default_store
from repro.exp.spec import WorkloadSpec
from repro.sim.config import MachineConfig, PAPER_RATIOS
from repro.workloads import make_workload

#: Misses per run; ~250k per window -> ~48 windows at the default.
BENCH_WORK = int(os.environ.get("REPRO_BENCH_WORK", 12_000_000))

#: Reduced work for the widest sweeps (12-workload grids).
BENCH_WORK_WIDE = int(os.environ.get("REPRO_BENCH_WORK_WIDE", 8_000_000))

OUT_DIR = Path(__file__).parent / "out"

#: Persistent result cache shared by every bench process.
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR") or str(Path(__file__).parent / ".cache")

#: Worker processes for cache-miss execution (0 = all cores).
BENCH_JOBS = int(os.environ.get("REPRO_JOBS", "1") or "1")

#: The comparison set used by the main figures.
MAIN_POLICIES = ("PACT", "Colloid", "Alto", "NBT", "TPP", "Memtis", "Nomad", "Soar", "NoTier")


def bench_workload(name: str, wide: bool = False, **kwargs):
    """An evaluation workload instance scaled to the bench budget."""
    kwargs.setdefault("total_misses", BENCH_WORK_WIDE if wide else BENCH_WORK)
    return make_workload(name, **kwargs)


def bench_spec(name: str, wide: bool = False, **kwargs) -> WorkloadSpec:
    """A declarative workload spec scaled to the bench budget."""
    kwargs.setdefault("total_misses", BENCH_WORK_WIDE if wide else BENCH_WORK)
    return WorkloadSpec.registry(name, **kwargs)


def emit(bench_name: str, text: str) -> None:
    """Print a bench's report and persist it under benchmarks/out/."""
    banner = f"\n===== {bench_name} =====\n"
    print(banner + text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{bench_name}.txt").write_text(text + "\n")


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def config():
    return MachineConfig()


@pytest.fixture(scope="session", autouse=True)
def bench_store():
    """Install the persistent bench store for the whole session."""
    directory = None if os.environ.get("REPRO_NO_CACHE") else CACHE_DIR
    store = set_default_store(ResultStore(directory))
    yield store
    reset_default_store()


@pytest.fixture(scope="session")
def paper_ratios():
    return PAPER_RATIOS
