"""Shared infrastructure for the paper-reproduction benchmark harness.

Every bench regenerates one table or figure of the paper's evaluation
(§5) and prints the corresponding rows/series.  Output also lands in
``benchmarks/out/<bench>.txt`` so results survive quiet pytest runs.

Work budgets are scaled down from the paper's multi-minute executions
(set ``REPRO_BENCH_WORK`` to a miss count to override; default 12M
misses ~= 48 sampling windows per run).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.sim.config import MachineConfig, PAPER_RATIOS
from repro.sim.engine import clear_baseline_cache
from repro.workloads import make_workload

#: Misses per run; ~250k per window -> ~48 windows at the default.
BENCH_WORK = int(os.environ.get("REPRO_BENCH_WORK", 12_000_000))

#: Reduced work for the widest sweeps (12-workload grids).
BENCH_WORK_WIDE = int(os.environ.get("REPRO_BENCH_WORK_WIDE", 8_000_000))

OUT_DIR = Path(__file__).parent / "out"

#: The comparison set used by the main figures.
MAIN_POLICIES = ("PACT", "Colloid", "Alto", "NBT", "TPP", "Memtis", "Nomad", "Soar", "NoTier")


def bench_workload(name: str, wide: bool = False, **kwargs):
    """An evaluation workload scaled to the bench budget."""
    kwargs.setdefault("total_misses", BENCH_WORK_WIDE if wide else BENCH_WORK)
    return make_workload(name, **kwargs)


def emit(bench_name: str, text: str) -> None:
    """Print a bench's report and persist it under benchmarks/out/."""
    banner = f"\n===== {bench_name} =====\n"
    print(banner + text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{bench_name}.txt").write_text(text + "\n")


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def config():
    return MachineConfig()


@pytest.fixture(scope="session", autouse=True)
def _fresh_baselines():
    clear_baseline_cache()


@pytest.fixture(scope="session")
def paper_ratios():
    return PAPER_RATIOS
