"""Figure 3: TOR-derived per-tier MLP -- accuracy and phase stability.

(a) TOR-MLP (dT1/dT2) must track the ground-truth MLP trend;
(b) MLP must be stable within sampling windows but evolve across
    phases (the property uniform attribution relies on);
the gray line check: the Little's-law estimate (latency x bandwidth)
captures the trend but overestimates absolute MLP because link bytes
include prefetch traffic.
"""

from __future__ import annotations

import numpy as np

from repro.common.stats import pearson
from repro.common.tables import format_series, format_table
from repro.hw.cha import littles_law_mlp
from repro.mem.page import Tier
from repro.sim.machine import Machine
from repro.sim.policy_api import Decision, Observation, TieringPolicy
from repro.workloads import make_workload

from conftest import BENCH_WORK, emit, once


class _MlpProbe(TieringPolicy):
    """Records TOR-MLP, ground-truth MLP, and Little's-law MLP per window."""

    name = "mlp-probe"
    synchronous_migration = False
    needs_pebs = False

    def __init__(self, machine_getter):
        self.tor_mlp = []
        self.true_mlp = []
        self.littles = []
        self._machine_getter = machine_getter

    def observe(self, obs: Observation) -> Decision:
        machine = self._machine_getter()
        self.tor_mlp.append(obs.tor_mlp[Tier.SLOW])
        duration_ns = obs.window_cycles / machine.config.freq_ghz
        slow_bytes = obs.perf.bytes.get(Tier.SLOW, 0.0)
        self.littles.append(
            littles_law_mlp(slow_bytes, machine.config.slow_spec.latency_ns, duration_ns)
        )
        return Decision.none()


def test_fig03_tor_mlp(benchmark, config):
    workload = make_workload("bc-kron", total_misses=BENCH_WORK)

    def run():
        holder = {}
        probe = _MlpProbe(lambda: holder["m"])
        machine = Machine(workload, probe, config=config, fast_capacity_override=0,
                          seed=4, trace=True)
        holder["m"] = machine
        result = machine.run()
        truth = [rec.mlp_slow for rec in result.trace]
        return probe, truth

    probe, truth = once(benchmark, run)
    tor = np.array(probe.tor_mlp)
    true_mlp = np.array(truth)
    littles = np.array(probe.littles)

    r_tor = pearson(tor, true_mlp)
    r_littles = pearson(littles, true_mlp)
    overestimate = float(np.mean(littles / true_mlp))

    # Phase stability: per-window changes are small relative to the
    # overall dynamic range (tens-of-ms stability, §4.2.3).
    step_change = np.abs(np.diff(tor)) / tor[:-1]
    dynamic_range = tor.max() / tor.min()

    report = format_table(
        ["metric", "value", "paper"],
        [
            ["pearson(TOR-MLP, true MLP)", f"{r_tor:.3f}", "tracks closely (Fig 3a)"],
            ["pearson(Little's-law, true MLP)", f"{r_littles:.3f}", "tracks trend (gray line)"],
            ["Little's-law overestimate factor", f"{overestimate:.2f}x", ">1 (prefetch bytes)"],
            ["median window-to-window MLP change", f"{np.median(step_change):.1%}", "small (stable)"],
            ["MLP dynamic range across phases", f"{dynamic_range:.1f}x", "evolves over phases"],
        ],
    )
    report += "\n\n" + format_series(
        "slow-tier TOR-MLP (first 24 windows)", list(range(24)), list(tor[:24])
    )
    emit("fig03_tor_mlp", report)

    assert r_tor > 0.95
    assert overestimate > 1.0
    assert dynamic_range > 1.5
