"""Ablations of PACT design choices and future-work extensions.

Not a paper figure, but the evaluation's §4 design discussion calls out
three choices these benches quantify:

* **Eager demotion margin m** (§4.4.2): m = 0 balances promotion and
  demotion; larger m pre-reserves fast-tier headroom for bursty phases.
* **Latency-weighted attribution** (§4.3.7 future work):
  ``S_p = S * A_p l_p / sum A_i l_i`` using TPEBS-style per-record
  latencies, which sharpens criticality separation under colocated
  heterogeneous access patterns.
* **Promotion cooldown**: the anti-thrash guard on re-promotion.
"""

from __future__ import annotations

from repro.common.tables import format_table
from repro.exp import RunRequest, run_requests
from repro.exp.spec import PolicySpec, WorkloadSpec
from repro.workloads import ColocatedWorkload, Masim

from conftest import BENCH_JOBS, BENCH_WORK, bench_spec, emit, once


def test_ablation_eager_demotion_margin(benchmark, config):
    bckron = bench_spec("bc-kron")
    margins = (0, 16, 64, 256)
    base_req = RunRequest.ideal(bckron, config=config)
    reqs = {
        m: RunRequest(
            workload=bckron, policy=PolicySpec("PACT", {"m": m}),
            ratio="1:2", config=config,
        )
        for m in margins
    }
    exp = once(
        benchmark, lambda: run_requests([base_req, *reqs.values()], jobs=BENCH_JOBS)
    )
    baseline = exp[base_req]
    rows = [
        [m, f"{exp[req].slowdown(baseline):.3f}", exp[req].promoted, exp[req].demoted]
        for m, req in reqs.items()
    ]
    report = format_table(["m (demote-ahead)", "slowdown", "promoted", "demoted"], rows)
    report += (
        "\n\nm=0 is the conservative default (§4.4.2); larger m demotes ahead"
        "\nof demand, helping bursty workloads at the cost of extra demotions."
    )
    emit("ablation_eager_demotion", report)
    slowdowns = [float(r[1]) for r in rows]
    assert max(slowdowns) - min(slowdowns) < 0.12  # robust to m (paper: minimal tuning)
    assert rows[-1][3] >= rows[0][3]  # larger m -> at least as many demotions


def _colocation():
    return ColocatedWorkload(
        [
            Masim(pattern="sequential", footprint_pages=4096,
                  total_misses=BENCH_WORK // 2, misses_per_window=160_000, seed=51),
            Masim(pattern="random", footprint_pages=4096,
                  total_misses=BENCH_WORK // 2, misses_per_window=95_000, seed=52),
        ]
    )


def test_ablation_latency_weighted_attribution(benchmark, config):
    coloc = WorkloadSpec.from_factory(_colocation, label="masim-coloc-ablation")
    base_req = RunRequest.ideal(coloc, config=config)
    plain_req = RunRequest(
        workload=coloc, policy=PolicySpec("PACT"), ratio="1:1", config=config
    )
    weighted_req = RunRequest(
        workload=coloc, policy=PolicySpec("PACT", {"latency_weighted": True}),
        ratio="1:1", config=config,
    )
    exp = once(
        benchmark,
        lambda: run_requests([base_req, plain_req, weighted_req], jobs=BENCH_JOBS),
    )
    baseline, plain, weighted = exp[base_req], exp[plain_req], exp[weighted_req]
    report = format_table(
        ["attribution", "slowdown", "promotions"],
        [
            ["proportional (Alg. 1)", f"{plain.slowdown(baseline):.3f}", plain.promoted],
            ["latency-weighted (§4.3.7)", f"{weighted.slowdown(baseline):.3f}", weighted.promoted],
        ],
    )
    report += (
        "\n\nUnder colocation, per-record latency weighting separates the"
        "\nlatency-bound process's pages from equally-frequent streaming pages."
    )
    emit("ablation_latency_weighted", report)
    # The extension must not hurt, and typically helps under colocation.
    assert weighted.slowdown(baseline) <= plain.slowdown(baseline) + 0.03


def test_ablation_promotion_cooldown(benchmark, config):
    bckron = bench_spec("bc-kron")
    base_req = RunRequest.ideal(bckron, config=config)
    reqs = {
        cooldown: RunRequest(
            workload=bckron,
            policy=PolicySpec("PACT", {"promotion_cooldown_windows": cooldown}),
            ratio="1:4", config=config,
        )
        for cooldown in (0, 5, 20, 100)
    }
    exp = once(
        benchmark, lambda: run_requests([base_req, *reqs.values()], jobs=BENCH_JOBS)
    )
    baseline = exp[base_req]
    rows = [
        [cooldown, f"{exp[req].slowdown(baseline):.3f}", exp[req].promoted]
        for cooldown, req in reqs.items()
    ]
    report = format_table(["cooldown (windows)", "slowdown", "promotions"], rows)
    emit("ablation_promotion_cooldown", report)
    # Performance is robust across the cooldown range (no tuning cliff).
    slowdowns = [float(r[1]) for r in rows]
    assert max(slowdowns) - min(slowdowns) < 0.08


def test_ablation_hardware_backends(benchmark, config):
    """§4.2.2 + §4.3.5 portability: PACT on alternative hardware signals.

    * TOR counters vs Little's-law MLP (Intel vs AMD measurement path),
    * PEBS event sampling vs CHMU controller-side counting (CXL 3.2).
    """
    variants = {
        "TOR + PEBS (default)": {},
        "Little's-law MLP (AMD path)": {"mlp_source": "littles_law"},
        "CHMU access sampling": {"access_sampler": "chmu"},
        "Little's-law + CHMU": {"mlp_source": "littles_law", "access_sampler": "chmu"},
    }
    bckron = bench_spec("bc-kron")
    base_req = RunRequest.ideal(bckron, config=config)
    reqs = {
        label: RunRequest(
            workload=bckron, policy=PolicySpec("PACT", dict(kwargs)),
            ratio="1:2", config=config,
        )
        for label, kwargs in variants.items()
    }
    exp = once(
        benchmark, lambda: run_requests([base_req, *reqs.values()], jobs=BENCH_JOBS)
    )
    baseline = exp[base_req]
    rows = [
        [label, f"{exp[req].slowdown(baseline):.3f}", exp[req].promoted]
        for label, req in reqs.items()
    ]
    report = format_table(["hardware backend", "slowdown", "promotions"], rows)
    report += (
        "\n\nPAC needs MLP's temporal variation, not its absolute value"
        "\n(§4.2.2), so the overestimating Little's-law path stays close;"
        "\nCHMU's exact counts match or beat 1-in-400 PEBS sampling."
    )
    emit("ablation_hardware_backends", report)
    slowdowns = [float(r[1]) for r in rows]
    assert max(slowdowns) - min(slowdowns) < 0.08  # all backends viable


def _bckron_bench():
    return bench_spec("bc-kron").build()


def test_headline_with_confidence_intervals(benchmark, config):
    """Seed-replicated headline claim: PACT's advantage over Colloid on
    bc-kron at 1:2 survives sampling noise (95% confidence)."""
    from repro.analysis.repeat import repeat_runs, significantly_better

    def run():
        pact = repeat_runs(
            _bckron_bench, "PACT", ratio="1:2", seeds=(0, 1, 2, 3),
            config=config, jobs=BENCH_JOBS,
        )
        colloid = repeat_runs(
            _bckron_bench, "Colloid", ratio="1:2", seeds=(0, 1, 2, 3),
            config=config, jobs=BENCH_JOBS,
        )
        return pact, colloid

    pact, colloid = once(benchmark, run)
    report = format_table(
        ["policy", "slowdown (mean ± 95% CI)", "promotions (mean)"],
        [
            ["PACT", f"{pact.mean_slowdown:.3f} ± {pact.ci95_slowdown:.3f}", f"{pact.mean_promotions:.0f}"],
            ["Colloid", f"{colloid.mean_slowdown:.3f} ± {colloid.ci95_slowdown:.3f}", f"{colloid.mean_promotions:.0f}"],
        ],
    )
    verdict = significantly_better(pact, colloid)
    report += f"\n\nPACT significantly better at 95% confidence: {verdict}"
    emit("ablation_confidence", report)
    assert verdict
