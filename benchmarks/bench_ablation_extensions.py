"""Ablations of PACT design choices and future-work extensions.

Not a paper figure, but the evaluation's §4 design discussion calls out
three choices these benches quantify:

* **Eager demotion margin m** (§4.4.2): m = 0 balances promotion and
  demotion; larger m pre-reserves fast-tier headroom for bursty phases.
* **Latency-weighted attribution** (§4.3.7 future work):
  ``S_p = S * A_p l_p / sum A_i l_i`` using TPEBS-style per-record
  latencies, which sharpens criticality separation under colocated
  heterogeneous access patterns.
* **Promotion cooldown**: the anti-thrash guard on re-promotion.
"""

from __future__ import annotations

from repro.baselines import make_policy
from repro.common.tables import format_table
from repro.sim.engine import ideal_baseline, run_policy
from repro.sim.machine import Machine
from repro.workloads import ColocatedWorkload, Masim

from conftest import BENCH_WORK, bench_workload, emit, once


def test_ablation_eager_demotion_margin(benchmark, config):
    def run():
        rows = []
        baseline = ideal_baseline(bench_workload("bc-kron"), config=config)
        for m in (0, 16, 64, 256):
            res = run_policy(
                bench_workload("bc-kron"), make_policy("PACT", m=m), ratio="1:2",
                config=config,
            )
            rows.append([m, f"{res.slowdown(baseline):.3f}", res.promoted, res.demoted])
        return rows

    rows = once(benchmark, run)
    report = format_table(["m (demote-ahead)", "slowdown", "promoted", "demoted"], rows)
    report += (
        "\n\nm=0 is the conservative default (§4.4.2); larger m demotes ahead"
        "\nof demand, helping bursty workloads at the cost of extra demotions."
    )
    emit("ablation_eager_demotion", report)
    slowdowns = [float(r[1]) for r in rows]
    assert max(slowdowns) - min(slowdowns) < 0.12  # robust to m (paper: minimal tuning)
    assert rows[-1][3] >= rows[0][3]  # larger m -> at least as many demotions


def _colocation():
    return ColocatedWorkload(
        [
            Masim(pattern="sequential", footprint_pages=4096,
                  total_misses=BENCH_WORK // 2, misses_per_window=160_000, seed=51),
            Masim(pattern="random", footprint_pages=4096,
                  total_misses=BENCH_WORK // 2, misses_per_window=95_000, seed=52),
        ]
    )


def test_ablation_latency_weighted_attribution(benchmark, config):
    def run():
        baseline = ideal_baseline(_colocation(), config=config)
        plain = run_policy(_colocation(), make_policy("PACT"), ratio="1:1", config=config)
        weighted = run_policy(
            _colocation(), make_policy("PACT", latency_weighted=True), ratio="1:1",
            config=config,
        )
        return baseline, plain, weighted

    baseline, plain, weighted = once(benchmark, run)
    report = format_table(
        ["attribution", "slowdown", "promotions"],
        [
            ["proportional (Alg. 1)", f"{plain.slowdown(baseline):.3f}", plain.promoted],
            ["latency-weighted (§4.3.7)", f"{weighted.slowdown(baseline):.3f}", weighted.promoted],
        ],
    )
    report += (
        "\n\nUnder colocation, per-record latency weighting separates the"
        "\nlatency-bound process's pages from equally-frequent streaming pages."
    )
    emit("ablation_latency_weighted", report)
    # The extension must not hurt, and typically helps under colocation.
    assert weighted.slowdown(baseline) <= plain.slowdown(baseline) + 0.03


def test_ablation_promotion_cooldown(benchmark, config):
    def run():
        baseline = ideal_baseline(bench_workload("bc-kron"), config=config)
        rows = []
        for cooldown in (0, 5, 20, 100):
            res = run_policy(
                bench_workload("bc-kron"),
                make_policy("PACT", promotion_cooldown_windows=cooldown),
                ratio="1:4",
                config=config,
            )
            rows.append([cooldown, f"{res.slowdown(baseline):.3f}", res.promoted])
        return rows

    rows = once(benchmark, run)
    report = format_table(["cooldown (windows)", "slowdown", "promotions"], rows)
    emit("ablation_promotion_cooldown", report)
    # Performance is robust across the cooldown range (no tuning cliff).
    slowdowns = [float(r[1]) for r in rows]
    assert max(slowdowns) - min(slowdowns) < 0.08


def test_ablation_hardware_backends(benchmark, config):
    """§4.2.2 + §4.3.5 portability: PACT on alternative hardware signals.

    * TOR counters vs Little's-law MLP (Intel vs AMD measurement path),
    * PEBS event sampling vs CHMU controller-side counting (CXL 3.2).
    """

    def run():
        baseline = ideal_baseline(bench_workload("bc-kron"), config=config)
        rows = []
        variants = {
            "TOR + PEBS (default)": {},
            "Little's-law MLP (AMD path)": {"mlp_source": "littles_law"},
            "CHMU access sampling": {"access_sampler": "chmu"},
            "Little's-law + CHMU": {"mlp_source": "littles_law", "access_sampler": "chmu"},
        }
        for label, kwargs in variants.items():
            res = run_policy(
                bench_workload("bc-kron"),
                make_policy("PACT", **kwargs),
                ratio="1:2",
                config=config,
            )
            rows.append([label, f"{res.slowdown(baseline):.3f}", res.promoted])
        return rows

    rows = once(benchmark, run)
    report = format_table(["hardware backend", "slowdown", "promotions"], rows)
    report += (
        "\n\nPAC needs MLP's temporal variation, not its absolute value"
        "\n(§4.2.2), so the overestimating Little's-law path stays close;"
        "\nCHMU's exact counts match or beat 1-in-400 PEBS sampling."
    )
    emit("ablation_hardware_backends", report)
    slowdowns = [float(r[1]) for r in rows]
    assert max(slowdowns) - min(slowdowns) < 0.08  # all backends viable


def test_headline_with_confidence_intervals(benchmark, config):
    """Seed-replicated headline claim: PACT's advantage over Colloid on
    bc-kron at 1:2 survives sampling noise (95% confidence)."""
    from repro.analysis.repeat import repeat_runs, significantly_better

    def run():
        factory = lambda: bench_workload("bc-kron")
        pact = repeat_runs(factory, "PACT", ratio="1:2", seeds=(0, 1, 2, 3), config=config)
        colloid = repeat_runs(factory, "Colloid", ratio="1:2", seeds=(0, 1, 2, 3), config=config)
        return pact, colloid

    pact, colloid = once(benchmark, run)
    report = format_table(
        ["policy", "slowdown (mean ± 95% CI)", "promotions (mean)"],
        [
            ["PACT", f"{pact.mean_slowdown:.3f} ± {pact.ci95_slowdown:.3f}", f"{pact.mean_promotions:.0f}"],
            ["Colloid", f"{colloid.mean_slowdown:.3f} ± {colloid.ci95_slowdown:.3f}", f"{colloid.mean_promotions:.0f}"],
        ],
    )
    verdict = significantly_better(pact, colloid)
    report += f"\n\nPACT significantly better at 95% confidence: {verdict}"
    emit("ablation_confidence", report)
    assert verdict
