"""Figure 13: Redis + YCSB-C breakdown of PACT's techniques.

Compares Colloid against three PACT variants on the Redis workload at
1:1: '+Static' (fixed bin width), '+Adaptive' (Freedman-Diaconis width,
no scaling), and '+Both' (adaptive width + scaling optimisation).
Reported as request throughput and mean/p99 request latency, as the
paper's Figure 13 does.  Paper: '+Both' beats Colloid by up to 40% on
latency and throughput while sharply reducing tail latency.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import make_policy
from repro.common.tables import format_table
from repro.common.units import NS_PER_S
from repro.sim.machine import Machine
from repro.workloads import RedisYcsbC

from conftest import BENCH_WORK, emit, once

VARIANTS = {
    "Colloid": lambda: make_policy("Colloid"),
    "PACT+Static": lambda: make_policy("PACT", adaptive_binning=False, scaling=False),
    "PACT+Adaptive": lambda: make_policy("PACT", adaptive_binning=True, scaling=False),
    "PACT+Both": lambda: make_policy("PACT"),
}


def serve_metrics(config, policy_factory):
    workload = RedisYcsbC(total_misses=BENCH_WORK)
    machine = Machine(workload, policy_factory(), config=config, ratio="1:1",
                      seed=13, trace=True)
    result = machine.run()
    window_ops = np.array(
        [workload.ops_for_misses(r.slow_misses + r.fast_misses) for r in result.trace]
    )
    window_secs = np.array(
        [r.duration_cycles / config.freq_ghz / NS_PER_S for r in result.trace]
    )
    latency_us = window_secs / np.maximum(window_ops, 1.0) * 1e6 * 8  # 8 serving threads
    total_ops = float(window_ops.sum())
    throughput_kops = total_ops / window_secs.sum() / 1e3
    return {
        "throughput_kops": throughput_kops,
        "mean_latency_us": float(np.average(latency_us, weights=window_ops)),
        "p99_latency_us": float(np.quantile(np.repeat(latency_us, 8), 0.99)),
        "promoted": result.promoted,
    }


def test_fig13_redis_breakdown(benchmark, config):
    def run():
        return {name: serve_metrics(config, factory) for name, factory in VARIANTS.items()}

    metrics = once(benchmark, run)

    rows = [
        [
            name,
            f"{m['throughput_kops']:.0f}",
            f"{m['mean_latency_us']:.2f}",
            f"{m['p99_latency_us']:.2f}",
            m["promoted"],
        ]
        for name, m in metrics.items()
    ]
    report = format_table(
        ["system", "throughput (Kops/s)", "mean lat (us)", "p99 lat (us)", "promotions"],
        rows,
    )
    both = metrics["PACT+Both"]
    colloid = metrics["Colloid"]
    report += (
        f"\n\nPACT+Both vs Colloid: throughput {both['throughput_kops'] / colloid['throughput_kops'] - 1:+.1%},"
        f" mean latency {1 - both['mean_latency_us'] / colloid['mean_latency_us']:+.1%},"
        f" p99 latency {1 - both['p99_latency_us'] / colloid['p99_latency_us']:+.1%}"
        "\npaper: up to +40% throughput/latency, large tail-latency reduction;"
        " each technique contributes (+Static < +Adaptive < +Both)."
    )
    emit("fig13_redis_breakdown", report)

    # Breakdown ordering: the full design is the best PACT variant and
    # beats Colloid on throughput and latency.
    assert both["throughput_kops"] >= colloid["throughput_kops"]
    assert both["mean_latency_us"] <= colloid["mean_latency_us"]
    assert both["throughput_kops"] >= metrics["PACT+Static"]["throughput_kops"] * 0.98
