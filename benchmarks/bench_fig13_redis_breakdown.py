"""Figure 13: Redis + YCSB-C breakdown of PACT's techniques.

Compares Colloid against three PACT variants on the Redis workload at
1:1: '+Static' (fixed bin width), '+Adaptive' (Freedman-Diaconis width,
no scaling), and '+Both' (adaptive width + scaling optimisation).
Reported as request throughput and mean/p99 request latency, as the
paper's Figure 13 does.  Paper: '+Both' beats Colloid by up to 40% on
latency and throughput while sharply reducing tail latency.
"""

from __future__ import annotations

import numpy as np

from repro.common.tables import format_table
from repro.common.units import NS_PER_S
from repro.exp import RunRequest, run_requests
from repro.exp.spec import PolicySpec, WorkloadSpec
from repro.workloads import RedisYcsbC

from conftest import BENCH_JOBS, BENCH_WORK, emit, once

VARIANTS = {
    "Colloid": PolicySpec("Colloid"),
    "PACT+Static": PolicySpec(
        "PACT", {"adaptive_binning": False, "scaling": False}, label="PACT+Static"
    ),
    "PACT+Adaptive": PolicySpec(
        "PACT", {"adaptive_binning": True, "scaling": False}, label="PACT+Adaptive"
    ),
    "PACT+Both": PolicySpec("PACT", label="PACT+Both"),
}


def build_redis():
    return RedisYcsbC(total_misses=BENCH_WORK)


def serve_metrics(result, config):
    # ops_for_misses is a pure function of the workload parameters, so a
    # locally built instance converts the (possibly cached) trace.
    workload = build_redis()
    window_ops = np.array(
        [workload.ops_for_misses(r.slow_misses + r.fast_misses) for r in result.trace]
    )
    window_secs = np.array(
        [r.duration_cycles / config.freq_ghz / NS_PER_S for r in result.trace]
    )
    latency_us = window_secs / np.maximum(window_ops, 1.0) * 1e6 * 8  # 8 serving threads
    total_ops = float(window_ops.sum())
    throughput_kops = total_ops / window_secs.sum() / 1e3
    return {
        "throughput_kops": throughput_kops,
        "mean_latency_us": float(np.average(latency_us, weights=window_ops)),
        "p99_latency_us": float(np.quantile(np.repeat(latency_us, 8), 0.99)),
        "promoted": result.promoted,
    }


def test_fig13_redis_breakdown(benchmark, config):
    redis = WorkloadSpec.from_factory(build_redis, label="redis-ycsbc")
    requests = {
        name: RunRequest(
            workload=redis, policy=pspec, ratio="1:1",
            config=config, seed=13, trace=True,
        )
        for name, pspec in VARIANTS.items()
    }
    exp = once(benchmark, lambda: run_requests(list(requests.values()), jobs=BENCH_JOBS))
    metrics = {name: serve_metrics(exp[req], config) for name, req in requests.items()}

    rows = [
        [
            name,
            f"{m['throughput_kops']:.0f}",
            f"{m['mean_latency_us']:.2f}",
            f"{m['p99_latency_us']:.2f}",
            m["promoted"],
        ]
        for name, m in metrics.items()
    ]
    report = format_table(
        ["system", "throughput (Kops/s)", "mean lat (us)", "p99 lat (us)", "promotions"],
        rows,
    )
    both = metrics["PACT+Both"]
    colloid = metrics["Colloid"]
    report += (
        f"\n\nPACT+Both vs Colloid: throughput {both['throughput_kops'] / colloid['throughput_kops'] - 1:+.1%},"
        f" mean latency {1 - both['mean_latency_us'] / colloid['mean_latency_us']:+.1%},"
        f" p99 latency {1 - both['p99_latency_us'] / colloid['p99_latency_us']:+.1%}"
        "\npaper: up to +40% throughput/latency, large tail-latency reduction;"
        " each technique contributes (+Static < +Adaptive < +Both)."
    )
    emit("fig13_redis_breakdown", report)

    # Breakdown ordering: the full design is the best PACT variant and
    # beats Colloid on throughput and latency.
    assert both["throughput_kops"] >= colloid["throughput_kops"]
    assert both["mean_latency_us"] <= colloid["mean_latency_us"]
    assert both["throughput_kops"] >= metrics["PACT+Static"]["throughput_kops"] * 0.98
