"""Figure 1: PAC vs. frequency -- per-page criticality distributions.

Profiles masim, gups, and tc-twitter on emulated CXL (190ns) and reports
the distribution of accumulated PAC (cycles) within page-access-
frequency quantiles.  The paper's takeaway: pages with identical access
frequency differ in stall cost by large factors (up to 65x for
tc-twitter), so frequency cannot stand in for criticality.
"""

from __future__ import annotations

import numpy as np

from repro.common.tables import format_table
from repro.core.pact import PactPolicy
from repro.sim.machine import Machine

from conftest import bench_spec, emit, once


def profile_pac(workload, config, windows=40, seed=9):
    """Slow-only profiling run.

    Returns per tracked page (sampled access count, mean per-access
    stall cost in cycles) -- the quantity Figure 1's violins plot: PAC
    averaged into per-access stall (13-460 cycles on the testbed).
    """
    policy = PactPolicy()
    machine = Machine(workload, policy, config=config, fast_capacity_override=0, seed=seed)
    machine.run(max_windows=windows)
    tracked = policy.tracker.tracked_pages()
    freq = policy.tracker.frequency[tracked]
    pac = policy.tracker.pac[tracked]
    # Attribution spreads the window's *total* slow-tier stalls over the
    # sampled counts; dividing by (records * rate) yields cycles per
    # true access.
    per_access = pac / np.maximum(freq * machine.pebs.rate, 1.0)
    return freq, per_access


def quantile_rows(freq, pac, num_groups=5):
    """Violin-plot summary rows: per-frequency-quantile PAC min/med/max."""
    edges = np.unique(np.quantile(freq, np.linspace(0, 1, num_groups + 1)))
    rows = []
    for i in range(max(edges.size - 1, 1)):
        lo = edges[i]
        hi = edges[min(i + 1, edges.size - 1)]
        last = i == edges.size - 2
        mask = (freq >= lo) & ((freq <= hi) if last else (freq < hi))
        if not mask.any():
            continue
        values = pac[mask]
        spread = values.max() / max(values.min(), 1e-9)
        rows.append(
            [
                f"q{i + 1}",
                int(mask.sum()),
                f"{values.min():.1f}",
                f"{np.median(values):.1f}",
                f"{values.max():.1f}",
                f"{spread:.1f}x",
            ]
        )
    return rows


def test_fig01_pac_vs_frequency(benchmark, config):
    # Profiling needs the live policy's tracker, so these runs bypass
    # the result cache; the specs still declare what gets profiled.
    workloads = {
        name: bench_spec(name).build()
        for name in ("masim", "gups", "tc-twitter")
    }

    def run():
        return {
            name: profile_pac(w, config) for name, w in workloads.items()
        }

    profiles = once(benchmark, run)

    sections = []
    spreads = {}
    for name, (freq, pac) in profiles.items():
        rows = quantile_rows(freq, pac)
        sections.append(
            f"--- {name}: PAC (cycles) per access-frequency quantile ---\n"
            + format_table(
                ["freq-group", "pages", "pac-min", "pac-median", "pac-max", "spread"],
                rows,
            )
        )
        # Paper headline: within-frequency-group criticality spread.
        per_group = [float(r[5].rstrip("x")) for r in rows]
        spreads[name] = max(per_group)
    sections.append(
        "max within-frequency-group PAC spread: "
        + ", ".join(f"{k}={v:.0f}x" for k, v in spreads.items())
        + "\n(paper: masim bimodal ~1.6x, gups ~4x, tc-twitter up to 65x)"
    )
    emit("fig01_pac_vs_frequency", "\n\n".join(sections))

    # The qualitative claim must hold: tc-twitter's spread dwarfs masim's.
    assert spreads["tc-twitter"] > spreads["masim"]
