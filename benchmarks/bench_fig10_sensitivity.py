"""Figure 10: sensitivity to PEBS rate, sampling period, and cooling.

(a) PEBS rate 800 -> 4000 (sparser sampling) degrades slowdown
    (paper: ~23% -> ~30%);
(b) longer PAC sampling periods (20ms -> 1000ms) increase promotions
    and slowdown (paper: 800K -> 1.7M promotions, 20% -> 27%);
(c) cooling (alpha = 1.0 / halve / reset) rarely helps
    (paper: default no-cooling is robust).
"""

from __future__ import annotations

from repro.common.tables import format_table
from repro.core.cooling import CoolingConfig
from repro.exp import RunRequest, run_requests
from repro.exp.spec import PolicySpec

from conftest import BENCH_JOBS, bench_spec, emit, once

RATIO = "1:2"
PEBS_RATES = (200, 400, 800, 2000, 4000)
#: Sampling periods in windows (1 window ~ one 20 ms perf interval).
PERIODS = (1, 5, 10, 25, 50)
COOLING = {
    "alpha=1.0 (default)": CoolingConfig.none(),
    "halve (distance)": CoolingConfig.halving(threshold=200_000),
    "reset (distance)": CoolingConfig.reset(threshold=200_000),
}
COOLING_WORKLOADS = ("bc-kron", "gups", "silo")


def test_fig10_sensitivity(benchmark, config):
    bckron = bench_spec("bc-kron")
    pact = PolicySpec("PACT")

    # (a) PEBS rate axis: the baseline moves with the config too.
    pebs_reqs = {
        rate: (
            RunRequest(workload=bckron, policy=pact, ratio=RATIO,
                       config=config.with_(pebs_rate=rate)),
            RunRequest.ideal(bckron, config=config.with_(pebs_rate=rate)),
        )
        for rate in PEBS_RATES
    }
    # (b) PAC sampling-period axis (policy kwargs, shared baseline).
    period_reqs = {
        period: RunRequest(
            workload=bckron,
            policy=PolicySpec("PACT", {"period_windows": period}),
            ratio=RATIO, config=config,
        )
        for period in PERIODS
    }
    base_req = RunRequest.ideal(bckron, config=config)
    # (c) cooling mechanisms across three workloads.
    cool_specs = {wname: bench_spec(wname) for wname in COOLING_WORKLOADS}
    cool_reqs = {
        (wname, label): RunRequest(
            workload=cool_specs[wname],
            policy=PolicySpec("PACT", {"cooling": cooling}),
            ratio=RATIO, config=config,
        )
        for wname in COOLING_WORKLOADS
        for label, cooling in COOLING.items()
    }
    cool_base = {
        wname: RunRequest.ideal(cool_specs[wname], config=config)
        for wname in COOLING_WORKLOADS
    }

    flat = (
        [r for pair in pebs_reqs.values() for r in pair]
        + list(period_reqs.values())
        + [base_req]
        + list(cool_reqs.values())
        + list(cool_base.values())
    )
    exp = once(benchmark, lambda: run_requests(flat, jobs=BENCH_JOBS))

    out = {"pebs": [], "period": [], "cooling": []}
    for rate, (req, base) in pebs_reqs.items():
        res = exp[req]
        out["pebs"].append((rate, res.slowdown(exp[base]), res.promoted))
    baseline = exp[base_req]
    for period, req in period_reqs.items():
        res = exp[req]
        out["period"].append((period, res.slowdown(baseline), res.promoted))
    for wname in COOLING_WORKLOADS:
        base = exp[cool_base[wname]]
        row = [wname]
        for label in COOLING:
            row.append(f"{exp[cool_reqs[(wname, label)]].slowdown(base):.3f}")
        out["cooling"].append(row)

    pebs_tbl = format_table(
        ["PEBS rate (1-in-N)", "slowdown", "promotions"],
        [[r, f"{s:.3f}", p] for r, s, p in out["pebs"]],
    )
    period_tbl = format_table(
        ["period (windows ~20ms)", "slowdown", "promotions"],
        [[w, f"{s:.3f}", p] for w, s, p in out["period"]],
    )
    cool_tbl = format_table(["workload"] + list(COOLING), out["cooling"])
    report = (
        "--- (a) PEBS sampling rate ---\n" + pebs_tbl
        + "\n(paper: denser sampling better; 800->4000 degrades ~23%->30%)\n\n"
        + "--- (b) PAC sampling period ---\n" + period_tbl
        + "\n(paper: 20ms best; 1000ms degrades 20%->27% with 2x promotions)\n\n"
        + "--- (c) cooling mechanisms ---\n" + cool_tbl
        + "\n(paper: cooling rarely helps; alpha=1.0 robust)"
    )
    emit("fig10_sensitivity", report)

    # Directional claims.
    dense = out["pebs"][0][1]
    sparse = out["pebs"][-1][1]
    assert dense <= sparse * 1.05
    short = out["period"][0][1]
    long = out["period"][-1][1]
    assert short <= long * 1.05
    for row in out["cooling"]:
        default, halve, reset = (float(v) for v in row[1:])
        assert default <= min(halve, reset) * 1.10, row[0]
