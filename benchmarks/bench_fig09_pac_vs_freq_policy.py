"""Figure 9 + §5.6: PAC-driven vs. frequency-driven promotion.

Runs the frequency-only ablation (identical framework, hotness metric)
against full PACT under comparable migration counts.  Paper: PACT
front-loads promotions and reacts promptly; frequency promotes in
oscillatory bursts; PAC-based selection wins ~18% on the flagship and
12-22% across bc-urand / sssp-kron / silo.
"""

from __future__ import annotations

import numpy as np

from repro.common.tables import format_table
from repro.exp import RunRequest, run_requests
from repro.exp.spec import PolicySpec

from conftest import BENCH_JOBS, bench_spec, emit, once

WORKLOADS = ("bc-kron", "bc-urand", "sssp-kron", "silo")
RATIO = "1:4"  # pressure high enough that selection quality matters


def test_fig09_pac_vs_frequency_policy(benchmark, config):
    specs = {wname: bench_spec(wname) for wname in WORKLOADS}
    grid = {
        wname: (
            RunRequest(workload=spec, policy=PolicySpec("PACT"),
                       ratio=RATIO, config=config, seed=6, trace=True),
            RunRequest(workload=spec, policy=PolicySpec("Frequency"),
                       ratio=RATIO, config=config, seed=6, trace=True),
            RunRequest.ideal(spec, config=config),
        )
        for wname, spec in specs.items()
    }
    flat = [req for trio in grid.values() for req in trio]
    exp = once(benchmark, lambda: run_requests(flat, jobs=BENCH_JOBS))
    results = {
        wname: tuple(exp[req] for req in trio) for wname, trio in grid.items()
    }

    rows = []
    gains = {}
    for wname, (pact, freq, baseline) in results.items():
        gain = (1 + freq.slowdown(baseline)) / (1 + pact.slowdown(baseline)) - 1
        gains[wname] = gain
        rows.append(
            [
                wname,
                f"{pact.slowdown(baseline):.3f}",
                f"{freq.slowdown(baseline):.3f}",
                f"{pact.promoted}",
                f"{freq.promoted}",
                f"{gain:+.1%}",
            ]
        )
    report = format_table(
        ["workload", "PACT slowdn", "Freq slowdn", "PACT promos", "Freq promos", "PAC gain"],
        rows,
    )

    # Figure 9's temporal signature on the flagship workload.
    pact, freq, _ = results["bc-kron"]
    p_promos = np.array([r.promoted for r in pact.trace], dtype=float)
    f_promos = np.array([r.promoted for r in freq.trace], dtype=float)

    def front_load(x):
        csum = np.cumsum(x)
        if csum[-1] == 0:
            return 0.0
        return float(csum[len(x) // 4] / csum[-1])

    report += (
        f"\n\nfraction of promotions in first quarter of run:"
        f" PACT {front_load(p_promos):.0%} vs frequency {front_load(f_promos):.0%}"
        "\n(paper: PACT front-loads; frequency ramps in periodic bursts)"
    )
    report += "\npaper gains: ~18% on the flagship; 12-22% on bc-urand/sssp-kron/silo."
    emit("fig09_pac_vs_freq_policy", report)

    # PAC-based selection never loses; wins where frequency misleads.
    for wname, gain in gains.items():
        assert gain > -0.03, wname
    assert gains["bc-urand"] > 0.0
