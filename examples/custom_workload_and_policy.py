#!/usr/bin/env python
"""Extending the library: write your own workload and tiering policy.

Usage::

    python examples/custom_workload_and_policy.py

Defines (1) a key-value-store-like workload with a hot index and a cold
value heap, and (2) a minimal custom tiering policy -- promote any page
seen twice in PEBS samples within a window -- then races it against
PACT.  Use this as the template for plugging your own designs into the
simulation harness.
"""

import numpy as np

from repro import ideal_baseline, make_policy, run_policy
from repro.mem import ObjectRegion, Tier
from repro.sim import Decision, Observation, TieringPolicy, no_pages
from repro.workloads import Workload, region_group, zipf_weights


class MiniKv(Workload):
    """A small key-value store: hot zipf index, colder value heap."""

    def __init__(self, footprint_pages=6_144, total_misses=10_000_000, seed=77):
        n_index = footprint_pages // 8
        objects = [
            ObjectRegion("index", 0, n_index),
            ObjectRegion("values", n_index, footprint_pages - n_index),
        ]
        super().__init__(
            name="mini-kv",
            footprint_pages=footprint_pages,
            total_misses=total_misses,
            misses_per_window=200_000,
            compute_cycles_per_miss=45.0,
            seed=seed,
            objects=objects,
        )
        self._index_weights = zipf_weights(n_index, 0.9, np.random.default_rng(seed))

    def allocation_order(self):
        # Values are loaded first; the index is built afterwards.
        return self._order_from_regions(["values", "index"])

    def _emit(self, budget, rng):
        index, values = self.objects
        if self.window_index % 3 == 2:
            # Periodic backup/analytics scan: heavy, prefetch-friendly
            # traffic over the whole value heap.  Recency/frequency
            # policies mistake these touches for hotness; stall-cost
            # attribution prices them near zero.
            hot = int(budget * 0.1)
            value_traffic = region_group(
                rng, values, budget - hot, mlp=16.0, label="value-scan"
            )
        else:
            hot = int(budget * 0.45)
            value_traffic = region_group(
                rng, values, budget - hot, mlp=6.0, label="value-read"
            )
        return [
            region_group(rng, index, hot, mlp=2.0,
                         weights=self._index_weights, label="index-probe"),
            value_traffic,
        ]


class TwoTouchPolicy(TieringPolicy):
    """Promote slow pages PEBS-sampled in two consecutive windows."""

    name = "TwoTouch"
    synchronous_migration = False

    def __init__(self):
        self._seen_last = no_pages()

    def observe(self, obs: Observation) -> Decision:
        batch = obs.pebs
        if batch.pages.size == 0:
            self._seen_last = no_pages()
            return Decision.none()
        repeat = np.intersect1d(batch.pages, self._seen_last)
        self._seen_last = batch.pages
        in_slow = obs.memory.tier_of(repeat) == int(Tier.SLOW)
        promote = repeat[in_slow]
        if promote.size == 0:
            return Decision.none()
        need = max(promote.size - obs.memory.free_pages(Tier.FAST), 0)
        # "lru_tail": reclaim the least-active fast pages even if the
        # whole tier is busy (the default "cold" mode only demotes
        # genuinely inactive pages).
        return Decision(promote=promote, demote_lru=need, demote_victim_mode="lru_tail")


def main() -> None:
    workload = MiniKv()
    baseline = ideal_baseline(workload)
    print(f"{'policy':>10} | {'slowdown':>8} | {'promotions':>10}")
    print("-" * 36)
    for policy in (make_policy("PACT"), TwoTouchPolicy(), make_policy("NoTier")):
        result = run_policy(workload, policy, ratio="1:3")
        print(f"{result.policy:>10} | {result.slowdown(baseline):>7.1%} | {result.promoted:>10,}")
    print(
        "\nAny TieringPolicy subclass drops into the same harness and gets"
        "\nthe same observability (PEBS, perf deltas, TOR MLP, LRU state)."
    )


if __name__ == "__main__":
    main()
