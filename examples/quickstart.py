#!/usr/bin/env python
"""Quickstart: run PACT on a graph workload and compare against baselines.

Usage::

    python examples/quickstart.py

Simulates bc-kron (betweenness centrality on a Kronecker graph) on a
DRAM + emulated-CXL testbed at a 1:2 fast:slow capacity ratio, under
PACT and a few reference policies, and prints the paper's primary
metric: slowdown relative to an ideal all-DRAM execution.
"""

from repro import ideal_baseline, make_policy, run_policy, slow_only_run
from repro.workloads import make_workload


def main() -> None:
    workload = make_workload("bc-kron", total_misses=20_000_000)

    # The slowdown denominator: the same work with every page in DRAM.
    baseline = ideal_baseline(workload)
    print(f"ideal DRAM-only runtime: {baseline.runtime_ms:.0f} ms\n")

    print(f"{'policy':>10} | {'slowdown':>9} | {'promotions':>10}")
    print("-" * 37)
    for name in ("PACT", "Colloid", "Memtis", "TPP", "NoTier"):
        result = run_policy(workload, make_policy(name), ratio="1:2")
        print(
            f"{name:>10} | {result.slowdown(baseline):>8.1%} |"
            f" {result.promoted:>10,}"
        )

    cxl = slow_only_run(workload)
    print("-" * 37)
    print(f"{'CXL-only':>10} | {cxl.slowdown(baseline):>8.1%} | {'-':>10}")

    print(
        "\nPACT places pages by *criticality* (contribution to CPU stalls),"
        "\nnot access frequency -- fewer migrations, lower slowdown."
    )


if __name__ == "__main__":
    main()
