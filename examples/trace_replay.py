#!/usr/bin/env python
"""Trace replay: freeze a workload into a trace file and re-evaluate it.

Usage::

    python examples/trace_replay.py

Records 20 windows of the Redis/YCSB-C generator into a JSON trace,
then replays the *identical* access stream under three policies with
multi-seed confidence intervals.  Use the same flow to evaluate tiering
policies on traces captured from real systems (PEBS dumps, DAMON
records) -- see ``repro.workloads.tracefile`` for the format.
"""

import tempfile
from pathlib import Path

from repro.analysis import repeat_runs, significantly_better
from repro.workloads import RedisYcsbC, TraceWorkload, record_trace, write_trace


def main() -> None:
    source = RedisYcsbC(total_misses=6_000_000)
    trace = record_trace(source, windows=24)
    path = Path(tempfile.gettempdir()) / "redis_ycsbc.trace.json"
    write_trace(trace, path)
    print(f"recorded {len(trace['windows'])} windows -> {path}")

    def factory():
        return TraceWorkload.from_file(path, loop=False)

    results = {}
    for policy in ("PACT", "Colloid", "NoTier"):
        results[policy] = repeat_runs(factory, policy, ratio="1:2", seeds=(0, 1, 2))
        print(" ", results[policy].summary())

    verdict = significantly_better(results["PACT"], results["Colloid"])
    print(f"\nPACT significantly better than Colloid on this trace: {verdict}")
    print(
        "Replaying a fixed trace removes workload-generation noise, so the"
        "\nremaining spread comes purely from sampling/counter stochasticity."
    )


if __name__ == "__main__":
    main()
