#!/usr/bin/env python
"""Criticality profiling: see why frequency is a poor placement signal.

Usage::

    python examples/criticality_profiling.py

Profiles a GPT-2 inference workload pinned to the slow tier and prints,
per memory region, how access *frequency* and *PAC* (per-page access
criticality) disagree: the streamed weight matrices dominate traffic but
barely stall the CPU, while the small embedding region -- a fraction of
the traffic -- carries most of the stall cost.  This is the paper's
motivation (§3) in runnable form.
"""

import numpy as np

from repro import MachineConfig, Machine, PactPolicy
from repro.workloads import make_workload


def profile(name: str) -> None:
    workload = make_workload(name, total_misses=15_000_000)
    policy = PactPolicy()
    machine = Machine(
        workload,
        policy,
        config=MachineConfig(),
        fast_capacity_override=0,  # pin everything to the slow tier
        seed=7,
    )
    machine.run()

    tracker = policy.tracker
    total_freq = tracker.frequency.sum()
    total_pac = tracker.pac.sum()

    print(f"\n=== {name} ===")
    print(f"{'region':>18} | {'pages':>6} | {'traffic share':>13} | {'PAC share':>9} | {'PAC/traffic':>11}")
    print("-" * 72)
    for region in workload.objects:
        freq = tracker.frequency[region.start_page : region.end_page].sum()
        pac = tracker.pac[region.start_page : region.end_page].sum()
        traffic_share = freq / total_freq
        pac_share = pac / total_pac
        ratio = pac_share / traffic_share if traffic_share > 0 else float("nan")
        print(
            f"{region.name:>18} | {region.num_pages:>6} | {traffic_share:>12.1%} |"
            f" {pac_share:>8.1%} | {ratio:>10.2f}x"
        )

    # How much do the two rankings disagree at the page level?
    tracked = tracker.tracked_pages()
    k = max(tracked.size // 10, 1)
    by_freq = set(tracked[np.argsort(tracker.frequency[tracked])[::-1][:k]].tolist())
    by_pac = set(tracked[np.argsort(tracker.pac[tracked])[::-1][:k]].tolist())
    overlap = len(by_freq & by_pac) / k
    print(f"top-10% page overlap between frequency and PAC rankings: {overlap:.0%}")


def main() -> None:
    for name in ("gpt-2", "silo"):
        profile(name)
    print(
        "\nA hotness-based policy promotes by traffic share; PACT promotes by"
        "\nPAC share.  Regions with PAC/traffic >> 1 (dependent, low-MLP"
        "\naccesses) are criticality-dense: the pages worth a DRAM slot."
    )


if __name__ == "__main__":
    main()
