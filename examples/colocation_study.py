#!/usr/bin/env python
"""Colocation study: tiering two processes with clashing access patterns.

Usage::

    python examples/colocation_study.py

Co-locates a streaming process and a pointer-chasing process in one
tiered address space where the fast tier holds only half the combined
footprint (the paper's §5.9 setup), and shows how PACT allocates the
fast tier to the process that actually stalls the CPU.
"""

from repro import Machine, ideal_baseline, make_policy
from repro.mem import Tier
from repro.workloads import ColocatedWorkload, Masim

PAGES = 5_120
WORK = 8_000_000


def build():
    return ColocatedWorkload(
        [
            Masim(pattern="sequential", footprint_pages=PAGES,
                  total_misses=WORK, misses_per_window=160_000, seed=61),
            Masim(pattern="random", footprint_pages=PAGES,
                  total_misses=WORK, misses_per_window=95_000, seed=62),
        ]
    )


def run(policy_name: str):
    workload = build()
    machine = Machine(workload, make_policy(policy_name), ratio="1:1", seed=9)
    result = machine.run()
    fast = machine.memory.pages_in_tier(Tier.FAST)
    seq_fast = int((fast < PAGES).sum())
    rnd_fast = int((fast >= PAGES).sum())
    return result, seq_fast, rnd_fast


def main() -> None:
    baseline = ideal_baseline(build())
    print(f"{'policy':>8} | {'slowdown':>8} | {'promos':>7} | {'fast: streaming':>15} | {'fast: chasing':>13}")
    print("-" * 66)
    for name in ("PACT", "Colloid", "NoTier"):
        result, seq_fast, rnd_fast = run(name)
        print(
            f"{name:>8} | {result.slowdown(baseline):>7.1%} | {result.promoted:>7,}"
            f" | {seq_fast:>11} pgs | {rnd_fast:>9} pgs"
        )
    print(
        "\nThe chasing process's pages expose the full CXL latency per access"
        "\n(MLP ~8 vs ~14 for the prefetched stream), so PACT fills the fast"
        "\ntier with them -- frequency counters see both processes as equal."
    )


if __name__ == "__main__":
    main()
