#!/usr/bin/env python
"""Capacity-ratio sweep: how tiering systems degrade under pressure.

Usage::

    python examples/ratio_sweep.py [workload]

Sweeps the paper's seven fast:slow capacity ratios (8:1 ... 1:8) for a
chosen workload and prints slowdown per system -- a text rendering of a
Figure-4-style plot.  Defaults to bc-kron.
"""

import sys

from repro import PAPER_RATIOS, ideal_baseline, make_policy, run_policy, slow_only_run
from repro.workloads import make_workload

POLICIES = ("PACT", "Colloid", "Memtis", "NBT", "NoTier")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "bc-kron"
    workload = make_workload(name, total_misses=12_000_000)
    baseline = ideal_baseline(workload)
    cxl = slow_only_run(workload).slowdown(baseline)

    header = f"{'policy':>8} | " + " | ".join(f"{r:>6}" for r in PAPER_RATIOS)
    print(f"workload: {name}   (CXL-only slowdown: {cxl:.1%})\n")
    print(header)
    print("-" * len(header))
    for policy_name in POLICIES:
        cells = []
        for ratio in PAPER_RATIOS:
            result = run_policy(workload, make_policy(policy_name), ratio=ratio)
            cells.append(f"{result.slowdown(baseline):>6.1%}")
        print(f"{policy_name:>8} | " + " | ".join(cells))

    print(
        "\nReading the rows: a good tiering system stays flat as the fast"
        "\ntier shrinks (left to right); hotness-driven systems bend upward."
    )


if __name__ == "__main__":
    main()
