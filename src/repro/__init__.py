"""PACT: A Criticality-First Design for Tiered Memory (ASPLOS '26).

A simulation-grounded reproduction of PACT: an online, page-granular
tiered-memory design that places pages by *performance criticality*
(each page's contribution to CPU stalls) rather than access frequency.

Quick start::

    from repro import PactPolicy, run_policy, ideal_baseline
    from repro.workloads import make_workload

    workload = make_workload("bc-kron")
    baseline = ideal_baseline(workload)
    result = run_policy(workload, PactPolicy(), ratio="1:2")
    print(f"slowdown vs DRAM-only: {result.slowdown(baseline):.1%}")

Package layout:

* :mod:`repro.common`   -- units, RNG, statistics, reservoir, binning rules
* :mod:`repro.mem`      -- pages, tiers, placement, LRU/activity state
* :mod:`repro.hw`       -- simulated hardware: stalls, CHA/TOR, PEBS, perf
* :mod:`repro.sim`      -- machine, runner, migration engine, metrics
* :mod:`repro.workloads`-- the paper's evaluation workloads and corpora
* :mod:`repro.core`     -- PACT itself: PAC model, sampling, binning, policy
* :mod:`repro.baselines`-- TPP, NBT, Colloid, Alto, Memtis, Nomad, Soar
* :mod:`repro.analysis` -- model fits, improvement CDFs, sweep driver
"""

from repro.baselines import ALL_POLICIES, make_policy
from repro.core import (
    CoolingConfig,
    FrequencyPolicy,
    PacModelCoefficients,
    PacSampler,
    PacTracker,
    PactPolicy,
    calibrate_k,
)
from repro.mem import Tier, TieredMemory
from repro.sim import (
    Machine,
    MachineConfig,
    NoTierPolicy,
    PAPER_RATIOS,
    RunResult,
    SlowOnlyPolicy,
    TieringPolicy,
    ideal_baseline,
    improvement,
    run_policy,
    slow_only_run,
)
from repro.workloads import ALL_WORKLOADS, EVAL_WORKLOADS, make_workload

__version__ = "1.0.0"

__all__ = [
    "ALL_POLICIES",
    "ALL_WORKLOADS",
    "CoolingConfig",
    "EVAL_WORKLOADS",
    "FrequencyPolicy",
    "Machine",
    "MachineConfig",
    "NoTierPolicy",
    "PAPER_RATIOS",
    "PacModelCoefficients",
    "PacSampler",
    "PacTracker",
    "PactPolicy",
    "RunResult",
    "SlowOnlyPolicy",
    "Tier",
    "TieredMemory",
    "TieringPolicy",
    "calibrate_k",
    "ideal_baseline",
    "improvement",
    "make_policy",
    "make_workload",
    "run_policy",
    "slow_only_run",
    "__version__",
]
