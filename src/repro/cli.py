"""Command-line interface: run tiering experiments without writing code.

Examples::

    python -m repro run --workload bc-kron --policy PACT --ratio 1:2
    python -m repro sweep --workload gpt-2 --policies PACT Colloid NoTier
    python -m repro compare --ratio 1:1 --workloads bc-kron gups silo
    python -m repro calibrate
    python -m repro list

All subcommands print plain-text tables; ``--work`` scales the per-run
miss budget (larger = higher fidelity, slower).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.sweep import run_sweep
from repro.baselines import ALL_POLICIES, make_policy
from repro.common.tables import format_count, format_table
from repro.core.calibration import calibrate_k
from repro.mem.page import Tier
from repro.sim.config import MachineConfig, PAPER_RATIOS
from repro.sim.engine import ideal_baseline, run_policy, slow_only_run
from repro.workloads import ALL_WORKLOADS, generate_corpus, make_workload

DEFAULT_WORK = 12_000_000


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PACT tiered-memory reproduction: run simulated experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="one workload under one policy")
    run_p.add_argument("--workload", required=True, choices=ALL_WORKLOADS)
    run_p.add_argument("--policy", required=True, choices=sorted(set(ALL_POLICIES) | {"Frequency", "CXL"}))
    run_p.add_argument("--ratio", default="1:1", help="fast:slow capacity, e.g. 1:4")
    _common_args(run_p)

    sweep_p = sub.add_parser("sweep", help="one workload across all paper ratios")
    sweep_p.add_argument("--workload", required=True, choices=ALL_WORKLOADS)
    sweep_p.add_argument(
        "--policies", nargs="+", default=["PACT", "Colloid", "Memtis", "NoTier"]
    )
    _common_args(sweep_p)

    cmp_p = sub.add_parser("compare", help="several workloads, all systems, one ratio")
    cmp_p.add_argument("--workloads", nargs="+", default=["bc-kron"])
    cmp_p.add_argument("--ratio", default="1:1")
    cmp_p.add_argument(
        "--policies", nargs="+", default=["PACT", "Colloid", "Memtis", "NBT", "NoTier"]
    )
    _common_args(cmp_p)

    cal_p = sub.add_parser("calibrate", help="fit Equation 1's k on the corpus")
    cal_p.add_argument("--windows", type=int, default=10, help="windows per corpus point")
    cal_p.add_argument("--seed", type=int, default=0)

    sub.add_parser("list", help="list available workloads and policies")
    return parser


def _common_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--work", type=int, default=DEFAULT_WORK, help="total misses per run")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--thp", action="store_true", help="2MB transparent huge pages")
    p.add_argument("--pebs-rate", type=int, default=400, help="PEBS 1-in-N sampling rate")


def _config(args) -> MachineConfig:
    return MachineConfig(thp=getattr(args, "thp", False), pebs_rate=getattr(args, "pebs_rate", 400))


def cmd_run(args, out) -> int:
    config = _config(args)
    workload = make_workload(args.workload, total_misses=args.work)
    baseline = ideal_baseline(workload, config=config, seed=args.seed)
    result = run_policy(
        workload, make_policy(args.policy), ratio=args.ratio, config=config, seed=args.seed
    )
    rows = [
        ["slowdown vs DRAM-only", f"{result.slowdown(baseline):.1%}"],
        ["runtime", f"{result.runtime_ms:.0f} ms"],
        ["windows", result.windows],
        ["pages promoted", format_count(result.promoted)],
        ["pages demoted", format_count(result.demoted)],
        ["slow-tier LLC misses", format_count(result.tier_misses[Tier.SLOW])],
        ["fast-tier LLC misses", format_count(result.tier_misses[Tier.FAST])],
    ]
    print(f"{args.workload} under {args.policy} at {args.ratio}:", file=out)
    print(format_table(["metric", "value"], rows), file=out)
    return 0


def cmd_sweep(args, out) -> int:
    config = _config(args)
    sweep = run_sweep(
        {args.workload: lambda: make_workload(args.workload, total_misses=args.work)},
        policies=args.policies,
        ratios=list(PAPER_RATIOS),
        config=config,
        seed=args.seed,
    )
    rows = []
    for policy in args.policies:
        rows.append(
            [policy]
            + [f"{sweep.cell(args.workload, policy, r).slowdown:.3f}" for r in PAPER_RATIOS]
        )
    rows.append(["CXL (all-slow)"] + [f"{sweep.slow_only[args.workload]:.3f}"] * len(PAPER_RATIOS))
    print(f"slowdown vs DRAM-only, workload {args.workload}:", file=out)
    print(format_table(["policy"] + list(PAPER_RATIOS), rows), file=out)
    return 0


def cmd_compare(args, out) -> int:
    config = _config(args)
    sweep = run_sweep(
        {
            name: (lambda n=name: make_workload(n, total_misses=args.work))
            for name in args.workloads
        },
        policies=args.policies,
        ratios=[args.ratio],
        config=config,
        seed=args.seed,
    )
    table = sweep.slowdown_table(args.ratio)
    rows = [
        [wname] + [f"{table[wname][p]:.3f}" for p in args.policies]
        for wname in args.workloads
    ]
    print(f"slowdown vs DRAM-only at {args.ratio}:", file=out)
    print(format_table(["workload"] + list(args.policies), rows), file=out)
    return 0


def cmd_calibrate(args, out) -> int:
    corpus = generate_corpus(total_misses=2_000_000, misses_per_window=200_000)
    coeff = calibrate_k(corpus, max_windows_each=args.windows, seed=args.seed)
    config = MachineConfig()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["fitted k (cycles)", f"{coeff.k_cycles:.1f}"],
                ["slow-tier idle latency (cycles)", f"{config.slow_spec.latency_cycles:.1f}"],
                ["calibration workloads", len(corpus)],
            ],
        ),
        file=out,
    )
    return 0


def cmd_list(args, out) -> int:  # noqa: ARG001
    print("workloads: " + ", ".join(ALL_WORKLOADS), file=out)
    print("policies:  " + ", ".join(ALL_POLICIES + ["Frequency", "CXL"]), file=out)
    print("ratios:    " + ", ".join(PAPER_RATIOS), file=out)
    return 0


_COMMANDS = {
    "run": cmd_run,
    "sweep": cmd_sweep,
    "compare": cmd_compare,
    "calibrate": cmd_calibrate,
    "list": cmd_list,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":
    raise SystemExit(main())
