"""Command-line interface: run tiering experiments without writing code.

Examples::

    python -m repro run --workload bc-kron --policy PACT --ratio 1:2
    python -m repro sweep --workload gpt-2 --policies PACT Colloid NoTier
    python -m repro compare --ratio 1:1 --workloads bc-kron gups silo
    python -m repro bench --workloads bc-kron gups --ratios 1:1 1:2 --jobs 4
    python -m repro perf --quick
    python -m repro calibrate
    python -m repro list

All subcommands print plain-text tables; ``--work`` scales the per-run
miss budget (larger = higher fidelity, slower).  Experiment subcommands
take ``--jobs N`` (fan cache misses out over N worker processes),
``--cache-dir PATH`` (persist results in a content-addressed JSON cache;
``bench`` defaults to ``benchmarks/.cache``), and ``--no-cache``.

Traffic replay is on by default: each workload's access stream is
recorded once and replayed (bit-identically) for every policy, ratio,
and contender that shares it.  ``--no-replay`` regenerates traffic
live; ``--trace-dir PATH`` persists recorded ``.npt`` streams on disk
(default: ``<cache-dir>/traces`` when a result cache is configured).
``repro trace record WORKLOAD -o FILE.npt`` records a stream
explicitly, for trace-driven evaluation.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import Optional, Sequence

from repro.analysis.sweep import run_sweep
from repro.baselines import ALL_POLICIES, make_policy
from repro.common.tables import format_count, format_table
from repro.core.calibration import calibrate_k
from repro.exp import report as exp_report
from repro.exp import service
from repro.exp.cache import ResultStore, reset_default_store, set_default_store
from repro.exp.runner import run_experiment
from repro.exp.store import open_store
from repro.exp.spec import ExperimentSpec, WorkloadSpec
from repro.mem.page import Tier, tier_label
from repro.mem.topology import DEMOTION_MODES, TOPOLOGY_NAMES, make_topology
from repro.obs import DEFAULT_TRACE_CAPACITY, Observability
from repro.perf import harness as perf_harness
from repro.sim import traceio
from repro.sim.config import MachineConfig, PAPER_RATIOS, RNG_SCHEMAS
from repro.sim.engine import ideal_baseline, run_policy
from repro.workloads import ALL_WORKLOADS, generate_corpus, make_workload, tracefile
from repro.workloads import tracestore

DEFAULT_WORK = 12_000_000

#: Where ``bench`` persists results unless told otherwise.
DEFAULT_BENCH_CACHE = "benchmarks/.cache"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PACT tiered-memory reproduction: run simulated experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="one workload under one policy")
    run_p.add_argument("--workload", required=True, choices=ALL_WORKLOADS)
    run_p.add_argument("--policy", required=True, choices=sorted(set(ALL_POLICIES) | {"Frequency", "CXL"}))
    run_p.add_argument("--ratio", default="1:1", help="fast:slow capacity, e.g. 1:4")
    _common_args(run_p)

    sweep_p = sub.add_parser("sweep", help="one workload across all paper ratios")
    sweep_p.add_argument("--workload", required=True, choices=ALL_WORKLOADS)
    sweep_p.add_argument(
        "--policies", nargs="+", default=["PACT", "Colloid", "Memtis", "NoTier"]
    )
    _common_args(sweep_p)

    cmp_p = sub.add_parser("compare", help="several workloads, all systems, one ratio")
    cmp_p.add_argument("--workloads", nargs="+", default=["bc-kron"])
    cmp_p.add_argument("--ratio", default="1:1")
    cmp_p.add_argument(
        "--policies", nargs="+", default=["PACT", "Colloid", "Memtis", "NBT", "NoTier"]
    )
    _common_args(cmp_p)

    bench_p = sub.add_parser(
        "bench",
        help="cached, parallel (workload x policy x ratio x seed) grid",
    )
    bench_p.add_argument("--workloads", nargs="+", default=["bc-kron"], choices=ALL_WORKLOADS)
    bench_p.add_argument(
        "--policies", nargs="+", default=["PACT", "Colloid", "Memtis", "NBT", "NoTier"]
    )
    bench_p.add_argument("--ratios", nargs="+", default=list(PAPER_RATIOS))
    bench_p.add_argument("--seeds", nargs="+", type=int, default=[0])
    _common_args(bench_p, cache_dir_default=DEFAULT_BENCH_CACHE)

    camp_p = sub.add_parser(
        "campaign",
        help="stream a large grid through the persistent worker-pool service",
    )
    camp_p.add_argument("--workloads", nargs="+", default=["gups"], choices=ALL_WORKLOADS)
    camp_p.add_argument(
        "--policies", nargs="+", default=["PACT", "Colloid", "Memtis", "NBT", "NoTier"]
    )
    camp_p.add_argument("--ratios", nargs="+", default=list(PAPER_RATIOS))
    camp_p.add_argument("--seeds", nargs="+", type=int, default=[0])
    camp_p.add_argument(
        "--store", choices=("sqlite", "json"), default="sqlite", dest="store_backend",
        help="result-store backend (default: sqlite with batched commits)",
    )
    camp_p.add_argument(
        "--retries", type=int, default=service.DEFAULT_RETRIES,
        help="re-dispatches per failed request before giving up (default: %(default)s)",
    )
    camp_p.add_argument(
        "--timeout", type=float, default=None,
        help="per-request deadline in seconds; a hung worker is killed and respawned",
    )
    camp_p.add_argument(
        "--progress-interval", type=float, default=service.DEFAULT_PROGRESS_INTERVAL,
        help="seconds between live progress lines (default: %(default)s)",
    )
    camp_p.add_argument(
        "--table", action="store_true",
        help="also print the per-ratio slowdown tables (small grids only)",
    )
    _common_args(camp_p, cache_dir_default=DEFAULT_BENCH_CACHE)

    trace_p = sub.add_parser(
        "trace",
        help="one observed run (telemetry export), or 'record' a traffic stream",
    )
    trace_p.add_argument(
        "workload", choices=sorted(ALL_WORKLOADS) + ["record"],
        help="workload to trace, or 'record' to freeze a traffic stream "
        "(repro trace record WORKLOAD -o FILE.npt)",
    )
    trace_p.add_argument(
        "policy", nargs="?", default=None,
        help="policy for the observed run; the workload name in record mode",
    )
    trace_p.add_argument("--ratio", default="1:1", help="fast:slow capacity, e.g. 1:4")
    trace_p.add_argument(
        "--format", choices=("jsonl", "csv"), default="jsonl", dest="trace_format"
    )
    trace_p.add_argument(
        "--output", "-o", default=None,
        help="trace file path (default: JSONL on stdout; required for csv)",
    )
    trace_p.add_argument(
        "--downsample", type=int, default=1, help="keep one window in every N"
    )
    trace_p.add_argument(
        "--trace-capacity", type=int, default=DEFAULT_TRACE_CAPACITY,
        help="ring-buffer bound on retained windows (oldest dropped first)",
    )
    trace_p.add_argument("--max-windows", type=int, default=200_000)
    trace_p.add_argument(
        "--timings", action="store_true",
        help="also print host wall-clock span totals (not part of the trace)",
    )
    _common_args(trace_p)

    perf_p = sub.add_parser(
        "perf",
        help="simulator-throughput suite; gates on the committed baseline",
    )
    perf_p.add_argument(
        "--quick", action="store_true",
        help="graph scenarios only (CI smoke; same parameters as the full suite)",
    )
    perf_p.add_argument(
        "--repeats", type=int, default=2, help="timed repeats per scenario (best wins)"
    )
    perf_p.add_argument(
        "--no-profile", action="store_true",
        help="skip the extra profiled repeat (no per-span breakdown)",
    )
    perf_p.add_argument(
        "--profile", dest="cprofile", action="store_true",
        help="dump per-scenario cProfile output (.pstats + top-40 text) "
        "into a profiles/ directory next to the report",
    )
    perf_p.add_argument(
        "--baseline", default=perf_harness.DEFAULT_BASELINE_PATH,
        help="baseline JSON to compare against (default: %(default)s)",
    )
    perf_p.add_argument(
        "--threshold", type=float, default=perf_harness.DEFAULT_THRESHOLD,
        help="fail when normalised win/s drops more than this fraction (default: %(default)s)",
    )
    perf_p.add_argument(
        "--update-baseline", action="store_true",
        help="write this run's report over the baseline instead of comparing",
    )
    perf_p.add_argument(
        "--output", "-o", default=perf_harness.DEFAULT_REPORT_PATH,
        help="where to write the report (default: %(default)s)",
    )
    perf_replay = perf_p.add_mutually_exclusive_group()
    perf_replay.add_argument(
        "--replay", dest="replay", action="store_true", default=True,
        help="time warm-cache traffic replay, the state sweeps run in (default)",
    )
    perf_replay.add_argument(
        "--no-replay", dest="replay", action="store_false",
        help="time live traffic generation instead of replay",
    )
    perf_p.add_argument(
        "--trace-dir", default=perf_harness.DEFAULT_TRACE_DIR,
        help="directory for the suite's recorded traces (default: %(default)s)",
    )
    perf_p.add_argument(
        "--rng-schema", type=int, default=2, choices=RNG_SCHEMAS,
        help="RNG schema the suite runs under (default: 2, counter-keyed "
        "substreams; use 1 to gate against a schema-1 baseline)",
    )

    cal_p = sub.add_parser("calibrate", help="fit Equation 1's k on the corpus")
    cal_p.add_argument("--windows", type=int, default=10, help="windows per corpus point")
    cal_p.add_argument("--seed", type=int, default=0)

    sub.add_parser("list", help="list available workloads and policies")
    return parser


def _common_args(p: argparse.ArgumentParser, cache_dir_default: Optional[str] = None) -> None:
    p.add_argument("--work", type=int, default=DEFAULT_WORK, help="total misses per run")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--thp", action="store_true", help="2MB transparent huge pages")
    p.add_argument("--pebs-rate", type=int, default=400, help="PEBS 1-in-N sampling rate")
    p.add_argument(
        "--rng-schema", type=int, default=None, choices=RNG_SCHEMAS,
        help="RNG schema: 1 = sequential streams (default; exactness reference), "
        "2 = counter-keyed substreams (decision-independent draws, common "
        "random numbers across policies; default via REPRO_RNG_SCHEMA)",
    )
    p.add_argument(
        "--topology", default=None, choices=TOPOLOGY_NAMES,
        help="tier hierarchy (default: the paper's DRAM/CXL pair); "
        "N-tier ratios take N parts, e.g. --ratio 1:4:16",
    )
    p.add_argument(
        "--demotion", default="through", choices=DEMOTION_MODES,
        help="multi-hop demotion routing: 'through' cascades one tier "
        "down per hop, 'direct' sends victims straight to the bottom tier",
    )
    p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for cache misses (default: REPRO_JOBS or 1; 0 = all cores)",
    )
    p.add_argument(
        "--cache-dir", default=cache_dir_default,
        help="directory for the persistent result cache (default: %(default)s)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="recompute every run, and do not read or write cached results",
    )
    replay = p.add_mutually_exclusive_group()
    replay.add_argument(
        "--replay", dest="replay", action="store_true", default=None,
        help="record each traffic stream once and replay it (default)",
    )
    replay.add_argument(
        "--no-replay", dest="replay", action="store_false",
        help="regenerate workload traffic live for every run",
    )
    p.add_argument(
        "--trace-dir", default=None,
        help="directory for recorded .npt traffic traces "
        "(default: <cache-dir>/traces when a result cache is configured)",
    )


def _config(args) -> MachineConfig:
    topology = None
    name = getattr(args, "topology", None)
    if name is not None:
        topology = make_topology(name, demotion=getattr(args, "demotion", "through"))
    return MachineConfig(
        thp=getattr(args, "thp", False),
        pebs_rate=getattr(args, "pebs_rate", 400),
        topology=topology,
        rng_schema=getattr(args, "rng_schema", None),
    )


@contextlib.contextmanager
def _experiment_store(args):
    """Install the command's result store as the process default.

    Routing through the default store lets engine-level baseline calls
    and runner-level grid runs share one cache; the previous store is
    restored afterwards so library callers are unaffected.

    The trace store rides along: recorded traffic streams persist next
    to the result cache (``<cache-dir>/traces``) unless ``--trace-dir``
    points elsewhere, and ``--replay/--no-replay`` set the process-wide
    replay default for the duration of the command.
    """
    directory = None
    if not getattr(args, "no_cache", False):
        directory = getattr(args, "cache_dir", None)
    backend = getattr(args, "store_backend", "json")
    if directory is not None:
        store = open_store(directory, backend=backend)
    else:
        store = ResultStore(None)  # memory-only; backend needs a directory
    set_default_store(store)
    trace_dir = getattr(args, "trace_dir", None)
    if trace_dir is None and directory is not None:
        trace_dir = os.path.join(directory, "traces")
    if trace_dir is None:
        trace_dir = tracestore.default_trace_dir()
    tracestore.set_default_trace_store(tracestore.TraceStore(trace_dir))
    previous_replay = tracestore.set_replay_override(getattr(args, "replay", None))
    try:
        yield store
    finally:
        close = getattr(store, "close", None)
        if callable(close):
            close()  # flush any batched sqlite commits
        reset_default_store()
        tracestore.reset_default_trace_store()
        tracestore.set_replay_override(previous_replay)


def cmd_run(args, out) -> int:
    config = _config(args)
    with _experiment_store(args):
        workload = make_workload(args.workload, total_misses=args.work)
        if tracestore.replay_enabled():
            # One recorded stream serves the baseline and the policy run
            # (replay is bit-identical, so results and cache keys match
            # a live run's exactly).
            workload = tracestore.get_default_trace_store().replay(workload)
        baseline = ideal_baseline(workload, config=config, seed=args.seed)
        result = run_policy(
            workload, make_policy(args.policy), ratio=args.ratio, config=config, seed=args.seed
        )
    rows = [
        ["slowdown vs DRAM-only", f"{result.slowdown(baseline):.1%}"],
        ["runtime", f"{result.runtime_ms:.0f} ms"],
        ["windows", result.windows],
        ["pages promoted", format_count(result.promoted)],
        ["pages demoted", format_count(result.demoted)],
    ]
    if len(result.tier_misses) == 2:
        rows.append(["slow-tier LLC misses", format_count(result.tier_misses[Tier.SLOW])])
        rows.append(["fast-tier LLC misses", format_count(result.tier_misses[Tier.FAST])])
    else:
        for tier in sorted(result.tier_misses, key=int):
            rows.append(
                [
                    f"{tier_label(int(tier)).lower()} LLC misses",
                    format_count(result.tier_misses[tier]),
                ]
            )
    print(f"{args.workload} under {args.policy} at {args.ratio}:", file=out)
    print(format_table(["metric", "value"], rows), file=out)
    return 0


def cmd_sweep(args, out) -> int:
    config = _config(args)
    with _experiment_store(args):
        sweep = run_sweep(
            {args.workload: WorkloadSpec.registry(args.workload, total_misses=args.work)},
            policies=args.policies,
            ratios=list(PAPER_RATIOS),
            config=config,
            seed=args.seed,
            jobs=args.jobs,
            use_cache=not args.no_cache,
        )
    rows = []
    for policy in args.policies:
        rows.append(
            [policy]
            + [f"{sweep.cell(args.workload, policy, r).slowdown:.3f}" for r in PAPER_RATIOS]
        )
    rows.append(["CXL (all-slow)"] + [f"{sweep.slow_only[args.workload]:.3f}"] * len(PAPER_RATIOS))
    print(f"slowdown vs DRAM-only, workload {args.workload}:", file=out)
    print(format_table(["policy"] + list(PAPER_RATIOS), rows), file=out)
    return 0


def cmd_compare(args, out) -> int:
    config = _config(args)
    with _experiment_store(args):
        sweep = run_sweep(
            {
                name: WorkloadSpec.registry(name, total_misses=args.work)
                for name in args.workloads
            },
            policies=args.policies,
            ratios=[args.ratio],
            config=config,
            seed=args.seed,
            jobs=args.jobs,
            use_cache=not args.no_cache,
        )
    table = sweep.slowdown_table(args.ratio)
    rows = [
        [wname] + [f"{table[wname][p]:.3f}" for p in args.policies]
        for wname in args.workloads
    ]
    print(f"slowdown vs DRAM-only at {args.ratio}:", file=out)
    print(format_table(["workload"] + list(args.policies), rows), file=out)
    return 0


def cmd_bench(args, out) -> int:
    """Declared grid through the experiment layer: cached + parallel."""
    config = _config(args)
    spec = ExperimentSpec(
        workloads={
            name: WorkloadSpec.registry(name, total_misses=args.work)
            for name in args.workloads
        },
        policies=list(args.policies),
        ratios=list(args.ratios),
        seeds=tuple(args.seeds),
        config=config,
    )
    with _experiment_store(args) as store:
        exp = run_experiment(spec, jobs=args.jobs, use_cache=not args.no_cache)
        for seed in args.seeds:
            for ratio in args.ratios:
                print(f"slowdown vs DRAM-only at {ratio} (seed {seed}):", file=out)
                print(
                    exp_report.workload_table(
                        exp, args.workloads, args.policies, ratio, seed=seed
                    ),
                    file=out,
                )
                print("", file=out)
        print(store.summary(), file=out)
    return 0


def cmd_campaign(args, out) -> int:
    """Stream a (workload x policy x ratio x seed) grid through the
    persistent worker-pool service with live progress and a failure
    ledger.  Unlike ``bench`` the pool is spawned once and fed over a
    work queue, results land in the campaign store (SQLite by default),
    and a crashed/hung worker costs one request, not the campaign.
    """
    config = _config(args)
    spec = ExperimentSpec(
        workloads={
            name: WorkloadSpec.registry(name, total_misses=args.work)
            for name in args.workloads
        },
        policies=list(args.policies),
        ratios=list(args.ratios),
        seeds=tuple(args.seeds),
        config=config,
    )
    requests = spec.expand()
    n_unique = len({r.key for r in requests})
    jobs = args.jobs if args.jobs is not None else 0  # campaign default: all cores

    def progress(gauges):
        utils = [v for k, v in gauges.items() if k.endswith("/utilisation")]
        util = sum(utils) / len(utils) if utils else 0.0
        print(
            f"[campaign] {int(gauges.get('campaign/completed', 0))}/{n_unique} done, "
            f"queue {int(gauges.get('campaign/queue_depth', 0))}, "
            f"in-flight {int(gauges.get('campaign/in_flight', 0))}, "
            f"hit-rate {gauges.get('campaign/cache_hit_rate', 0.0):.0%}, "
            f"util {util:.0%}, "
            f"re-records {int(gauges.get('campaign/re_records', 0))}",
            file=out,
        )

    with _experiment_store(args) as store:
        with service.CampaignDriver(
            jobs=jobs,
            store=store,
            use_cache=not args.no_cache,
            retries=args.retries,
            timeout=args.timeout,
            progress=progress,
            progress_interval=args.progress_interval,
        ) as driver:
            result = driver.run(requests)
        stats = result.stats
        if args.table and result.ok:
            for seed in args.seeds:
                for ratio in args.ratios:
                    print(f"slowdown vs DRAM-only at {ratio} (seed {seed}):", file=out)
                    print(
                        exp_report.workload_table(
                            result, args.workloads, args.policies, ratio, seed=seed
                        ),
                        file=out,
                    )
                    print("", file=out)
        rate = stats.executed / stats.elapsed_seconds if stats.elapsed_seconds else 0.0
        print(
            f"campaign: {stats.total_requests} requests ({stats.unique_requests} unique), "
            f"{stats.cache_hits} cache hits, {stats.executed} executed, "
            f"{stats.retries} retried, failures: {stats.failed_requests}",
            file=out,
        )
        print(
            f"traces recorded (warm-up): {stats.warmup_records}, "
            f"trace re-records: {stats.re_records}",
            file=out,
        )
        print(
            f"elapsed {stats.elapsed_seconds:.1f}s, {rate:.2f} runs/s, "
            f"workers {driver.jobs}, respawns {stats.respawns}",
            file=out,
        )
        for rec in result.ledger:
            print(f"  {rec.describe()}", file=out)
        print(store.summary(), file=out)
    return 0 if result.ok else 1


def cmd_trace(args, out) -> int:
    """Run one workload/policy with observability on and export the trace.

    Always a live run (the cache is bypassed): telemetry is the point,
    and the run itself is seconds-scale.  Results are unaffected by the
    observability layer, so traced numbers match cached bench numbers.

    ``repro trace record WORKLOAD -o FILE`` instead freezes the
    workload's traffic stream to disk: binary ``.npt`` (memory-mappable,
    the replay layer's native format) or, with a ``.json`` suffix, the
    legacy JSON trace format.
    """
    if args.workload == "record":
        return _cmd_trace_record(args, out)
    valid_policies = sorted(set(ALL_POLICIES) | {"Frequency", "CXL"})
    if args.policy not in valid_policies:
        print(
            f"trace needs a policy (one of: {', '.join(valid_policies)})",
            file=out,
        )
        return 2
    if args.trace_format == "csv" and not args.output:
        print("--format csv requires --output PATH", file=out)
        return 2
    config = _config(args)
    workload = make_workload(args.workload, total_misses=args.work)
    obs = Observability(
        trace_capacity=args.trace_capacity, downsample=args.downsample
    )
    result = run_policy(
        workload,
        make_policy(args.policy),
        ratio=args.ratio,
        config=config,
        seed=args.seed,
        obs=obs,
        max_windows=args.max_windows,
    )
    # Export straight from the recorder's columns (no per-row record
    # materialisation); identical rows to exporting from the result.
    if args.trace_format == "csv":
        traceio.write_trace_csv(obs.recorder, args.output)
        rows = len(obs.recorder)
    elif args.output:
        rows = traceio.write_trace_jsonl(obs.recorder, args.output)
    else:
        rows = traceio.write_trace_jsonl(obs.recorder, out)
    if args.output:
        print(f"{args.workload} under {args.policy} at {args.ratio}:", file=out)
        print(f"wrote {rows} windows to {args.output}", file=out)
        summary_rows = [
            [name, f"{value:.6g}"] for name, value in result.metrics_summary.items()
        ]
        print(format_table(["metric", "value"], summary_rows), file=out)
    if args.timings:
        timing_rows = [
            [label, f"{t['seconds'] * 1e3:.2f} ms", f"{int(t['calls'])}"]
            for label, t in obs.timings().items()
        ]
        print(format_table(["span", "wall time", "calls"], timing_rows), file=out)
    return 0


def _cmd_trace_record(args, out) -> int:
    """``repro trace record WORKLOAD -o FILE``: freeze a traffic stream."""
    workload_name = args.policy
    if workload_name not in ALL_WORKLOADS:
        print(
            f"trace record needs a workload (one of: {', '.join(ALL_WORKLOADS)})",
            file=out,
        )
        return 2
    if not args.output:
        print("trace record requires --output PATH (.npt or .json)", file=out)
        return 2
    workload = make_workload(workload_name, total_misses=args.work)
    if args.output.endswith(".json"):
        windows = -(-workload.total_misses // workload.misses_per_window)
        trace = tracefile.record_trace(workload, min(windows, args.max_windows))
        tracefile.write_trace(trace, args.output)
        rows = [
            ["windows", len(trace["windows"])],
            ["footprint pages", workload.footprint_pages],
            ["format", "json"],
        ]
    else:
        data = tracestore.record_to_file(
            workload, args.output, max_windows=args.max_windows
        )
        rows = [
            ["windows", data.num_windows],
            ["access groups", data.num_groups],
            ["page entries", data.num_entries],
            ["footprint pages", workload.footprint_pages],
            ["size", format_count(os.path.getsize(args.output)) + " bytes"],
            ["format", f"npt v{tracestore.TRACE_FORMAT_VERSION}"],
        ]
    print(f"recorded {workload_name} traffic stream to {args.output}:", file=out)
    print(format_table(["metric", "value"], rows), file=out)
    return 0


def cmd_perf(args, out) -> int:
    """Time the macro suite, report spans, gate on the committed baseline."""
    def progress(name, record):
        print(
            f"  {name:14s} {record['windows']:5d} windows  "
            f"{record['wall_seconds']:6.2f}s  {record['windows_per_sec']:8.1f} win/s",
            file=out,
        )

    suite_kind = "quick" if args.quick else "full"
    mode = "replay" if args.replay else "live generation"
    print(
        f"perf suite ({suite_kind}, {mode}, rng schema {args.rng_schema}), "
        f"best of {args.repeats} repeats:",
        file=out,
    )
    profile_dir = None
    if args.cprofile:
        profile_dir = os.path.join(
            os.path.dirname(args.output) or ".", "profiles"
        )
    report = perf_harness.run_suite(
        quick=args.quick,
        repeats=args.repeats,
        profile=not args.no_profile,
        progress=progress,
        replay=args.replay,
        trace_dir=args.trace_dir,
        rng_schema=args.rng_schema,
        profile_dir=profile_dir,
    )
    if profile_dir is not None:
        print(f"wrote cProfile dumps to {profile_dir}", file=out)
    print(f"calibration: {report['calibration_ops_per_sec']:.1f} kernel iters/s", file=out)
    if not args.no_profile:
        for name, record in report["scenarios"].items():
            rows = perf_harness.span_rows(record)
            if rows:
                print(f"spans for {name}:", file=out)
                print(format_table(["span", "wall time", "calls"], rows), file=out)
    perf_harness.write_report(report, args.output)
    print(f"wrote report to {args.output}", file=out)
    root_copy = perf_harness.DEFAULT_ROOT_REPORT_PATH
    if (
        not args.quick
        and args.replay
        and args.rng_schema == 2
        and os.path.abspath(args.output) != os.path.abspath(root_copy)
    ):
        # Keep the perf trajectory tracked in-repo across PRs.  Only
        # full replay-mode schema-2 runs qualify: a --quick, --no-replay
        # or legacy-schema leg would overwrite the snapshot with an
        # incomparable subset.
        perf_harness.write_report(report, root_copy)
        print(f"refreshed {root_copy}", file=out)
    if args.update_baseline:
        perf_harness.write_report(report, args.baseline)
        print(f"updated baseline at {args.baseline}", file=out)
        return 0
    baseline = perf_harness.load_report(args.baseline)
    if baseline is None:
        print(
            f"no baseline at {args.baseline}; run with --update-baseline to create one",
            file=out,
        )
        return 0
    problems = perf_harness.compare(report, baseline, threshold=args.threshold)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=out)
        return 1
    print(f"OK: within {args.threshold:.0%} of baseline (calibration-normalised)", file=out)
    return 0


def cmd_calibrate(args, out) -> int:
    corpus = generate_corpus(total_misses=2_000_000, misses_per_window=200_000)
    coeff = calibrate_k(corpus, max_windows_each=args.windows, seed=args.seed)
    config = MachineConfig()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["fitted k (cycles)", f"{coeff.k_cycles:.1f}"],
                ["slow-tier idle latency (cycles)", f"{config.slow_spec.latency_cycles:.1f}"],
                ["calibration workloads", len(corpus)],
            ],
        ),
        file=out,
    )
    return 0


def cmd_list(args, out) -> int:  # noqa: ARG001
    print("workloads: " + ", ".join(ALL_WORKLOADS), file=out)
    print("policies:  " + ", ".join(ALL_POLICIES + ["Frequency", "CXL"]), file=out)
    print("ratios:    " + ", ".join(PAPER_RATIOS), file=out)
    print("topologies: " + ", ".join(TOPOLOGY_NAMES), file=out)
    return 0


_COMMANDS = {
    "run": cmd_run,
    "sweep": cmd_sweep,
    "compare": cmd_compare,
    "bench": cmd_bench,
    "campaign": cmd_campaign,
    "trace": cmd_trace,
    "perf": cmd_perf,
    "calibrate": cmd_calibrate,
    "list": cmd_list,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":
    raise SystemExit(main())
