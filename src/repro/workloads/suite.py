"""Registry of the paper's evaluation workloads (§5.1).

``EVAL_WORKLOADS`` lists the 12 applications of the all-workloads study
(Figure 6); ``ALL_WORKLOADS`` adds masim, the 13th workload, used in the
motivation and colocation studies.  ``make_workload`` builds a fresh,
deterministically seeded instance by name.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads.base import Workload
from repro.workloads.gpt2 import Gpt2Inference
from repro.workloads.graph import make_graph_workload
from repro.workloads.gups import Gups
from repro.workloads.masim import Masim
from repro.workloads.redis_ycsb import RedisYcsbC
from repro.workloads.silo import Silo
from repro.workloads.spec import Bwaves, Deepsjeng, Xz

_FACTORIES: Dict[str, Callable[..., Workload]] = {
    "bc-kron": lambda **kw: make_graph_workload("bc-kron", **kw),
    "bc-urand": lambda **kw: make_graph_workload("bc-urand", **kw),
    "bc-twitter": lambda **kw: make_graph_workload("bc-twitter", **kw),
    "tc-twitter": lambda **kw: make_graph_workload("tc-twitter", **kw),
    "sssp-kron": lambda **kw: make_graph_workload("sssp-kron", **kw),
    "gups": lambda **kw: Gups(**kw),
    "gpt-2": lambda **kw: Gpt2Inference(**kw),
    "redis-ycsbc": lambda **kw: RedisYcsbC(**kw),
    "silo": lambda **kw: Silo(**kw),
    "603.bwaves": lambda **kw: Bwaves(**kw),
    "657.xz": lambda **kw: Xz(**kw),
    "631.deepsjeng": lambda **kw: Deepsjeng(**kw),
    "masim": lambda **kw: Masim(**kw),
}

#: The 12 workloads of the Figure 6 cross-workload study.
EVAL_WORKLOADS: List[str] = [
    "bc-kron",
    "bc-urand",
    "bc-twitter",
    "tc-twitter",
    "sssp-kron",
    "gups",
    "gpt-2",
    "redis-ycsbc",
    "silo",
    "603.bwaves",
    "657.xz",
    "631.deepsjeng",
]

#: All 13 evaluated applications (adds masim).
ALL_WORKLOADS: List[str] = EVAL_WORKLOADS + ["masim"]


def make_workload(name: str, **kwargs) -> Workload:
    """Instantiate an evaluation workload by its paper name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; known: {sorted(_FACTORIES)}"
        ) from None
    return factory(**kwargs)
