"""GPT-2 inference memory behaviour.

The paper's gpt-2 result (§5.3) is the sharpest indictment of hotness:
every hotness-based system does *worse* than first-touch because the
dominant traffic -- weight matrices streamed once per token -- is
extremely frequent but fully latency-tolerant (high MLP from GEMM
blocking and prefetching).  Promoting weights churns the fast tier for
no benefit.  The truly critical pages are the small embedding-lookup and
KV-cache regions with dependent, low-MLP accesses.

The generator models three regions:

* ``weights``   -- ~70% of footprint, uniform, streamed every window, MLP ~18,
* ``kv_cache``  -- grows with decoded tokens, recency-weighted, MLP ~4,
* ``embeddings``-- small, zipf token popularity, MLP ~2.5.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.hw.access import AccessGroup
from repro.mem.page import ObjectRegion
from repro.workloads.base import Workload, region_group, zipf_weights

WEIGHTS_MLP = 18.0
KV_MLP = 4.0
EMBED_MLP = 2.5

#: (weights, kv, embeddings) miss-traffic fractions during the
#: GEMM-dominated windows of a token step.
_GEMM_MIX = (0.88, 0.08, 0.04)

#: Mix during attention/embedding-dominated windows.
_ATTENTION_MIX = (0.55, 0.28, 0.17)

#: Windows per (GEMM, attention) alternation within token batches.
_GEMM_WINDOWS = 3
_ATTENTION_WINDOWS = 2


class Gpt2Inference(Workload):
    """Token-by-token decoder inference over a tiered footprint."""

    def __init__(
        self,
        footprint_pages: int = 20_480,
        total_misses: int = 50_000_000,
        misses_per_window: int = 250_000,
        compute_cycles_per_miss: float = 90.0,
        seed: int = 4,
    ):
        n_weights = int(footprint_pages * 0.60)
        n_kv = int(footprint_pages * 0.24)
        n_embed = footprint_pages - n_weights - n_kv
        objects = [
            ObjectRegion("weights", 0, n_weights),
            ObjectRegion("kv_cache", n_weights, n_kv),
            ObjectRegion("embeddings", n_weights + n_kv, n_embed),
        ]
        super().__init__(
            name="gpt-2",
            footprint_pages=footprint_pages,
            total_misses=total_misses,
            misses_per_window=misses_per_window,
            compute_cycles_per_miss=compute_cycles_per_miss,
            seed=seed,
            objects=objects,
        )
        layout_rng = np.random.default_rng(seed + 101)
        self._embed_weights = zipf_weights(n_embed, 0.8, layout_rng)

    def _kv_valid_pages(self) -> int:
        """KV cache fills as decoding progresses (10% warm at start)."""
        n_kv = self.objects[1].num_pages
        return max(int(n_kv * (0.1 + 0.9 * self.progress)), 1)

    def _in_gemm_phase(self) -> bool:
        cycle = _GEMM_WINDOWS + _ATTENTION_WINDOWS
        return (self.window_index % cycle) < _GEMM_WINDOWS

    def _emit(self, budget: int, rng: np.random.Generator) -> List[AccessGroup]:
        weights, kv, embed = self.objects
        # Token steps alternate GEMM-dominated windows (weight streaming)
        # with attention/embedding windows (dependent lookups), giving
        # the criticality profiler real temporal MLP structure.
        f_w, f_kv, f_e = _GEMM_MIX if self._in_gemm_phase() else _ATTENTION_MIX
        groups: List[AccessGroup] = []

        w_misses = int(budget * f_w)
        groups.append(region_group(rng, weights, w_misses, WEIGHTS_MLP, label="weights"))

        kv_misses = int(budget * f_kv)
        valid = self._kv_valid_pages()
        # Attention reads the whole valid prefix but favours recent tokens.
        recency = np.linspace(0.3, 1.0, valid)
        kv_counts_region = ObjectRegion("kv_valid", kv.start_page, valid)
        groups.append(
            region_group(
                rng, kv_counts_region, kv_misses, KV_MLP, weights=recency, label="kv"
            )
        )

        e_misses = budget - w_misses - kv_misses
        groups.append(
            region_group(
                rng, embed, e_misses, EMBED_MLP, weights=self._embed_weights, label="embed"
            )
        )
        return groups

    def phase_name(self) -> str:
        phase = "gemm" if self._in_gemm_phase() else "attention"
        return f"{phase}-{int(self.progress * 100)}pct"
