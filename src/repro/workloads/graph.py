"""GAPBS-style graph analytics workloads: bc, tc, sssp on kron/urand/twitter.

Graph kernels are the paper's stress case for criticality-first tiering
(§5.2): traffic looks random to frequency counters, but has exploitable
structure -- hub vertices are touched by serialised pointer chasing
(low MLP, high stall per access) while edge scans stream with high MLP.
The generators below reproduce that structure synthetically:

* a *vertex* region with degree-skewed popularity, accessed by
  dependent pointer walks,
* an *edge* (CSR) region scanned by prefetch-friendly streaming, with a
  per-iteration frontier selecting which edge blocks are active,
* a small *aux* region (frontier queues, scores).

Graph flavours differ in skew and size: ``kron`` (synthetic Kronecker,
heavy power law, one huge edge object), ``urand`` (uniform degrees),
``twitter`` (extreme power law).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.hw.access import AccessGroup
from repro.mem.page import ObjectRegion
from repro.workloads.base import Workload, region_group, zipf_weights


@dataclass(frozen=True)
class GraphSpec:
    """Shape parameters of one input graph."""

    name: str
    footprint_pages: int
    #: Degree-skew exponent for vertex popularity (0 = uniform).
    vertex_alpha: float
    #: Skew of edge-block popularity (hub adjacency lists are hot).
    edge_alpha: float
    #: Kronecker builders materialise vertices + edges as one pooled CSR
    #: allocation -- the ~16GB indivisible object that defeats Soar's
    #: object-granular placement in the paper (§5.4).
    pooled_csr: bool = False
    #: (vertex, edge, scratch, aux) footprint fractions.  ``scratch`` is
    #: dead loader memory: the edge-list and construction buffers GAPBS
    #: leaves resident after building the CSR (the raw edge list is ~2x
    #: the packed CSR).  Under first-touch it squats in the fast tier;
    #: tiering systems reclaim it via (LRU) demotion.
    region_split: "tuple[float, float, float, float]" = (0.16, 0.42, 0.34, 0.08)


GRAPHS: Dict[str, GraphSpec] = {
    "kron": GraphSpec(
        "kron", footprint_pages=24_576, vertex_alpha=1.05, edge_alpha=0.7, pooled_csr=True
    ),
    # Uniform-random graphs carry no degree skew: per-page access
    # frequency is nearly flat, and the vertex region is proportionally
    # larger (fewer edges per vertex), so frequency ranks the streaming
    # edge pages *above* the pointer-chased vertex state -- the setting
    # where criticality and hotness genuinely diverge (§5.6).
    "urand": GraphSpec(
        "urand",
        footprint_pages=24_576,
        vertex_alpha=0.25,
        edge_alpha=0.2,
        region_split=(0.34, 0.32, 0.26, 0.08),
    ),
    "twitter": GraphSpec("twitter", footprint_pages=32_768, vertex_alpha=1.35, edge_alpha=0.9),
}

_KERNELS = ("bc", "tc", "sssp")

VERTEX_CHASE_MLP = 1.8
EDGE_STREAM_MLP = 16.0
AUX_MLP = 6.0


class GraphWorkload(Workload):
    """One GAPBS kernel running over one synthetic graph."""

    def __init__(
        self,
        kernel: str,
        graph: str,
        total_misses: int = 60_000_000,
        misses_per_window: int = 250_000,
        compute_cycles_per_miss: float = 30.0,
        iteration_windows: int = 10,
        seed: int = 3,
    ):
        if kernel not in _KERNELS:
            raise ValueError(f"kernel must be one of {_KERNELS}")
        if graph not in GRAPHS:
            raise ValueError(f"graph must be one of {tuple(GRAPHS)}")
        self.kernel = kernel
        self.graph_spec = GRAPHS[graph]
        self.iteration_windows = iteration_windows
        footprint = self.graph_spec.footprint_pages
        split = self.graph_spec.region_split
        nv = int(footprint * split[0])
        ne = int(footprint * split[1])
        ns = int(footprint * split[2])
        na = footprint - nv - ne - ns
        regions = {
            "vertices": ObjectRegion("vertices", 0, nv),
            "edges": ObjectRegion("edges", nv, ne),
            "loader_scratch": ObjectRegion("loader_scratch", nv + ne, ns),
            "aux": ObjectRegion("aux", nv + ne + ns, na),
        }
        if self.graph_spec.pooled_csr:
            # One indivisible CSR allocation spanning vertices + edges.
            objects = [
                ObjectRegion("csr_pool", 0, nv + ne),
                regions["loader_scratch"],
                regions["aux"],
            ]
        else:
            objects = list(regions.values())
        self._regions = regions
        super().__init__(
            name=f"{kernel}-{graph}",
            footprint_pages=footprint,
            total_misses=total_misses,
            misses_per_window=misses_per_window,
            compute_cycles_per_miss=compute_cycles_per_miss,
            seed=seed,
            objects=objects,
        )
        layout_rng = np.random.default_rng(seed + 7919)
        self._vertex_weights = zipf_weights(nv, self.graph_spec.vertex_alpha, layout_rng)
        self._edge_weights = zipf_weights(ne, self.graph_spec.edge_alpha, layout_rng)
        self._frontier_mask = np.ones(ne, dtype=bool)
        self._iteration = -1

    def _on_reset(self) -> None:
        self._frontier_mask = np.ones(self._regions["edges"].num_pages, dtype=bool)
        self._iteration = -1

    # -- frontier dynamics ------------------------------------------------------

    def _frontier_fraction(self) -> float:
        """Active fraction of the edge region for the current iteration."""
        if self.kernel == "tc":
            return 1.0  # triangle counting touches the whole graph
        if self.kernel == "bc":
            return 0.35
        # sssp: the frontier starts wide and narrows as distances settle.
        return max(0.5 * (1.0 - self.progress) + 0.08, 0.08)

    def _maybe_advance_iteration(self, rng: np.random.Generator) -> None:
        iteration = self.window_index // self.iteration_windows
        if iteration == self._iteration:
            return
        self._iteration = iteration
        ne = self._regions["edges"].num_pages
        frac = self._frontier_fraction()
        if frac >= 1.0:
            self._frontier_mask = np.ones(ne, dtype=bool)
            return
        # The frontier is a union of contiguous edge blocks: adjacency
        # lists of the active vertices.
        block = max(ne // 64, 1)
        num_blocks = max(int(frac * ne / block), 1)
        starts = rng.integers(0, max(ne - block, 1), size=num_blocks)
        mask = np.zeros(ne, dtype=bool)
        for start in starts:
            mask[start : start + block] = True
        self._frontier_mask = mask

    # -- traffic ---------------------------------------------------------------

    def _mix(self) -> "tuple[float, float, float]":
        """(vertex-chase, edge-stream, aux) miss fractions for this window.

        Each iteration has internal sub-phases, as real frontier kernels
        do: early windows are expansion-dominated (streaming edge scans,
        high MLP), later windows are contraction/score-update dominated
        (serialised vertex chasing, low MLP).  This temporal structure
        is what separates criticality from frequency: vertex pages soak
        up their accesses in low-MLP windows, so per-access stall
        attribution prices them higher than equally-frequent edge pages
        (§3, Takeaway #1).
        """
        pos = (self.window_index % self.iteration_windows) / self.iteration_windows
        if self.kernel == "tc":
            # Triangle counting alternates list scans with intersection
            # walks on a finer cadence.
            if self.window_index % 4 < 2:
                return (0.05, 0.85, 0.10)
            return (0.70, 0.15, 0.15)
        if pos < 0.5:
            return (0.05, 0.85, 0.10)  # frontier expansion: edge streaming
        return (0.70, 0.15, 0.15)  # contraction: vertex pointer chasing

    def allocation_order(self) -> np.ndarray:
        """GAPBS allocation order: edge arrays and loader buffers during
        graph construction, frontier queues at kernel setup, and the
        per-vertex kernel state (scores/depths/sigma -- the data the
        pointer chase actually stalls on) last, at kernel invocation.
        First-touch therefore strands most of the critical region on the
        slow tier even at generous fast-tier ratios (§5.2)."""
        parts = [
            self._regions[name].pages()
            for name in ("edges", "loader_scratch", "aux", "vertices")
        ]
        return np.concatenate(parts)

    def _emit(self, budget: int, rng: np.random.Generator) -> List[AccessGroup]:
        self._maybe_advance_iteration(rng)
        vertices = self._regions["vertices"]
        edges = self._regions["edges"]
        aux = self._regions["aux"]
        f_chase, f_edge, f_aux = self._mix()
        groups: List[AccessGroup] = []

        chase_misses = int(budget * f_chase)
        if chase_misses > 0:
            groups.append(
                region_group(
                    rng,
                    vertices,
                    chase_misses,
                    self._jittered(VERTEX_CHASE_MLP, rng),
                    weights=self._vertex_weights,
                    label="vertex-chase",
                )
            )

        edge_misses = int(budget * f_edge)
        if edge_misses > 0:
            groups.append(self._edge_group(rng, edges, edge_misses))

        aux_misses = budget - chase_misses - edge_misses
        if aux_misses > 0:
            groups.append(
                region_group(rng, aux, aux_misses, AUX_MLP, label="aux")
            )
        return groups

    def _edge_group(
        self, rng: np.random.Generator, edges: ObjectRegion, misses: int
    ) -> AccessGroup:
        weights = self._edge_weights.copy()
        weights[~self._frontier_mask] *= 0.02  # inactive lists still leak traffic
        if self.kernel == "tc":
            # Triangle counting alternates full-list scans with dependent
            # intersection walks that hammer the hub adjacency lists: the
            # two phases touch *different* page populations at very
            # different cost, which is what produces Figure 1c's 65x
            # within-frequency criticality spread.
            if self.window_index % 4 < 2:
                weights = np.ones_like(weights)
                weights[~self._frontier_mask] = 0.02
                mlp = self._jittered(12.0, rng)
            else:
                weights = weights**1.8
                mlp = self._jittered(1.6, rng, spread=0.3)
        else:
            mlp = self._jittered(EDGE_STREAM_MLP, rng)
        counts_region = region_group(
            rng, edges, misses, mlp, weights=weights, label="edge-scan"
        )
        return counts_region

    @staticmethod
    def _jittered(mlp: float, rng: np.random.Generator, spread: float = 0.12) -> float:
        """Small per-window MLP jitter; phases stay stable (§4.2, Fig 3b)."""
        return max(float(mlp * np.exp(rng.normal(0.0, spread))), 1.1)

    def phase_name(self) -> str:
        return f"iter-{self._iteration}"


def make_graph_workload(name: str, seed: int = 3, **kwargs) -> GraphWorkload:
    """Construct from a paper-style name like ``bc-kron`` or ``tc-twitter``."""
    kernel, _, graph = name.partition("-")
    return GraphWorkload(kernel=kernel, graph=graph, seed=seed, **kwargs)
