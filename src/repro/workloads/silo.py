"""Silo: an in-memory OLTP database (Tu et al., SOSP '13).

Silo's tiered-memory profile combines three very different patterns:

* B-tree descent: a small, extremely hot internal-node region walked by
  dependent pointer chasing (MLP ~2) -- the classic high-criticality set,
* record reads/updates over a large, moderately skewed record heap
  (MLP ~3),
* log writes: append-only streaming (MLP ~16, almost no loads).

The paper uses silo (si1o) in the PAC-vs-frequency generalisation check
(§5.6), where its high MLP variance makes frequency-based selection
noticeably worse than PAC.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.hw.access import AccessGroup
from repro.mem.page import ObjectRegion
from repro.workloads.base import Workload, region_group, zipf_weights

BTREE_MLP = 2.0
RECORD_MLP = 3.0
SCAN_MLP = 14.0
LOG_MLP = 16.0

#: (btree, records, log) mix during transaction-processing windows.
_TXN_MIX = (0.38, 0.52, 0.10)

#: Mix during range-scan windows (read-mostly analytics passes).
_SCAN_MIX = (0.06, 0.84, 0.10)

#: Every Nth window is a range-scan window.
_SCAN_EVERY = 4


class Silo(Workload):
    """TPC-C-style transaction processing over an in-memory B-tree store."""

    def __init__(
        self,
        footprint_pages: int = 16_384,
        total_misses: int = 50_000_000,
        misses_per_window: int = 250_000,
        compute_cycles_per_miss: float = 60.0,
        seed: int = 6,
    ):
        n_btree = int(footprint_pages * 0.06)
        n_records = int(footprint_pages * 0.74)
        n_log = footprint_pages - n_btree - n_records
        objects = [
            ObjectRegion("btree_internal", 0, n_btree),
            ObjectRegion("records", n_btree, n_records),
            ObjectRegion("log", n_btree + n_records, n_log),
        ]
        super().__init__(
            name="silo",
            footprint_pages=footprint_pages,
            total_misses=total_misses,
            misses_per_window=misses_per_window,
            compute_cycles_per_miss=compute_cycles_per_miss,
            seed=seed,
            objects=objects,
        )
        layout_rng = np.random.default_rng(seed + 57)
        self._btree_weights = zipf_weights(n_btree, 0.9, layout_rng)
        self._record_weights = zipf_weights(n_records, 0.8, layout_rng)
        self._log_head = 0

    def _on_reset(self) -> None:
        self._log_head = 0

    def allocation_order(self) -> np.ndarray:
        """DB population order: record heap first; internal B-tree nodes
        are split into existence throughout loading, so they skew late."""
        return self._order_from_regions(["records", "log", "btree_internal"])

    def _in_scan_window(self) -> bool:
        return self.window_index % _SCAN_EVERY == _SCAN_EVERY - 1

    def _emit(self, budget: int, rng: np.random.Generator) -> List[AccessGroup]:
        btree, records, log = self.objects
        scan = self._in_scan_window()
        f_b, f_r, f_l = _SCAN_MIX if scan else _TXN_MIX
        b_misses = int(budget * f_b)
        r_misses = int(budget * f_r)
        l_misses = budget - b_misses - r_misses
        if scan:
            # Range scans sweep the record heap uniformly with deep
            # prefetching: high traffic, low per-access cost.  Frequency
            # counters see these touches as "hotness" on cold records --
            # the classic scan-pollution failure of hotness tiering that
            # PAC's stall pricing avoids (§5.6).
            record_traffic = region_group(
                rng, records, r_misses, SCAN_MLP, label="record-scan"
            )
        else:
            record_traffic = region_group(
                rng, records, r_misses, RECORD_MLP, weights=self._record_weights, label="records"
            )
        groups = [
            region_group(
                rng, btree, b_misses, BTREE_MLP, weights=self._btree_weights, label="btree"
            ),
            record_traffic,
            self._log_group(rng, log, l_misses),
        ]
        return groups

    def phase_name(self) -> str:
        return "scan" if self._in_scan_window() else "txn"

    def _log_group(
        self, rng: np.random.Generator, log: ObjectRegion, misses: int
    ) -> AccessGroup:
        """Append-only log traffic sweeping circularly through the region."""
        span = max(log.num_pages // 8, 1)
        start = self._log_head
        self._log_head = (self._log_head + span) % log.num_pages
        pages = log.start_page + (start + np.arange(span)) % log.num_pages
        counts = np.zeros(span, dtype=np.int64)
        if misses > 0:
            counts += misses // span
            counts[: misses % span] += 1
        hit = counts > 0
        return AccessGroup(
            pages=pages[hit],
            counts=counts[hit],
            mlp=LOG_MLP,
            load_fraction=0.1,  # log traffic is almost all stores
            label="log",
        )
