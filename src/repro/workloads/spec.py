"""SPEC CPU 2017 memory-intensive workloads: 603.bwaves, 657.xz, 631.deepsjeng.

Each generator encodes the published memory character of its benchmark:

* **603.bwaves** -- blast-wave CFD: long streaming sweeps over a handful
  of large arrays with very high MLP and heavy compute between misses.
  Latency-tolerant; tiering gains are modest (§5.4 notes Soar's offline
  profiling shines here).
* **657.xz** -- LZMA compression: a dictionary window that slides through
  the input, giving strong short-term recency.  Aggressive recency-based
  promotion (Colloid/NBT) slightly beats PACT here in the paper (§5.3).
* **631.deepsjeng** -- chess search: uniform-random probes into a large
  transposition table (low locality, low MLP) plus small hot evaluation
  tables.  Memtis edges PACT by ~4% with ~3x more migrations (§5.3).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.hw.access import AccessGroup
from repro.mem.page import ObjectRegion
from repro.workloads.base import Workload, region_group, zipf_weights


class Bwaves(Workload):
    """603.bwaves: phased streaming over four large state arrays."""

    def __init__(
        self,
        footprint_pages: int = 24_576,
        total_misses: int = 50_000_000,
        misses_per_window: int = 250_000,
        compute_cycles_per_miss: float = 150.0,
        seed: int = 7,
    ):
        quarter = footprint_pages // 4
        objects = [
            ObjectRegion(f"array_{i}", i * quarter, quarter) for i in range(4)
        ]
        super().__init__(
            name="603.bwaves",
            footprint_pages=footprint_pages,
            total_misses=total_misses,
            misses_per_window=misses_per_window,
            compute_cycles_per_miss=compute_cycles_per_miss,
            seed=seed,
            objects=objects,
        )

    def _emit(self, budget: int, rng: np.random.Generator) -> List[AccessGroup]:
        # Each solver sub-step sweeps two of the four arrays.
        step = (self.window_index // 6) % 4
        active = [self.objects[step], self.objects[(step + 1) % 4]]
        half = budget // 2
        return [
            region_group(rng, active[0], half, 20.0, label="sweep-a"),
            region_group(rng, active[1], budget - half, 20.0, label="sweep-b"),
        ]

    def phase_name(self) -> str:
        return f"substep-{(self.window_index // 6) % 4}"


class Xz(Workload):
    """657.xz: LZMA with a sliding dictionary window (recency-friendly)."""

    def __init__(
        self,
        footprint_pages: int = 16_384,
        total_misses: int = 45_000_000,
        misses_per_window: int = 250_000,
        compute_cycles_per_miss: float = 70.0,
        slide_windows: int = 8,
        seed: int = 8,
    ):
        n_dict = int(footprint_pages * 0.75)
        n_stream = footprint_pages - n_dict
        objects = [
            ObjectRegion("dictionary", 0, n_dict),
            ObjectRegion("io_buffers", n_dict, n_stream),
        ]
        self.slide_windows = slide_windows
        super().__init__(
            name="657.xz",
            footprint_pages=footprint_pages,
            total_misses=total_misses,
            misses_per_window=misses_per_window,
            compute_cycles_per_miss=compute_cycles_per_miss,
            seed=seed,
            objects=objects,
        )

    def _emit(self, budget: int, rng: np.random.Generator) -> List[AccessGroup]:
        dictionary, buffers = self.objects
        nd = dictionary.num_pages
        # The active dictionary window slides through the region; match
        # finding hammers the most recent quarter hardest.
        window_span = max(nd // 5, 1)
        head = (self.window_index // self.slide_windows * window_span // 2) % nd
        idx = (head + np.arange(window_span)) % nd
        weights = np.zeros(nd)
        weights[idx] = np.linspace(0.2, 1.0, window_span)
        d_misses = int(budget * 0.8)
        groups = [
            region_group(
                rng, dictionary, d_misses, 3.5, weights=weights, label="dict-match"
            ),
            region_group(rng, buffers, budget - d_misses, 12.0, label="io"),
        ]
        return groups

    def phase_name(self) -> str:
        return f"block-{self.window_index // self.slide_windows}"


class Deepsjeng(Workload):
    """631.deepsjeng: transposition-table probes plus hot eval tables."""

    def __init__(
        self,
        footprint_pages: int = 12_288,
        total_misses: int = 40_000_000,
        misses_per_window: int = 250_000,
        compute_cycles_per_miss: float = 80.0,
        seed: int = 9,
    ):
        n_tt = int(footprint_pages * 0.88)
        n_eval = footprint_pages - n_tt
        objects = [
            ObjectRegion("transposition_table", 0, n_tt),
            ObjectRegion("eval_tables", n_tt, n_eval),
        ]
        super().__init__(
            name="631.deepsjeng",
            footprint_pages=footprint_pages,
            total_misses=total_misses,
            misses_per_window=misses_per_window,
            compute_cycles_per_miss=compute_cycles_per_miss,
            seed=seed,
            objects=objects,
        )
        layout_rng = np.random.default_rng(seed + 13)
        self._eval_weights = zipf_weights(n_eval, 1.0, layout_rng)

    def allocation_order(self) -> np.ndarray:
        """The transposition table is allocated up front at engine start;
        the hot evaluation tables follow during search initialisation."""
        return self._order_from_regions(["transposition_table", "eval_tables"])

    def _emit(self, budget: int, rng: np.random.Generator) -> List[AccessGroup]:
        tt, eval_tables = self.objects
        tt_misses = int(budget * 0.7)
        return [
            region_group(rng, tt, tt_misses, 2.2, label="tt-probe"),
            region_group(
                rng,
                eval_tables,
                budget - tt_misses,
                4.0,
                weights=self._eval_weights,
                label="eval",
            ),
        ]
