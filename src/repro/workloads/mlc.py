"""Intel MLC-style bandwidth contender.

The bandwidth-contention study (§5.8) co-locates Intel's Memory Latency
Checker on the local (fast) memory node: each MLC thread generates
~8 GB/s of streaming traffic, and eight threads saturate the testbed's
52 GB/s of DRAM bandwidth.  The contender produces no policy-visible
page accesses -- it just consumes link bandwidth, inflating the fast
tier's effective latency through the queueing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.units import CPU_FREQ_GHZ, GB, NS_PER_S
from repro.mem.page import Tier

#: Traffic generated per MLC thread (paper §5.8).
GBPS_PER_THREAD = 8.0


@dataclass
class MlcContender:
    """Streaming traffic injector pinned to one memory tier."""

    threads: int = 0
    tier: Tier = Tier.FAST
    gbps_per_thread: float = GBPS_PER_THREAD

    def bytes_for_duration(self, duration_cycles: float, freq_ghz: float = CPU_FREQ_GHZ) -> float:
        """Bytes the contender pushes during a window of the given length."""
        if self.threads <= 0:
            return 0.0
        duration_ns = duration_cycles / freq_ghz
        return self.threads * self.gbps_per_thread * GB * duration_ns / NS_PER_S

    def extra_bytes(self, duration_cycles: float, freq_ghz: float = CPU_FREQ_GHZ) -> Dict[Tier, float]:
        """Per-tier extra link bytes for the stall model."""
        if self.threads <= 0:
            return {}
        return {self.tier: self.bytes_for_duration(duration_cycles, freq_ghz)}
