"""Workload abstraction and access-pattern building blocks.

A workload is a deterministic generator of per-window memory traffic
(:class:`repro.hw.access.WindowTraffic`).  Each window it emits a set of
access groups -- (pages, per-page LLC-miss counts, pattern MLP) -- plus
the compute cycles interleaved with that traffic.  Workloads carry a
fixed amount of total work (LLC misses) and report completion, so a
simulation's runtime is "wall-clock until the work is done", exactly the
paper's primary metric.

Footprints are scaled down from the paper's 6.6-40 GB RSS to tens of
thousands of 4KB pages so a full run takes seconds; every policy-visible
ratio (fast:slow capacity, working-set skew, migration cost vs. window
length) is preserved.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

from repro.hw.access import AccessGroup, WindowTraffic
from repro.mem.page import ObjectRegion

#: Default misses consumed per simulated window.
DEFAULT_MISSES_PER_WINDOW = 250_000

#: MLP of dependent pointer chasing (serialised loads).
POINTER_CHASE_MLP = 2.0

#: MLP of prefetched sequential streaming.
STREAMING_MLP = 16.0


class Workload(abc.ABC):
    """Deterministic phased traffic generator with a finite work budget."""

    def __init__(
        self,
        name: str,
        footprint_pages: int,
        total_misses: int,
        misses_per_window: int = DEFAULT_MISSES_PER_WINDOW,
        compute_cycles_per_miss: float = 40.0,
        seed: int = 1,
        objects: Optional[Sequence[ObjectRegion]] = None,
    ):
        if footprint_pages <= 0:
            raise ValueError("footprint must be positive")
        if total_misses <= 0:
            raise ValueError("total work must be positive")
        if misses_per_window <= 0:
            raise ValueError("window work must be positive")
        self.name = name
        self.footprint_pages = footprint_pages
        self.total_misses = total_misses
        self.misses_per_window = misses_per_window
        self.compute_cycles_per_miss = compute_cycles_per_miss
        self.seed = seed
        self.objects: List[ObjectRegion] = list(objects or [])
        self._rng = np.random.default_rng(seed)
        self._consumed = 0
        self._window = 0

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Rewind to the start of execution with the same random stream."""
        self._rng = np.random.default_rng(self.seed)
        self._consumed = 0
        self._window = 0
        self._on_reset()

    def _on_reset(self) -> None:
        """Subclass hook for phase-state reinitialisation."""

    def final_metrics(self) -> dict:
        """End-of-run metrics attached to :class:`RunResult`.

        Values must be JSON-serialisable: they travel through the
        experiment layer's on-disk cache and across worker processes.
        """
        return {}

    @property
    def window_index(self) -> int:
        return self._window

    @property
    def progress(self) -> float:
        """Fraction of total work consumed so far, in [0, 1]."""
        return min(self._consumed / self.total_misses, 1.0)

    @property
    def done(self) -> bool:
        return self._consumed >= self.total_misses

    # -- traffic generation ----------------------------------------------------

    def next_window(self) -> WindowTraffic:
        """Emit one window of traffic and consume the matching work."""
        budget = min(self.misses_per_window, self.total_misses - self._consumed)
        if budget <= 0:
            return WindowTraffic(groups=[], compute_cycles=0.0, done=True)
        groups = self._emit(budget, self._rng)
        emitted = sum(g.total_misses for g in groups)
        self._consumed += emitted if emitted > 0 else budget
        self._window += 1
        traffic = WindowTraffic(
            groups=groups,
            compute_cycles=self._compute_cycles(emitted),
            done=self.done,
            phase=self.phase_name(),
        )
        return traffic

    def next_windows(self, k: int) -> List[WindowTraffic]:
        """Emit up to ``k`` windows of traffic in one call.

        The bulk path for trace recording (:mod:`repro.workloads.tracestore`):
        the default implementation simply loops ``next_window`` and stops
        early once the workload is done, so it is stream-identical by
        construction.  Subclasses with vectorisable generators override
        this to amortise RNG draws across the batch; overrides must emit
        the exact window sequence the serial path would (the trace
        round-trip tests pin this property).

        Each returned window carries ``extra["consumed_after"]``: the
        work counter as of that window.  Recording needs the per-window
        value, which is unrecoverable after the fact when emission rules
        differ by subclass; overrides must stamp it too.
        """
        windows: List[WindowTraffic] = []
        for _ in range(k):
            if self.done:
                break
            traffic = self.next_window()
            traffic.extra["consumed_after"] = self._consumed
            windows.append(traffic)
        return windows

    def _compute_cycles(self, emitted_misses: int) -> float:
        return emitted_misses * self.compute_cycles_per_miss

    def phase_name(self) -> str:
        """Tag of the current execution phase (for traces and benches)."""
        return ""

    @abc.abstractmethod
    def _emit(self, budget: int, rng: np.random.Generator) -> List[AccessGroup]:
        """Produce the window's access groups, totalling ~``budget`` misses."""

    # -- allocation ---------------------------------------------------------------

    def allocation_order(self) -> np.ndarray:
        """Page ids in the order the application allocated/first-touched them.

        First-touch (NoTier) placement follows this order: early
        allocations land in the fast tier until it fills, later ones
        spill to the slow tier.  Real applications frequently allocate
        their latency-*tolerant* bulk data (graph CSR arrays, model
        weights, value heaps) before their latency-*critical* structures
        (vertex metadata, indexes), which is precisely why first-touch
        performs poorly and tiering pays off (§5.2).  The default is
        page-id order; workloads override to reflect their load phase.
        """
        return np.arange(self.footprint_pages, dtype=np.int64)

    def _order_from_regions(self, region_names: Sequence[str]) -> np.ndarray:
        """Allocation order visiting the named object regions in sequence."""
        by_name = {region.name: region for region in self.objects}
        parts = [by_name[name].pages() for name in region_names]
        order = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        if order.size != self.footprint_pages:
            missing = np.setdiff1d(
                np.arange(self.footprint_pages, dtype=np.int64), order
            )
            order = np.concatenate([order, missing])
        return order


# ---------------------------------------------------------------------------
# Pattern building blocks.
# ---------------------------------------------------------------------------


def spread_counts(
    rng: np.random.Generator,
    num_pages: int,
    misses: int,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Distribute ``misses`` over ``num_pages`` pages.

    Uniform when ``weights`` is None, else proportional to ``weights``.
    Returns a dense per-page count array of length ``num_pages``.
    """
    if num_pages <= 0:
        raise ValueError("num_pages must be positive")
    if misses <= 0:
        return np.zeros(num_pages, dtype=np.int64)
    if weights is None:
        p = np.full(num_pages, 1.0 / num_pages)
    else:
        weights = np.asarray(weights, dtype=float)
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must have positive mass")
        p = weights / total
    return rng.multinomial(misses, p).astype(np.int64)


def zipf_weights(num_pages: int, alpha: float, shuffle_rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Zipf-like popularity weights ``1 / rank**alpha`` over a page range.

    With ``shuffle_rng``, popularity ranks are scattered across the range
    (real allocators do not lay hot objects out contiguously).
    """
    if num_pages <= 0:
        raise ValueError("num_pages must be positive")
    ranks = np.arange(1, num_pages + 1, dtype=float)
    weights = ranks**-alpha
    if shuffle_rng is not None:
        shuffle_rng.shuffle(weights)
    return weights


def region_group(
    rng: np.random.Generator,
    region: ObjectRegion,
    misses: int,
    mlp: float,
    weights: Optional[np.ndarray] = None,
    load_fraction: float = 1.0,
    label: str = "",
) -> AccessGroup:
    """An access group spreading ``misses`` over one object region."""
    counts = spread_counts(rng, region.num_pages, misses, weights)
    hit = counts > 0
    return AccessGroup(
        pages=region.pages()[hit],
        counts=counts[hit],
        mlp=mlp,
        load_fraction=load_fraction,
        label=label or region.name,
    )


def subset_group(
    rng: np.random.Generator,
    pages: np.ndarray,
    misses: int,
    mlp: float,
    load_fraction: float = 1.0,
    label: str = "",
) -> AccessGroup:
    """An access group spreading ``misses`` uniformly over explicit pages."""
    pages = np.asarray(pages, dtype=np.int64)
    counts = spread_counts(rng, pages.size, misses)
    hit = counts > 0
    return AccessGroup(
        pages=pages[hit],
        counts=counts[hit],
        mlp=mlp,
        load_fraction=load_fraction,
        label=label,
    )
