"""Trace-driven workloads: replay recorded access streams.

Research groups often have page-access traces from real systems
(Pin/DynamoRIO tools, PEBS dumps, DAMON records).  ``TraceWorkload``
replays such a trace through the simulator so PACT and the baselines
can be evaluated on recorded behaviour rather than synthetic
generators.

Trace format (JSON):

```json
{
  "name": "my-app",
  "footprint_pages": 4096,
  "compute_cycles_per_miss": 40.0,
  "windows": [
    {"groups": [
        {"pages": [0, 1, 2], "counts": [5, 3, 9], "mlp": 2.0,
         "load_fraction": 1.0, "label": "btree"}
    ]},
    ...
  ]
}
```

Each window entry describes one sampling interval; the trace loops if a
run needs more work than the trace holds (set ``loop=False`` to stop at
trace end instead).  ``record_trace`` produces this format from any
existing workload, so synthetic generators can be frozen into
deterministic fixtures.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.hw.access import AccessGroup
from repro.mem.page import ObjectRegion
from repro.workloads.base import Workload

PathLike = Union[str, Path]


class TraceWorkload(Workload):
    """Replays a recorded window-by-window access trace."""

    def __init__(self, trace: dict, loop: bool = True, seed: int = 0):
        _validate_trace(trace)
        self._trace_windows = trace["windows"]
        self.loop = loop
        windows = self._trace_windows
        per_window = [
            sum(sum(g["counts"]) for g in w["groups"]) for w in windows
        ]
        total = sum(per_window)
        super().__init__(
            name=trace.get("name", "trace"),
            footprint_pages=int(trace["footprint_pages"]),
            total_misses=total if not loop else max(total, 1),
            misses_per_window=max(total // max(len(windows), 1), 1),
            compute_cycles_per_miss=float(trace.get("compute_cycles_per_miss", 40.0)),
            seed=seed,
            objects=[
                ObjectRegion(o["name"], int(o["start_page"]), int(o["num_pages"]))
                for o in trace.get("objects", [])
            ]
            or [ObjectRegion("trace_heap", 0, int(trace["footprint_pages"]))],
        )
        self._cursor = 0

    @classmethod
    def from_file(cls, path: PathLike, loop: bool = True) -> Workload:
        """Load a trace from disk: JSON, or the binary ``.npt`` fast path.

        ``.npt`` traces (:mod:`repro.workloads.tracestore`) come back as
        a memory-mapped :class:`~repro.workloads.tracestore.ReplayWorkload`
        with the same looping semantics -- zero-copy and without parsing
        megabytes of JSON.
        """
        path = Path(path)
        if path.suffix == ".npt":
            from repro.workloads.tracestore import ReplayWorkload

            return ReplayWorkload.from_file(path, loop=loop)
        return cls(json.loads(path.read_text()), loop=loop)

    def set_total_misses(self, total: int) -> None:
        """Stretch/shrink the work budget (the trace loops to cover it)."""
        if total <= 0:
            raise ValueError("total must be positive")
        if not self.loop:
            raise ValueError("cannot stretch a non-looping trace")
        self.total_misses = total

    def _on_reset(self) -> None:
        self._cursor = 0

    def next_window(self):
        # Override the budgeted base implementation: a trace prescribes
        # each window's traffic exactly.
        from repro.hw.access import WindowTraffic

        if self._cursor >= len(self._trace_windows):
            if not self.loop:
                self._consumed = self.total_misses
                return WindowTraffic(groups=[], compute_cycles=0.0, done=True)
            self._cursor = 0
        entry = self._trace_windows[self._cursor]
        self._cursor += 1
        groups = [
            AccessGroup(
                pages=np.asarray(g["pages"], dtype=np.int64),
                counts=np.asarray(g["counts"], dtype=np.int64),
                mlp=float(g["mlp"]),
                load_fraction=float(g.get("load_fraction", 1.0)),
                label=g.get("label", ""),
            )
            for g in entry["groups"]
        ]
        emitted = sum(g.total_misses for g in groups)
        self._consumed += emitted
        self._window += 1
        return WindowTraffic(
            groups=groups,
            compute_cycles=emitted * self.compute_cycles_per_miss,
            done=self.done,
            phase=entry.get("phase", f"trace-{self._cursor - 1}"),
        )

    def _emit(self, budget, rng):  # pragma: no cover - next_window overridden
        raise NotImplementedError


def record_trace(workload: Workload, windows: int) -> dict:
    """Freeze a workload's first ``windows`` windows into a trace dict."""
    workload.reset()
    recorded: List[dict] = []
    for _ in range(windows):
        if workload.done:
            break
        traffic = workload.next_window()
        recorded.append(
            {
                "phase": traffic.phase,
                "groups": [
                    {
                        "pages": g.pages.tolist(),
                        "counts": g.counts.tolist(),
                        "mlp": g.mlp,
                        "load_fraction": g.load_fraction,
                        "label": g.label,
                    }
                    for g in traffic.groups
                ],
            }
        )
    workload.reset()
    return {
        "name": f"{workload.name}-trace",
        "footprint_pages": workload.footprint_pages,
        "compute_cycles_per_miss": workload.compute_cycles_per_miss,
        "objects": [
            {"name": o.name, "start_page": o.start_page, "num_pages": o.num_pages}
            for o in workload.objects
        ],
        "windows": recorded,
    }


def write_trace(trace: dict, path: PathLike) -> Path:
    """Persist a trace dict as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace))
    return path


def _validate_trace(trace: dict) -> None:
    if "footprint_pages" not in trace or int(trace["footprint_pages"]) <= 0:
        raise ValueError("trace needs a positive footprint_pages")
    windows = trace.get("windows")
    if not windows:
        raise ValueError("trace needs at least one window")
    footprint = int(trace["footprint_pages"])
    for i, window in enumerate(windows):
        for group in window.get("groups", []):
            pages = group["pages"]
            if len(pages) != len(group["counts"]):
                raise ValueError(f"window {i}: pages/counts length mismatch")
            if pages and (max(pages) >= footprint or min(pages) < 0):
                raise ValueError(f"window {i}: page id outside footprint")
            if float(group["mlp"]) <= 0:
                raise ValueError(f"window {i}: non-positive mlp")
