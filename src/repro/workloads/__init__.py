"""Workload generators for the paper's evaluation suite and studies."""

from repro.workloads.base import (
    POINTER_CHASE_MLP,
    STREAMING_MLP,
    Workload,
    region_group,
    spread_counts,
    subset_group,
    zipf_weights,
)
from repro.workloads.colocation import ColocatedWorkload
from repro.workloads.corpus import SyntheticCorpusWorkload, generate_corpus
from repro.workloads.gpt2 import Gpt2Inference
from repro.workloads.graph import GRAPHS, GraphWorkload, make_graph_workload
from repro.workloads.gups import Gups
from repro.workloads.masim import Masim
from repro.workloads.mlc import MlcContender
from repro.workloads.redis_ycsb import RedisYcsbC
from repro.workloads.silo import Silo
from repro.workloads.spec import Bwaves, Deepsjeng, Xz
from repro.workloads.suite import ALL_WORKLOADS, EVAL_WORKLOADS, make_workload
from repro.workloads.tracefile import TraceWorkload, record_trace, write_trace

__all__ = [
    "ALL_WORKLOADS",
    "Bwaves",
    "ColocatedWorkload",
    "Deepsjeng",
    "EVAL_WORKLOADS",
    "GRAPHS",
    "Gpt2Inference",
    "GraphWorkload",
    "Gups",
    "Masim",
    "MlcContender",
    "POINTER_CHASE_MLP",
    "RedisYcsbC",
    "STREAMING_MLP",
    "Silo",
    "SyntheticCorpusWorkload",
    "TraceWorkload",
    "Workload",
    "Xz",
    "generate_corpus",
    "make_graph_workload",
    "make_workload",
    "record_trace",
    "region_group",
    "spread_counts",
    "subset_group",
    "write_trace",
    "zipf_weights",
]
