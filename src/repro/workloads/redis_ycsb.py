"""Redis driven by YCSB workload C (100% reads, zipfian keys).

Used by the paper's breakdown study (§5.10, Figure 13): a 19 GB RSS
in-memory store under a 1:1 tier ratio.  Traffic decomposes into

* hash-index probes: small hot region, dependent chains, MLP ~2,
* value reads: zipfian (YCSB theta 0.99) over the value heap, MLP ~2.5
  (the value pointer dereference is serialised behind the index probe),
* housekeeping/metadata scans: streaming, MLP ~10.

The workload also exposes request-level accounting (`misses_per_op`) so
benches can convert simulated runtime into throughput and latency.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.hw.access import AccessGroup
from repro.mem.page import ObjectRegion
from repro.workloads.base import Workload, region_group, zipf_weights

INDEX_MLP = 2.0
VALUE_MLP = 2.5
META_MLP = 10.0

_TRAFFIC_MIX = (0.25, 0.65, 0.10)


class RedisYcsbC(Workload):
    """Zipfian read-only key-value serving."""

    #: Average LLC misses per GET (index probe + value lines).
    misses_per_op = 6.0

    def __init__(
        self,
        footprint_pages: int = 19_456,
        total_misses: int = 50_000_000,
        misses_per_window: int = 250_000,
        compute_cycles_per_miss: float = 50.0,
        zipf_theta: float = 0.99,
        seed: int = 5,
    ):
        n_index = int(footprint_pages * 0.08)
        n_values = int(footprint_pages * 0.87)
        n_meta = footprint_pages - n_index - n_values
        objects = [
            ObjectRegion("hash_index", 0, n_index),
            ObjectRegion("values", n_index, n_values),
            ObjectRegion("metadata", n_index + n_values, n_meta),
        ]
        super().__init__(
            name="redis-ycsbc",
            footprint_pages=footprint_pages,
            total_misses=total_misses,
            misses_per_window=misses_per_window,
            compute_cycles_per_miss=compute_cycles_per_miss,
            seed=seed,
            objects=objects,
        )
        layout_rng = np.random.default_rng(seed + 31)
        self._value_weights = zipf_weights(n_values, zipf_theta, layout_rng)
        self._index_weights = zipf_weights(n_index, 0.6, layout_rng)

    def allocation_order(self) -> np.ndarray:
        """Load phase: the value heap is populated before the hash index
        reaches its final resized shape, so index pages allocate late."""
        return self._order_from_regions(["values", "metadata", "hash_index"])

    def _emit(self, budget: int, rng: np.random.Generator) -> List[AccessGroup]:
        index, values, meta = self.objects
        f_i, f_v, f_m = _TRAFFIC_MIX
        i_misses = int(budget * f_i)
        v_misses = int(budget * f_v)
        m_misses = budget - i_misses - v_misses
        return [
            region_group(
                rng, index, i_misses, INDEX_MLP, weights=self._index_weights, label="index"
            ),
            region_group(
                rng, values, v_misses, VALUE_MLP, weights=self._value_weights, label="values"
            ),
            region_group(rng, meta, m_misses, META_MLP, label="meta"),
        ]

    def ops_for_misses(self, misses: float) -> float:
        """Convert a miss count into served GET operations."""
        return misses / self.misses_per_op
