"""Record-once traffic replay: binary columnar access-trace store.

Workload traffic streams are pure functions of (workload parameters,
workload seed, window budget): the policy never influences what the
application *would have* accessed, only where those pages live.  Yet
every figure sweep regenerates the same stream once per contender --
the RNG-pinned multinomial draws that *are* the simulated traffic
dominate per-window cost (see DESIGN.md §3b).  This module makes the
stream a first-class artifact:

* ``record_stream`` freezes a workload's exact ``next_window`` output
  into columnar numpy arrays (CSR-style: one flat ``pages``/``counts``
  pair plus group/window boundary pointers),
* ``write_npt``/``read_npt`` persist them in the ``.npt`` format --
  a JSON header followed by aligned raw column blocks -- loadable
  zero-copy via ``np.memmap`` (the OS page cache shares one copy
  across every sweep worker touching the same trace),
* :class:`ReplayWorkload` replays a recorded stream through
  :class:`~repro.sim.machine.Machine` **bit-identically by
  construction**: it stores the generator's actual output arrays, the
  per-window consumed-work counter, and the end-of-run metrics, so a
  replayed run is indistinguishable from a live one (the golden-digest
  matrix in ``tests/test_golden_digests.py`` pins this),
* :class:`TraceStore` is the content-addressed cache (keyed on the
  workload fingerprint + window budget, hashed with the same
  canonicaliser as :mod:`repro.exp.cache`): the first run records, every
  subsequent run -- any policy, ratio, contender, or worker process --
  replays.

Disable replay globally with ``REPRO_NO_REPLAY=1`` or per-call; point
the on-disk layer somewhere with ``REPRO_TRACE_DIR`` (defaults to
``$REPRO_CACHE_DIR/traces`` when a result cache directory is set).
"""

from __future__ import annotations

import copy
import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.hw.access import AccessGroup, WindowTraffic
from repro.mem.page import ObjectRegion
from repro.workloads.base import Workload

PathLike = Union[str, Path]

#: Bump when the on-disk column layout or replay semantics change;
#: readers reject other versions and the store re-records.
TRACE_FORMAT_VERSION = 1

#: File magic for the binary trace format ("numpy page trace").
TRACE_MAGIC = b"NPT1"

#: Alignment of the first column block (and the header padding).
_ALIGN = 64

#: Windows generated per bulk ``next_windows`` call during recording.
RECORD_CHUNK = 64

#: Environment variable selecting the on-disk trace directory.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: Environment variable disabling traffic replay entirely.
NO_REPLAY_ENV = "REPRO_NO_REPLAY"

#: Soft cap on the memory layer of a :class:`TraceStore` (bytes).
#: Disk-backed entries are memory-mapped and barely count; this bounds
#: only traces recorded without a directory to spill to.
DEFAULT_MEMORY_BUDGET = 768 * 1024 * 1024

#: Schema: column name -> (dtype, length key).  Lengths are expressed
#: in terms of the header's count fields so the reader can validate
#: shapes before touching the data.
_COLUMN_SPECS: "Tuple[Tuple[str, str, str], ...]" = (
    ("window_group_ptr", "<i8", "windows+1"),
    ("window_compute", "<f8", "windows"),
    ("window_consumed", "<i8", "windows"),
    ("window_done", "|u1", "windows"),
    ("window_phase", "<u4", "windows"),
    ("group_page_ptr", "<i8", "groups+1"),
    ("group_mlp", "<f8", "groups"),
    ("group_load_fraction", "<f8", "groups"),
    ("group_label", "<u4", "groups"),
    ("pages", "<i8", "entries"),
    ("counts", "<i8", "entries"),
    ("alloc_order", "<i8", "footprint"),
)


class TraceFormatError(ValueError):
    """A ``.npt`` file is truncated, corrupt, or of an unknown version."""


class TraceExhausted(RuntimeError):
    """A non-looping replay was asked for more windows than it recorded."""


def _source_fingerprint(workload: Workload) -> Dict[str, Any]:
    # Lazy import: repro.exp builds on the workloads layer.
    from repro.exp.cache import workload_fingerprint

    return workload_fingerprint(workload)


def trace_key(workload_fp: Dict[str, Any], max_windows: int) -> str:
    """Content address of a recorded stream.

    The stream depends only on the workload's identity (which includes
    its seed) and the window budget it was recorded under -- never on
    the policy, ratio, contender, or machine seed.
    """
    from repro.exp.cache import content_hash

    return content_hash(
        {
            "trace_format": TRACE_FORMAT_VERSION,
            "workload": workload_fp,
            "max_windows": int(max_windows),
        }
    )


# ---------------------------------------------------------------------------
# In-memory representation.
# ---------------------------------------------------------------------------


@dataclass
class TraceData:
    """One recorded stream: header metadata plus the column arrays."""

    workload: Dict[str, Any]
    fingerprint: Dict[str, Any]
    objects: List[Tuple[str, int, int]]
    final_metrics: Dict[str, Any]
    phases: List[str]
    labels: List[str]
    columns: Dict[str, np.ndarray]
    source_class: str = ""
    path: Optional[Path] = None

    @property
    def num_windows(self) -> int:
        return int(self.columns["window_group_ptr"].shape[0] - 1)

    @property
    def num_groups(self) -> int:
        return int(self.columns["group_page_ptr"].shape[0] - 1)

    @property
    def num_entries(self) -> int:
        return int(self.columns["pages"].shape[0])

    def nbytes(self) -> int:
        return int(sum(col.nbytes for col in self.columns.values()))


# ---------------------------------------------------------------------------
# Recording.
# ---------------------------------------------------------------------------


def record_stream(workload: Workload, max_windows: int = 200_000) -> TraceData:
    """Freeze a workload's traffic stream into columnar arrays.

    Consumes ``workload`` exactly as :meth:`Machine.run` would -- one
    ``next_window`` per window while the workload is not done and the
    budget holds -- so the recorded stream, the per-window consumed
    counters, and the end-of-run ``final_metrics`` all match what a
    live run observes.  The workload is reset afterwards.
    """
    fingerprint = _source_fingerprint(workload)
    workload.reset()

    page_parts: List[np.ndarray] = []
    count_parts: List[np.ndarray] = []
    group_sizes: List[int] = []
    group_mlp: List[float] = []
    group_lf: List[float] = []
    group_label: List[int] = []
    win_groups: List[int] = []
    win_compute: List[float] = []
    win_consumed: List[int] = []
    win_done: List[bool] = []
    win_phase: List[int] = []
    phases: Dict[str, int] = {}
    labels: Dict[str, int] = {}

    recorded = 0
    while not workload.done and recorded < max_windows:
        chunk = workload.next_windows(min(RECORD_CHUNK, max_windows - recorded))
        if not chunk:
            break
        for traffic in chunk:
            for group in traffic.groups:
                page_parts.append(group.pages)
                count_parts.append(group.counts)
                group_sizes.append(group.pages.shape[0])
                group_mlp.append(float(group.mlp))
                group_lf.append(float(group.load_fraction))
                group_label.append(labels.setdefault(group.label, len(labels)))
            win_groups.append(len(traffic.groups))
            win_compute.append(float(traffic.compute_cycles))
            win_consumed.append(int(traffic.extra["consumed_after"]))
            win_done.append(bool(traffic.done))
            win_phase.append(phases.setdefault(traffic.phase, len(phases)))
            recorded += 1

    final_metrics = copy.deepcopy(workload.final_metrics())
    alloc_order = np.ascontiguousarray(workload.allocation_order(), dtype=np.int64)
    workload.reset()

    columns: Dict[str, np.ndarray] = {
        "window_group_ptr": _ptr(win_groups),
        "window_compute": np.asarray(win_compute, dtype=np.float64),
        "window_consumed": np.asarray(win_consumed, dtype=np.int64),
        "window_done": np.asarray(win_done, dtype=np.uint8),
        "window_phase": np.asarray(win_phase, dtype=np.uint32),
        "group_page_ptr": _ptr(group_sizes),
        "group_mlp": np.asarray(group_mlp, dtype=np.float64),
        "group_load_fraction": np.asarray(group_lf, dtype=np.float64),
        "group_label": np.asarray(group_label, dtype=np.uint32),
        "pages": _concat_int64(page_parts),
        "counts": _concat_int64(count_parts),
        "alloc_order": alloc_order,
    }
    return TraceData(
        workload={
            "name": workload.name,
            "footprint_pages": int(workload.footprint_pages),
            "total_misses": int(workload.total_misses),
            "misses_per_window": int(workload.misses_per_window),
            "compute_cycles_per_miss": float(workload.compute_cycles_per_miss),
            "seed": workload.seed,
        },
        fingerprint=fingerprint,
        objects=[(o.name, int(o.start_page), int(o.num_pages)) for o in workload.objects],
        final_metrics=final_metrics,
        phases=_table(phases),
        labels=_table(labels),
        columns=columns,
        source_class=type(workload).__qualname__,
    )


def _ptr(sizes: List[int]) -> np.ndarray:
    ptr = np.zeros(len(sizes) + 1, dtype=np.int64)
    if sizes:
        np.cumsum(np.asarray(sizes, dtype=np.int64), out=ptr[1:])
    return ptr


def _concat_int64(parts: List[np.ndarray]) -> np.ndarray:
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate([np.asarray(p, dtype=np.int64) for p in parts])


def _table(index: Dict[str, int]) -> List[str]:
    out = [""] * len(index)
    for value, i in index.items():
        out[i] = value
    return out


# ---------------------------------------------------------------------------
# The .npt container.
# ---------------------------------------------------------------------------


def write_npt(data: TraceData, path: PathLike) -> Path:
    """Persist a recorded stream; atomic (write-temp + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    counts = {
        "windows": data.num_windows,
        "groups": data.num_groups,
        "entries": data.num_entries,
        "footprint": int(data.workload["footprint_pages"]),
    }
    column_meta: Dict[str, Dict[str, Any]] = {}
    # Header length depends on the offsets which depend on the header
    # length; iterate until the layout is stable (two passes suffice:
    # offsets only grow with header size, which converges immediately).
    offset_guess = 0
    for _ in range(4):
        offset = offset_guess
        column_meta = {}
        for name, dtype, length_key in _COLUMN_SPECS:
            arr = data.columns[name]
            expect = _expected_length(length_key, counts)
            if arr.shape[0] != expect:
                raise TraceFormatError(
                    f"column {name!r} has {arr.shape[0]} rows, expected {expect}"
                )
            offset = _aligned(offset)
            column_meta[name] = {"dtype": dtype, "length": int(arr.shape[0]), "offset": offset}
            offset += arr.shape[0] * np.dtype(dtype).itemsize
        header = {
            "format_version": TRACE_FORMAT_VERSION,
            "workload": data.workload,
            "source_class": data.source_class,
            "fingerprint": data.fingerprint,
            "objects": data.objects,
            "final_metrics": data.final_metrics,
            "phases": data.phases,
            "labels": data.labels,
            "counts": counts,
            "columns": column_meta,
            "total_bytes": offset,
        }
        blob = json.dumps(header, sort_keys=True).encode("utf-8")
        new_guess = _aligned(len(TRACE_MAGIC) + 4 + len(blob))
        if new_guess == offset_guess:
            break
        offset_guess = new_guess
    else:  # pragma: no cover - layout always converges in two passes
        raise TraceFormatError("header layout failed to converge")

    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".npt.tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(TRACE_MAGIC)
            fh.write(len(blob).to_bytes(4, "little"))
            fh.write(blob)
            for name, dtype, _ in _COLUMN_SPECS:
                meta = column_meta[name]
                fh.seek(meta["offset"])
                fh.write(np.ascontiguousarray(data.columns[name], dtype=dtype).tobytes())
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def read_npt(path: PathLike, mmap: bool = True) -> TraceData:
    """Load a ``.npt`` trace, zero-copy via ``np.memmap`` by default.

    Raises :class:`TraceFormatError` on bad magic, version mismatch,
    unparsable headers, or truncated column data -- callers (the trace
    store) treat any of those as a cache miss and re-record.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        with path.open("rb") as fh:
            magic = fh.read(len(TRACE_MAGIC))
            if magic != TRACE_MAGIC:
                raise TraceFormatError(f"{path}: not a .npt trace (bad magic {magic!r})")
            raw_len = fh.read(4)
            if len(raw_len) < 4:
                raise TraceFormatError(f"{path}: truncated header length")
            header_len = int.from_bytes(raw_len, "little")
            blob = fh.read(header_len)
            if len(blob) < header_len:
                raise TraceFormatError(f"{path}: truncated header")
    except OSError as exc:
        raise TraceFormatError(f"{path}: unreadable ({exc})") from exc
    try:
        header = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"{path}: corrupt header JSON") from exc
    if header.get("format_version") != TRACE_FORMAT_VERSION:
        raise TraceFormatError(
            f"{path}: format version {header.get('format_version')!r}, "
            f"expected {TRACE_FORMAT_VERSION}"
        )
    counts = header.get("counts") or {}
    column_meta = header.get("columns") or {}
    columns: Dict[str, np.ndarray] = {}
    for name, dtype, length_key in _COLUMN_SPECS:
        meta = column_meta.get(name)
        if meta is None:
            raise TraceFormatError(f"{path}: missing column {name!r}")
        length = int(meta["length"])
        if length != _expected_length(length_key, counts):
            raise TraceFormatError(f"{path}: column {name!r} has inconsistent length")
        offset = int(meta["offset"])
        end = offset + length * np.dtype(dtype).itemsize
        if end > size:
            raise TraceFormatError(
                f"{path}: truncated column {name!r} (needs {end} bytes, file has {size})"
            )
        if length == 0:
            columns[name] = np.empty(0, dtype=np.dtype(dtype))
        elif mmap:
            mm = np.memmap(path, dtype=np.dtype(dtype), mode="r",
                           offset=offset, shape=(length,))
            # View as a plain ndarray: same mmap-backed buffer (the
            # memmap stays alive via .base, so page-cache sharing across
            # sweep workers is unchanged) but slicing no longer pays the
            # memmap.__array_finalize__ subclass overhead -- the replay
            # hot loop slices these columns thousands of times per run.
            columns[name] = mm.view(np.ndarray)
        else:
            with path.open("rb") as fh:
                fh.seek(offset)
                buf = fh.read(length * np.dtype(dtype).itemsize)
            columns[name] = np.frombuffer(buf, dtype=np.dtype(dtype)).copy()
    for ptr_name in ("window_group_ptr", "group_page_ptr"):
        ptr = columns[ptr_name]
        if ptr.shape[0] == 0 or ptr[0] != 0 or np.any(np.diff(ptr) < 0):
            raise TraceFormatError(f"{path}: non-monotonic {ptr_name}")
    return TraceData(
        workload=header["workload"],
        fingerprint=header["fingerprint"],
        objects=[tuple(o) for o in header.get("objects", [])],
        final_metrics=header.get("final_metrics") or {},
        phases=header.get("phases") or [],
        labels=header.get("labels") or [],
        columns=columns,
        source_class=header.get("source_class", ""),
        path=path,
    )


def _expected_length(length_key: str, counts: Dict[str, int]) -> int:
    if length_key.endswith("+1"):
        return int(counts[length_key[:-2]]) + 1
    return int(counts[length_key])


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def record_to_file(
    workload: Workload, path: PathLike, max_windows: int = 200_000
) -> TraceData:
    """Record ``workload``'s stream and persist it as ``.npt``."""
    data = record_stream(workload, max_windows=max_windows)
    write_npt(data, path)
    return data


# ---------------------------------------------------------------------------
# JSON <-> binary conversion (the tracefile.py interchange format).
# ---------------------------------------------------------------------------


def npt_from_trace_dict(trace: dict, path: PathLike) -> Path:
    """Convert a JSON trace dict (``tracefile.py`` format) to ``.npt``."""
    from repro.workloads.tracefile import TraceWorkload

    workload = TraceWorkload(trace, loop=False)
    windows = len(trace["windows"])
    return write_npt(record_stream(workload, max_windows=windows), path)


def trace_dict_from_npt(path: PathLike) -> dict:
    """Convert a ``.npt`` trace back to the JSON trace-dict format."""
    data = read_npt(path)
    c = data.columns
    windows = []
    for i in range(data.num_windows):
        g0, g1 = int(c["window_group_ptr"][i]), int(c["window_group_ptr"][i + 1])
        groups = []
        for g in range(g0, g1):
            p0, p1 = int(c["group_page_ptr"][g]), int(c["group_page_ptr"][g + 1])
            groups.append(
                {
                    "pages": c["pages"][p0:p1].tolist(),
                    "counts": c["counts"][p0:p1].tolist(),
                    "mlp": float(c["group_mlp"][g]),
                    "load_fraction": float(c["group_load_fraction"][g]),
                    "label": data.labels[int(c["group_label"][g])],
                }
            )
        windows.append({"phase": data.phases[int(c["window_phase"][i])], "groups": groups})
    return {
        "name": data.workload["name"],
        "footprint_pages": int(data.workload["footprint_pages"]),
        "compute_cycles_per_miss": float(data.workload["compute_cycles_per_miss"]),
        "objects": [
            {"name": name, "start_page": start, "num_pages": num}
            for name, start, num in data.objects
        ],
        "windows": windows,
    }


# ---------------------------------------------------------------------------
# Replay.
# ---------------------------------------------------------------------------


class ReplayWorkload(Workload):
    """Replays a recorded stream bit-identically (or loops it).

    In the default exact mode the per-window consumed-work counter,
    ``done`` transitions, phases, and ``final_metrics`` come straight
    from the recording, so a :class:`Machine` run over this workload is
    indistinguishable from one over the live generator it was recorded
    from.  With ``loop=True`` the trace wraps around at the end instead
    (``TraceWorkload`` semantics, for trace-driven evaluation of
    recorded streams longer than one pass).
    """

    def __init__(self, data: TraceData, loop: bool = False):
        meta = data.workload
        self._data = data
        self.loop = loop
        #: Identity passthrough: cache keys fingerprint the *recorded*
        #: workload, so replayed and live runs share result-cache entries.
        self.replay_fingerprint = copy.deepcopy(data.fingerprint)
        self._num_windows = data.num_windows
        self._cursor = 0
        super().__init__(
            name=meta["name"],
            footprint_pages=int(meta["footprint_pages"]),
            total_misses=int(meta["total_misses"]),
            misses_per_window=int(meta["misses_per_window"]),
            compute_cycles_per_miss=float(meta["compute_cycles_per_miss"]),
            seed=meta["seed"],
            objects=[ObjectRegion(name, start, num) for name, start, num in data.objects],
        )
        if loop:
            # Looping replays re-derive progress from each window's
            # emitted misses (the trace may cover the budget many times).
            c = data.columns
            sums = np.zeros(self._num_windows, dtype=np.int64)
            if c["counts"].shape[0]:
                ptr = c["window_group_ptr"]
                starts = c["group_page_ptr"][ptr[:-1]]
                totals = np.concatenate([np.cumsum(c["counts"]), [0]])
                ends = c["group_page_ptr"][ptr[1:]]
                sums = np.where(
                    ends > starts,
                    totals[ends - 1] - np.where(starts > 0, totals[starts - 1], 0),
                    0,
                )
            self._window_emitted = sums

    @classmethod
    def from_file(cls, path: PathLike, loop: bool = False, mmap: bool = True) -> "ReplayWorkload":
        return cls(read_npt(path, mmap=mmap), loop=loop)

    @property
    def trace_windows(self) -> int:
        """Number of recorded windows in the underlying trace."""
        return self._num_windows

    @property
    def trace_data(self) -> TraceData:
        """The recorded columns backing this replay (read-only use)."""
        return self._data

    def set_total_misses(self, total: int) -> None:
        """Stretch/shrink the work budget (looping replays only)."""
        if total <= 0:
            raise ValueError("total must be positive")
        if not self.loop:
            raise ValueError("cannot stretch a non-looping replay")
        self.total_misses = total

    def _on_reset(self) -> None:
        self._cursor = 0

    def allocation_order(self) -> np.ndarray:
        # Copy: callers may treat allocation order as scratch, and the
        # underlying column can be a read-only memmap.
        return np.array(self._data.columns["alloc_order"], dtype=np.int64)

    def final_metrics(self) -> dict:
        return copy.deepcopy(self._data.final_metrics)

    def next_window(self) -> WindowTraffic:
        i = self._cursor
        if i >= self._num_windows:
            if not self.loop:
                raise TraceExhausted(
                    f"replay of {self.name!r} exhausted after {self._num_windows} "
                    f"windows (recorded under a smaller window budget?)"
                )
            i = 0
        data = self._data
        c = data.columns
        wgp = c["window_group_ptr"]
        g0, g1 = int(wgp[i]), int(wgp[i + 1])
        gpp = c["group_page_ptr"]
        pages, counts = c["pages"], c["counts"]
        mlp, lf, lab = c["group_mlp"], c["group_load_fraction"], c["group_label"]
        groups = [
            AccessGroup(
                pages=pages[gpp[g] : gpp[g + 1]],
                counts=counts[gpp[g] : gpp[g + 1]],
                mlp=float(mlp[g]),
                load_fraction=float(lf[g]),
                label=data.labels[lab[g]],
            )
            for g in range(g0, g1)
        ]
        self._cursor = i + 1
        self._window += 1
        if self.loop:
            self._consumed += int(self._window_emitted[i])
            done = self.done
        else:
            self._consumed = int(c["window_consumed"][i])
            done = bool(c["window_done"][i])
        p0, p1 = int(gpp[g0]), int(gpp[g1])
        return WindowTraffic(
            groups=groups,
            compute_cycles=float(c["window_compute"][i]),
            done=done,
            phase=data.phases[int(c["window_phase"][i])],
            flat_pages=pages[p0:p1],
            flat_counts=counts[p0:p1],
        )

    def _emit(self, budget, rng):  # pragma: no cover - next_window overridden
        raise NotImplementedError


# ---------------------------------------------------------------------------
# The content-addressed trace cache.
# ---------------------------------------------------------------------------


class TraceStore:
    """Two-tier (memory + optional ``.npt`` directory) trace cache.

    ``replay`` is the single entry point: given a live workload and a
    window budget it returns a :class:`ReplayWorkload` over the cached
    stream, recording it first if this is the stream's first use.  With
    a directory configured, recorded traces are persisted and replayed
    through ``np.memmap`` -- concurrent sweep workers all share the one
    page-cache-warm copy.
    """

    def __init__(
        self,
        directory: Optional[PathLike] = None,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
    ):
        self.directory = Path(directory) if directory else None
        self.memory_budget_bytes = memory_budget_bytes
        self._memory: Dict[str, TraceData] = {}
        self._memory_bytes = 0
        self._lock = threading.Lock()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.records = 0

    def path_for(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{key}.npt"

    def key_for(self, workload: Workload, max_windows: int) -> str:
        return trace_key(_source_fingerprint(workload), max_windows)

    def get(self, key: str) -> Optional[TraceData]:
        """The cached stream for ``key``, or None (corrupt files = miss)."""
        with self._lock:
            cached = self._memory.get(key)
        if cached is not None:
            self.memory_hits += 1
            return cached
        path = self.path_for(key)
        if path is not None and path.is_file():
            try:
                data = read_npt(path)
            except TraceFormatError:
                data = None
            if data is not None:
                self.disk_hits += 1
                self._remember(key, data)
                return data
        self.misses += 1
        return None

    def ensure(self, workload: Workload, max_windows: int) -> Tuple[str, TraceData]:
        """The cached stream for ``workload``, recording it on first use."""
        key = self.key_for(workload, max_windows)
        data = self.get(key)
        if data is None:
            data = self._record(workload, max_windows, key)
        return key, data

    def ensure_spec(
        self,
        fingerprint: Dict[str, Any],
        builder,
        max_windows: int,
    ) -> Tuple[str, TraceData]:
        """Like :meth:`ensure`, keyed by fingerprint instead of instance.

        ``builder`` is a zero-argument callable producing the live
        workload; it is invoked only on a recording miss.  This is the
        shared-map handoff path campaign drivers use: for the (typical)
        case where the stream is already on disk, the workload is never
        built at all -- the driver just attaches the memory-mappable
        ``.npt`` path to thousands of requests.
        """
        key = trace_key(fingerprint, max_windows)
        data = self.get(key)
        if data is None:
            data = self._record(builder(), max_windows, key)
        return key, data

    def _record(self, workload: Workload, max_windows: int, key: str) -> TraceData:
        data = record_stream(workload, max_windows=max_windows)
        self.records += 1
        path = self.path_for(key)
        if path is not None:
            try:
                write_npt(data, path)
                # Re-open memory-mapped so replays share the page
                # cache instead of this process's private arrays.
                data = read_npt(path)
            except OSError:
                pass
        self._remember(key, data)
        return data

    def replay(
        self, workload: Workload, max_windows: int = 200_000, loop: bool = False
    ) -> Workload:
        """A replaying stand-in for ``workload`` (already-replaying: no-op)."""
        if isinstance(workload, ReplayWorkload):
            return workload
        _, data = self.ensure(workload, max_windows)
        return ReplayWorkload(data, loop=loop)

    def _remember(self, key: str, data: TraceData) -> None:
        # Disk-backed entries hold memmaps (shared page cache, ~free);
        # purely in-memory recordings count against the soft budget,
        # evicting oldest-inserted first.
        cost = 0 if data.path is not None else data.nbytes()
        with self._lock:
            if key in self._memory:
                return
            self._memory[key] = data
            self._memory_bytes += cost
            while self._memory_bytes > self.memory_budget_bytes and len(self._memory) > 1:
                old_key = next(iter(self._memory))
                if old_key == key:
                    break
                old = self._memory.pop(old_key)
                self._memory_bytes -= 0 if old.path is not None else old.nbytes()

    def clear_memory(self) -> None:
        with self._lock:
            self._memory.clear()
            self._memory_bytes = 0

    def stats(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "records": self.records,
        }


# ---------------------------------------------------------------------------
# Default-store plumbing and the global replay switch.
# ---------------------------------------------------------------------------

_default_trace_store: Optional[TraceStore] = None

#: Tri-state override of the replay default: None = follow the
#: environment (enabled unless REPRO_NO_REPLAY is set).
_replay_override: Optional[bool] = None


def default_trace_dir() -> Optional[str]:
    """Trace directory from the environment (or derived from the cache dir)."""
    directory = os.environ.get(TRACE_DIR_ENV)
    if directory:
        return directory
    from repro.exp.cache import CACHE_DIR_ENV

    cache_dir = os.environ.get(CACHE_DIR_ENV)
    if cache_dir:
        return os.path.join(cache_dir, "traces")
    return None


def get_default_trace_store() -> TraceStore:
    global _default_trace_store
    if _default_trace_store is None:
        _default_trace_store = TraceStore(default_trace_dir())
    return _default_trace_store


def set_default_trace_store(store: TraceStore) -> TraceStore:
    global _default_trace_store
    _default_trace_store = store
    return store


def reset_default_trace_store() -> None:
    global _default_trace_store
    _default_trace_store = None


def replay_enabled() -> bool:
    """Whether runs should replay recorded streams by default."""
    if _replay_override is not None:
        return _replay_override
    return not os.environ.get(NO_REPLAY_ENV)


def set_replay_override(value: Optional[bool]) -> Optional[bool]:
    """Force replay on/off process-wide (None = back to the environment)."""
    global _replay_override
    previous = _replay_override
    _replay_override = value
    return previous


__all__ = [
    "DEFAULT_MEMORY_BUDGET",
    "NO_REPLAY_ENV",
    "RECORD_CHUNK",
    "ReplayWorkload",
    "TRACE_DIR_ENV",
    "TRACE_FORMAT_VERSION",
    "TRACE_MAGIC",
    "TraceData",
    "TraceExhausted",
    "TraceFormatError",
    "TraceStore",
    "default_trace_dir",
    "get_default_trace_store",
    "npt_from_trace_dict",
    "read_npt",
    "record_stream",
    "record_to_file",
    "replay_enabled",
    "reset_default_trace_store",
    "set_default_trace_store",
    "set_replay_override",
    "trace_dict_from_npt",
    "trace_key",
    "write_npt",
]
