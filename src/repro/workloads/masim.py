"""Masim: the memory access pattern simulator (Linux DAMON's masim).

The paper extends masim to run two read-only threads -- one sequential
array traversal and one pointer-chasing random walker -- with uniform
per-page access probability within each thread's region (§3).  Pages of
both threads see identical access frequency but sharply different
criticality: the streaming thread amortises latency across in-flight
requests, the chasing thread exposes it.

``pattern`` selects the thread mix so a single-pattern instance can be
used for the colocation study (§5.9).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.hw.access import AccessGroup
from repro.mem.page import ObjectRegion
from repro.workloads.base import Workload, region_group

#: Effective MLP of masim's prefetch-friendly sequential traversal.
SEQUENTIAL_MLP = 14.0

#: Effective MLP of masim's random walker: accesses are independent, so
#: the OOO window keeps several in flight, but no prefetching helps.
RANDOM_MLP = 8.0

_PATTERNS = ("mixed", "sequential", "random")


class Masim(Workload):
    """Two-region synthetic traffic with controlled access patterns."""

    def __init__(
        self,
        pattern: str = "mixed",
        footprint_pages: int = 12_288,
        total_misses: int = 40_000_000,
        misses_per_window: int = 250_000,
        compute_cycles_per_miss: float = 12.0,
        seed: int = 1,
    ):
        if pattern not in _PATTERNS:
            raise ValueError(f"pattern must be one of {_PATTERNS}")
        self.pattern = pattern
        if pattern == "mixed":
            half = footprint_pages // 2
            objects = [
                ObjectRegion("seq_array", 0, half),
                ObjectRegion("chase_array", half, footprint_pages - half),
            ]
        else:
            objects = [ObjectRegion(f"{pattern}_array", 0, footprint_pages)]
        super().__init__(
            name=f"masim-{pattern}",
            footprint_pages=footprint_pages,
            total_misses=total_misses,
            misses_per_window=misses_per_window,
            compute_cycles_per_miss=compute_cycles_per_miss,
            seed=seed,
            objects=objects,
        )
        self._seq_consumed = 0

    def _on_reset(self) -> None:
        self._seq_consumed = 0

    def _emit(self, budget: int, rng: np.random.Generator) -> List[AccessGroup]:
        groups: List[AccessGroup] = []
        if self.pattern == "mixed":
            seq_region, chase_region = self.objects
            # Both threads issue the same number of loads, but the
            # prefetched sequential thread retires them ~2x faster and
            # finishes its 1.5B loads early; later windows are
            # chase-only.  This thread-speed asymmetry is what separates
            # the two clusters in Figure 1a.
            seq_total = self.total_misses // 2
            seq_budget = min(budget * 2 // 3, seq_total - self._seq_consumed)
            seq_budget = max(seq_budget, 0)
            self._seq_consumed += seq_budget
            if seq_budget > 0:
                groups.append(
                    region_group(rng, seq_region, seq_budget, SEQUENTIAL_MLP, label="seq")
                )
            chase_budget = budget - seq_budget
            if chase_budget > 0:
                groups.append(
                    region_group(rng, chase_region, chase_budget, RANDOM_MLP, label="chase")
                )
        elif self.pattern == "sequential":
            groups.append(
                region_group(rng, self.objects[0], budget, SEQUENTIAL_MLP, label="seq")
            )
        else:
            groups.append(
                region_group(rng, self.objects[0], budget, RANDOM_MLP, label="chase")
            )
        return groups

    def phase_name(self) -> str:
        return self.pattern
