"""GUPS (giga-updates per second) with alternating access phases.

The paper's modified GUPS alternates between sequential and random
phases with a 50% mix and a 1:1 read/write ratio (§3).  Pages keep a
uniform long-run access frequency, but the unit stall cost a page incurs
depends on which phase touched it -- exactly the frequency/criticality
divergence Figure 1b demonstrates.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.hw.access import AccessGroup
from repro.mem.page import ObjectRegion
from repro.workloads.base import Workload, region_group

SEQUENTIAL_MLP = 16.0
RANDOM_MLP = 3.0

#: Windows per sequential/random phase before switching.
DEFAULT_PHASE_WINDOWS = 12


class Gups(Workload):
    """Uniform-random update table with phased sequential/random access."""

    def __init__(
        self,
        footprint_pages: int = 16_384,
        total_misses: int = 50_000_000,
        misses_per_window: int = 250_000,
        compute_cycles_per_miss: float = 35.0,
        phase_windows: int = DEFAULT_PHASE_WINDOWS,
        seed: int = 2,
    ):
        if phase_windows <= 0:
            raise ValueError("phase_windows must be positive")
        self.phase_windows = phase_windows
        table = ObjectRegion("update_table", 0, footprint_pages)
        super().__init__(
            name="gups",
            footprint_pages=footprint_pages,
            total_misses=total_misses,
            misses_per_window=misses_per_window,
            compute_cycles_per_miss=compute_cycles_per_miss,
            seed=seed,
            objects=[table],
        )

    def _phase_is_sequential(self) -> bool:
        return (self.window_index // self.phase_windows) % 2 == 0

    def _emit(self, budget: int, rng: np.random.Generator) -> List[AccessGroup]:
        table = self.objects[0]
        if self._phase_is_sequential():
            mlp, label = SEQUENTIAL_MLP, "seq-phase"
        else:
            mlp, label = RANDOM_MLP, "rand-phase"
        # 1:1 read/write ratio -> half the misses are PEBS-visible loads.
        return [region_group(rng, table, budget, mlp, load_fraction=0.5, label=label)]

    def phase_name(self) -> str:
        return "sequential" if self._phase_is_sequential() else "random"
