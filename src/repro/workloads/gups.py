"""GUPS (giga-updates per second) with alternating access phases.

The paper's modified GUPS alternates between sequential and random
phases with a 50% mix and a 1:1 read/write ratio (§3).  Pages keep a
uniform long-run access frequency, but the unit stall cost a page incurs
depends on which phase touched it -- exactly the frequency/criticality
divergence Figure 1b demonstrates.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.hw.access import AccessGroup, WindowTraffic
from repro.mem.page import ObjectRegion
from repro.workloads.base import Workload, region_group

SEQUENTIAL_MLP = 16.0
RANDOM_MLP = 3.0

#: Windows per sequential/random phase before switching.
DEFAULT_PHASE_WINDOWS = 12


class Gups(Workload):
    """Uniform-random update table with phased sequential/random access."""

    def __init__(
        self,
        footprint_pages: int = 16_384,
        total_misses: int = 50_000_000,
        misses_per_window: int = 250_000,
        compute_cycles_per_miss: float = 35.0,
        phase_windows: int = DEFAULT_PHASE_WINDOWS,
        seed: int = 2,
    ):
        if phase_windows <= 0:
            raise ValueError("phase_windows must be positive")
        self.phase_windows = phase_windows
        table = ObjectRegion("update_table", 0, footprint_pages)
        super().__init__(
            name="gups",
            footprint_pages=footprint_pages,
            total_misses=total_misses,
            misses_per_window=misses_per_window,
            compute_cycles_per_miss=compute_cycles_per_miss,
            seed=seed,
            objects=[table],
        )

    def _phase_is_sequential(self) -> bool:
        return (self.window_index // self.phase_windows) % 2 == 0

    def _emit(self, budget: int, rng: np.random.Generator) -> List[AccessGroup]:
        table = self.objects[0]
        if self._phase_is_sequential():
            mlp, label = SEQUENTIAL_MLP, "seq-phase"
        else:
            mlp, label = RANDOM_MLP, "rand-phase"
        # 1:1 read/write ratio -> half the misses are PEBS-visible loads.
        return [region_group(rng, table, budget, mlp, load_fraction=0.5, label=label)]

    def phase_name(self) -> str:
        return "sequential" if self._phase_is_sequential() else "random"

    def next_windows(self, k: int) -> List[WindowTraffic]:
        """Bulk generation amortising the multinomial draws.

        ``rng.multinomial(n, p, size=j)`` consumes the bit stream
        exactly as ``j`` sequential ``rng.multinomial(n, p)`` calls do,
        so batching runs of equal-budget windows (every window except a
        final remainder) reproduces the serial sequence bit-for-bit --
        the trace round-trip tests compare both paths directly.
        """
        table = self.objects[0]
        table_pages = table.pages()
        p = np.full(table.num_pages, 1.0 / table.num_pages)
        windows: List[WindowTraffic] = []
        while len(windows) < k and not self.done:
            remaining = self.total_misses - self._consumed
            budget = min(self.misses_per_window, remaining)
            # Consecutive full-budget windows share one batched draw; a
            # short final window is drawn on its own.
            if budget == self.misses_per_window:
                batch = min(k - len(windows), max(remaining // budget, 1))
            else:
                batch = 1
            counts = self._rng.multinomial(budget, p, size=batch).astype(np.int64)
            for row in counts:
                if self._phase_is_sequential():
                    mlp, label = SEQUENTIAL_MLP, "seq-phase"
                else:
                    mlp, label = RANDOM_MLP, "rand-phase"
                hit = row > 0
                group = AccessGroup(
                    pages=table_pages[hit],
                    counts=row[hit],
                    mlp=mlp,
                    load_fraction=0.5,
                    label=label,
                )
                self._consumed += budget
                self._window += 1
                traffic = WindowTraffic(
                    groups=[group],
                    compute_cycles=self._compute_cycles(budget),
                    done=self.done,
                    phase=self.phase_name(),
                )
                traffic.extra["consumed_after"] = self._consumed
                windows.append(traffic)
        return windows
