"""Colocated workloads sharing one tiered address space.

The colocation study (§5.9) runs two masim processes -- one streaming,
one pointer-chasing -- against a fast tier sized at half their combined
footprint.  ``ColocatedWorkload`` merges member workloads into a single
address space (page ids offset per member) and emits their combined
traffic each window; each member's completion time is tracked separately
so per-member slowdowns can be reported.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.hw.access import AccessGroup, WindowTraffic
from repro.mem.page import ObjectRegion
from repro.workloads.base import Workload


class ColocatedWorkload(Workload):
    """Union of member workloads with per-member progress accounting."""

    def __init__(self, members: Sequence[Workload], name: Optional[str] = None):
        if not members:
            raise ValueError("colocation requires at least one member")
        self.members: List[Workload] = list(members)
        self._offsets: List[int] = []
        offset = 0
        objects: List[ObjectRegion] = []
        for member in self.members:
            self._offsets.append(offset)
            for region in member.objects:
                objects.append(
                    ObjectRegion(
                        f"{member.name}:{region.name}",
                        region.start_page + offset,
                        region.num_pages,
                    )
                )
            offset += member.footprint_pages
        #: Window index at which each member finished (-1 = still running).
        self.member_finish_window: List[int] = [-1] * len(self.members)
        super().__init__(
            name=name or "+".join(m.name for m in self.members),
            footprint_pages=offset,
            total_misses=sum(m.total_misses for m in self.members),
            misses_per_window=sum(m.misses_per_window for m in self.members),
            compute_cycles_per_miss=0.0,  # compute comes from the members
            seed=self.members[0].seed,
            objects=objects,
        )

    def _on_reset(self) -> None:
        for member in self.members:
            member.reset()
        self.member_finish_window = [-1] * len(self.members)

    def final_metrics(self) -> dict:
        return {"member_finish_window": list(self.member_finish_window)}

    def next_window(self) -> WindowTraffic:
        groups: List[AccessGroup] = []
        compute = 0.0
        emitted = 0
        for i, member in enumerate(self.members):
            if member.done:
                continue
            traffic = member.next_window()
            for group in traffic.groups:
                groups.append(
                    AccessGroup(
                        pages=group.pages + self._offsets[i],
                        counts=group.counts,
                        mlp=group.mlp,
                        load_fraction=group.load_fraction,
                        label=f"{member.name}:{group.label}",
                    )
                )
            # Colocated processes run on separate cores; the shared-window
            # compute is the max of the members, not the sum.
            compute = max(compute, traffic.compute_cycles)
            emitted += traffic.total_misses()
            if member.done and self.member_finish_window[i] < 0:
                self.member_finish_window[i] = self._window
        self._consumed += emitted
        self._window += 1
        return WindowTraffic(
            groups=groups,
            compute_cycles=compute,
            done=all(m.done for m in self.members),
            phase=self.phase_name(),
        )

    def member_pages(self, index: int) -> np.ndarray:
        """All page ids belonging to member ``index``."""
        member = self.members[index]
        start = self._offsets[index]
        return np.arange(start, start + member.footprint_pages, dtype=np.int64)

    def _emit(self, budget: int, rng: np.random.Generator) -> List[AccessGroup]:
        raise NotImplementedError("ColocatedWorkload overrides next_window directly")

    def phase_name(self) -> str:
        running = sum(1 for m in self.members if not m.done)
        return f"{running}-running"
