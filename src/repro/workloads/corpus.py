"""The 96-workload corpus behind the per-tier stall model study (Fig. 2).

The paper validates Equation 1 against 96 memory-intensive workloads
spanning in-memory caching, graph processing, ML, and HPC, under three
latency configurations.  For the model study all that matters is a
*population* of (LLC-misses, MLP, stall) operating points with diverse
parallelism, skew, and compute intensity -- which the parameter grid
below provides: 8 MLP levels x 3 skews x 4 compute intensities = 96.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.hw.access import AccessGroup
from repro.mem.page import ObjectRegion
from repro.workloads.base import Workload, region_group, zipf_weights

MLP_LEVELS = (1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0)
SKEWS = (0.0, 0.8, 1.2)
COMPUTE_INTENSITIES = (15.0, 40.0, 120.0, 300.0)


class SyntheticCorpusWorkload(Workload):
    """One operating point of the corpus grid."""

    def __init__(
        self,
        mlp: float,
        skew: float,
        compute_cycles_per_miss: float,
        footprint_pages: int = 4_096,
        total_misses: int = 6_000_000,
        misses_per_window: int = 200_000,
        seed: int = 11,
    ):
        self.mlp = mlp
        self.skew = skew
        region = ObjectRegion("heap", 0, footprint_pages)
        super().__init__(
            name=f"corpus-mlp{mlp:g}-skew{skew:g}-c{compute_cycles_per_miss:g}",
            footprint_pages=footprint_pages,
            total_misses=total_misses,
            misses_per_window=misses_per_window,
            compute_cycles_per_miss=compute_cycles_per_miss,
            seed=seed,
            objects=[region],
        )
        if skew > 0:
            layout_rng = np.random.default_rng(seed + 1)
            self._weights = zipf_weights(footprint_pages, skew, layout_rng)
        else:
            self._weights = None

    def _emit(self, budget: int, rng: np.random.Generator) -> List[AccessGroup]:
        # Mild per-window MLP jitter keeps the counter paths honest.
        mlp = max(float(self.mlp * np.exp(rng.normal(0.0, 0.05))), 1.05)
        return [
            region_group(
                rng, self.objects[0], budget, mlp, weights=self._weights, label="heap"
            )
        ]


#: Traffic-volume multipliers cycled across the grid: real corpora span
#: a wide range of total miss volumes, which is what gives raw miss
#: counts their (imperfect) correlation with stalls in Figure 2.
_VOLUME_MULTIPLIERS = (0.4, 0.8, 1.5, 3.0)


def generate_corpus(seed: int = 11, **overrides) -> List[SyntheticCorpusWorkload]:
    """The full 96-workload grid, deterministically seeded."""
    corpus: List[SyntheticCorpusWorkload] = []
    base_total = int(overrides.pop("total_misses", 6_000_000))
    base_window = int(overrides.pop("misses_per_window", 200_000))
    index = 0
    for mlp in MLP_LEVELS:
        for skew in SKEWS:
            for compute in COMPUTE_INTENSITIES:
                volume = _VOLUME_MULTIPLIERS[index % len(_VOLUME_MULTIPLIERS)]
                corpus.append(
                    SyntheticCorpusWorkload(
                        mlp=mlp,
                        skew=skew,
                        compute_cycles_per_miss=compute,
                        total_misses=max(int(base_total * volume), 1),
                        misses_per_window=max(int(base_window * volume), 1),
                        seed=seed + index,
                        **overrides,
                    )
                )
                index += 1
    return corpus
