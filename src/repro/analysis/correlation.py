"""Model-fit analysis for the Figure 2 study.

Runs the workload corpus under each latency configuration, collects
(LLC-misses, MLP, stall) operating points from the counters, and
compares two predictors of LLC stalls:

* raw LLC-miss counts (the hotness world-view), and
* Equation 1, ``k * misses / MLP`` (the PAC model),

reporting the Pearson correlation of each against measured stalls.  The
paper finds r >= 0.98 for the model vs. 0.82-0.89 for raw misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.stats import pearson
from repro.common.units import TierSpec
from repro.core.calibration import CalibrationPoint, collect_points
from repro.core.pac import fit_k
from repro.mem.page import Tier
from repro.sim.config import MachineConfig
from repro.workloads.base import Workload


@dataclass
class ModelFitResult:
    """Fit quality of Equation 1 for one latency configuration."""

    config_name: str
    k_cycles: float
    pearson_model: float
    pearson_misses: float
    num_workloads: int
    num_points: int


def aggregate_per_workload(points: Sequence[CalibrationPoint]) -> List[CalibrationPoint]:
    """Sum per-window points into one operating point per workload,
    mirroring the paper's one-dot-per-workload presentation."""
    by_name = {}
    for p in points:
        acc = by_name.setdefault(
            p.workload,
            {"misses": 0.0, "stalls": 0.0, "misses_over_mlp": 0.0},
        )
        acc["misses"] += p.llc_misses
        acc["stalls"] += p.stall_cycles
        acc["misses_over_mlp"] += p.llc_misses / p.mlp
    out = []
    for name, acc in by_name.items():
        mlp = acc["misses"] / acc["misses_over_mlp"] if acc["misses_over_mlp"] > 0 else 1.0
        out.append(
            CalibrationPoint(
                workload=name,
                llc_misses=acc["misses"],
                mlp=mlp,
                stall_cycles=acc["stalls"],
            )
        )
    return out


def evaluate_stall_model(
    workloads: Sequence[Workload],
    slow_spec: TierSpec,
    base_config: Optional[MachineConfig] = None,
    max_windows_each: int = 25,
    seed: int = 0,
) -> ModelFitResult:
    """Fit and score Equation 1 with the corpus pinned to ``slow_spec``."""
    config = (base_config or MachineConfig()).with_(slow_spec=slow_spec)
    raw_points = collect_points(
        workloads, config=config, tier=Tier.SLOW, max_windows_each=max_windows_each, seed=seed
    )
    points = aggregate_per_workload(raw_points)
    x_model = [p.misses_over_mlp for p in points]
    x_misses = [p.llc_misses for p in points]
    y = [p.stall_cycles for p in points]
    k = fit_k(x_model, y)
    return ModelFitResult(
        config_name=slow_spec.name,
        k_cycles=k,
        pearson_model=pearson(x_model, y),
        pearson_misses=pearson(x_misses, y),
        num_workloads=len(points),
        num_points=len(raw_points),
    )
