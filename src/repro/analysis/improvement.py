"""Cross-workload improvement aggregation (Figure 7's CDFs).

Given per-(workload, policy) slowdowns at a tier ratio, computes PACT's
relative runtime improvement over each competing system and the
empirical CDF of those improvements, as the paper reports in §5.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.common.stats import cdf_points
from repro.sim.metrics import improvement


@dataclass
class ImprovementSummary:
    """PACT-vs-one-competitor improvements across a workload suite."""

    competitor: str
    improvements: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.improvements)) if self.improvements else 0.0

    @property
    def max(self) -> float:
        return float(np.max(self.improvements)) if self.improvements else 0.0

    @property
    def min(self) -> float:
        return float(np.min(self.improvements)) if self.improvements else 0.0

    def cdf(self) -> "tuple[np.ndarray, np.ndarray]":
        return cdf_points(self.improvements)


def summarize_improvements(
    slowdowns: Dict[str, Dict[str, float]],
    subject: str = "PACT",
    competitors: Sequence[str] = ("Colloid", "NBT", "Memtis"),
) -> Dict[str, ImprovementSummary]:
    """Build per-competitor improvement summaries.

    ``slowdowns`` maps workload -> {policy -> slowdown vs ideal}.
    """
    summaries = {name: ImprovementSummary(name) for name in competitors}
    for workload, by_policy in slowdowns.items():
        if subject not in by_policy:
            raise ValueError(f"missing {subject} result for {workload}")
        own = by_policy[subject]
        for name in competitors:
            if name in by_policy:
                summaries[name].improvements.append(improvement(own, by_policy[name]))
    return summaries


def pooled_improvements(summaries: Dict[str, ImprovementSummary]) -> ImprovementSummary:
    """All competitors pooled into one distribution (Figure 7a)."""
    pooled = ImprovementSummary("all")
    for summary in summaries.values():
        pooled.improvements.extend(summary.improvements)
    return pooled
