"""Grid-sweep compatibility layer over :mod:`repro.exp`.

``run_sweep`` keeps the historical (workload x policy x ratio) call
shape the benches and CLI grew up with, but is now a thin declaration:
it builds an :class:`ExperimentSpec`, hands it to the experiment runner
(content-addressed caching, optional multiprocess fan-out), and folds
the indexed results back into the flat :class:`SweepResult` tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.exp.runner import run_experiment
from repro.exp.spec import ExperimentSpec, PolicySpec, WorkloadSpec
from repro.sim.config import MachineConfig
from repro.workloads.base import Workload

WorkloadFactory = Callable[[], Workload]


@dataclass
class SweepCell:
    """One (workload, policy, ratio) outcome."""

    workload: str
    policy: str
    ratio: str
    slowdown: float
    promoted: int
    demoted: int
    runtime_ms: float


@dataclass
class SweepResult:
    """Full grid of outcomes plus reference lines."""

    cells: List[SweepCell] = field(default_factory=list)
    #: Slowdown of the all-slow-tier run per workload (the 'CXL' line).
    slow_only: Dict[str, float] = field(default_factory=dict)

    def cell(self, workload: str, policy: str, ratio: str) -> SweepCell:
        for c in self.cells:
            if c.workload == workload and c.policy == policy and c.ratio == ratio:
                return c
        raise KeyError((workload, policy, ratio))

    def slowdown_table(self, ratio: str) -> Dict[str, Dict[str, float]]:
        """workload -> {policy -> slowdown} at one ratio."""
        table: Dict[str, Dict[str, float]] = {}
        for c in self.cells:
            if c.ratio == ratio:
                table.setdefault(c.workload, {})[c.policy] = c.slowdown
        return table

    def promotions_table(self, workload: str) -> Dict[str, Dict[str, int]]:
        """policy -> {ratio -> promotions} for one workload (Table 2)."""
        table: Dict[str, Dict[str, int]] = {}
        for c in self.cells:
            if c.workload == workload:
                table.setdefault(c.policy, {})[c.ratio] = c.promoted
        return table


def run_sweep(
    workload_factories: Dict[str, Union[WorkloadFactory, WorkloadSpec, str]],
    policies: Sequence[str],
    ratios: Sequence[str],
    config: Optional[MachineConfig] = None,
    seed: int = 0,
    policy_kwargs: Optional[Dict[str, dict]] = None,
    jobs: Optional[int] = None,
    use_cache: bool = True,
) -> SweepResult:
    """Run the full grid; policies are instantiated fresh per run."""
    from repro.exp.spec import normalise_workloads

    policy_kwargs = policy_kwargs or {}
    spec = ExperimentSpec(
        # Normalised up front so every expansion shares one spec object
        # per workload (and thus one cached fingerprint).
        workloads=normalise_workloads(workload_factories),
        policies=[PolicySpec(p, dict(policy_kwargs.get(p, {}))) for p in policies],
        ratios=list(ratios),
        seeds=(seed,),
        config=config,
    )
    exp = run_experiment(spec, jobs=jobs, use_cache=use_cache)

    result = SweepResult()
    for wspec in spec.workload_specs():
        wname = wspec.display
        baseline = exp.baseline(wname, seed=seed)
        result.slow_only[wname] = exp.slow_only(wname, seed=seed).slowdown(baseline)
        for ratio in ratios:
            for pname in policies:
                run = exp.find(workload=wname, policy=pname, ratio=ratio, seed=seed)
                result.cells.append(
                    SweepCell(
                        workload=wname,
                        policy=pname,
                        ratio=ratio,
                        slowdown=run.slowdown(baseline),
                        promoted=run.promoted,
                        demoted=run.demoted,
                        runtime_ms=run.runtime_ms,
                    )
                )
    return result
