"""Experiment sweep driver shared by the benchmark harness.

Runs (workload x policy x ratio) grids against cached ideal baselines
and returns slowdown/migration tables the benches print in the shape of
the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines import make_policy
from repro.sim.config import MachineConfig
from repro.sim.engine import ideal_baseline, run_policy, slow_only_run
from repro.sim.metrics import RunResult
from repro.workloads.base import Workload

WorkloadFactory = Callable[[], Workload]


@dataclass
class SweepCell:
    """One (workload, policy, ratio) outcome."""

    workload: str
    policy: str
    ratio: str
    slowdown: float
    promoted: int
    demoted: int
    runtime_ms: float


@dataclass
class SweepResult:
    """Full grid of outcomes plus reference lines."""

    cells: List[SweepCell] = field(default_factory=list)
    #: Slowdown of the all-slow-tier run per workload (the 'CXL' line).
    slow_only: Dict[str, float] = field(default_factory=dict)

    def cell(self, workload: str, policy: str, ratio: str) -> SweepCell:
        for c in self.cells:
            if c.workload == workload and c.policy == policy and c.ratio == ratio:
                return c
        raise KeyError((workload, policy, ratio))

    def slowdown_table(self, ratio: str) -> Dict[str, Dict[str, float]]:
        """workload -> {policy -> slowdown} at one ratio."""
        table: Dict[str, Dict[str, float]] = {}
        for c in self.cells:
            if c.ratio == ratio:
                table.setdefault(c.workload, {})[c.policy] = c.slowdown
        return table

    def promotions_table(self, workload: str) -> Dict[str, Dict[str, int]]:
        """policy -> {ratio -> promotions} for one workload (Table 2)."""
        table: Dict[str, Dict[str, int]] = {}
        for c in self.cells:
            if c.workload == workload:
                table.setdefault(c.policy, {})[c.ratio] = c.promoted
        return table


def run_sweep(
    workload_factories: Dict[str, WorkloadFactory],
    policies: Sequence[str],
    ratios: Sequence[str],
    config: Optional[MachineConfig] = None,
    seed: int = 0,
    policy_kwargs: Optional[Dict[str, dict]] = None,
) -> SweepResult:
    """Run the full grid; policies are instantiated fresh per run."""
    config = config if config is not None else MachineConfig()
    policy_kwargs = policy_kwargs or {}
    result = SweepResult()
    for wname, factory in workload_factories.items():
        workload = factory()
        baseline = ideal_baseline(workload, config=config, seed=seed)
        slow = slow_only_run(workload, config=config, seed=seed)
        result.slow_only[wname] = slow.slowdown(baseline)
        for ratio in ratios:
            for pname in policies:
                policy = make_policy(pname, **policy_kwargs.get(pname, {}))
                run = run_policy(
                    workload, policy, ratio=ratio, config=config, seed=seed
                )
                result.cells.append(
                    SweepCell(
                        workload=wname,
                        policy=pname,
                        ratio=ratio,
                        slowdown=run.slowdown(baseline),
                        promoted=run.promoted,
                        demoted=run.demoted,
                        runtime_ms=run.runtime_ms,
                    )
                )
    return result
