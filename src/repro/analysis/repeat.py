"""Multi-seed repetition: slowdown means and confidence intervals.

The simulator is stochastic (PEBS sampling, counter noise, workload
draws); single runs carry seed noise.  ``repeat_runs`` replays one
experiment across seeds and summarises slowdown/migration statistics so
comparisons can be made with error bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.exp.runner import run_experiment
from repro.exp.spec import ExperimentSpec, PolicySpec, normalise_workloads
from repro.sim.config import MachineConfig
from repro.workloads.base import Workload

#: Two-sided 95% normal quantile (seeds are cheap; t-corrections are
#: overkill at the n we run).
_Z95 = 1.96


@dataclass
class RepeatedResult:
    """Seed-replicated statistics for one (workload, policy, ratio)."""

    workload: str
    policy: str
    ratio: str
    slowdowns: np.ndarray
    promotions: np.ndarray

    @property
    def n(self) -> int:
        return int(self.slowdowns.size)

    @property
    def mean_slowdown(self) -> float:
        return float(self.slowdowns.mean())

    @property
    def std_slowdown(self) -> float:
        return float(self.slowdowns.std(ddof=1)) if self.n > 1 else 0.0

    @property
    def ci95_slowdown(self) -> float:
        """Half-width of the 95% confidence interval on the mean."""
        if self.n < 2:
            return 0.0
        return _Z95 * self.std_slowdown / math.sqrt(self.n)

    @property
    def mean_promotions(self) -> float:
        return float(self.promotions.mean())

    def summary(self) -> str:
        return (
            f"{self.policy} on {self.workload} @{self.ratio}: "
            f"{self.mean_slowdown:.3f} ± {self.ci95_slowdown:.3f} "
            f"(n={self.n}, promotions ~{self.mean_promotions:.0f})"
        )


def repeat_runs(
    workload_factory: Callable[[], Workload],
    policy_name: str,
    ratio: str = "1:1",
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    config: Optional[MachineConfig] = None,
    policy_kwargs: Optional[dict] = None,
    jobs: Optional[int] = None,
    use_cache: bool = True,
) -> RepeatedResult:
    """Run one experiment across seeds and collect statistics.

    Each seed reseeds both the machine's stochastic components and the
    baseline used for normalisation, so the slowdown samples are i.i.d.
    draws of the whole pipeline.  Seeds are just another grid axis of
    the experiment layer, so replications cache individually and can run
    in parallel.
    """
    policy_kwargs = policy_kwargs or {}
    (wspec,) = normalise_workloads([workload_factory])
    spec = ExperimentSpec(
        workloads=[wspec],
        policies=[PolicySpec(policy_name, dict(policy_kwargs))],
        ratios=(ratio,),
        seeds=tuple(seeds),
        config=config,
        include_slow_only=False,
    )
    exp = run_experiment(spec, jobs=jobs, use_cache=use_cache)
    slowdowns, promotions = [], []
    workload_name = ratio_name = None
    for seed in seeds:
        result = exp.find(
            workload=wspec.display, policy=policy_name, ratio=ratio, seed=seed
        )
        slowdowns.append(result.slowdown(exp.baseline(wspec.display, seed=seed)))
        promotions.append(result.promoted)
        workload_name = result.workload
        ratio_name = result.ratio
    return RepeatedResult(
        workload=workload_name,
        policy=policy_name,
        ratio=ratio_name,
        slowdowns=np.asarray(slowdowns, dtype=float),
        promotions=np.asarray(promotions, dtype=float),
    )


def significantly_better(a: RepeatedResult, b: RepeatedResult) -> bool:
    """Welch-style check: is ``a``'s mean slowdown below ``b``'s beyond
    the combined 95% uncertainty?"""
    gap = b.mean_slowdown - a.mean_slowdown
    noise = math.sqrt(a.ci95_slowdown**2 + b.ci95_slowdown**2)
    return gap > noise
