"""Analysis helpers: model fits, improvement CDFs, experiment sweeps."""

from repro.analysis.correlation import (
    ModelFitResult,
    aggregate_per_workload,
    evaluate_stall_model,
)
from repro.analysis.improvement import (
    ImprovementSummary,
    pooled_improvements,
    summarize_improvements,
)
from repro.analysis.repeat import RepeatedResult, repeat_runs, significantly_better
from repro.analysis.sweep import SweepCell, SweepResult, run_sweep

__all__ = [
    "ImprovementSummary",
    "ModelFitResult",
    "RepeatedResult",
    "SweepCell",
    "SweepResult",
    "aggregate_per_workload",
    "evaluate_stall_model",
    "pooled_improvements",
    "repeat_runs",
    "run_sweep",
    "significantly_better",
    "summarize_improvements",
]
