"""CHA/TOR occupancy counters and MLP estimation helpers.

Intel's Caching-and-Home-Agent sits between the cores and each memory
tier; its Table-Of-Requests (TOR) tracks outstanding offcore requests.
The paper's key observation (§4.2.2, Takeaway #3) is that two uncore
counters recover *per-tier* MLP:

* ``T1 = TOR_OCCUPANCY``          -- integral of in-flight entries over cycles,
* ``T2 = TOR_OCCUPANCY_COUNTER0`` -- cycles with at least one entry,

so ``MLP = dT1 / dT2`` is the average number of in-flight requests per
active cycle.

In the simulator, each request occupies a TOR entry for its effective
latency, so a share of ``m`` misses at latency ``L`` and parallelism
``mlp`` contributes ``m * L`` occupancy-cycles and ``m * L / mlp`` busy
cycles.  Multiplicative measurement noise is applied so the estimation
pipeline downstream is exercised with realistic counter jitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.common.units import CACHE_LINE_SIZE
from repro.hw.stall import GroupTierShare, ShareBatch
from repro.mem.page import Tier, tier_key

#: Default relative standard deviation of counter measurement noise.
DEFAULT_COUNTER_NOISE = 0.01


@dataclass
class TorSnapshot:
    """Cumulative (T1, T2) values per tier at one instant."""

    occupancy: Dict[Tier, float]
    busy_cycles: Dict[Tier, float]

    def mlp_since(self, earlier: "TorSnapshot", tier: Tier) -> float:
        """Per-tier MLP from counter deltas (Algorithm 1, line 1)."""
        d_occ = self.occupancy[tier] - earlier.occupancy[tier]
        d_busy = self.busy_cycles[tier] - earlier.busy_cycles[tier]
        if d_busy <= 0.0:
            return 1.0
        return max(d_occ / d_busy, 1.0)


class ChaTorCounters:
    """Cumulative TOR occupancy counters, one pair per tier."""

    def __init__(
        self,
        noise: float = DEFAULT_COUNTER_NOISE,
        rng: Optional[np.random.Generator] = None,
        num_tiers: int = 2,
    ):
        self.noise = noise
        self._rng = rng if rng is not None else np.random.default_rng(0)
        #: Optional whole-run jitter stream (:mod:`repro.hw.drawplan`):
        #: serves the same generator's draws chunk-buffered, so the
        #: counter values stay bit-identical to the unplanned path.
        self._jitter_stream = None
        tiers = [tier_key(t) for t in range(num_tiers)]
        self._occupancy = {t: 0.0 for t in tiers}
        self._busy = {t: 0.0 for t in tiers}

    def attach_jitter_stream(self, stream) -> None:
        self._jitter_stream = stream

    def advance(
        self, shares: Sequence[GroupTierShare], jitter: Optional[np.ndarray] = None
    ) -> None:
        """Account one window's traffic into the cumulative counters.

        ``jitter``, when given, supplies the window's multiplicative
        noise factors as an ``(n, 2)`` array (occ, busy per row) in
        place of this counter's own stream draws -- the schema-2 keyed
        path (:mod:`repro.hw.substream`) computes factors per
        (group, tier) cell and gathers the rows' pairs.
        """
        if isinstance(shares, ShareBatch):
            self._advance_batch(shares, jitter=jitter)
            return
        for share in shares:
            occ = share.misses * _share_latency(share)
            busy = occ / share.mlp
            self._occupancy[share.tier] += occ * self._jitter()
            self._busy[share.tier] += busy * self._jitter()

    def _advance_batch(self, batch: ShareBatch, jitter: Optional[np.ndarray] = None) -> None:
        """Columnar path: vectorised math and jitter draws, ordered sums.

        The elementwise arithmetic and the noise draws are batched (one
        ``normal`` call covers the per-share scalar draws: numpy's
        generator consumes its stream identically either way, occ/busy
        interleaved row-major).  The final accumulation stays a scalar
        per-share loop in row order: the counters are *cumulative*, so
        summing a window's contribution first and adding it once would
        round differently from the legacy one-share-at-a-time adds.
        """
        n = batch.n
        if n == 0:
            return
        lat = batch.unit_stall_cycles * batch.mlp
        occ = batch.misses_f * lat
        busy = occ / batch.mlp
        if jitter is not None:
            occ = occ * jitter[:, 0]
            busy = busy * jitter[:, 1]
        elif self.noise > 0.0:
            if self._jitter_stream is not None:
                # The live draw is row-major (occ_0, busy_0, occ_1, ...);
                # a flat take of 2n reshaped the same way serves the
                # identical values from the buffered stream.
                jitter = self._jitter_stream.take(2 * n).reshape(n, 2)
            else:
                jitter = np.exp(self._rng.normal(0.0, self.noise, size=(n, 2)))
            occ = occ * jitter[:, 0]
            busy = busy * jitter[:, 1]
        tiers = batch.tiers
        for i in range(n):
            tier = tiers[i]
            self._occupancy[tier] += float(occ[i])
            self._busy[tier] += float(busy[i])

    def read(self) -> TorSnapshot:
        """Snapshot the cumulative counters (as perf would read them)."""
        return TorSnapshot(occupancy=dict(self._occupancy), busy_cycles=dict(self._busy))

    def _jitter(self) -> float:
        if self.noise <= 0.0:
            return 1.0
        if self._jitter_stream is not None:
            return float(self._jitter_stream.take(1)[0])
        return float(np.exp(self._rng.normal(0.0, self.noise)))


def littles_law_mlp(bytes_on_link: float, latency_ns: float, duration_ns: float) -> float:
    """AMD-path MLP estimate: ``MLP ~ latency * bandwidth / 64B`` (§4.2.2).

    This applies Little's Law to the link: in-flight lines = arrival rate
    (lines/ns) * latency (ns).  It *overestimates* demand MLP because
    ``bytes_on_link`` includes prefetch traffic -- the same bias the
    paper shows for the gray line of Figure 3.
    """
    if duration_ns <= 0.0:
        return 1.0
    lines_per_ns = bytes_on_link / CACHE_LINE_SIZE / duration_ns
    return max(lines_per_ns * latency_ns, 1.0)


def _share_latency(share: GroupTierShare) -> float:
    """Effective per-request latency in cycles for a solved share."""
    return share.unit_stall_cycles * share.mlp
