"""Schema-2 counter-keyed RNG substreams for hardware observation.

Schema 1 (the default) draws every stochastic hardware signal from
sequential per-subsystem generator streams: each draw's value depends
on its *position*, i.e. on every draw before it.  That makes PEBS
sampling unplannable for dynamic policies -- the thinning draws are
sequenced per (group, tier) share, and which shares exist depends on
placement, which depends on every previous policy decision.

Schema 2 keys each draw by *identity* instead: a Philox generator keyed
by (seed, purpose) with the window index in the counter word
(:func:`repro.common.rngutil.philox_key` /
:func:`~repro.common.rngutil.keyed_generator`).  Per window, each
consumer draws its full canonical entry set in one vectorized pass:

* **PEBS** draws the two-stage thinning (load-fraction thin, then
  1-in-``rate`` record thin) for *every* trace entry of the window, in
  trace order, regardless of tier placement.  Per-window sampling then
  collapses to a placement gather (which entries live in a sampled
  tier?) plus the usual duplicate-page merge.
* **CHA jitter** draws one (occupancy, busy) factor pair per
  (group, tier) cell of the window; rows of the solved share batch
  gather their pair by ``group_index * T + tier_code``.
* **perf jitter** draws one (miss, stall) factor pair per tier.

Because the entry sets are trace-determined (placement only selects,
never reorders or resizes them), every draw of a replayed run is
computable at attach time, for any policy -- that is what
:mod:`repro.hw.drawplan` prestages.  The live fallback draws the same
keyed substreams window by window, so prestaged and live schema-2 runs
are bit-identical by construction, and draws are invariant to chunk
size, window order, and multi-run grouping.  Policies compared under
the same seed see *common random numbers*: identical PEBS thinning and
jitter draws wherever their placements agree.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.common.rngutil import keyed_generator, philox_key
from repro.hw.pebs import PebsBatch, _strictly_increasing
from repro.hw.stall import ShareBatch


def entry_load_fractions(groups: Sequence) -> np.ndarray:
    """Per-entry load fractions for a window's groups, in trace order."""
    if len(groups) == 1:
        g = groups[0]
        return np.full(g.pages.size, g.load_fraction, dtype=np.float64)
    return np.repeat(
        np.asarray([g.load_fraction for g in groups], dtype=np.float64),
        [g.pages.size for g in groups],
    )


def entry_group_indices(groups: Sequence) -> np.ndarray:
    """Window-local group index of each entry, in trace order."""
    if len(groups) == 1:
        return np.zeros(groups[0].pages.size, dtype=np.int64)
    return np.repeat(
        np.arange(len(groups), dtype=np.int64),
        [g.pages.size for g in groups],
    )


class KeyedPebsSampler:
    """Keyed two-stage PEBS thinning over a window's full entry set.

    The draw stage (:meth:`window_records`) is decision-independent: it
    consumes only trace-determined inputs (entry counts and load
    fractions, canonical trace order) and the window's keyed substream.
    The merge stage (:meth:`merge_window`) applies the policy-dependent
    part -- a placement gather selecting entries resident in a sampled
    tier -- and merges duplicate pages exactly like the schema-1 path.
    """

    __slots__ = (
        "rate",
        "cycles_per_record",
        "loads_only",
        "report_latency",
        "_key",
        "_rate_p",
        "_code_mask",
        "_all_codes",
    )

    def __init__(
        self,
        seed: int,
        rate: int,
        cycles_per_record: float,
        sampled_codes: Sequence[int],
        num_tiers: int,
        loads_only: bool = True,
        report_latency: bool = False,
    ):
        if rate < 1:
            raise ValueError("PEBS rate must be >= 1")
        self.rate = rate
        self.cycles_per_record = cycles_per_record
        self.loads_only = loads_only
        self.report_latency = report_latency
        self._key = philox_key(seed, "pebs")
        self._rate_p = 1.0 / rate
        #: Boolean lookup table over tier codes: True where the policy
        #: samples that tier.
        mask = np.zeros(num_tiers, dtype=bool)
        for code in sampled_codes:
            mask[int(code)] = True
        self._code_mask = mask
        self._all_codes = bool(mask.all())

    def window_records(
        self, window: int, counts: np.ndarray, lf_entries: Optional[np.ndarray]
    ) -> np.ndarray:
        """Draw the window's records for *all* entries, in trace order.

        ``lf_entries`` is only consulted when ``loads_only`` is set.
        Each window gets a fresh generator keyed by (seed, "pebs") at
        counter position ``window``, so the draw depends only on the
        window's own entry set -- never on other windows, the order
        they are drawn in, or which run of a multi-run group asks.
        """
        rng = keyed_generator(self._key, window)
        if self.loads_only:
            counts = rng.binomial(counts, lf_entries)
        return rng.binomial(counts, self._rate_p)

    def merge_window(
        self,
        records: np.ndarray,
        pages: np.ndarray,
        placement: np.ndarray,
        batch: Optional[ShareBatch] = None,
        entry_groups: Optional[np.ndarray] = None,
        tier_of: Optional[np.ndarray] = None,
    ) -> PebsBatch:
        """Select sampled-tier entries and merge duplicates into a batch.

        ``batch``/``entry_groups`` are only needed for TPEBS-style
        latency reporting: each selected entry's exposed latency is its
        share's solved unit stall cost, looked up by (group, tier).
        ``tier_of`` optionally passes the caller's ``placement[pages]``
        gather for the same window, skipping a second one.
        """
        if pages.size == 0:
            return PebsBatch.empty(self.rate)
        if tier_of is None:
            tier_of = placement[pages]
        sel = self._code_mask[tier_of]
        np.logical_and(sel, records > 0, out=sel)
        pages_sel = pages[sel]
        if pages_sel.size == 0:
            return PebsBatch.empty(self.rate)
        recs = records[sel]
        lat = None
        if self.report_latency and batch is not None:
            T = int(self._code_mask.size)
            unit_lut = np.zeros(
                (int(batch.group_index.max(initial=-1)) + 1) * T
                if batch.n
                else T,
                dtype=np.float64,
            )
            unit_lut[
                np.asarray(batch.group_index, dtype=np.int64) * T
                + np.asarray(batch.tier_codes, dtype=np.int64)
            ] = batch.unit_stall_cycles
            lat = unit_lut[entry_groups[sel] * T + tier_of[sel]]
        if _strictly_increasing(pages_sel):
            uniq = pages_sel
            merged = recs
            latencies = None
            if lat is not None:
                latencies = (lat * merged) / np.maximum(merged, 1)
        else:
            uniq, inverse = np.unique(pages_sel, return_inverse=True)
            merged = np.bincount(inverse, weights=recs, minlength=uniq.size).astype(
                np.int64
            )
            latencies = None
            if lat is not None:
                weighted = np.bincount(
                    inverse, weights=lat * recs, minlength=uniq.size
                )
                latencies = weighted / np.maximum(merged, 1)
        return PebsBatch(
            pages=uniq,
            counts=merged,
            rate=self.rate,
            overhead_cycles=int(merged.sum()) * self.cycles_per_record,
            latencies=latencies,
        )

    def merge_window_pos(
        self,
        pos_idx: np.ndarray,
        pages_pos: np.ndarray,
        recs_pos: np.ndarray,
        tier_of: np.ndarray,
        sorted_unique: bool,
    ) -> PebsBatch:
        """:meth:`merge_window` over a prestaged positive-record subset.

        ``pos_idx``/``pages_pos``/``recs_pos`` are the window's entries
        with record > 0, in trace order
        (:class:`repro.hw.drawplan.PebsPosPlan`); ``tier_of`` is the
        caller's full-window ``placement[pages]`` gather.  Selecting
        sampled-tier entries from this subset visits the same entries
        in the same order as the full-window mask, so the merged batch
        is bit-identical -- the work just scales with the records that
        exist instead of the entries that might have had one.  Only for
        non-latency-reporting samplers (the latency path needs per-entry
        group indices against the solved shares).
        """
        if pages_pos.size == 0:
            return PebsBatch.empty(self.rate)
        if self._all_codes:
            # Every tier is sampled: tier selection is a no-op (matching
            # the full mask's behaviour for any tier value, -1 included).
            pages_sel = pages_pos
            recs = recs_pos
        else:
            sel = self._code_mask[tier_of[pos_idx]]
            pages_sel = pages_pos[sel]
            if pages_sel.size == 0:
                return PebsBatch.empty(self.rate)
            recs = recs_pos[sel]
        if sorted_unique or _strictly_increasing(pages_sel):
            uniq = pages_sel
            merged = recs
        else:
            uniq, inverse = np.unique(pages_sel, return_inverse=True)
            merged = np.bincount(inverse, weights=recs, minlength=uniq.size).astype(
                np.int64
            )
        return PebsBatch(
            pages=uniq,
            counts=merged,
            rate=self.rate,
            overhead_cycles=int(merged.sum()) * self.cycles_per_record,
            latencies=None,
        )


class KeyedJitter:
    """Keyed multiplicative jitter factors, one substream per window.

    Serves ``exp(Normal(0, noise))`` factors whose values depend only
    on (seed, purpose, window, position-in-window).  ``prestage``
    freezes the whole run's draws into one flat tensor (the per-window
    sizes are trace-determined); :meth:`window_values` then slices
    instead of drawing -- bit-identical by construction, since both
    paths evaluate the same keyed generator over the same sizes.
    """

    __slots__ = ("noise", "_key", "_plan_values", "_plan_ptr")

    def __init__(self, seed: int, purpose: str, noise: float):
        if noise <= 0.0:
            raise ValueError("keyed jitter needs a positive noise scale")
        self.noise = noise
        self._key = philox_key(seed, purpose)
        self._plan_values: Optional[np.ndarray] = None
        self._plan_ptr: Optional[np.ndarray] = None

    def window_values(self, window: int, n: int) -> np.ndarray:
        if self._plan_values is not None:
            return self._plan_values[self._plan_ptr[window] : self._plan_ptr[window + 1]]
        return self._draw(window, n)

    def _draw(self, window: int, n: int) -> np.ndarray:
        return np.exp(keyed_generator(self._key, window).normal(0.0, self.noise, size=n))

    def prestage(self, sizes_per_window: np.ndarray) -> None:
        """Draw every window's factors now; later calls serve slices."""
        sizes = np.asarray(sizes_per_window, dtype=np.int64)
        chunks: List[np.ndarray] = []
        for w in range(sizes.size):
            n = int(sizes[w])
            if n > 0:
                chunks.append(self._draw(w, n))
        self._plan_ptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(sizes, dtype=np.int64)]
        )
        self._plan_values = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.float64)
        )


class PebsRecordPlan:
    """Whole-run prestaged keyed PEBS records, aligned with trace entries."""

    __slots__ = ("_records", "_ptr")

    def __init__(self, records: np.ndarray, entry_ptr: np.ndarray):
        self._records = records
        self._ptr = entry_ptr

    def window_records(self, window: int) -> np.ndarray:
        return self._records[self._ptr[window] : self._ptr[window + 1]]


def plan_keyed_records(sampler: KeyedPebsSampler, data) -> PebsRecordPlan:
    """Draw the whole run's keyed PEBS records from the trace columns.

    For each recorded window this calls the very same
    :meth:`KeyedPebsSampler.window_records` the live fallback calls,
    over the very same trace-order entry slices, so the prestaged
    tensor is bit-identical to live per-window draws.
    """
    c = data.columns
    wgp = np.asarray(c["window_group_ptr"])
    gpp = np.asarray(c["group_page_ptr"])
    counts = np.asarray(c["counts"])
    lf_col = np.asarray(c["group_load_fraction"])
    num_windows = wgp.size - 1
    entry_ptr = np.asarray(gpp[wgp], dtype=np.int64)
    chunks: List[np.ndarray] = []
    for w in range(num_windows):
        e0, e1 = int(entry_ptr[w]), int(entry_ptr[w + 1])
        if e1 == e0:
            continue
        g0, g1 = int(wgp[w]), int(wgp[w + 1])
        lf = (
            np.repeat(lf_col[g0:g1], np.diff(gpp[g0 : g1 + 1]))
            if sampler.loads_only
            else None
        )
        chunks.append(sampler.window_records(w, counts[e0:e1], lf))
    records = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    return PebsRecordPlan(records, entry_ptr)


__all__ = [
    "KeyedJitter",
    "KeyedPebsSampler",
    "PebsRecordPlan",
    "entry_group_indices",
    "entry_load_fractions",
    "plan_keyed_records",
]
