"""Whole-run RNG draw plans for replayed traffic streams.

Once a traffic stream is recorded (:mod:`repro.workloads.tracestore`),
every hardware consumer's per-window work is knowable ahead of the run:
the CHA and perf counters draw a fixed number of jitter normals per
share/tier, and -- for *static-placement* policies -- the (group, tier)
share split itself never changes after preallocation.  This module
exploits both:

* :class:`NormalDrawStream` buffers a consumer's normal draws in large
  chunks.  numpy's ``Generator.normal(size=k)`` consumes its bit stream
  exactly like ``k`` sequential scalar calls, and any prefix of a
  vector draw equals the same-length smaller draw, so chunked buffering
  is **bit-identical** to the live per-call draws for any chunk size --
  the stream just pays the C-dispatch cost once per chunk instead of
  once per value.  Each stream owns its generator exclusively; values
  drawn past the run's end are simply never observed.
* :func:`build_static_batches` pre-splits the *whole run's* recorded
  CSR columns by (window, group, tier) in one vectorised pass and hands
  every window a pre-sliced :class:`~repro.hw.stall.ShareBatch` view --
  rows in the exact legacy order (per group: tier 0 then tier 1, ...),
  so solver, PEBS, CHA, and trace consumers see byte-identical inputs.
* :func:`plan_pebs_batches` / :func:`plan_chmu_batches` precompute each
  window's sampled :class:`~repro.hw.pebs.PebsBatch` from the static
  split, walking the shares in the same order (and, for PEBS, drawing
  from the same generator in the same sequence) as the live path.

Under RNG schema 2 (:mod:`repro.hw.substream`) the sequenced-stream
constraint disappears entirely: sampler and jitter draws are keyed by
(seed, purpose, window) and cover trace-determined entry sets, so
:func:`_attach_keyed` prestages the *whole run's* PEBS/CHA/perf draw
tensors at attach time for **any** policy, dynamic ones included --
only the per-window placement gather and merge stay in the loop (and
for static placements even those fold into a finished-batch plan).

The plans engage automatically when a :class:`Machine` is driven by a
non-looping :class:`~repro.workloads.tracestore.ReplayWorkload`; the
static-split and sampler plans additionally require the policy to
declare :attr:`~repro.sim.policy_api.TieringPolicy.static_placement`.
Set ``REPRO_NO_DRAWPLAN=1`` to force the live per-window paths.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

import numpy as np

from repro.hw.pebs import PebsBatch, PebsSampler
from repro.hw.stall import ShareBatch

#: Environment switch: any non-empty value disables all draw plans.
ENV_DISABLE = "REPRO_NO_DRAWPLAN"

#: Default chunk size (draws per refill) for buffered normal streams.
DEFAULT_CHUNK = 8192


def plans_enabled() -> bool:
    return not os.environ.get(ENV_DISABLE, "")


class NormalDrawStream:
    """Chunk-buffered ``exp(Normal(0, scale))`` jitter factors.

    Serves the exact value sequence that repeated scalar (or small
    vector) ``exp(rng.normal(0, scale, ...))`` calls on the same
    generator would produce: the generator's bit stream is consumed
    identically, and ``np.exp`` is elementwise, so chunking changes
    neither the draws nor their rounding.
    """

    __slots__ = ("_rng", "scale", "chunk", "_buf", "_pos")

    def __init__(self, rng: np.random.Generator, scale: float, chunk: int = DEFAULT_CHUNK):
        if scale <= 0.0:
            raise ValueError("jitter stream needs a positive noise scale")
        self._rng = rng
        self.scale = scale
        self.chunk = max(int(chunk), 1)
        self._buf = np.empty(0, dtype=np.float64)
        self._pos = 0

    def take(self, n: int) -> np.ndarray:
        """The next ``n`` jitter factors (a read-only-by-convention view)."""
        end = self._pos + n
        if end > self._buf.size:
            self._refill(n)
            end = n
        out = self._buf[self._pos : end]
        self._pos = end
        return out

    def _refill(self, need: int) -> None:
        leftover = self._buf[self._pos :]
        fresh = np.exp(
            self._rng.normal(0.0, self.scale, size=max(self.chunk, need - leftover.size))
        )
        self._buf = np.concatenate([leftover, fresh]) if leftover.size else fresh
        self._pos = 0


def _empty_share_batch(num_tiers: int) -> ShareBatch:
    return ShareBatch(
        n=0,
        group_index=np.empty(0, dtype=np.int64),
        tier_codes=np.empty(0, dtype=np.intp),
        mlp=np.empty(0, dtype=np.float64),
        load_fraction=np.empty(0, dtype=np.float64),
        misses=np.empty(0, dtype=np.int64),
        offsets=np.zeros(1, dtype=np.int64),
        pages_buf=np.empty(0, dtype=np.int64),
        counts_buf=np.empty(0, dtype=np.int64),
        labels=[],
        unit_stall_cycles=np.empty(0, dtype=np.float64),
        stall_scratch=np.empty(0, dtype=np.float64),
        num_tiers=num_tiers,
    )


def build_static_batches(
    data, placement: np.ndarray, num_tiers: int
) -> List[Optional[ShareBatch]]:
    """Pre-split every recorded window by a *frozen* placement.

    One stable argsort of the whole trace's entries by (group, tier)
    reproduces, per (group, tier), exactly the element order that the
    per-window mask + ``np.compress`` split emits; segment offsets then
    carve per-window :class:`ShareBatch` views straight out of the two
    sorted whole-run buffers.  Returns one batch per recorded window
    (``None`` for windows that emitted no groups -- the machine never
    splits those).
    """
    c = data.columns
    wgp = np.asarray(c["window_group_ptr"])
    gpp = np.asarray(c["group_page_ptr"])
    pages = np.asarray(c["pages"])
    counts = np.asarray(c["counts"])
    mlp_col = np.asarray(c["group_mlp"])
    lf_col = np.asarray(c["group_load_fraction"])
    lab_col = np.asarray(c["group_label"])
    num_windows = wgp.size - 1
    num_groups = gpp.size - 1
    T = num_tiers

    group_of = np.repeat(np.arange(num_groups, dtype=np.int64), np.diff(gpp))
    key = group_of * T + placement[pages].astype(np.int64)
    order = np.argsort(key, kind="stable")
    pages_s = np.ascontiguousarray(pages[order])
    counts_s = np.ascontiguousarray(counts[order])

    sizes = np.bincount(key, minlength=num_groups * T)
    rows = np.flatnonzero(sizes)
    row_offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(sizes[rows], dtype=np.int64)]
    )
    row_group = rows // T
    row_tier = (rows % T).astype(np.intp)
    if rows.size:
        row_misses = np.add.reduceat(counts_s, row_offsets[:-1])
    else:
        row_misses = np.empty(0, dtype=np.int64)
    # Rows are group-ascending, groups are window-ascending, so each
    # window's rows are one contiguous range.
    row_window_ptr = np.searchsorted(row_group, wgp)
    group_labels = [data.labels[int(code)] for code in lab_col]
    unit_all = np.empty(rows.size, dtype=np.float64)
    stall_all = np.empty(rows.size, dtype=np.float64)

    batches: List[Optional[ShareBatch]] = []
    for w in range(num_windows):
        if wgp[w + 1] == wgp[w]:
            batches.append(None)
            continue
        r0, r1 = int(row_window_ptr[w]), int(row_window_ptr[w + 1])
        n = r1 - r0
        if n == 0:
            # Groups recorded, but every one of them was empty.
            batches.append(_empty_share_batch(T))
            continue
        base = int(row_offsets[r0])
        end = int(row_offsets[r1])
        g = row_group[r0:r1]
        batches.append(
            ShareBatch(
                n=n,
                group_index=g - int(wgp[w]),
                tier_codes=row_tier[r0:r1],
                mlp=mlp_col[g],
                load_fraction=lf_col[g],
                misses=row_misses[r0:r1],
                offsets=row_offsets[r0 : r1 + 1] - base,
                pages_buf=pages_s[base:end],
                counts_buf=counts_s[base:end],
                labels=[group_labels[int(gi)] for gi in g],
                unit_stall_cycles=unit_all[r0:r1],
                stall_scratch=stall_all[r0:r1],
                num_tiers=T,
            )
        )
    return batches


class EntryMetaPlan:
    """Prestaged trace-determined entry metadata for *dynamic* replay.

    Dynamic policies re-split every window (placement moves), but most
    of the split's per-entry inputs never depend on placement at all:
    the packed ``group * num_tiers`` key base, the float view of the
    miss counts (weighted ``bincount`` wants float64 weights), and
    whether any entry carries a zero count.
    All of it is computed here once, at attach time, so the timed loop
    keeps only the placement-dependent work: one gather, one add, one
    weighted bincount.
    """

    __slots__ = ("entry_ptr", "key_base", "counts_f", "counts_positive")

    def __init__(self, entry_ptr, key_base, counts_f, counts_positive):
        self.entry_ptr = entry_ptr
        #: Flat per-entry ``group_index * num_tiers`` (None when no
        #: recorded window has more than one group).
        self.key_base = key_base
        self.counts_f = counts_f
        #: True when every recorded count is >= 1 (then cell presence
        #: follows from the weighted bincount alone).
        self.counts_positive = counts_positive

    def window(self, w: int):
        """``(key_base_slice|None, counts_f_slice)`` for window ``w``."""
        e0 = self.entry_ptr[w]
        e1 = self.entry_ptr[w + 1]
        kb = self.key_base[e0:e1] if self.key_base is not None else None
        return kb, self.counts_f[e0:e1]


def build_entry_meta(data, num_tiers: int) -> EntryMetaPlan:
    """Precompute :class:`EntryMetaPlan` from recorded trace columns."""
    c = data.columns
    wgp = np.asarray(c["window_group_ptr"])
    gpp = np.asarray(c["group_page_ptr"])
    counts = np.asarray(c["counts"])
    entry_ptr = np.asarray(gpp[wgp], dtype=np.int64)
    groups_per_window = np.diff(wgp)
    if groups_per_window.size and int(groups_per_window.max()) > 1:
        # Window-local group index of every entry, flattened: subtract
        # each window's first global group id, then expand per entry.
        gi_local = np.arange(gpp.size - 1, dtype=np.intp) - np.repeat(
            wgp[:-1].astype(np.intp), groups_per_window
        )
        key_base = np.repeat(gi_local * num_tiers, np.diff(gpp))
    else:
        key_base = None
    counts_f = counts.astype(np.float64)
    counts_positive = bool(counts.min() >= 1) if counts.size else True
    return EntryMetaPlan(entry_ptr, key_base, counts_f, counts_positive)


class PebsPosPlan:
    """Prestaged nonzero-record positions of a keyed PEBS record plan.

    Keyed PEBS draws records for *every* trace entry, but the merge
    only ever looks at entries whose record count is positive -- a
    trace-determined subset, typically a small fraction of the window.
    Prestaging the positions (plus their pages and records) shrinks the
    per-window merge to a gather + compress over that subset.
    """

    __slots__ = ("_ptr", "pos_idx", "pages_pos", "recs_pos", "sorted_unique")

    def __init__(self, ptr, pos_idx, pages_pos, recs_pos, sorted_unique):
        self._ptr = ptr
        #: Window-local entry indices of the positive-record entries.
        self.pos_idx = pos_idx
        self.pages_pos = pages_pos
        self.recs_pos = recs_pos
        self.sorted_unique = sorted_unique

    def window(self, w: int):
        s0 = self._ptr[w]
        s1 = self._ptr[w + 1]
        return (
            self.pos_idx[s0:s1],
            self.pages_pos[s0:s1],
            self.recs_pos[s0:s1],
            bool(self.sorted_unique[w]),
        )


def build_pebs_pos(record_plan, data) -> PebsPosPlan:
    """Index a :class:`~repro.hw.substream.PebsRecordPlan` by record > 0."""
    c = data.columns
    wgp = np.asarray(c["window_group_ptr"])
    gpp = np.asarray(c["group_page_ptr"])
    pages = np.asarray(c["pages"])
    entry_ptr = np.asarray(gpp[wgp], dtype=np.int64)
    num_windows = wgp.size - 1
    ptr = np.zeros(num_windows + 1, dtype=np.int64)
    idx_chunks: List[np.ndarray] = []
    page_chunks: List[np.ndarray] = []
    rec_chunks: List[np.ndarray] = []
    sorted_unique = np.empty(num_windows, dtype=bool)
    for w in range(num_windows):
        recs = record_plan.window_records(w)
        pos = np.flatnonzero(recs)
        pp = pages[entry_ptr[w] : entry_ptr[w + 1]][pos]
        idx_chunks.append(pos)
        page_chunks.append(pp)
        rec_chunks.append(recs[pos])
        sorted_unique[w] = pp.size <= 1 or bool((pp[1:] > pp[:-1]).all())
        ptr[w + 1] = ptr[w] + pos.size
    cat = lambda chunks, dt: (
        np.concatenate(chunks) if chunks else np.empty(0, dtype=dt)
    )
    return PebsPosPlan(
        ptr,
        cat(idx_chunks, np.int64),
        cat(page_chunks, np.int64),
        cat(rec_chunks, np.int64),
        sorted_unique,
    )


class StaticSplitPlan:
    """Per-window pre-sliced share batches for a frozen placement."""

    __slots__ = ("_batches",)

    def __init__(self, batches: List[Optional[ShareBatch]]):
        self._batches = batches

    def window_batch(self, window: int) -> ShareBatch:
        batch = self._batches[window]
        if batch is None:  # pragma: no cover - machine never splits empty windows
            raise LookupError(f"window {window} recorded no groups")
        return batch

    @property
    def batches(self) -> List[Optional[ShareBatch]]:
        return self._batches


class WindowSamplePlan:
    """Precomputed per-window :class:`PebsBatch` stream."""

    __slots__ = ("_batches",)

    def __init__(self, batches: List[Optional[PebsBatch]]):
        self._batches = batches

    def batch_for(self, window: int) -> PebsBatch:
        batch = self._batches[window]
        if batch is None:  # pragma: no cover - machine never samples empty windows
            raise LookupError(f"window {window} recorded no groups")
        return batch


class WindowSolvePlan:
    """Pre-solved :class:`~repro.hw.stall.WindowHardware` per window."""

    __slots__ = ("_outcomes",)

    def __init__(self, outcomes: List):
        self._outcomes = outcomes

    def outcome_for(self, window: int):
        outcome = self._outcomes[window]
        if outcome is None:  # pragma: no cover - machine never solves empty windows
            raise LookupError(f"window {window} recorded no groups")
        return outcome


def plan_window_solves(model, batches: List[Optional[ShareBatch]], compute_cycles) -> WindowSolvePlan:
    """Solve the whole run's stall fixed points in one batched pass.

    With a static placement, no PEBS overhead, and no MLC contender,
    every window's solve inputs are already final at attach time: the
    pre-split :class:`ShareBatch`, the recorded compute cycles, and
    zero carried-over bytes/cycles (migration copies and sampling drains
    are the only sources of either, and a static no-PEBS run produces
    neither).  The windows are therefore independent fixed points, and
    ``solve_many`` -- whose per-element bit-identity to serial solves
    the multi-run tests pin -- computes them all in one fused pass.
    """
    idx = [w for w, b in enumerate(batches) if b is not None]
    solved = model.solve_many(
        [batches[w] for w in idx],
        [float(compute_cycles[w]) for w in idx],
        [None] * len(idx),
        [0.0] * len(idx),
    )
    outcomes: List = [None] * len(batches)
    for w, outcome in zip(idx, solved):
        outcomes[w] = outcome
    return WindowSolvePlan(outcomes)


def plan_pebs_batches(
    sampler: PebsSampler,
    batches: List[Optional[ShareBatch]],
    tiers: Tuple,
) -> WindowSamplePlan:
    """Draw the whole run's PEBS samples up front, in live stream order.

    The two binomials per share are sequenced (the record draw thins
    the load draw's output), so the draws cannot be batched across
    shares -- but with a static placement every share's counts are
    known now, and the live path only ever samples non-empty windows in
    window order.  Replaying that exact call sequence here consumes the
    sampler's generator bit-identically and moves the whole RNG tail
    (and the per-window merge) out of the measured loop.
    """
    return WindowSamplePlan(
        [None if b is None else sampler.sample(b, tiers=tiers) for b in batches]
    )


def plan_chmu_batches(sampler, batches: List[Optional[ShareBatch]]) -> WindowSamplePlan:
    """Precompute every CHMU epoch drain from the static split.

    CHMU sampling is RNG-free integer accumulation, so epochs can be
    aggregated with one sort + ``reduceat`` over the epoch's slow-tier
    entries instead of per-window ``np.add.at`` into a footprint-sized
    counter array; integer sums are order-exact, and the aggregation
    and drain helpers are the very code the live sampler runs.
    """
    from repro.hw.chmu import aggregate_epoch, drain_hotlist

    code = int(sampler.tier)
    out: List[Optional[PebsBatch]] = []
    epoch_pages: List[np.ndarray] = []
    epoch_counts: List[np.ndarray] = []
    in_epoch = 0
    for batch in batches:
        if batch is None:
            out.append(None)
            continue
        for i in range(batch.n):
            if int(batch.tier_codes[i]) == code and batch.offsets[i + 1] > batch.offsets[i]:
                epoch_pages.append(batch.pages_of(i))
                epoch_counts.append(batch.counts_of(i))
        in_epoch += 1
        if in_epoch < sampler.epoch_windows:
            out.append(PebsBatch.empty(rate=1))
            continue
        in_epoch = 0
        touched, sums = aggregate_epoch(epoch_pages, epoch_counts)
        epoch_pages, epoch_counts = [], []
        out.append(
            drain_hotlist(touched, sums, sampler.hotlist_size, sampler.readout_cycles)
        )
    return WindowSamplePlan(out)


def plan_keyed_pebs_batches(sampler, record_plan, data, placement) -> WindowSamplePlan:
    """Merge prestaged keyed records against a *frozen* placement.

    Static-placement schema-2 runs know every window's placement gather
    now, so the whole sampler -- draw *and* merge -- leaves the timed
    loop.  Each window's merge is the very
    :meth:`~repro.hw.substream.KeyedPebsSampler.merge_window` call the
    live path makes, over the same trace-order entry slices.
    """
    c = data.columns
    wgp = np.asarray(c["window_group_ptr"])
    gpp = np.asarray(c["group_page_ptr"])
    pages = np.asarray(c["pages"])
    entry_ptr = np.asarray(gpp[wgp], dtype=np.int64)
    out: List[Optional[PebsBatch]] = []
    for w in range(wgp.size - 1):
        if wgp[w + 1] == wgp[w]:
            out.append(None)
            continue
        e0, e1 = int(entry_ptr[w]), int(entry_ptr[w + 1])
        out.append(
            sampler.merge_window(
                record_plan.window_records(w), pages[e0:e1], placement
            )
        )
    return WindowSamplePlan(out)


def _attach_keyed(machine, data) -> bool:
    """Prestage schema-2 keyed draw tensors for *any* policy.

    Keyed draws are decision-independent -- per window they cover every
    trace entry (PEBS) or every (group, tier) cell (jitter) regardless
    of placement -- so under replay the whole run's draws are computed
    here, at attach time, outside the timed region.  The live keyed
    fallback draws the same substreams per window, so engaging a plan
    never changes a single value.
    """
    from repro.hw.substream import plan_keyed_records

    wgp = np.asarray(data.columns["window_group_ptr"])
    groups_per_window = np.diff(wgp)
    T = machine.num_tiers
    engaged = False
    if machine._keyed_cha is not None:
        machine._keyed_cha.prestage(2 * T * groups_per_window)
        engaged = True
    if machine._keyed_perf is not None:
        machine._keyed_perf.prestage(
            np.where(groups_per_window > 0, 2 * T, 0)
        )
        engaged = True
    if machine._keyed_pebs is not None:
        machine._pebs_records = plan_keyed_records(machine._keyed_pebs, data)
        engaged = True
    return engaged


def attach(machine) -> bool:
    """Wire whole-run draw plans into ``machine`` when replay drives it.

    Called at the end of ``Machine.__init__`` (placement is settled by
    then).  Jitter streams (schema 1) or keyed draw tensors (schema 2)
    engage for every policy; the static split and sampler plans
    additionally need ``policy.static_placement`` and a fully
    preallocated footprint.  Returns True when anything engaged.
    """
    if not plans_enabled():
        return False
    from repro.workloads.tracestore import ReplayWorkload

    workload = machine.workload
    if not isinstance(workload, ReplayWorkload) or workload.loop:
        return False
    data = workload.trace_data
    engaged = False
    keyed = machine.rng_schema == 2
    if keyed:
        engaged = _attach_keyed(machine, data)
    else:
        if machine.cha.noise > 0.0:
            machine.cha.attach_jitter_stream(
                NormalDrawStream(machine.cha._rng, machine.cha.noise)
            )
            engaged = True
        if machine.perf.noise > 0.0:
            wgp = np.asarray(data.columns["window_group_ptr"])
            nonempty = int(np.count_nonzero(np.diff(wgp)))
            total = 2 * machine.num_tiers * nonempty
            if total > 0:
                machine.perf.attach_jitter_stream(
                    NormalDrawStream(machine.perf._rng, machine.perf.noise, chunk=total)
                )
                engaged = True
    policy = machine.policy
    if getattr(policy, "static_placement", False) and machine.memory.fully_allocated:
        batches = build_static_batches(data, machine.memory.placement, machine.num_tiers)
        machine._split_plan = StaticSplitPlan(batches)
        engaged = True
        if (
            not policy.needs_pebs
            and machine.contender is None
            and not machine.obs.enabled
        ):
            # No PEBS drain, no contender, no per-window observability:
            # every window's solve inputs are final now, so solve the
            # whole run up front (obs-enabled runs keep the live path to
            # preserve per-window accounting gauges).
            machine._solve_plan = plan_window_solves(
                machine.stall_model, batches, data.columns["window_compute"]
            )
        if policy.needs_pebs:
            sampler = machine.pebs
            if keyed and machine._keyed_pebs is not None:
                if not machine._keyed_pebs.report_latency:
                    # Frozen placement: fold the merge in too and drop
                    # the per-window records (the merged plan serves
                    # finished batches).  Latency-reporting samplers
                    # keep the records and merge live -- the unit stall
                    # costs come from each window's solved shares.
                    machine._pebs_plan = plan_keyed_pebs_batches(
                        machine._keyed_pebs,
                        machine._pebs_records,
                        data,
                        machine.memory.placement,
                    )
                    machine._pebs_records = None
            elif isinstance(sampler, PebsSampler) and not sampler.report_latency:
                # TPEBS latency reporting reads each share's *solved*
                # unit stall cost, which is unknown before the run --
                # those samplers keep the live path.
                machine._pebs_plan = plan_pebs_batches(
                    sampler, batches, machine._pebs_tiers()
                )
            else:
                from repro.hw.chmu import ChmuSampler

                if isinstance(sampler, ChmuSampler):
                    machine._pebs_plan = plan_chmu_batches(sampler, batches)
    if machine._split_plan is None:
        # Dynamic placement: the split itself stays in the loop, but its
        # trace-determined inputs (key bases, float counts, sortedness)
        # leave it.  The plan depends only on (trace, num_tiers), so
        # lockstep multi-run members replaying the same trace share one.
        cached = getattr(data, "_entry_meta_cache", None)
        if cached is None or cached[0] != machine.num_tiers:
            cached = (machine.num_tiers, build_entry_meta(data, machine.num_tiers))
            try:
                data._entry_meta_cache = cached
            except AttributeError:  # pragma: no cover - slotted data
                pass
        machine._entry_meta = cached[1]
        engaged = True
        if (
            machine._keyed_pebs is not None
            and machine._pebs_plan is None
            and machine._pebs_records is not None
            and not machine._keyed_pebs.report_latency
        ):
            # Keyed PEBS under a moving placement: prestage the
            # positive-record subset; the merge becomes a gather over
            # it (latency-reporting samplers keep the full records --
            # their per-entry latency lookup needs the solved shares).
            machine._pebs_pos = build_pebs_pos(machine._pebs_records, data)
            machine._pebs_records = None
    return engaged


__all__ = [
    "ENV_DISABLE",
    "EntryMetaPlan",
    "NormalDrawStream",
    "PebsPosPlan",
    "StaticSplitPlan",
    "WindowSamplePlan",
    "WindowSolvePlan",
    "attach",
    "build_entry_meta",
    "build_pebs_pos",
    "build_static_batches",
    "plan_chmu_batches",
    "plan_keyed_pebs_batches",
    "plan_pebs_batches",
    "plan_window_solves",
    "plans_enabled",
]
