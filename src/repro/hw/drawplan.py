"""Whole-run RNG draw plans for replayed traffic streams.

Once a traffic stream is recorded (:mod:`repro.workloads.tracestore`),
every hardware consumer's per-window work is knowable ahead of the run:
the CHA and perf counters draw a fixed number of jitter normals per
share/tier, and -- for *static-placement* policies -- the (group, tier)
share split itself never changes after preallocation.  This module
exploits both:

* :class:`NormalDrawStream` buffers a consumer's normal draws in large
  chunks.  numpy's ``Generator.normal(size=k)`` consumes its bit stream
  exactly like ``k`` sequential scalar calls, and any prefix of a
  vector draw equals the same-length smaller draw, so chunked buffering
  is **bit-identical** to the live per-call draws for any chunk size --
  the stream just pays the C-dispatch cost once per chunk instead of
  once per value.  Each stream owns its generator exclusively; values
  drawn past the run's end are simply never observed.
* :func:`build_static_batches` pre-splits the *whole run's* recorded
  CSR columns by (window, group, tier) in one vectorised pass and hands
  every window a pre-sliced :class:`~repro.hw.stall.ShareBatch` view --
  rows in the exact legacy order (per group: tier 0 then tier 1, ...),
  so solver, PEBS, CHA, and trace consumers see byte-identical inputs.
* :func:`plan_pebs_batches` / :func:`plan_chmu_batches` precompute each
  window's sampled :class:`~repro.hw.pebs.PebsBatch` from the static
  split, walking the shares in the same order (and, for PEBS, drawing
  from the same generator in the same sequence) as the live path.

The plans engage automatically when a :class:`Machine` is driven by a
non-looping :class:`~repro.workloads.tracestore.ReplayWorkload`; the
static-split and sampler plans additionally require the policy to
declare :attr:`~repro.sim.policy_api.TieringPolicy.static_placement`.
Set ``REPRO_NO_DRAWPLAN=1`` to force the live per-window paths.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

import numpy as np

from repro.hw.pebs import PebsBatch, PebsSampler
from repro.hw.stall import ShareBatch

#: Environment switch: any non-empty value disables all draw plans.
ENV_DISABLE = "REPRO_NO_DRAWPLAN"

#: Default chunk size (draws per refill) for buffered normal streams.
DEFAULT_CHUNK = 8192


def plans_enabled() -> bool:
    return not os.environ.get(ENV_DISABLE, "")


class NormalDrawStream:
    """Chunk-buffered ``exp(Normal(0, scale))`` jitter factors.

    Serves the exact value sequence that repeated scalar (or small
    vector) ``exp(rng.normal(0, scale, ...))`` calls on the same
    generator would produce: the generator's bit stream is consumed
    identically, and ``np.exp`` is elementwise, so chunking changes
    neither the draws nor their rounding.
    """

    __slots__ = ("_rng", "scale", "chunk", "_buf", "_pos")

    def __init__(self, rng: np.random.Generator, scale: float, chunk: int = DEFAULT_CHUNK):
        if scale <= 0.0:
            raise ValueError("jitter stream needs a positive noise scale")
        self._rng = rng
        self.scale = scale
        self.chunk = max(int(chunk), 1)
        self._buf = np.empty(0, dtype=np.float64)
        self._pos = 0

    def take(self, n: int) -> np.ndarray:
        """The next ``n`` jitter factors (a read-only-by-convention view)."""
        end = self._pos + n
        if end > self._buf.size:
            self._refill(n)
            end = n
        out = self._buf[self._pos : end]
        self._pos = end
        return out

    def _refill(self, need: int) -> None:
        leftover = self._buf[self._pos :]
        fresh = np.exp(
            self._rng.normal(0.0, self.scale, size=max(self.chunk, need - leftover.size))
        )
        self._buf = np.concatenate([leftover, fresh]) if leftover.size else fresh
        self._pos = 0


def _empty_share_batch(num_tiers: int) -> ShareBatch:
    return ShareBatch(
        n=0,
        group_index=np.empty(0, dtype=np.int64),
        tier_codes=np.empty(0, dtype=np.intp),
        mlp=np.empty(0, dtype=np.float64),
        load_fraction=np.empty(0, dtype=np.float64),
        misses=np.empty(0, dtype=np.int64),
        offsets=np.zeros(1, dtype=np.int64),
        pages_buf=np.empty(0, dtype=np.int64),
        counts_buf=np.empty(0, dtype=np.int64),
        labels=[],
        unit_stall_cycles=np.empty(0, dtype=np.float64),
        stall_scratch=np.empty(0, dtype=np.float64),
        num_tiers=num_tiers,
    )


def build_static_batches(
    data, placement: np.ndarray, num_tiers: int
) -> List[Optional[ShareBatch]]:
    """Pre-split every recorded window by a *frozen* placement.

    One stable argsort of the whole trace's entries by (group, tier)
    reproduces, per (group, tier), exactly the element order that the
    per-window mask + ``np.compress`` split emits; segment offsets then
    carve per-window :class:`ShareBatch` views straight out of the two
    sorted whole-run buffers.  Returns one batch per recorded window
    (``None`` for windows that emitted no groups -- the machine never
    splits those).
    """
    c = data.columns
    wgp = np.asarray(c["window_group_ptr"])
    gpp = np.asarray(c["group_page_ptr"])
    pages = np.asarray(c["pages"])
    counts = np.asarray(c["counts"])
    mlp_col = np.asarray(c["group_mlp"])
    lf_col = np.asarray(c["group_load_fraction"])
    lab_col = np.asarray(c["group_label"])
    num_windows = wgp.size - 1
    num_groups = gpp.size - 1
    T = num_tiers

    group_of = np.repeat(np.arange(num_groups, dtype=np.int64), np.diff(gpp))
    key = group_of * T + placement[pages].astype(np.int64)
    order = np.argsort(key, kind="stable")
    pages_s = np.ascontiguousarray(pages[order])
    counts_s = np.ascontiguousarray(counts[order])

    sizes = np.bincount(key, minlength=num_groups * T)
    rows = np.flatnonzero(sizes)
    row_offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(sizes[rows], dtype=np.int64)]
    )
    row_group = rows // T
    row_tier = (rows % T).astype(np.intp)
    if rows.size:
        row_misses = np.add.reduceat(counts_s, row_offsets[:-1])
    else:
        row_misses = np.empty(0, dtype=np.int64)
    # Rows are group-ascending, groups are window-ascending, so each
    # window's rows are one contiguous range.
    row_window_ptr = np.searchsorted(row_group, wgp)
    group_labels = [data.labels[int(code)] for code in lab_col]
    unit_all = np.empty(rows.size, dtype=np.float64)
    stall_all = np.empty(rows.size, dtype=np.float64)

    batches: List[Optional[ShareBatch]] = []
    for w in range(num_windows):
        if wgp[w + 1] == wgp[w]:
            batches.append(None)
            continue
        r0, r1 = int(row_window_ptr[w]), int(row_window_ptr[w + 1])
        n = r1 - r0
        if n == 0:
            # Groups recorded, but every one of them was empty.
            batches.append(_empty_share_batch(T))
            continue
        base = int(row_offsets[r0])
        end = int(row_offsets[r1])
        g = row_group[r0:r1]
        batches.append(
            ShareBatch(
                n=n,
                group_index=g - int(wgp[w]),
                tier_codes=row_tier[r0:r1],
                mlp=mlp_col[g],
                load_fraction=lf_col[g],
                misses=row_misses[r0:r1],
                offsets=row_offsets[r0 : r1 + 1] - base,
                pages_buf=pages_s[base:end],
                counts_buf=counts_s[base:end],
                labels=[group_labels[int(gi)] for gi in g],
                unit_stall_cycles=unit_all[r0:r1],
                stall_scratch=stall_all[r0:r1],
                num_tiers=T,
            )
        )
    return batches


class StaticSplitPlan:
    """Per-window pre-sliced share batches for a frozen placement."""

    __slots__ = ("_batches",)

    def __init__(self, batches: List[Optional[ShareBatch]]):
        self._batches = batches

    def window_batch(self, window: int) -> ShareBatch:
        batch = self._batches[window]
        if batch is None:  # pragma: no cover - machine never splits empty windows
            raise LookupError(f"window {window} recorded no groups")
        return batch

    @property
    def batches(self) -> List[Optional[ShareBatch]]:
        return self._batches


class WindowSamplePlan:
    """Precomputed per-window :class:`PebsBatch` stream."""

    __slots__ = ("_batches",)

    def __init__(self, batches: List[Optional[PebsBatch]]):
        self._batches = batches

    def batch_for(self, window: int) -> PebsBatch:
        batch = self._batches[window]
        if batch is None:  # pragma: no cover - machine never samples empty windows
            raise LookupError(f"window {window} recorded no groups")
        return batch


class WindowSolvePlan:
    """Pre-solved :class:`~repro.hw.stall.WindowHardware` per window."""

    __slots__ = ("_outcomes",)

    def __init__(self, outcomes: List):
        self._outcomes = outcomes

    def outcome_for(self, window: int):
        outcome = self._outcomes[window]
        if outcome is None:  # pragma: no cover - machine never solves empty windows
            raise LookupError(f"window {window} recorded no groups")
        return outcome


def plan_window_solves(model, batches: List[Optional[ShareBatch]], compute_cycles) -> WindowSolvePlan:
    """Solve the whole run's stall fixed points in one batched pass.

    With a static placement, no PEBS overhead, and no MLC contender,
    every window's solve inputs are already final at attach time: the
    pre-split :class:`ShareBatch`, the recorded compute cycles, and
    zero carried-over bytes/cycles (migration copies and sampling drains
    are the only sources of either, and a static no-PEBS run produces
    neither).  The windows are therefore independent fixed points, and
    ``solve_many`` -- whose per-element bit-identity to serial solves
    the multi-run tests pin -- computes them all in one fused pass.
    """
    idx = [w for w, b in enumerate(batches) if b is not None]
    solved = model.solve_many(
        [batches[w] for w in idx],
        [float(compute_cycles[w]) for w in idx],
        [None] * len(idx),
        [0.0] * len(idx),
    )
    outcomes: List = [None] * len(batches)
    for w, outcome in zip(idx, solved):
        outcomes[w] = outcome
    return WindowSolvePlan(outcomes)


def plan_pebs_batches(
    sampler: PebsSampler,
    batches: List[Optional[ShareBatch]],
    tiers: Tuple,
) -> WindowSamplePlan:
    """Draw the whole run's PEBS samples up front, in live stream order.

    The two binomials per share are sequenced (the record draw thins
    the load draw's output), so the draws cannot be batched across
    shares -- but with a static placement every share's counts are
    known now, and the live path only ever samples non-empty windows in
    window order.  Replaying that exact call sequence here consumes the
    sampler's generator bit-identically and moves the whole RNG tail
    (and the per-window merge) out of the measured loop.
    """
    return WindowSamplePlan(
        [None if b is None else sampler.sample(b, tiers=tiers) for b in batches]
    )


def plan_chmu_batches(sampler, batches: List[Optional[ShareBatch]]) -> WindowSamplePlan:
    """Precompute every CHMU epoch drain from the static split.

    CHMU sampling is RNG-free integer accumulation, so epochs can be
    aggregated with one sort + ``reduceat`` over the epoch's slow-tier
    entries instead of per-window ``np.add.at`` into a footprint-sized
    counter array; integer sums are order-exact, and the drain helper
    is the very code the live sampler runs.
    """
    from repro.hw.chmu import drain_hotlist

    code = int(sampler.tier)
    out: List[Optional[PebsBatch]] = []
    epoch_pages: List[np.ndarray] = []
    epoch_counts: List[np.ndarray] = []
    in_epoch = 0
    for batch in batches:
        if batch is None:
            out.append(None)
            continue
        for i in range(batch.n):
            if int(batch.tier_codes[i]) == code:
                epoch_pages.append(batch.pages_of(i))
                epoch_counts.append(batch.counts_of(i))
        in_epoch += 1
        if in_epoch < sampler.epoch_windows:
            out.append(PebsBatch.empty(rate=1))
            continue
        in_epoch = 0
        if epoch_pages:
            flat_pages = np.concatenate(epoch_pages)
            flat_counts = np.concatenate(epoch_counts)
            sort = np.argsort(flat_pages, kind="stable")
            touched, first = np.unique(flat_pages[sort], return_index=True)
            sums = np.add.reduceat(flat_counts[sort], first)
            live = sums > 0
            out.append(
                drain_hotlist(
                    touched[live], sums[live], sampler.hotlist_size, sampler.readout_cycles
                )
            )
            epoch_pages, epoch_counts = [], []
        else:
            out.append(PebsBatch.empty(rate=1))
    return WindowSamplePlan(out)


def attach(machine) -> bool:
    """Wire whole-run draw plans into ``machine`` when replay drives it.

    Called at the end of ``Machine.__init__`` (placement is settled by
    then).  Jitter streams engage for every policy; the static split
    and sampler plans additionally need ``policy.static_placement`` and
    a fully preallocated footprint.  Returns True when anything engaged.
    """
    if not plans_enabled():
        return False
    from repro.workloads.tracestore import ReplayWorkload

    workload = machine.workload
    if not isinstance(workload, ReplayWorkload) or workload.loop:
        return False
    data = workload.trace_data
    engaged = False
    if machine.cha.noise > 0.0:
        machine.cha.attach_jitter_stream(
            NormalDrawStream(machine.cha._rng, machine.cha.noise)
        )
        engaged = True
    if machine.perf.noise > 0.0:
        wgp = np.asarray(data.columns["window_group_ptr"])
        nonempty = int(np.count_nonzero(np.diff(wgp)))
        total = 2 * machine.num_tiers * nonempty
        if total > 0:
            machine.perf.attach_jitter_stream(
                NormalDrawStream(machine.perf._rng, machine.perf.noise, chunk=total)
            )
            engaged = True
    policy = machine.policy
    if getattr(policy, "static_placement", False) and machine.memory.fully_allocated:
        batches = build_static_batches(data, machine.memory.placement, machine.num_tiers)
        machine._split_plan = StaticSplitPlan(batches)
        engaged = True
        if (
            not policy.needs_pebs
            and machine.contender is None
            and not machine.obs.enabled
        ):
            # No PEBS drain, no contender, no per-window observability:
            # every window's solve inputs are final now, so solve the
            # whole run up front (obs-enabled runs keep the live path to
            # preserve per-window accounting gauges).
            machine._solve_plan = plan_window_solves(
                machine.stall_model, batches, data.columns["window_compute"]
            )
        if policy.needs_pebs:
            sampler = machine.pebs
            if isinstance(sampler, PebsSampler) and not sampler.report_latency:
                # TPEBS latency reporting reads each share's *solved*
                # unit stall cost, which is unknown before the run --
                # those samplers keep the live path.
                machine._pebs_plan = plan_pebs_batches(
                    sampler, batches, machine._pebs_tiers()
                )
            else:
                from repro.hw.chmu import ChmuSampler

                if isinstance(sampler, ChmuSampler):
                    machine._pebs_plan = plan_chmu_batches(sampler, batches)
    return engaged


__all__ = [
    "ENV_DISABLE",
    "NormalDrawStream",
    "StaticSplitPlan",
    "WindowSamplePlan",
    "WindowSolvePlan",
    "attach",
    "build_static_batches",
    "plan_chmu_batches",
    "plan_pebs_batches",
    "plan_window_solves",
    "plans_enabled",
]
