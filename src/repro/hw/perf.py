"""Processor-level performance counters (the "perf" view).

This registry exposes exactly the signals a tiering policy can read on
real hardware: cumulative LLC misses per tier, aggregate stall cycles,
elapsed cycles, and per-tier byte traffic (for occupancy-derived latency
signals a la Colloid).  Like :mod:`repro.hw.cha`, reads carry small
multiplicative noise so estimators downstream are stressed realistically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.hw.stall import WindowHardware
from repro.mem.page import Tier, tier_key

DEFAULT_PERF_NOISE = 0.01


@dataclass
class PerfSnapshot:
    """Cumulative counter values at one instant."""

    cycles: float = 0.0
    llc_misses: Dict[Tier, float] = field(default_factory=dict)
    stall_cycles: Dict[Tier, float] = field(default_factory=dict)
    bytes: Dict[Tier, float] = field(default_factory=dict)
    effective_latency_cycles: Dict[Tier, float] = field(default_factory=dict)

    def delta(self, earlier: "PerfSnapshot") -> "PerfDelta":
        return PerfDelta(
            cycles=self.cycles - earlier.cycles,
            llc_misses={t: self.llc_misses[t] - earlier.llc_misses.get(t, 0.0) for t in self.llc_misses},
            stall_cycles={t: self.stall_cycles[t] - earlier.stall_cycles.get(t, 0.0) for t in self.stall_cycles},
            bytes={t: self.bytes[t] - earlier.bytes.get(t, 0.0) for t in self.bytes},
            effective_latency_cycles=dict(self.effective_latency_cycles),
        )


@dataclass
class PerfDelta:
    """Counter deltas over one observation interval."""

    cycles: float
    llc_misses: Dict[Tier, float]
    stall_cycles: Dict[Tier, float]
    bytes: Dict[Tier, float]
    #: Last-observed loaded latency per tier (occupancy-derived signal).
    effective_latency_cycles: Dict[Tier, float]

    @property
    def total_llc_misses(self) -> float:
        return sum(self.llc_misses.values())

    @property
    def total_stall_cycles(self) -> float:
        return sum(self.stall_cycles.values())


class PerfCounters:
    """Cumulative processor counters, advanced once per window."""

    def __init__(
        self,
        noise: float = DEFAULT_PERF_NOISE,
        rng: Optional[np.random.Generator] = None,
        num_tiers: int = 2,
    ):
        self.noise = noise
        self._rng = rng if rng is not None else np.random.default_rng(0)
        #: Optional whole-run jitter stream (:mod:`repro.hw.drawplan`).
        self._jitter_stream = None
        self._cycles = 0.0
        tiers = [tier_key(t) for t in range(num_tiers)]
        self._llc_misses = {t: 0.0 for t in tiers}
        self._stalls = {t: 0.0 for t in tiers}
        self._bytes = {t: 0.0 for t in tiers}
        self._latency = {t: 0.0 for t in tiers}

    def advance(self, outcome: WindowHardware, jitter: Optional[np.ndarray] = None) -> None:
        """Account one solved window into the cumulative counters.

        ``jitter``, when given, supplies the window's ``2 * num_tiers``
        multiplicative noise factors (miss, stall interleaved in tier
        order) in place of this counter's own stream draws -- the
        schema-2 keyed path (:mod:`repro.hw.substream`).
        """
        self._cycles += outcome.duration_cycles
        loads = outcome.tier_loads
        if jitter is not None:
            k = 0
            for tier, load in loads.items():
                self._llc_misses[tier] += load.misses * float(jitter[k])
                self._stalls[tier] += load.stall_cycles * float(jitter[k + 1])
                self._bytes[tier] += load.bytes
                self._latency[tier] = load.effective_latency_cycles
                k += 2
            return
        if self._jitter_stream is not None and self.noise > 0.0:
            # Exactly 2 draws per tier per window, in tier order -- the
            # same stream positions the scalar _jitter() calls consume.
            jitter = self._jitter_stream.take(2 * len(loads))
            k = 0
            for tier, load in loads.items():
                self._llc_misses[tier] += load.misses * float(jitter[k])
                self._stalls[tier] += load.stall_cycles * float(jitter[k + 1])
                self._bytes[tier] += load.bytes
                self._latency[tier] = load.effective_latency_cycles
                k += 2
            return
        for tier, load in loads.items():
            self._llc_misses[tier] += load.misses * self._jitter()
            self._stalls[tier] += load.stall_cycles * self._jitter()
            self._bytes[tier] += load.bytes
            self._latency[tier] = load.effective_latency_cycles

    def attach_jitter_stream(self, stream) -> None:
        self._jitter_stream = stream

    def read(self) -> PerfSnapshot:
        return PerfSnapshot(
            cycles=self._cycles,
            llc_misses=dict(self._llc_misses),
            stall_cycles=dict(self._stalls),
            bytes=dict(self._bytes),
            effective_latency_cycles=dict(self._latency),
        )

    def _jitter(self) -> float:
        if self.noise <= 0.0:
            return 1.0
        return float(np.exp(self._rng.normal(0.0, self.noise)))
