"""Simulated hardware: stall ground truth, CHA/TOR counters, PEBS, perf."""

from repro.hw.access import AccessGroup, WindowTraffic
from repro.hw.cha import ChaTorCounters, TorSnapshot, littles_law_mlp
from repro.hw.chmu import ChmuSampler
from repro.hw.pebs import DEFAULT_PEBS_RATE, PebsBatch, PebsSampler
from repro.hw.perf import PerfCounters, PerfDelta, PerfSnapshot
from repro.hw.stall import (
    GroupTierShare,
    ShareBatch,
    StallModel,
    TierLoad,
    WindowHardware,
    split_groups_legacy,
)

__all__ = [
    "AccessGroup",
    "ChaTorCounters",
    "ChmuSampler",
    "DEFAULT_PEBS_RATE",
    "GroupTierShare",
    "ShareBatch",
    "split_groups_legacy",
    "PebsBatch",
    "PebsSampler",
    "PerfCounters",
    "PerfDelta",
    "PerfSnapshot",
    "StallModel",
    "TierLoad",
    "TorSnapshot",
    "WindowHardware",
    "WindowTraffic",
    "littles_law_mlp",
]
