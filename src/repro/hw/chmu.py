"""CHMU: a CXL 3.2 Hotness Monitoring Unit access-sampling backend.

§4.3.5 notes PACT is not bound to PEBS: the CXL Hotness Monitoring Unit
introduced in CXL 3.2 tracks page accesses *inside the memory
controller* and periodically reports a hotlist.  Compared to PEBS:

* counts are exact (the controller sees every access) rather than
  1-in-N sampled,
* there is no per-record CPU processing cost -- readout is one cheap
  epoch-boundary drain of the top-K list,
* reporting is epoch-granular: within an epoch the host learns nothing,
  so reaction latency trades against readout overhead,
* only the device's own tier is visible (the slow tier -- exactly the
  one PACT samples).

The sampler below models a counter array with a bounded hotlist: every
window it accumulates true per-page access counts; at each epoch
boundary it emits the top-``hotlist_size`` pages as a
:class:`repro.hw.pebs.PebsBatch` with ``rate=1`` (exact counts), then
clears the epoch counters.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hw.pebs import PebsBatch
from repro.hw.stall import GroupTierShare, ShareBatch
from repro.mem.page import Tier

#: Cycles to drain the hotlist at an epoch boundary (MMIO reads).
DEFAULT_READOUT_CYCLES = 20_000.0


class ChmuSampler:
    """Controller-side per-page access counting with epoch hotlists."""

    def __init__(
        self,
        footprint_pages: int,
        hotlist_size: int = 2_048,
        epoch_windows: int = 1,
        readout_cycles: float = DEFAULT_READOUT_CYCLES,
        tier: Tier = Tier.SLOW,
    ):
        if hotlist_size <= 0:
            raise ValueError("hotlist must hold at least one entry")
        if epoch_windows < 1:
            raise ValueError("epoch must span at least one window")
        self.hotlist_size = hotlist_size
        self.epoch_windows = epoch_windows
        self.readout_cycles = readout_cycles
        self.tier = tier
        self._counts = np.zeros(footprint_pages, dtype=np.int64)
        self._window_in_epoch = 0
        self.rate = 1  # exact counts (PebsBatch-compatible attribute)

    def sample(
        self, shares: Sequence[GroupTierShare], tiers: "tuple[Tier, ...]" = (Tier.SLOW,)
    ) -> PebsBatch:
        """Accumulate one window; emit the hotlist at epoch boundaries.

        Drop-in replacement for :meth:`repro.hw.pebs.PebsSampler.sample`;
        ``tiers`` beyond the device's own tier are ignored (a CHMU only
        observes its own memory).
        """
        if isinstance(shares, ShareBatch):
            for i in shares.rows_in_tier(self.tier):
                np.add.at(self._counts, shares.pages_of(i), shares.counts_of(i))
        else:
            for share in shares:
                if share.tier != self.tier:
                    continue
                np.add.at(self._counts, share.pages, share.counts)
        self._window_in_epoch += 1
        if self._window_in_epoch < self.epoch_windows:
            return PebsBatch.empty(rate=1)
        self._window_in_epoch = 0
        return self._drain()

    def _drain(self) -> PebsBatch:
        touched = np.flatnonzero(self._counts)
        batch = drain_hotlist(
            touched, self._counts[touched], self.hotlist_size, self.readout_cycles
        )
        self._counts[:] = 0
        return batch


def drain_hotlist(
    touched: np.ndarray, counts: np.ndarray, hotlist_size: int, readout_cycles: float
) -> PebsBatch:
    """Emit the top-``hotlist_size`` pages of one epoch's counts.

    ``touched`` must be sorted ascending with ``counts`` aligned (what
    ``flatnonzero`` + a dense-counter gather produces); the whole-run
    plan (:mod:`repro.hw.drawplan`) feeds the same layout from a sparse
    sort + ``reduceat``, so selection -- including ``argpartition``'s
    tie behaviour, which depends only on the input array -- and the
    final sorted hotlist are bit-identical between the two callers.
    """
    if touched.size == 0:
        return PebsBatch.empty(rate=1)
    if touched.size > hotlist_size:
        keep = np.argpartition(counts, touched.size - hotlist_size)[-hotlist_size:]
        touched = touched[keep]
        counts = counts[keep]
    order = np.argsort(touched)
    return PebsBatch(
        pages=touched[order],
        counts=counts[order],
        rate=1,
        overhead_cycles=readout_cycles,
    )
