"""CHMU: a CXL 3.2 Hotness Monitoring Unit access-sampling backend.

§4.3.5 notes PACT is not bound to PEBS: the CXL Hotness Monitoring Unit
introduced in CXL 3.2 tracks page accesses *inside the memory
controller* and periodically reports a hotlist.  Compared to PEBS:

* counts are exact (the controller sees every access) rather than
  1-in-N sampled,
* there is no per-record CPU processing cost -- readout is one cheap
  epoch-boundary drain of the top-K list,
* reporting is epoch-granular: within an epoch the host learns nothing,
  so reaction latency trades against readout overhead,
* only the device's own tier is visible (the slow tier -- exactly the
  one PACT samples).

The sampler below models a counter array with a bounded hotlist: every
window it accumulates true per-page access counts; at each epoch
boundary it emits the top-``hotlist_size`` pages as a
:class:`repro.hw.pebs.PebsBatch` with ``rate=1`` (exact counts), then
clears the epoch counters.

The accumulator is *sparse*: the epoch's (pages, counts) rows are
buffered and aggregated at the boundary with one concatenate + stable
sort + ``reduceat`` pass (:func:`aggregate_epoch`).  Integer addition
is associative, so the aggregated sums equal the dense
footprint-array-plus-``np.add.at`` accumulation bit for bit -- without
touching (or scanning with ``flatnonzero``) a footprint-sized array on
epochs that visited only a few pages.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.hw.pebs import PebsBatch
from repro.hw.stall import GroupTierShare, ShareBatch
from repro.mem.page import Tier

#: Cycles to drain the hotlist at an epoch boundary (MMIO reads).
DEFAULT_READOUT_CYCLES = 20_000.0


class ChmuSampler:
    """Controller-side per-page access counting with epoch hotlists."""

    def __init__(
        self,
        footprint_pages: int,
        hotlist_size: int = 2_048,
        epoch_windows: int = 1,
        readout_cycles: float = DEFAULT_READOUT_CYCLES,
        tier: Tier = Tier.SLOW,
    ):
        if hotlist_size <= 0:
            raise ValueError("hotlist must hold at least one entry")
        if epoch_windows < 1:
            raise ValueError("epoch must span at least one window")
        self.hotlist_size = hotlist_size
        self.epoch_windows = epoch_windows
        self.readout_cycles = readout_cycles
        self.tier = tier
        self.footprint_pages = footprint_pages
        self._epoch_pages: List[np.ndarray] = []
        self._epoch_counts: List[np.ndarray] = []
        self._window_in_epoch = 0
        self.rate = 1  # exact counts (PebsBatch-compatible attribute)

    def sample(
        self, shares: Sequence[GroupTierShare], tiers: "tuple[Tier, ...]" = (Tier.SLOW,)
    ) -> PebsBatch:
        """Accumulate one window; emit the hotlist at epoch boundaries.

        Drop-in replacement for :meth:`repro.hw.pebs.PebsSampler.sample`;
        ``tiers`` beyond the device's own tier are ignored (a CHMU only
        observes its own memory).
        """
        # Share page/count arrays from the batched split are StallModel
        # scratch, only valid until the next window's split -- copy when
        # the epoch buffers must survive a window boundary.  With the
        # default one-window epochs the drain below consumes them before
        # the scratch is reused, so no copy is needed.
        keep = self.epoch_windows > 1
        if isinstance(shares, ShareBatch):
            for i in shares.rows_in_tier(self.tier):
                pages = shares.pages_of(i)
                if pages.size:
                    self._epoch_pages.append(pages.copy() if keep else pages)
                    counts = shares.counts_of(i)
                    self._epoch_counts.append(counts.copy() if keep else counts)
        else:
            for share in shares:
                if share.tier != self.tier:
                    continue
                if share.pages.size:
                    self._epoch_pages.append(share.pages.copy() if keep else share.pages)
                    self._epoch_counts.append(share.counts.copy() if keep else share.counts)
        self._window_in_epoch += 1
        if self._window_in_epoch < self.epoch_windows:
            return PebsBatch.empty(rate=1)
        self._window_in_epoch = 0
        return self._drain()

    def _drain(self) -> PebsBatch:
        touched, sums = aggregate_epoch(self._epoch_pages, self._epoch_counts)
        self._epoch_pages = []
        self._epoch_counts = []
        return drain_hotlist(touched, sums, self.hotlist_size, self.readout_cycles)


def aggregate_epoch(
    pages_list: Sequence[np.ndarray], counts_list: Sequence[np.ndarray]
) -> "tuple[np.ndarray, np.ndarray]":
    """Merge an epoch's buffered (pages, counts) rows into sorted sums.

    One concatenate + stable argsort + ``unique``/``reduceat`` pass
    produces exactly what the historical dense accumulation emitted:
    ascending touched pages with their positive total counts (pages
    whose counts sum to zero are dropped, as ``flatnonzero`` over the
    dense array dropped them).  Integer addition is associative, so the
    sums are bit-identical regardless of grouping.
    """
    if not pages_list:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    flat_pages = (
        np.concatenate(pages_list) if len(pages_list) > 1 else pages_list[0]
    )
    flat_counts = (
        np.concatenate(counts_list) if len(counts_list) > 1 else counts_list[0]
    )
    sort = np.argsort(flat_pages, kind="stable")
    touched, first = np.unique(flat_pages[sort], return_index=True)
    sums = np.add.reduceat(flat_counts[sort], first)
    live = sums > 0
    return touched[live], sums[live]


def drain_hotlist(
    touched: np.ndarray, counts: np.ndarray, hotlist_size: int, readout_cycles: float
) -> PebsBatch:
    """Emit the top-``hotlist_size`` pages of one epoch's counts.

    ``touched`` must be sorted ascending with ``counts`` aligned (what
    ``flatnonzero`` + a dense-counter gather produces); the whole-run
    plan (:mod:`repro.hw.drawplan`) feeds the same layout from a sparse
    sort + ``reduceat``, so selection -- including ``argpartition``'s
    tie behaviour, which depends only on the input array -- and the
    final sorted hotlist are bit-identical between the two callers.
    """
    if touched.size == 0:
        return PebsBatch.empty(rate=1)
    if touched.size > hotlist_size:
        keep = np.argpartition(counts, touched.size - hotlist_size)[-hotlist_size:]
        touched = touched[keep]
        counts = counts[keep]
    order = np.argsort(touched)
    return PebsBatch(
        pages=touched[order],
        counts=counts[order],
        rate=1,
        overhead_cycles=readout_cycles,
    )
