"""Ground-truth per-tier stall model with bandwidth contention.

This is the simulator's stand-in for the out-of-order core: it turns the
window's memory traffic into CPU stall cycles.  The model is the same
physics the paper's Equation 1 captures --

    stalls_t = misses_t * effective_latency_t / MLP

-- applied per access group (so each pattern's own MLP amortises its own
latency), with effective latency inflated by bandwidth contention via an
M/M/1-style queueing factor.  The window duration and the contention
level are mutually dependent (utilisation = bytes / (duration * BW)), so
the model solves the fixed point with a few damped iterations.

Note the deliberate architecture: policies never see this module's
outputs directly.  They observe only the counters derived from it
(:mod:`repro.hw.cha`, :mod:`repro.hw.perf`) plus PEBS samples, so PACT's
Equation-1 *estimator* is exercised as a genuinely separate code path
that the tests validate against this ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.common.units import CACHE_LINE_SIZE, CPU_FREQ_GHZ, TierSpec, ns_to_cycles
from repro.hw.access import AccessGroup
from repro.mem.page import Tier

#: Demand-miss traffic is accompanied by prefetch traffic; this factor
#: scales miss bytes to total bytes on the memory link.
DEFAULT_PREFETCH_TRAFFIC_FACTOR = 0.5

#: Utilisation is capped below 1.0 so the queueing term stays finite
#: even when contender traffic nominally oversubscribes the link.
MAX_UTILISATION = 0.96

#: Gain on the M/M/1 rho/(1-rho) latency inflation term.
QUEUE_GAIN = 0.6

_FIXED_POINT_ITERATIONS = 4


@dataclass
class GroupTierShare:
    """One access group's traffic that landed in one tier."""

    group_index: int
    tier: Tier
    pages: np.ndarray
    counts: np.ndarray
    mlp: float
    load_fraction: float = 1.0
    label: str = ""
    #: Filled in by the solver: stall cycles per miss for this share.
    unit_stall_cycles: float = 0.0

    @property
    def misses(self) -> int:
        return int(self.counts.sum())

    def stall_cycles(self) -> float:
        return self.misses * self.unit_stall_cycles

    def per_page_stalls(self) -> np.ndarray:
        """Ground-truth stall cycles attributed to each page of the share."""
        return self.counts.astype(float) * self.unit_stall_cycles


@dataclass
class TierLoad:
    """Aggregate per-tier outcome of one window."""

    tier: Tier
    misses: int = 0
    bytes: float = 0.0
    stall_cycles: float = 0.0
    effective_latency_cycles: float = 0.0
    #: Miss-weighted harmonic-mean MLP of the traffic in this tier.
    mlp: float = 1.0
    utilisation: float = 0.0


@dataclass
class WindowHardware:
    """Full ground-truth outcome of one simulated window."""

    shares: List[GroupTierShare]
    tier_loads: Dict[Tier, TierLoad]
    compute_cycles: float
    duration_cycles: float

    @property
    def total_stall_cycles(self) -> float:
        return sum(load.stall_cycles for load in self.tier_loads.values())

    def shares_in_tier(self, tier: Tier) -> List[GroupTierShare]:
        return [s for s in self.shares if s.tier == tier]


class StallModel:
    """Solves one window's stalls, latency inflation, and duration."""

    def __init__(
        self,
        fast_spec: TierSpec,
        slow_spec: TierSpec,
        freq_ghz: float = CPU_FREQ_GHZ,
        prefetch_traffic_factor: float = DEFAULT_PREFETCH_TRAFFIC_FACTOR,
        obs=None,
    ):
        self.spec = {Tier.FAST: fast_spec, Tier.SLOW: slow_spec}
        self.freq_ghz = freq_ghz
        self.prefetch_traffic_factor = prefetch_traffic_factor
        #: Optional :class:`repro.obs.Observability` sink for the
        #: fixed-point residual gauge (None = no publishing).
        self._obs = obs

    def split_groups(
        self, groups: Sequence[AccessGroup], placement: np.ndarray
    ) -> List[GroupTierShare]:
        """Partition each group's traffic by the current page placement."""
        shares: List[GroupTierShare] = []
        for gi, group in enumerate(groups):
            tiers = placement[group.pages]
            for tier in (Tier.FAST, Tier.SLOW):
                mask = tiers == int(tier)
                if not mask.any():
                    continue
                shares.append(
                    GroupTierShare(
                        group_index=gi,
                        tier=tier,
                        pages=group.pages[mask],
                        counts=group.counts[mask],
                        mlp=group.mlp,
                        load_fraction=group.load_fraction,
                        label=group.label,
                    )
                )
        return shares

    def solve(
        self,
        shares: Sequence[GroupTierShare],
        compute_cycles: float,
        extra_bytes: Optional[Dict[Tier, float]] = None,
        extra_cycles: float = 0.0,
    ) -> WindowHardware:
        """Fixed-point solve of stalls, contention, and window duration.

        ``extra_bytes`` injects link traffic that produces no CPU stalls
        for the observed application (MLC contenders, migration copies).
        ``extra_cycles`` extends the duration without stalls (sampling /
        migration overheads charged to the window).
        """
        extra_bytes = extra_bytes or {}
        loads = {t: TierLoad(tier=t) for t in (Tier.FAST, Tier.SLOW)}
        for share in shares:
            loads[share.tier].misses += share.misses
        for tier, load in loads.items():
            demand_bytes = load.misses * CACHE_LINE_SIZE
            load.bytes = demand_bytes * (1.0 + self.prefetch_traffic_factor)
            load.bytes += float(extra_bytes.get(tier, 0.0))

        # Initial guess: unloaded latency, duration = compute + extra.
        duration = max(compute_cycles + extra_cycles, 1.0)
        residual = 0.0
        for _ in range(_FIXED_POINT_ITERATIONS):
            for tier, load in loads.items():
                spec = self.spec[tier]
                duration_ns = duration / self.freq_ghz
                supply = spec.bytes_per_ns() * duration_ns
                util = min(load.bytes / supply if supply > 0 else 0.0, MAX_UTILISATION)
                load.utilisation = util
                inflation = 1.0 + QUEUE_GAIN * util / (1.0 - util)
                load.effective_latency_cycles = ns_to_cycles(spec.latency_ns, self.freq_ghz) * inflation
            for share in shares:
                lat = loads[share.tier].effective_latency_cycles
                share.unit_stall_cycles = lat / share.mlp
            for load in loads.values():
                load.stall_cycles = 0.0
            for share in shares:
                loads[share.tier].stall_cycles += share.stall_cycles()
            total_stalls = sum(load.stall_cycles for load in loads.values())
            new_duration = max(compute_cycles + extra_cycles + total_stalls, 1.0)
            residual = abs(new_duration - duration) / new_duration
            # Damped update stabilises the few pathological cases where
            # contention and duration oscillate.
            duration = 0.5 * duration + 0.5 * new_duration

        if self._obs is not None:
            # Residual of the last iteration: how far the damped solve
            # still was from its fixed point (loop-health gauge).
            self._obs.gauge("stall/fixed_point_residual", residual)
        for load in loads.values():
            load.mlp = _harmonic_mlp(
                [s for s in shares if s.tier == load.tier]
            )
        return WindowHardware(
            shares=list(shares),
            tier_loads=loads,
            compute_cycles=compute_cycles,
            duration_cycles=duration,
        )


def _harmonic_mlp(shares: Sequence[GroupTierShare]) -> float:
    """Miss-weighted harmonic mean MLP (the MLP the TOR actually sees).

    Harmonic because total occupancy-time is sum(misses * lat / mlp):
    the aggregate behaves like one stream whose MLP is the harmonic
    mean weighted by misses.
    """
    total = sum(s.misses for s in shares)
    if total == 0:
        return 1.0
    inv = sum(s.misses / s.mlp for s in shares)
    return total / inv if inv > 0 else 1.0
