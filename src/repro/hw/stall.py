"""Ground-truth per-tier stall model with bandwidth contention.

This is the simulator's stand-in for the out-of-order core: it turns the
window's memory traffic into CPU stall cycles.  The model is the same
physics the paper's Equation 1 captures --

    stalls_t = misses_t * effective_latency_t / MLP

-- applied per access group (so each pattern's own MLP amortises its own
latency), with effective latency inflated by bandwidth contention via an
M/M/1-style queueing factor.  The window duration and the contention
level are mutually dependent (utilisation = bytes / (duration * BW)), so
the model solves the fixed point with a few damped iterations.

Two equivalent pipelines solve the window:

* the **columnar** one (:class:`ShareBatch` + :meth:`StallModel.solve`
  on a batch): share attributes live in per-window arrays and every
  fixed-point iteration is a handful of numpy ops.  Per-tier stall
  accumulation uses ``np.bincount`` with float weights, which adds
  partial sums *in input-element order* -- exactly the order the legacy
  loop used -- so the float results are bit-identical;
* the **legacy** object-per-share one (:func:`split_groups_legacy` +
  ``solve`` on a plain share list): the original ordered-accumulation
  loops, kept importable both as the exactness reference for the
  property tests and as the fallback should a scenario's summation
  order ever diverge.

Note the deliberate architecture: policies never see this module's
outputs directly.  They observe only the counters derived from it
(:mod:`repro.hw.cha`, :mod:`repro.hw.perf`) plus PEBS samples, so PACT's
Equation-1 *estimator* is exercised as a genuinely separate code path
that the tests validate against this ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.common.units import CACHE_LINE_SIZE, CPU_FREQ_GHZ, TierSpec, ns_to_cycles
from repro.hw.access import AccessGroup
from repro.mem.page import Tier, tier_key

#: Demand-miss traffic is accompanied by prefetch traffic; this factor
#: scales miss bytes to total bytes on the memory link.
DEFAULT_PREFETCH_TRAFFIC_FACTOR = 0.5

#: Utilisation is capped below 1.0 so the queueing term stays finite
#: even when contender traffic nominally oversubscribes the link.
MAX_UTILISATION = 0.96

#: Gain on the M/M/1 rho/(1-rho) latency inflation term.
QUEUE_GAIN = 0.6

_FIXED_POINT_ITERATIONS = 4

#: Row-count cutoff below which :meth:`StallModel._solve_batch` runs the
#: fixed point as plain Python floats.  At typical dynamic-replay widths
#: (groups x tiers ~ 12 rows) the four iterations cost ~16 small-array
#: numpy dispatches; scalar IEEE doubles do the same ops in the same
#: order (bit-identical) for a fraction of the overhead.
_SCALAR_SOLVE_ROWS = 32


@dataclass
class GroupTierShare:
    """One access group's traffic that landed in one tier."""

    group_index: int
    tier: Tier
    pages: np.ndarray
    counts: np.ndarray
    mlp: float
    load_fraction: float = 1.0
    label: str = ""
    #: Filled in by the solver: stall cycles per miss for this share.
    unit_stall_cycles: float = 0.0

    @property
    def misses(self) -> int:
        return int(self.counts.sum())

    def stall_cycles(self) -> float:
        return self.misses * self.unit_stall_cycles

    def per_page_stalls(self) -> np.ndarray:
        """Ground-truth stall cycles attributed to each page of the share."""
        return self.counts.astype(float) * self.unit_stall_cycles


class ShareBatch:
    """Columnar (structure-of-arrays) view of one window's shares.

    Rows are in the legacy share order -- for each group in traffic
    order, its FAST share (if any) then its SLOW share (if any) -- so
    every consumer that walks rows front to back reproduces the exact
    iteration order (and therefore the exact RNG stream and float
    summation order) of the old ``List[GroupTierShare]`` pipeline.

    Page/count data for all shares lives in two tier-partitioned
    concatenation buffers; ``pages_of``/``counts_of`` carve per-share
    slices out of them as views.  The buffers (and the column arrays)
    are scratch owned by the :class:`StallModel` that built the batch:
    a batch is only valid until the model's next ``split_groups`` call.

    For compatibility with code written against share lists, a batch
    supports ``len``, iteration, and indexing; these lazily materialise
    :class:`GroupTierShare` objects (with *copied* page/count arrays, so
    they survive scratch reuse).
    """

    __slots__ = (
        "n",
        "num_tiers",
        "group_index",
        "tier_codes",
        "tiers",
        "mlp",
        "load_fraction",
        "misses",
        "misses_f",
        "offsets",
        "pages_buf",
        "counts_buf",
        "labels",
        "unit_stall_cycles",
        "stall_scratch",
        "tier_misses",
        "_materialised",
    )

    def __init__(
        self,
        n: int,
        group_index: np.ndarray,
        tier_codes: np.ndarray,
        mlp: np.ndarray,
        load_fraction: np.ndarray,
        misses: np.ndarray,
        offsets: np.ndarray,
        pages_buf: np.ndarray,
        counts_buf: np.ndarray,
        labels: List[str],
        unit_stall_cycles: np.ndarray,
        stall_scratch: np.ndarray,
        num_tiers: int = 2,
        misses_f: Optional[np.ndarray] = None,
        tier_misses: Optional[tuple] = None,
    ):
        self.n = n
        self.num_tiers = num_tiers
        self.group_index = group_index
        self.tier_codes = tier_codes
        #: Per-row tier keys (:class:`Tier` enums for tiers 0/1, plain
        #: ints beyond -- consumers key dicts by tier).
        self.tiers = [tier_key(int(c)) for c in tier_codes]
        self.mlp = mlp
        self.load_fraction = load_fraction
        #: Per-row total miss count (precomputed once per window; the
        #: legacy pipeline re-reduced ``counts.sum()`` many times per
        #: share per window).
        self.misses = misses
        self.misses_f = misses.astype(np.float64) if misses_f is None else misses_f
        #: ``None`` in a misses-only batch (see ``split_groups``):
        #: ``pages_of``/``counts_of`` then fail loudly rather than
        #: returning wrong slices.
        self.offsets = offsets
        self.pages_buf = pages_buf
        self.counts_buf = counts_buf
        self.labels = labels
        #: Filled by the solver: per-row stall cycles per miss.
        self.unit_stall_cycles = unit_stall_cycles
        #: Solver scratch for per-row stall weights (reused each iteration).
        self.stall_scratch = stall_scratch
        #: Per-tier miss totals, indexed by ``int(tier)``.
        if tier_misses is None:
            tier_misses = tuple(
                int(misses[tier_codes == code].sum()) for code in range(num_tiers)
            )
        self.tier_misses = tier_misses
        self._materialised: Optional[List[GroupTierShare]] = None

    # -- per-row views -------------------------------------------------------

    def pages_of(self, i: int) -> np.ndarray:
        return self.pages_buf[self.offsets[i] : self.offsets[i + 1]]

    def counts_of(self, i: int) -> np.ndarray:
        return self.counts_buf[self.offsets[i] : self.offsets[i + 1]]

    def rows_in_tier(self, tier: Tier) -> List[int]:
        """Row indices of the shares in ``tier``, in row (= legacy) order."""
        code = int(tier)
        return [i for i in range(self.n) if self.tier_codes[i] == code]

    # -- list compatibility --------------------------------------------------

    def __len__(self) -> int:
        return self.n

    def __iter__(self):
        return iter(self.as_shares())

    def __getitem__(self, i: int) -> GroupTierShare:
        return self.as_shares()[i]

    def __eq__(self, other) -> bool:
        # Supports the common "no shares" check (``batch == []``);
        # element-wise list comparison is not meaningful for dataclasses
        # holding arrays, so anything else falls through.
        if isinstance(other, (list, tuple)) and len(other) == 0:
            return self.n == 0
        return NotImplemented

    def __hash__(self):  # pragma: no cover - batches are not dict keys
        return id(self)

    def as_shares(self) -> List[GroupTierShare]:
        """Materialise :class:`GroupTierShare` objects (copied arrays)."""
        if self._materialised is None:
            self._materialised = [
                GroupTierShare(
                    group_index=int(self.group_index[i]),
                    tier=self.tiers[i],
                    pages=self.pages_of(i).copy(),
                    counts=self.counts_of(i).copy(),
                    mlp=float(self.mlp[i]),
                    load_fraction=float(self.load_fraction[i]),
                    label=self.labels[i],
                    unit_stall_cycles=float(self.unit_stall_cycles[i]),
                )
                for i in range(self.n)
            ]
        return self._materialised


@dataclass
class TierLoad:
    """Aggregate per-tier outcome of one window."""

    tier: Tier
    misses: int = 0
    bytes: float = 0.0
    stall_cycles: float = 0.0
    effective_latency_cycles: float = 0.0
    #: Miss-weighted harmonic-mean MLP of the traffic in this tier.
    mlp: float = 1.0
    utilisation: float = 0.0


@dataclass
class WindowHardware:
    """Full ground-truth outcome of one simulated window."""

    shares: Union[ShareBatch, List[GroupTierShare]]
    tier_loads: Dict[Tier, TierLoad]
    compute_cycles: float
    duration_cycles: float

    @property
    def total_stall_cycles(self) -> float:
        return sum(load.stall_cycles for load in self.tier_loads.values())

    def shares_in_tier(self, tier: Tier) -> List[GroupTierShare]:
        return [s for s in self.shares if s.tier == tier]


def split_groups_legacy(
    groups: Sequence[AccessGroup], placement: np.ndarray, num_tiers: int = 2
) -> List[GroupTierShare]:
    """The original object-per-share split (exactness reference).

    Builds one freshly-allocated :class:`GroupTierShare` per (group,
    tier) with boolean-mask copies -- the behaviour the columnar
    ``split_groups`` replaces.  Kept importable for the property tests
    and as the ordered fallback path.
    """
    shares: List[GroupTierShare] = []
    for gi, group in enumerate(groups):
        tiers = placement[group.pages]
        for code in range(num_tiers):
            mask = tiers == code
            if not mask.any():
                continue
            shares.append(
                GroupTierShare(
                    group_index=gi,
                    tier=tier_key(code),
                    pages=group.pages[mask],
                    counts=group.counts[mask],
                    mlp=group.mlp,
                    load_fraction=group.load_fraction,
                    label=group.label,
                )
            )
    return shares


class StallModel:
    """Solves one window's stalls, latency inflation, and duration."""

    def __init__(
        self,
        fast_spec: Union[TierSpec, Sequence[TierSpec]],
        slow_spec: Optional[TierSpec] = None,
        freq_ghz: float = CPU_FREQ_GHZ,
        prefetch_traffic_factor: float = DEFAULT_PREFETCH_TRAFFIC_FACTOR,
        obs=None,
    ):
        # Either the legacy (fast_spec, slow_spec) pair or an ordered
        # spec sequence for an N-tier topology as the first argument.
        if isinstance(fast_spec, (list, tuple)):
            specs = list(fast_spec)
        else:
            specs = [fast_spec, slow_spec]
        #: Per-tier specs, indexed by tier code (Tier enums work too).
        self.spec: List[TierSpec] = specs
        self.num_tiers = len(specs)
        self.freq_ghz = freq_ghz
        self.prefetch_traffic_factor = prefetch_traffic_factor
        #: Optional :class:`repro.obs.Observability` sink for the
        #: fixed-point residual gauge (None = no publishing).
        self._obs = obs
        # -- reusable split/solve scratch (grown on demand, never shrunk) --
        self._page_scratch = np.empty(0, dtype=np.int64)
        self._count_scratch = np.empty(0, dtype=np.int64)
        self._mask_scratch = np.empty(0, dtype=bool)
        self._key_scratch = np.empty(0, dtype=np.intp)
        self._row_capacity = 0
        self._row_cols: Dict[str, np.ndarray] = {}

    # -- share splitting -----------------------------------------------------

    def split_groups(
        self,
        groups: Sequence[AccessGroup],
        placement: np.ndarray,
        pages: Optional[np.ndarray] = None,
        counts: Optional[np.ndarray] = None,
        tiers: Optional[np.ndarray] = None,
        misses_only: bool = False,
        key_base: Optional[np.ndarray] = None,
        counts_f: Optional[np.ndarray] = None,
        counts_positive: bool = False,
        assume_allocated: bool = False,
    ) -> ShareBatch:
        """Partition each group's traffic by placement, columnar.

        One ``placement`` gather over the window's concatenated pages,
        then a stable partition into the model-owned buffers.  Two
        equivalent strategies, picked by shape: with few (group, tier)
        cells -- the common case, a handful of groups on two tiers --
        a per-cell mask + ``np.compress`` loop is the cheapest stable
        counting sort; with many cells one stable argsort on the packed
        ``group * num_tiers + tier`` key replaces the per-cell passes.
        Both keep entries with equal keys in input order, so each row's
        page and count buffers are byte-identical either way, and rows
        emerge in the legacy share order (per group: FAST then SLOW,
        empty cells skipped).  Entries on UNALLOCATED pages are dropped,
        mirroring the legacy masks that matched no tier.

        ``pages``/``counts`` optionally pass in the already-concatenated
        traffic (the machine builds that concatenation anyway for the
        LRU touch); when omitted it is built here.  ``tiers`` optionally
        passes the per-entry placement gather (``placement[pages]``)
        when the caller already holds it for the same window.  The
        returned batch aliases model scratch and is valid until the
        next call.

        ``misses_only=True`` skips the page/count partition entirely:
        per-row miss totals come from one weighted bincount over the
        packed (group, tier) key, and the returned batch carries
        ``pages_buf=None`` (``pages_of``/``counts_of`` fail loudly).
        Everything the solver, the TOR/perf counters, and the schema-2
        keyed samplers read (row order, misses, mlp, load fractions,
        tier totals) is bit-identical to the partitioned form -- only
        consumers that walk per-share page lists (the schema-1
        PEBS/CHMU samplers, the drawplan builders) need the buffers.

        The remaining keyword hints let a replay driver hand in
        prestaged trace-determined inputs
        (:class:`repro.hw.drawplan.EntryMetaPlan`): ``key_base`` is the
        per-entry ``group * num_tiers`` term of the packed key,
        ``counts_f`` the float64 view of ``counts`` (weighted bincount
        accumulates float64 either way), ``counts_positive`` asserts
        every count is >= 1 (cell presence then follows from the
        weighted bincount, skipping the unweighted one), and
        ``assume_allocated`` asserts no entry sits on an UNALLOCATED
        page (skipping the min scan).  Each hint removes a per-entry
        pass without changing a single output bit.
        """
        n_groups = len(groups)
        if pages is None:
            if n_groups == 0:
                pages = np.empty(0, dtype=np.int64)
                counts = np.empty(0, dtype=np.int64)
            elif n_groups == 1:
                pages, counts = groups[0].pages, groups[0].counts
            else:
                pages = np.concatenate([g.pages for g in groups])
                counts = np.concatenate([g.counts for g in groups])
        total = pages.size
        if not misses_only and self._page_scratch.size < total:
            self._page_scratch = np.empty(total, dtype=np.int64)
            self._count_scratch = np.empty(total, dtype=np.int64)
        if self._mask_scratch.size < total:
            self._mask_scratch = np.empty(total, dtype=bool)
        max_rows = self.num_tiers * n_groups
        if self._row_capacity < max_rows or not self._row_cols:
            self._row_capacity = max(max_rows, 2 * self._row_capacity, 8)
            cap = self._row_capacity
            self._row_cols = {
                "group_index": np.empty(cap, dtype=np.int64),
                "tier_codes": np.empty(cap, dtype=np.intp),
                "mlp": np.empty(cap, dtype=np.float64),
                "load_fraction": np.empty(cap, dtype=np.float64),
                "offsets": np.empty(cap + 1, dtype=np.int64),
                "unit": np.empty(cap, dtype=np.float64),
                "stall_w": np.empty(cap, dtype=np.float64),
            }
        cols = self._row_cols
        tiers_all = placement[pages] if tiers is None else tiers
        num_tiers = self.num_tiers
        if misses_only:
            return self._split_misses_only(
                groups,
                tiers_all,
                counts,
                total,
                n_groups,
                max_rows,
                key_base=key_base,
                counts_f=counts_f,
                counts_positive=counts_positive,
                assume_allocated=assume_allocated,
            )
        if max_rows <= 32:
            labels = []
            row = 0
            off = 0
            cols["offsets"][0] = 0
            start = 0
            for gi, group in enumerate(groups):
                size = group.pages.size
                sub = tiers_all[start : start + size]
                mask = self._mask_scratch[:size]
                for tier_code in range(num_tiers):
                    np.equal(sub, tier_code, out=mask)
                    k = int(np.count_nonzero(mask))
                    if k == 0:
                        continue
                    np.compress(
                        mask,
                        pages[start : start + size],
                        out=self._page_scratch[off : off + k],
                    )
                    np.compress(
                        mask,
                        counts[start : start + size],
                        out=self._count_scratch[off : off + k],
                    )
                    cols["group_index"][row] = gi
                    cols["tier_codes"][row] = tier_code
                    cols["mlp"][row] = group.mlp
                    cols["load_fraction"][row] = group.load_fraction
                    labels.append(group.label)
                    off += k
                    row += 1
                    cols["offsets"][row] = off
                start += size
            offsets = cols["offsets"][: row + 1]
            if row:
                misses = np.add.reduceat(self._count_scratch[:off], offsets[:-1])
            else:
                misses = np.empty(0, dtype=np.int64)
            return ShareBatch(
                n=row,
                group_index=cols["group_index"][:row],
                tier_codes=cols["tier_codes"][:row],
                mlp=cols["mlp"][:row],
                load_fraction=cols["load_fraction"][:row],
                misses=misses,
                offsets=offsets,
                pages_buf=self._page_scratch[:off],
                counts_buf=self._count_scratch[:off],
                labels=labels,
                unit_stall_cycles=cols["unit"][:row],
                stall_scratch=cols["stall_w"][:row],
                num_tiers=num_tiers,
            )
        if n_groups <= 1:
            key = tiers_all
        else:
            # int16 packing keeps numpy's radix path for the stable sort;
            # fall back to int64 for (pathologically) huge group counts.
            key_dtype = np.int16 if n_groups * num_tiers < 32000 else np.int64
            gi_all = np.repeat(
                np.arange(n_groups, dtype=key_dtype),
                [g.pages.size for g in groups],
            )
            key = gi_all * key_dtype(num_tiers)
            np.add(key, tiers_all, out=key, casting="unsafe")
        if total and int(tiers_all.min()) < 0:
            valid = tiers_all >= 0
            pages = pages[valid]
            counts = counts[valid]
            key = key[valid]
            total = pages.size
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        page_buf = self._page_scratch[:total]
        count_buf = self._count_scratch[:total]
        if pages.dtype == np.int64:
            np.take(pages, order, out=page_buf)
        else:
            page_buf[:] = pages[order]
        if counts.dtype == np.int64:
            np.take(counts, order, out=count_buf)
        else:
            count_buf[:] = counts[order]
        labels: List[str]
        if total:
            change = np.empty(total, dtype=bool)
            change[0] = True
            np.not_equal(sorted_key[1:], sorted_key[:-1], out=change[1:])
            starts = np.flatnonzero(change)
            row = starts.size
            row_keys = sorted_key[starts].astype(np.int64)
            if n_groups <= 1:
                row_gi = np.zeros(row, dtype=np.int64)
                row_tier = row_keys
            else:
                row_gi = row_keys // num_tiers
                row_tier = row_keys - row_gi * num_tiers
            cols["group_index"][:row] = row_gi
            cols["tier_codes"][:row] = row_tier
            cols["offsets"][:row] = starts
            cols["offsets"][row] = total
            if n_groups == 1:
                cols["mlp"][:row] = groups[0].mlp
                cols["load_fraction"][:row] = groups[0].load_fraction
                labels = [groups[0].label] * row
            else:
                cols["mlp"][:row] = np.array([g.mlp for g in groups])[row_gi]
                cols["load_fraction"][:row] = np.array(
                    [g.load_fraction for g in groups]
                )[row_gi]
                labels = [groups[gi].label for gi in row_gi]
            misses = np.add.reduceat(count_buf, starts)
        else:
            row = 0
            cols["offsets"][0] = 0
            labels = []
            misses = np.empty(0, dtype=np.int64)
        off = total
        offsets = cols["offsets"][: row + 1]
        return ShareBatch(
            n=row,
            group_index=cols["group_index"][:row],
            tier_codes=cols["tier_codes"][:row],
            mlp=cols["mlp"][:row],
            load_fraction=cols["load_fraction"][:row],
            misses=misses,
            offsets=offsets,
            pages_buf=self._page_scratch[:off],
            counts_buf=self._count_scratch[:off],
            labels=labels,
            unit_stall_cycles=cols["unit"][:row],
            stall_scratch=cols["stall_w"][:row],
            num_tiers=self.num_tiers,
        )

    def _split_misses_only(
        self,
        groups: Sequence[AccessGroup],
        tiers_all: np.ndarray,
        counts: np.ndarray,
        total: int,
        n_groups: int,
        max_rows: int,
        key_base: Optional[np.ndarray] = None,
        counts_f: Optional[np.ndarray] = None,
        counts_positive: bool = False,
        assume_allocated: bool = False,
    ) -> ShareBatch:
        """The bincount split: per-(group, tier) totals, no partition.

        Bincounts over the packed ``group * num_tiers + tier`` key --
        one unweighted for cell presence (count-zero entries still
        create shares, exactly like the legacy masks; skipped when the
        caller guarantees every count is positive), one count-weighted
        for per-cell misses -- replace the stable partition entirely.
        Weighted bincount accumulates float64, but the weights are
        integer miss counts well below 2**53, so the cast back to int64
        is exact and every downstream value matches the partitioned
        path bit for bit.
        """
        num_tiers = self.num_tiers
        cols = self._row_cols
        weights = counts if counts_f is None else counts_f
        if not assume_allocated and total and int(tiers_all.min()) < 0:
            # UNALLOCATED (-1) entries would alias the previous group's
            # last tier in the packed key; the legacy masks silently
            # drop them.
            valid = tiers_all >= 0
            tiers_all = tiers_all[valid]
            weights = weights[valid]
            key_base = None
            if n_groups > 1:
                gi_all = np.repeat(
                    np.arange(n_groups, dtype=np.intp),
                    [g.pages.size for g in groups],
                )[valid]
        elif n_groups > 1 and key_base is None:
            gi_all = np.repeat(
                np.arange(n_groups, dtype=np.intp),
                [g.pages.size for g in groups],
            )
        if n_groups <= 1:
            key = tiers_all
        elif key_base is not None:
            if self._key_scratch.size < total:
                self._key_scratch = np.empty(total, dtype=np.intp)
            key = self._key_scratch[:total]
            np.add(key_base, tiers_all, out=key, casting="unsafe")
        else:
            key = gi_all * num_tiers
            np.add(key, tiers_all, out=key, casting="unsafe")
        cell_misses = np.bincount(key, weights=weights, minlength=max_rows)
        if counts_positive:
            # Every entry's count is >= 1, so a cell is present exactly
            # when its miss sum is nonzero (integer-valued floats: a
            # present cell sums to >= 1.0, an absent one to exactly 0.0).
            row_keys = np.flatnonzero(cell_misses)
        else:
            presence = np.bincount(key, minlength=max_rows)
            row_keys = np.flatnonzero(presence)
        row = row_keys.size
        misses_f = cell_misses[row_keys]
        misses = misses_f.astype(np.int64)
        tier_misses = tuple(
            int(cell_misses[code::num_tiers].sum()) for code in range(num_tiers)
        )
        if n_groups <= 1:
            row_gi = np.zeros(row, dtype=np.int64)
            row_tier = row_keys.astype(np.intp)
        else:
            row_gi = row_keys // num_tiers
            row_tier = (row_keys - row_gi * num_tiers).astype(np.intp)
        cols["group_index"][:row] = row_gi
        cols["tier_codes"][:row] = row_tier
        if n_groups == 1:
            cols["mlp"][:row] = groups[0].mlp
            cols["load_fraction"][:row] = groups[0].load_fraction
            labels = [groups[0].label] * row
        elif n_groups:
            cols["mlp"][:row] = np.array([g.mlp for g in groups])[row_gi]
            cols["load_fraction"][:row] = np.array(
                [g.load_fraction for g in groups]
            )[row_gi]
            labels = [groups[gi].label for gi in row_gi]
        else:
            labels = []
        return ShareBatch(
            n=row,
            group_index=cols["group_index"][:row],
            tier_codes=cols["tier_codes"][:row],
            mlp=cols["mlp"][:row],
            load_fraction=cols["load_fraction"][:row],
            misses=misses,
            offsets=None,
            pages_buf=None,
            counts_buf=None,
            labels=labels,
            unit_stall_cycles=cols["unit"][:row],
            stall_scratch=cols["stall_w"][:row],
            num_tiers=num_tiers,
            misses_f=misses_f,
            tier_misses=tier_misses,
        )

    # -- the fixed point -----------------------------------------------------

    def solve(
        self,
        shares: Union[ShareBatch, Sequence[GroupTierShare]],
        compute_cycles: float,
        extra_bytes: Optional[Dict[Tier, float]] = None,
        extra_cycles: float = 0.0,
    ) -> WindowHardware:
        """Fixed-point solve of stalls, contention, and window duration.

        ``extra_bytes`` injects link traffic that produces no CPU stalls
        for the observed application (MLC contenders, migration copies).
        ``extra_cycles`` extends the duration without stalls (sampling /
        migration overheads charged to the window).

        A :class:`ShareBatch` takes the vectorised path; a plain share
        sequence takes the legacy ordered-accumulation loop.  The two
        are bit-identical (the property tests assert it).
        """
        if isinstance(shares, ShareBatch):
            return self._solve_batch(shares, compute_cycles, extra_bytes, extra_cycles)
        return self._solve_shares(shares, compute_cycles, extra_bytes, extra_cycles)

    def _solve_batch(
        self,
        batch: ShareBatch,
        compute_cycles: float,
        extra_bytes: Optional[Dict[Tier, float]],
        extra_cycles: float,
    ) -> WindowHardware:
        """Vectorised fixed point over the batch columns.

        Each iteration: the per-tier latency/utilisation update stays
        the exact scalar code (two tiers), then per-share unit costs and
        the per-tier stall totals are single numpy ops.  ``bincount``
        accumulates float weights in row order -- the same order (and
        thus the same rounding) as the legacy per-share loop.
        """
        extra_bytes = extra_bytes or {}
        loads = {tier_key(t): TierLoad(tier=tier_key(t)) for t in range(self.num_tiers)}
        for tier, load in loads.items():
            load.misses = batch.tier_misses[int(tier)]
            demand_bytes = load.misses * CACHE_LINE_SIZE
            load.bytes = demand_bytes * (1.0 + self.prefetch_traffic_factor)
            load.bytes += float(extra_bytes.get(tier, 0.0))

        if batch.n <= _SCALAR_SOLVE_ROWS:
            return self._solve_batch_scalar(
                batch, loads, compute_cycles, extra_cycles
            )

        codes = batch.tier_codes
        unit = batch.unit_stall_cycles
        weights = batch.stall_scratch
        lat = np.empty(self.num_tiers, dtype=np.float64)

        duration = max(compute_cycles + extra_cycles, 1.0)
        residual = 0.0
        for _ in range(_FIXED_POINT_ITERATIONS):
            for tier, load in loads.items():
                spec = self.spec[tier]
                duration_ns = duration / self.freq_ghz
                supply = spec.bytes_per_ns() * duration_ns
                util = min(load.bytes / supply if supply > 0 else 0.0, MAX_UTILISATION)
                load.utilisation = util
                inflation = 1.0 + QUEUE_GAIN * util / (1.0 - util)
                load.effective_latency_cycles = ns_to_cycles(spec.latency_ns, self.freq_ghz) * inflation
                lat[int(tier)] = load.effective_latency_cycles
            np.take(lat, codes, out=unit)
            np.divide(unit, batch.mlp, out=unit)
            np.multiply(batch.misses_f, unit, out=weights)
            tier_stalls = np.bincount(codes, weights=weights, minlength=self.num_tiers)
            # Ordered scalar accumulation: for two tiers this is exactly
            # the historical float(fast) + float(slow) sum.
            total_stalls = 0.0
            for tier, load in loads.items():
                load.stall_cycles = float(tier_stalls[int(tier)])
                total_stalls += load.stall_cycles
            new_duration = max(compute_cycles + extra_cycles + total_stalls, 1.0)
            residual = abs(new_duration - duration) / new_duration
            # Damped update stabilises the few pathological cases where
            # contention and duration oscillate.
            duration = 0.5 * duration + 0.5 * new_duration

        if self._obs is not None:
            # Residual of the last iteration: how far the damped solve
            # still was from its fixed point (loop-health gauge).
            self._obs.gauge("stall/fixed_point_residual", residual)
        np.divide(batch.misses_f, batch.mlp, out=weights)
        inv = np.bincount(codes, weights=weights, minlength=self.num_tiers)
        for tier, load in loads.items():
            total = batch.tier_misses[int(tier)]
            if total == 0:
                load.mlp = 1.0
                continue
            tier_inv = float(inv[int(tier)])
            load.mlp = total / tier_inv if tier_inv > 0 else 1.0
        return WindowHardware(
            shares=batch,
            tier_loads=loads,
            compute_cycles=compute_cycles,
            duration_cycles=duration,
        )

    def _solve_batch_scalar(
        self,
        batch: ShareBatch,
        loads: Dict[Tier, "TierLoad"],
        compute_cycles: float,
        extra_cycles: float,
    ) -> WindowHardware:
        """The fixed point of :meth:`_solve_batch` as plain Python floats.

        Python floats are IEEE doubles, and the per-row accumulation
        below performs ``misses_f[i] * (lat[code] / mlp[i])`` and the
        per-bucket sums in exactly the take/divide/multiply/bincount
        order of the vectorised path, so every result is bit-identical.
        At the handful-of-rows widths dynamic replay produces, skipping
        ~16 small-array numpy dispatches per window is a clear win.
        """
        n = batch.n
        codes_l = batch.tier_codes[:n].tolist()
        mlp_l = batch.mlp[:n].tolist()
        misses_l = batch.misses_f[:n].tolist()
        num_tiers = self.num_tiers
        lat = [0.0] * num_tiers

        duration = max(compute_cycles + extra_cycles, 1.0)
        residual = 0.0
        for _ in range(_FIXED_POINT_ITERATIONS):
            for tier, load in loads.items():
                spec = self.spec[tier]
                duration_ns = duration / self.freq_ghz
                supply = spec.bytes_per_ns() * duration_ns
                util = min(load.bytes / supply if supply > 0 else 0.0, MAX_UTILISATION)
                load.utilisation = util
                inflation = 1.0 + QUEUE_GAIN * util / (1.0 - util)
                load.effective_latency_cycles = ns_to_cycles(spec.latency_ns, self.freq_ghz) * inflation
                lat[int(tier)] = load.effective_latency_cycles
            tier_stalls = [0.0] * num_tiers
            for i in range(n):
                c = codes_l[i]
                tier_stalls[c] += misses_l[i] * (lat[c] / mlp_l[i])
            total_stalls = 0.0
            for tier, load in loads.items():
                load.stall_cycles = tier_stalls[int(tier)]
                total_stalls += load.stall_cycles
            new_duration = max(compute_cycles + extra_cycles + total_stalls, 1.0)
            residual = abs(new_duration - duration) / new_duration
            duration = 0.5 * duration + 0.5 * new_duration

        if self._obs is not None:
            self._obs.gauge("stall/fixed_point_residual", residual)
        # Downstream consumers (CHA/PEBS attribution, migration budgets)
        # read the last iteration's per-row unit costs off the batch.
        batch.unit_stall_cycles[:n] = [
            lat[codes_l[i]] / mlp_l[i] for i in range(n)
        ]
        inv = [0.0] * num_tiers
        for i in range(n):
            inv[codes_l[i]] += misses_l[i] / mlp_l[i]
        for tier, load in loads.items():
            total = batch.tier_misses[int(tier)]
            if total == 0:
                load.mlp = 1.0
                continue
            tier_inv = inv[int(tier)]
            load.mlp = total / tier_inv if tier_inv > 0 else 1.0
        return WindowHardware(
            shares=batch,
            tier_loads=loads,
            compute_cycles=compute_cycles,
            duration_cycles=duration,
        )

    def solve_many(
        self,
        batches: Sequence[ShareBatch],
        compute_cycles: Sequence[float],
        extra_bytes_list: Sequence[Optional[Dict[Tier, float]]],
        extra_cycles_list: Sequence[float],
    ) -> List[WindowHardware]:
        """Solve one window for ``R`` independent runs in one batched pass.

        The multi-run driver (:mod:`repro.sim.runbatch`) steps R machines
        over the *same* recorded trace in lockstep; their per-window
        solves are independent, so the per-share numpy work is fused:
        every run's share columns concatenate into flat buffers with
        tier codes offset by ``r * num_tiers``, and each fixed-point
        iteration runs one take/divide/multiply/bincount over all runs
        at once (bincount buckets ``r*T + t`` receive exactly run r's
        rows in row order, so per-bucket float accumulation matches the
        per-run bincount bit for bit).  The per-(run, tier) latency and
        duration updates stay the scalar expressions of
        :meth:`_solve_batch` verbatim, so every returned
        :class:`WindowHardware` is bit-identical to R serial solves.
        """
        R = len(batches)
        T = self.num_tiers
        loads_list: List[Dict[Tier, TierLoad]] = []
        for r in range(R):
            extra = extra_bytes_list[r] or {}
            loads = {tier_key(t): TierLoad(tier=tier_key(t)) for t in range(T)}
            for tier, load in loads.items():
                load.misses = batches[r].tier_misses[int(tier)]
                demand_bytes = load.misses * CACHE_LINE_SIZE
                load.bytes = demand_bytes * (1.0 + self.prefetch_traffic_factor)
                load.bytes += float(extra.get(tier, 0.0))
            loads_list.append(loads)

        sizes = [b.n for b in batches]
        if sum(sizes) <= _SCALAR_SOLVE_ROWS * 4:
            return self._solve_many_scalar(
                batches, loads_list, compute_cycles, extra_cycles_list
            )
        bounds = [0]
        for s in sizes:
            bounds.append(bounds[-1] + s)
        flat_codes = np.concatenate(
            [np.asarray(b.tier_codes, dtype=np.intp) + r * T for r, b in enumerate(batches)]
        )
        flat_mlp = np.concatenate([b.mlp for b in batches])
        flat_misses = np.concatenate([b.misses_f for b in batches])
        flat_unit = np.empty_like(flat_mlp)
        flat_w = np.empty_like(flat_mlp)
        lat = np.empty(R * T, dtype=np.float64)

        base = [compute_cycles[r] + extra_cycles_list[r] for r in range(R)]
        durations = [max(base[r], 1.0) for r in range(R)]
        for _ in range(_FIXED_POINT_ITERATIONS):
            for r in range(R):
                duration = durations[r]
                for tier, load in loads_list[r].items():
                    spec = self.spec[tier]
                    duration_ns = duration / self.freq_ghz
                    supply = spec.bytes_per_ns() * duration_ns
                    util = min(load.bytes / supply if supply > 0 else 0.0, MAX_UTILISATION)
                    load.utilisation = util
                    inflation = 1.0 + QUEUE_GAIN * util / (1.0 - util)
                    load.effective_latency_cycles = (
                        ns_to_cycles(spec.latency_ns, self.freq_ghz) * inflation
                    )
                    lat[r * T + int(tier)] = load.effective_latency_cycles
            np.take(lat, flat_codes, out=flat_unit)
            np.divide(flat_unit, flat_mlp, out=flat_unit)
            np.multiply(flat_misses, flat_unit, out=flat_w)
            tier_stalls = np.bincount(flat_codes, weights=flat_w, minlength=R * T)
            for r in range(R):
                total_stalls = 0.0
                for tier, load in loads_list[r].items():
                    load.stall_cycles = float(tier_stalls[r * T + int(tier)])
                    total_stalls += load.stall_cycles
                new_duration = max(base[r] + total_stalls, 1.0)
                durations[r] = 0.5 * durations[r] + 0.5 * new_duration

        # (No fixed-point residual gauge: the multi-run path only runs
        # with observability disabled.)
        np.divide(flat_misses, flat_mlp, out=flat_w)
        inv = np.bincount(flat_codes, weights=flat_w, minlength=R * T)
        results: List[WindowHardware] = []
        for r in range(R):
            batch = batches[r]
            np.copyto(batch.unit_stall_cycles, flat_unit[bounds[r] : bounds[r + 1]])
            loads = loads_list[r]
            for tier, load in loads.items():
                total = batch.tier_misses[int(tier)]
                if total == 0:
                    load.mlp = 1.0
                    continue
                tier_inv = float(inv[r * T + int(tier)])
                load.mlp = total / tier_inv if tier_inv > 0 else 1.0
            results.append(
                WindowHardware(
                    shares=batch,
                    tier_loads=loads,
                    compute_cycles=compute_cycles[r],
                    duration_cycles=durations[r],
                )
            )
        return results

    def _solve_many_scalar(
        self,
        batches: Sequence[ShareBatch],
        loads_list: List[Dict[Tier, "TierLoad"]],
        compute_cycles: Sequence[float],
        extra_cycles_list: Sequence[float],
    ) -> List[WindowHardware]:
        """Scalar fixed point for :meth:`solve_many` at small total widths.

        Runs are independent, so solving each with the Python-float loop
        of :meth:`_solve_batch_scalar` produces exactly the per-run
        values of the flat batched path (whose ``r*T + t`` buckets only
        ever mix rows of the same run) while skipping the per-window
        flat-buffer concatenations and small-array dispatches.
        """
        R = len(batches)
        T = self.num_tiers
        codes_l = [b.tier_codes[: b.n].tolist() for b in batches]
        mlp_l = [b.mlp[: b.n].tolist() for b in batches]
        misses_l = [b.misses_f[: b.n].tolist() for b in batches]
        lat = [[0.0] * T for _ in range(R)]
        base = [compute_cycles[r] + extra_cycles_list[r] for r in range(R)]
        durations = [max(b, 1.0) for b in base]
        for _ in range(_FIXED_POINT_ITERATIONS):
            for r in range(R):
                duration = durations[r]
                latr = lat[r]
                for tier, load in loads_list[r].items():
                    spec = self.spec[tier]
                    duration_ns = duration / self.freq_ghz
                    supply = spec.bytes_per_ns() * duration_ns
                    util = min(load.bytes / supply if supply > 0 else 0.0, MAX_UTILISATION)
                    load.utilisation = util
                    inflation = 1.0 + QUEUE_GAIN * util / (1.0 - util)
                    load.effective_latency_cycles = (
                        ns_to_cycles(spec.latency_ns, self.freq_ghz) * inflation
                    )
                    latr[int(tier)] = load.effective_latency_cycles
                tier_stalls = [0.0] * T
                cl = codes_l[r]
                ml = mlp_l[r]
                mf = misses_l[r]
                for i in range(len(cl)):
                    c = cl[i]
                    tier_stalls[c] += mf[i] * (latr[c] / ml[i])
                total_stalls = 0.0
                for tier, load in loads_list[r].items():
                    load.stall_cycles = tier_stalls[int(tier)]
                    total_stalls += load.stall_cycles
                new_duration = max(base[r] + total_stalls, 1.0)
                durations[r] = 0.5 * durations[r] + 0.5 * new_duration
        results: List[WindowHardware] = []
        for r in range(R):
            batch = batches[r]
            latr = lat[r]
            cl = codes_l[r]
            ml = mlp_l[r]
            mf = misses_l[r]
            n = batch.n
            batch.unit_stall_cycles[:n] = [
                latr[cl[i]] / ml[i] for i in range(n)
            ]
            inv = [0.0] * T
            for i in range(n):
                inv[cl[i]] += mf[i] / ml[i]
            loads = loads_list[r]
            for tier, load in loads.items():
                total = batch.tier_misses[int(tier)]
                if total == 0:
                    load.mlp = 1.0
                    continue
                tier_inv = inv[int(tier)]
                load.mlp = total / tier_inv if tier_inv > 0 else 1.0
            results.append(
                WindowHardware(
                    shares=batch,
                    tier_loads=loads,
                    compute_cycles=compute_cycles[r],
                    duration_cycles=durations[r],
                )
            )
        return results

    def _solve_shares(
        self,
        shares: Sequence[GroupTierShare],
        compute_cycles: float,
        extra_bytes: Optional[Dict[Tier, float]],
        extra_cycles: float,
    ) -> WindowHardware:
        """Legacy ordered-accumulation fixed point over share objects."""
        extra_bytes = extra_bytes or {}
        loads = {tier_key(t): TierLoad(tier=tier_key(t)) for t in range(self.num_tiers)}
        by_tier: Dict[Tier, List[GroupTierShare]] = {
            tier_key(t): [] for t in range(self.num_tiers)
        }
        share_misses = [share.misses for share in shares]
        for share, misses in zip(shares, share_misses):
            loads[share.tier].misses += misses
            by_tier[share.tier].append(share)
        for tier, load in loads.items():
            demand_bytes = load.misses * CACHE_LINE_SIZE
            load.bytes = demand_bytes * (1.0 + self.prefetch_traffic_factor)
            load.bytes += float(extra_bytes.get(tier, 0.0))

        # Initial guess: unloaded latency, duration = compute + extra.
        duration = max(compute_cycles + extra_cycles, 1.0)
        residual = 0.0
        for _ in range(_FIXED_POINT_ITERATIONS):
            for tier, load in loads.items():
                spec = self.spec[tier]
                duration_ns = duration / self.freq_ghz
                supply = spec.bytes_per_ns() * duration_ns
                util = min(load.bytes / supply if supply > 0 else 0.0, MAX_UTILISATION)
                load.utilisation = util
                inflation = 1.0 + QUEUE_GAIN * util / (1.0 - util)
                load.effective_latency_cycles = ns_to_cycles(spec.latency_ns, self.freq_ghz) * inflation
            for share in shares:
                lat = loads[share.tier].effective_latency_cycles
                share.unit_stall_cycles = lat / share.mlp
            for load in loads.values():
                load.stall_cycles = 0.0
            for share, misses in zip(shares, share_misses):
                loads[share.tier].stall_cycles += misses * share.unit_stall_cycles
            total_stalls = sum(load.stall_cycles for load in loads.values())
            new_duration = max(compute_cycles + extra_cycles + total_stalls, 1.0)
            residual = abs(new_duration - duration) / new_duration
            # Damped update stabilises the few pathological cases where
            # contention and duration oscillate.
            duration = 0.5 * duration + 0.5 * new_duration

        if self._obs is not None:
            # Residual of the last iteration: how far the damped solve
            # still was from its fixed point (loop-health gauge).
            self._obs.gauge("stall/fixed_point_residual", residual)
        for load in loads.values():
            # Shares were bucketed by tier in the first pass above; the
            # old per-tier rescan of the full share list is gone.
            load.mlp = _harmonic_mlp(by_tier[load.tier])
        return WindowHardware(
            shares=list(shares),
            tier_loads=loads,
            compute_cycles=compute_cycles,
            duration_cycles=duration,
        )


def _harmonic_mlp(shares: Sequence[GroupTierShare]) -> float:
    """Miss-weighted harmonic mean MLP (the MLP the TOR actually sees).

    Harmonic because total occupancy-time is sum(misses * lat / mlp):
    the aggregate behaves like one stream whose MLP is the harmonic
    mean weighted by misses.
    """
    total = sum(s.misses for s in shares)
    if total == 0:
        return 1.0
    inv = sum(s.misses / s.mlp for s in shares)
    return total / inv if inv > 0 else 1.0
