"""Ground-truth per-tier stall model with bandwidth contention.

This is the simulator's stand-in for the out-of-order core: it turns the
window's memory traffic into CPU stall cycles.  The model is the same
physics the paper's Equation 1 captures --

    stalls_t = misses_t * effective_latency_t / MLP

-- applied per access group (so each pattern's own MLP amortises its own
latency), with effective latency inflated by bandwidth contention via an
M/M/1-style queueing factor.  The window duration and the contention
level are mutually dependent (utilisation = bytes / (duration * BW)), so
the model solves the fixed point with a few damped iterations.

Two equivalent pipelines solve the window:

* the **columnar** one (:class:`ShareBatch` + :meth:`StallModel.solve`
  on a batch): share attributes live in per-window arrays and every
  fixed-point iteration is a handful of numpy ops.  Per-tier stall
  accumulation uses ``np.bincount`` with float weights, which adds
  partial sums *in input-element order* -- exactly the order the legacy
  loop used -- so the float results are bit-identical;
* the **legacy** object-per-share one (:func:`split_groups_legacy` +
  ``solve`` on a plain share list): the original ordered-accumulation
  loops, kept importable both as the exactness reference for the
  property tests and as the fallback should a scenario's summation
  order ever diverge.

Note the deliberate architecture: policies never see this module's
outputs directly.  They observe only the counters derived from it
(:mod:`repro.hw.cha`, :mod:`repro.hw.perf`) plus PEBS samples, so PACT's
Equation-1 *estimator* is exercised as a genuinely separate code path
that the tests validate against this ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.common.units import CACHE_LINE_SIZE, CPU_FREQ_GHZ, TierSpec, ns_to_cycles
from repro.hw.access import AccessGroup
from repro.mem.page import Tier, tier_key

#: Demand-miss traffic is accompanied by prefetch traffic; this factor
#: scales miss bytes to total bytes on the memory link.
DEFAULT_PREFETCH_TRAFFIC_FACTOR = 0.5

#: Utilisation is capped below 1.0 so the queueing term stays finite
#: even when contender traffic nominally oversubscribes the link.
MAX_UTILISATION = 0.96

#: Gain on the M/M/1 rho/(1-rho) latency inflation term.
QUEUE_GAIN = 0.6

_FIXED_POINT_ITERATIONS = 4


@dataclass
class GroupTierShare:
    """One access group's traffic that landed in one tier."""

    group_index: int
    tier: Tier
    pages: np.ndarray
    counts: np.ndarray
    mlp: float
    load_fraction: float = 1.0
    label: str = ""
    #: Filled in by the solver: stall cycles per miss for this share.
    unit_stall_cycles: float = 0.0

    @property
    def misses(self) -> int:
        return int(self.counts.sum())

    def stall_cycles(self) -> float:
        return self.misses * self.unit_stall_cycles

    def per_page_stalls(self) -> np.ndarray:
        """Ground-truth stall cycles attributed to each page of the share."""
        return self.counts.astype(float) * self.unit_stall_cycles


class ShareBatch:
    """Columnar (structure-of-arrays) view of one window's shares.

    Rows are in the legacy share order -- for each group in traffic
    order, its FAST share (if any) then its SLOW share (if any) -- so
    every consumer that walks rows front to back reproduces the exact
    iteration order (and therefore the exact RNG stream and float
    summation order) of the old ``List[GroupTierShare]`` pipeline.

    Page/count data for all shares lives in two tier-partitioned
    concatenation buffers; ``pages_of``/``counts_of`` carve per-share
    slices out of them as views.  The buffers (and the column arrays)
    are scratch owned by the :class:`StallModel` that built the batch:
    a batch is only valid until the model's next ``split_groups`` call.

    For compatibility with code written against share lists, a batch
    supports ``len``, iteration, and indexing; these lazily materialise
    :class:`GroupTierShare` objects (with *copied* page/count arrays, so
    they survive scratch reuse).
    """

    __slots__ = (
        "n",
        "num_tiers",
        "group_index",
        "tier_codes",
        "tiers",
        "mlp",
        "load_fraction",
        "misses",
        "misses_f",
        "offsets",
        "pages_buf",
        "counts_buf",
        "labels",
        "unit_stall_cycles",
        "stall_scratch",
        "tier_misses",
        "_materialised",
    )

    def __init__(
        self,
        n: int,
        group_index: np.ndarray,
        tier_codes: np.ndarray,
        mlp: np.ndarray,
        load_fraction: np.ndarray,
        misses: np.ndarray,
        offsets: np.ndarray,
        pages_buf: np.ndarray,
        counts_buf: np.ndarray,
        labels: List[str],
        unit_stall_cycles: np.ndarray,
        stall_scratch: np.ndarray,
        num_tiers: int = 2,
    ):
        self.n = n
        self.num_tiers = num_tiers
        self.group_index = group_index
        self.tier_codes = tier_codes
        #: Per-row tier keys (:class:`Tier` enums for tiers 0/1, plain
        #: ints beyond -- consumers key dicts by tier).
        self.tiers = [tier_key(int(c)) for c in tier_codes]
        self.mlp = mlp
        self.load_fraction = load_fraction
        #: Per-row total miss count (precomputed once per window; the
        #: legacy pipeline re-reduced ``counts.sum()`` many times per
        #: share per window).
        self.misses = misses
        self.misses_f = misses.astype(np.float64)
        self.offsets = offsets
        self.pages_buf = pages_buf
        self.counts_buf = counts_buf
        self.labels = labels
        #: Filled by the solver: per-row stall cycles per miss.
        self.unit_stall_cycles = unit_stall_cycles
        #: Solver scratch for per-row stall weights (reused each iteration).
        self.stall_scratch = stall_scratch
        #: Per-tier miss totals, indexed by ``int(tier)``.
        self.tier_misses = tuple(
            int(misses[tier_codes == code].sum()) for code in range(num_tiers)
        )
        self._materialised: Optional[List[GroupTierShare]] = None

    # -- per-row views -------------------------------------------------------

    def pages_of(self, i: int) -> np.ndarray:
        return self.pages_buf[self.offsets[i] : self.offsets[i + 1]]

    def counts_of(self, i: int) -> np.ndarray:
        return self.counts_buf[self.offsets[i] : self.offsets[i + 1]]

    def rows_in_tier(self, tier: Tier) -> List[int]:
        """Row indices of the shares in ``tier``, in row (= legacy) order."""
        code = int(tier)
        return [i for i in range(self.n) if self.tier_codes[i] == code]

    # -- list compatibility --------------------------------------------------

    def __len__(self) -> int:
        return self.n

    def __iter__(self):
        return iter(self.as_shares())

    def __getitem__(self, i: int) -> GroupTierShare:
        return self.as_shares()[i]

    def __eq__(self, other) -> bool:
        # Supports the common "no shares" check (``batch == []``);
        # element-wise list comparison is not meaningful for dataclasses
        # holding arrays, so anything else falls through.
        if isinstance(other, (list, tuple)) and len(other) == 0:
            return self.n == 0
        return NotImplemented

    def __hash__(self):  # pragma: no cover - batches are not dict keys
        return id(self)

    def as_shares(self) -> List[GroupTierShare]:
        """Materialise :class:`GroupTierShare` objects (copied arrays)."""
        if self._materialised is None:
            self._materialised = [
                GroupTierShare(
                    group_index=int(self.group_index[i]),
                    tier=self.tiers[i],
                    pages=self.pages_of(i).copy(),
                    counts=self.counts_of(i).copy(),
                    mlp=float(self.mlp[i]),
                    load_fraction=float(self.load_fraction[i]),
                    label=self.labels[i],
                    unit_stall_cycles=float(self.unit_stall_cycles[i]),
                )
                for i in range(self.n)
            ]
        return self._materialised


@dataclass
class TierLoad:
    """Aggregate per-tier outcome of one window."""

    tier: Tier
    misses: int = 0
    bytes: float = 0.0
    stall_cycles: float = 0.0
    effective_latency_cycles: float = 0.0
    #: Miss-weighted harmonic-mean MLP of the traffic in this tier.
    mlp: float = 1.0
    utilisation: float = 0.0


@dataclass
class WindowHardware:
    """Full ground-truth outcome of one simulated window."""

    shares: Union[ShareBatch, List[GroupTierShare]]
    tier_loads: Dict[Tier, TierLoad]
    compute_cycles: float
    duration_cycles: float

    @property
    def total_stall_cycles(self) -> float:
        return sum(load.stall_cycles for load in self.tier_loads.values())

    def shares_in_tier(self, tier: Tier) -> List[GroupTierShare]:
        return [s for s in self.shares if s.tier == tier]


def split_groups_legacy(
    groups: Sequence[AccessGroup], placement: np.ndarray, num_tiers: int = 2
) -> List[GroupTierShare]:
    """The original object-per-share split (exactness reference).

    Builds one freshly-allocated :class:`GroupTierShare` per (group,
    tier) with boolean-mask copies -- the behaviour the columnar
    ``split_groups`` replaces.  Kept importable for the property tests
    and as the ordered fallback path.
    """
    shares: List[GroupTierShare] = []
    for gi, group in enumerate(groups):
        tiers = placement[group.pages]
        for code in range(num_tiers):
            mask = tiers == code
            if not mask.any():
                continue
            shares.append(
                GroupTierShare(
                    group_index=gi,
                    tier=tier_key(code),
                    pages=group.pages[mask],
                    counts=group.counts[mask],
                    mlp=group.mlp,
                    load_fraction=group.load_fraction,
                    label=group.label,
                )
            )
    return shares


class StallModel:
    """Solves one window's stalls, latency inflation, and duration."""

    def __init__(
        self,
        fast_spec: Union[TierSpec, Sequence[TierSpec]],
        slow_spec: Optional[TierSpec] = None,
        freq_ghz: float = CPU_FREQ_GHZ,
        prefetch_traffic_factor: float = DEFAULT_PREFETCH_TRAFFIC_FACTOR,
        obs=None,
    ):
        # Either the legacy (fast_spec, slow_spec) pair or an ordered
        # spec sequence for an N-tier topology as the first argument.
        if isinstance(fast_spec, (list, tuple)):
            specs = list(fast_spec)
        else:
            specs = [fast_spec, slow_spec]
        #: Per-tier specs, indexed by tier code (Tier enums work too).
        self.spec: List[TierSpec] = specs
        self.num_tiers = len(specs)
        self.freq_ghz = freq_ghz
        self.prefetch_traffic_factor = prefetch_traffic_factor
        #: Optional :class:`repro.obs.Observability` sink for the
        #: fixed-point residual gauge (None = no publishing).
        self._obs = obs
        # -- reusable split/solve scratch (grown on demand, never shrunk) --
        self._page_scratch = np.empty(0, dtype=np.int64)
        self._count_scratch = np.empty(0, dtype=np.int64)
        self._mask_scratch = np.empty(0, dtype=bool)
        self._row_capacity = 0
        self._row_cols: Dict[str, np.ndarray] = {}

    # -- share splitting -----------------------------------------------------

    def split_groups(
        self,
        groups: Sequence[AccessGroup],
        placement: np.ndarray,
        pages: Optional[np.ndarray] = None,
        counts: Optional[np.ndarray] = None,
    ) -> ShareBatch:
        """Partition each group's traffic by placement, columnar.

        One vectorised pass: a single ``placement`` gather over the
        window's concatenated pages, then per (group, tier) a mask +
        ``np.compress`` into the model-owned partitioned buffers.  Rows
        come out in the legacy share order (per group: FAST then SLOW).

        ``pages``/``counts`` optionally pass in the already-concatenated
        traffic (the machine builds that concatenation anyway for the
        LRU touch); when omitted it is built here.  The returned batch
        aliases model scratch and is valid until the next call.
        """
        n_groups = len(groups)
        if pages is None:
            if n_groups == 0:
                pages = np.empty(0, dtype=np.int64)
                counts = np.empty(0, dtype=np.int64)
            elif n_groups == 1:
                pages, counts = groups[0].pages, groups[0].counts
            else:
                pages = np.concatenate([g.pages for g in groups])
                counts = np.concatenate([g.counts for g in groups])
        total = pages.size
        if self._page_scratch.size < total:
            self._page_scratch = np.empty(total, dtype=np.int64)
            self._count_scratch = np.empty(total, dtype=np.int64)
            self._mask_scratch = np.empty(total, dtype=bool)
        max_rows = self.num_tiers * n_groups
        if self._row_capacity < max_rows or not self._row_cols:
            self._row_capacity = max(max_rows, 2 * self._row_capacity, 8)
            cap = self._row_capacity
            self._row_cols = {
                "group_index": np.empty(cap, dtype=np.int64),
                "tier_codes": np.empty(cap, dtype=np.intp),
                "mlp": np.empty(cap, dtype=np.float64),
                "load_fraction": np.empty(cap, dtype=np.float64),
                "offsets": np.empty(cap + 1, dtype=np.int64),
                "unit": np.empty(cap, dtype=np.float64),
                "stall_w": np.empty(cap, dtype=np.float64),
            }
        cols = self._row_cols
        tiers_all = placement[pages]
        labels: List[str] = []
        row = 0
        off = 0
        cols["offsets"][0] = 0
        start = 0
        for gi, group in enumerate(groups):
            size = group.pages.size
            sub = tiers_all[start : start + size]
            for tier_code in range(self.num_tiers):
                mask = self._mask_scratch[:size]
                np.equal(sub, tier_code, out=mask)
                k = int(np.count_nonzero(mask))
                if k == 0:
                    continue
                np.compress(
                    mask, pages[start : start + size], out=self._page_scratch[off : off + k]
                )
                np.compress(
                    mask, counts[start : start + size], out=self._count_scratch[off : off + k]
                )
                cols["group_index"][row] = gi
                cols["tier_codes"][row] = tier_code
                cols["mlp"][row] = group.mlp
                cols["load_fraction"][row] = group.load_fraction
                labels.append(group.label)
                off += k
                row += 1
                cols["offsets"][row] = off
            start += size
        offsets = cols["offsets"][: row + 1]
        if row:
            misses = np.add.reduceat(self._count_scratch[:off], offsets[:-1])
        else:
            misses = np.empty(0, dtype=np.int64)
        return ShareBatch(
            n=row,
            group_index=cols["group_index"][:row],
            tier_codes=cols["tier_codes"][:row],
            mlp=cols["mlp"][:row],
            load_fraction=cols["load_fraction"][:row],
            misses=misses,
            offsets=offsets,
            pages_buf=self._page_scratch[:off],
            counts_buf=self._count_scratch[:off],
            labels=labels,
            unit_stall_cycles=cols["unit"][:row],
            stall_scratch=cols["stall_w"][:row],
            num_tiers=self.num_tiers,
        )

    # -- the fixed point -----------------------------------------------------

    def solve(
        self,
        shares: Union[ShareBatch, Sequence[GroupTierShare]],
        compute_cycles: float,
        extra_bytes: Optional[Dict[Tier, float]] = None,
        extra_cycles: float = 0.0,
    ) -> WindowHardware:
        """Fixed-point solve of stalls, contention, and window duration.

        ``extra_bytes`` injects link traffic that produces no CPU stalls
        for the observed application (MLC contenders, migration copies).
        ``extra_cycles`` extends the duration without stalls (sampling /
        migration overheads charged to the window).

        A :class:`ShareBatch` takes the vectorised path; a plain share
        sequence takes the legacy ordered-accumulation loop.  The two
        are bit-identical (the property tests assert it).
        """
        if isinstance(shares, ShareBatch):
            return self._solve_batch(shares, compute_cycles, extra_bytes, extra_cycles)
        return self._solve_shares(shares, compute_cycles, extra_bytes, extra_cycles)

    def _solve_batch(
        self,
        batch: ShareBatch,
        compute_cycles: float,
        extra_bytes: Optional[Dict[Tier, float]],
        extra_cycles: float,
    ) -> WindowHardware:
        """Vectorised fixed point over the batch columns.

        Each iteration: the per-tier latency/utilisation update stays
        the exact scalar code (two tiers), then per-share unit costs and
        the per-tier stall totals are single numpy ops.  ``bincount``
        accumulates float weights in row order -- the same order (and
        thus the same rounding) as the legacy per-share loop.
        """
        extra_bytes = extra_bytes or {}
        loads = {tier_key(t): TierLoad(tier=tier_key(t)) for t in range(self.num_tiers)}
        for tier, load in loads.items():
            load.misses = batch.tier_misses[int(tier)]
            demand_bytes = load.misses * CACHE_LINE_SIZE
            load.bytes = demand_bytes * (1.0 + self.prefetch_traffic_factor)
            load.bytes += float(extra_bytes.get(tier, 0.0))

        codes = batch.tier_codes
        unit = batch.unit_stall_cycles
        weights = batch.stall_scratch
        lat = np.empty(self.num_tiers, dtype=np.float64)

        duration = max(compute_cycles + extra_cycles, 1.0)
        residual = 0.0
        for _ in range(_FIXED_POINT_ITERATIONS):
            for tier, load in loads.items():
                spec = self.spec[tier]
                duration_ns = duration / self.freq_ghz
                supply = spec.bytes_per_ns() * duration_ns
                util = min(load.bytes / supply if supply > 0 else 0.0, MAX_UTILISATION)
                load.utilisation = util
                inflation = 1.0 + QUEUE_GAIN * util / (1.0 - util)
                load.effective_latency_cycles = ns_to_cycles(spec.latency_ns, self.freq_ghz) * inflation
                lat[int(tier)] = load.effective_latency_cycles
            np.take(lat, codes, out=unit)
            np.divide(unit, batch.mlp, out=unit)
            np.multiply(batch.misses_f, unit, out=weights)
            tier_stalls = np.bincount(codes, weights=weights, minlength=self.num_tiers)
            # Ordered scalar accumulation: for two tiers this is exactly
            # the historical float(fast) + float(slow) sum.
            total_stalls = 0.0
            for tier, load in loads.items():
                load.stall_cycles = float(tier_stalls[int(tier)])
                total_stalls += load.stall_cycles
            new_duration = max(compute_cycles + extra_cycles + total_stalls, 1.0)
            residual = abs(new_duration - duration) / new_duration
            # Damped update stabilises the few pathological cases where
            # contention and duration oscillate.
            duration = 0.5 * duration + 0.5 * new_duration

        if self._obs is not None:
            # Residual of the last iteration: how far the damped solve
            # still was from its fixed point (loop-health gauge).
            self._obs.gauge("stall/fixed_point_residual", residual)
        np.divide(batch.misses_f, batch.mlp, out=weights)
        inv = np.bincount(codes, weights=weights, minlength=self.num_tiers)
        for tier, load in loads.items():
            total = batch.tier_misses[int(tier)]
            if total == 0:
                load.mlp = 1.0
                continue
            tier_inv = float(inv[int(tier)])
            load.mlp = total / tier_inv if tier_inv > 0 else 1.0
        return WindowHardware(
            shares=batch,
            tier_loads=loads,
            compute_cycles=compute_cycles,
            duration_cycles=duration,
        )

    def solve_many(
        self,
        batches: Sequence[ShareBatch],
        compute_cycles: Sequence[float],
        extra_bytes_list: Sequence[Optional[Dict[Tier, float]]],
        extra_cycles_list: Sequence[float],
    ) -> List[WindowHardware]:
        """Solve one window for ``R`` independent runs in one batched pass.

        The multi-run driver (:mod:`repro.sim.runbatch`) steps R machines
        over the *same* recorded trace in lockstep; their per-window
        solves are independent, so the per-share numpy work is fused:
        every run's share columns concatenate into flat buffers with
        tier codes offset by ``r * num_tiers``, and each fixed-point
        iteration runs one take/divide/multiply/bincount over all runs
        at once (bincount buckets ``r*T + t`` receive exactly run r's
        rows in row order, so per-bucket float accumulation matches the
        per-run bincount bit for bit).  The per-(run, tier) latency and
        duration updates stay the scalar expressions of
        :meth:`_solve_batch` verbatim, so every returned
        :class:`WindowHardware` is bit-identical to R serial solves.
        """
        R = len(batches)
        T = self.num_tiers
        loads_list: List[Dict[Tier, TierLoad]] = []
        for r in range(R):
            extra = extra_bytes_list[r] or {}
            loads = {tier_key(t): TierLoad(tier=tier_key(t)) for t in range(T)}
            for tier, load in loads.items():
                load.misses = batches[r].tier_misses[int(tier)]
                demand_bytes = load.misses * CACHE_LINE_SIZE
                load.bytes = demand_bytes * (1.0 + self.prefetch_traffic_factor)
                load.bytes += float(extra.get(tier, 0.0))
            loads_list.append(loads)

        sizes = [b.n for b in batches]
        bounds = [0]
        for s in sizes:
            bounds.append(bounds[-1] + s)
        flat_codes = np.concatenate(
            [np.asarray(b.tier_codes, dtype=np.intp) + r * T for r, b in enumerate(batches)]
        )
        flat_mlp = np.concatenate([b.mlp for b in batches])
        flat_misses = np.concatenate([b.misses_f for b in batches])
        flat_unit = np.empty_like(flat_mlp)
        flat_w = np.empty_like(flat_mlp)
        lat = np.empty(R * T, dtype=np.float64)

        base = [compute_cycles[r] + extra_cycles_list[r] for r in range(R)]
        durations = [max(base[r], 1.0) for r in range(R)]
        for _ in range(_FIXED_POINT_ITERATIONS):
            for r in range(R):
                duration = durations[r]
                for tier, load in loads_list[r].items():
                    spec = self.spec[tier]
                    duration_ns = duration / self.freq_ghz
                    supply = spec.bytes_per_ns() * duration_ns
                    util = min(load.bytes / supply if supply > 0 else 0.0, MAX_UTILISATION)
                    load.utilisation = util
                    inflation = 1.0 + QUEUE_GAIN * util / (1.0 - util)
                    load.effective_latency_cycles = (
                        ns_to_cycles(spec.latency_ns, self.freq_ghz) * inflation
                    )
                    lat[r * T + int(tier)] = load.effective_latency_cycles
            np.take(lat, flat_codes, out=flat_unit)
            np.divide(flat_unit, flat_mlp, out=flat_unit)
            np.multiply(flat_misses, flat_unit, out=flat_w)
            tier_stalls = np.bincount(flat_codes, weights=flat_w, minlength=R * T)
            for r in range(R):
                total_stalls = 0.0
                for tier, load in loads_list[r].items():
                    load.stall_cycles = float(tier_stalls[r * T + int(tier)])
                    total_stalls += load.stall_cycles
                new_duration = max(base[r] + total_stalls, 1.0)
                durations[r] = 0.5 * durations[r] + 0.5 * new_duration

        # (No fixed-point residual gauge: the multi-run path only runs
        # with observability disabled.)
        np.divide(flat_misses, flat_mlp, out=flat_w)
        inv = np.bincount(flat_codes, weights=flat_w, minlength=R * T)
        results: List[WindowHardware] = []
        for r in range(R):
            batch = batches[r]
            np.copyto(batch.unit_stall_cycles, flat_unit[bounds[r] : bounds[r + 1]])
            loads = loads_list[r]
            for tier, load in loads.items():
                total = batch.tier_misses[int(tier)]
                if total == 0:
                    load.mlp = 1.0
                    continue
                tier_inv = float(inv[r * T + int(tier)])
                load.mlp = total / tier_inv if tier_inv > 0 else 1.0
            results.append(
                WindowHardware(
                    shares=batch,
                    tier_loads=loads,
                    compute_cycles=compute_cycles[r],
                    duration_cycles=durations[r],
                )
            )
        return results

    def _solve_shares(
        self,
        shares: Sequence[GroupTierShare],
        compute_cycles: float,
        extra_bytes: Optional[Dict[Tier, float]],
        extra_cycles: float,
    ) -> WindowHardware:
        """Legacy ordered-accumulation fixed point over share objects."""
        extra_bytes = extra_bytes or {}
        loads = {tier_key(t): TierLoad(tier=tier_key(t)) for t in range(self.num_tiers)}
        by_tier: Dict[Tier, List[GroupTierShare]] = {
            tier_key(t): [] for t in range(self.num_tiers)
        }
        share_misses = [share.misses for share in shares]
        for share, misses in zip(shares, share_misses):
            loads[share.tier].misses += misses
            by_tier[share.tier].append(share)
        for tier, load in loads.items():
            demand_bytes = load.misses * CACHE_LINE_SIZE
            load.bytes = demand_bytes * (1.0 + self.prefetch_traffic_factor)
            load.bytes += float(extra_bytes.get(tier, 0.0))

        # Initial guess: unloaded latency, duration = compute + extra.
        duration = max(compute_cycles + extra_cycles, 1.0)
        residual = 0.0
        for _ in range(_FIXED_POINT_ITERATIONS):
            for tier, load in loads.items():
                spec = self.spec[tier]
                duration_ns = duration / self.freq_ghz
                supply = spec.bytes_per_ns() * duration_ns
                util = min(load.bytes / supply if supply > 0 else 0.0, MAX_UTILISATION)
                load.utilisation = util
                inflation = 1.0 + QUEUE_GAIN * util / (1.0 - util)
                load.effective_latency_cycles = ns_to_cycles(spec.latency_ns, self.freq_ghz) * inflation
            for share in shares:
                lat = loads[share.tier].effective_latency_cycles
                share.unit_stall_cycles = lat / share.mlp
            for load in loads.values():
                load.stall_cycles = 0.0
            for share, misses in zip(shares, share_misses):
                loads[share.tier].stall_cycles += misses * share.unit_stall_cycles
            total_stalls = sum(load.stall_cycles for load in loads.values())
            new_duration = max(compute_cycles + extra_cycles + total_stalls, 1.0)
            residual = abs(new_duration - duration) / new_duration
            # Damped update stabilises the few pathological cases where
            # contention and duration oscillate.
            duration = 0.5 * duration + 0.5 * new_duration

        if self._obs is not None:
            # Residual of the last iteration: how far the damped solve
            # still was from its fixed point (loop-health gauge).
            self._obs.gauge("stall/fixed_point_residual", residual)
        for load in loads.values():
            # Shares were bucketed by tier in the first pass above; the
            # old per-tier rescan of the full share list is gone.
            load.mlp = _harmonic_mlp(by_tier[load.tier])
        return WindowHardware(
            shares=list(shares),
            tier_loads=loads,
            compute_cycles=compute_cycles,
            duration_cycles=duration,
        )


def _harmonic_mlp(shares: Sequence[GroupTierShare]) -> float:
    """Miss-weighted harmonic mean MLP (the MLP the TOR actually sees).

    Harmonic because total occupancy-time is sum(misses * lat / mlp):
    the aggregate behaves like one stream whose MLP is the harmonic
    mean weighted by misses.
    """
    total = sum(s.misses for s in shares)
    if total == 0:
        return 1.0
    inv = sum(s.misses / s.mlp for s in shares)
    return total / inv if inv > 0 else 1.0
