"""Memory-traffic descriptions exchanged between workloads and hardware.

Workloads emit, per sampling window, a list of :class:`AccessGroup`
objects.  A group bundles LLC-miss traffic that shares one access
pattern: the same effective memory-level parallelism (MLP), e.g. "the
streaming thread" or "pointer-chasing over the hub pages".  This is the
granularity at which MLP is physically meaningful -- it is a property of
the code issuing the requests, not of individual pages -- and it is what
lets the simulator produce the phased, per-tier MLP behaviour the paper
measures via CHA/TOR occupancy (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass
class AccessGroup:
    """LLC-miss traffic with a common access pattern within one window.

    ``counts[i]`` is the number of demand LLC misses to ``pages[i]``
    during the window.  ``mlp`` is the pattern's effective parallelism:
    ~1-2 for dependent pointer chasing, 8-24 for prefetched streaming.
    """

    pages: np.ndarray
    counts: np.ndarray
    mlp: float
    load_fraction: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        self.pages = np.asarray(self.pages, dtype=np.int64)
        self.counts = np.asarray(self.counts, dtype=np.int64)
        if self.pages.shape != self.counts.shape:
            raise ValueError("pages and counts must align")
        if self.mlp <= 0:
            raise ValueError("mlp must be positive")
        if not 0.0 <= self.load_fraction <= 1.0:
            raise ValueError("load_fraction must be in [0, 1]")

    @property
    def total_misses(self) -> int:
        return int(self.counts.sum())


@dataclass
class WindowTraffic:
    """Everything a workload does during one sampling window."""

    groups: List[AccessGroup]
    #: Cycles of pure compute (no memory stalls) in this window.
    compute_cycles: float
    #: True when the workload has finished its total work after this window.
    done: bool = False
    #: Free-form phase tag, surfaced in traces and benches.
    phase: str = ""

    #: Optional pre-concatenated views over all groups' pages/counts, in
    #: group order.  Replayed windows are contiguous slices of one flat
    #: trace column, so providing these lets the simulator skip a
    #: per-window ``np.concatenate``; when absent the simulator builds
    #: the flat arrays itself.
    flat_pages: Optional[np.ndarray] = None
    flat_counts: Optional[np.ndarray] = None

    extra: dict = field(default_factory=dict)

    def total_misses(self) -> int:
        return sum(g.total_misses for g in self.groups)

    def touched_pages(self) -> np.ndarray:
        """Unique pages accessed this window (feeds the LRU clock)."""
        if not self.groups:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([g.pages[g.counts > 0] for g in self.groups]))
