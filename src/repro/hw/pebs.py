"""PEBS-style sampled page-access observation.

Intel PEBS delivers one record per N hardware events (here: slow-tier
LLC-miss loads, event ``MEM_LOAD_L3_MISS_RETIRE``).  Over a 20 ms window
this is statistically a binomial thinning of each page's true miss
count, which is exactly how the sampler below draws its observations.

The sampler also models the cost of consuming PEBS records (the
dedicated processing thread of §4.6): each record costs a fixed number
of cycles, so denser sampling (a lower ``rate``) buys accuracy with
overhead -- the trade-off probed by the Figure 10a sensitivity study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.hw.stall import GroupTierShare, ShareBatch
from repro.mem.page import Tier

#: Default PEBS sampling rate: one record per 400 qualifying events (§4.3.5).
DEFAULT_PEBS_RATE = 400

#: Cycles to process one PEBS record (copy out, hash-table update).
DEFAULT_CYCLES_PER_RECORD = 150.0


@dataclass
class PebsBatch:
    """Sampled page accesses from one window.

    ``counts[i]`` is the number of PEBS records that hit ``pages[i]``;
    multiply by the sampling rate to estimate true access counts.
    ``latencies``, when present, carries the record-weighted mean
    *exposed* load latency per page -- the per-load latency reporting
    that Sapphire-Rapids-class PEBS/TPEBS adds (§4.3.7), used by the
    latency-weighted attribution extension.
    """

    pages: np.ndarray
    counts: np.ndarray
    rate: int
    overhead_cycles: float
    latencies: Optional[np.ndarray] = None

    @property
    def total_records(self) -> int:
        return int(self.counts.sum())

    def estimated_accesses(self) -> np.ndarray:
        """Per-page access estimates (records * rate)."""
        return self.counts.astype(float) * self.rate

    @staticmethod
    def empty(rate: int) -> "PebsBatch":
        return PebsBatch(
            pages=np.empty(0, dtype=np.int64),
            counts=np.empty(0, dtype=np.int64),
            rate=rate,
            overhead_cycles=0.0,
        )


class PebsSampler:
    """Binomial 1-in-N thinning of per-page miss counts."""

    def __init__(
        self,
        rate: int = DEFAULT_PEBS_RATE,
        cycles_per_record: float = DEFAULT_CYCLES_PER_RECORD,
        rng: Optional[np.random.Generator] = None,
        loads_only: bool = True,
        report_latency: bool = False,
    ):
        if rate < 1:
            raise ValueError("PEBS rate must be >= 1")
        self.rate = rate
        self.cycles_per_record = cycles_per_record
        self.loads_only = loads_only
        #: Attach per-record exposed-latency reporting (TPEBS-style).
        self.report_latency = report_latency
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def draw(
        self, shares: Sequence[GroupTierShare], tiers: "tuple[Tier, ...]" = (Tier.SLOW,)
    ) -> "tuple[list, list, list]":
        """The RNG stage: thinning draws per share, merge inputs out.

        The two binomial draws must stay sequenced per share (the
        record draw thins the load draw's result), so the RNG stream
        -- and thus every sampled record -- matches the original
        per-share loop exactly.  A ShareBatch is walked by row over its
        column views, so the draws see the same count values in the
        same order without materialising share objects.  ``share_units``
        (each share's exposed latency per load = effective latency /
        MLP = unit stall cost) is only collected when latency reporting
        is on -- nothing else reads it.
        """
        all_pages = []
        all_records = []
        share_units = []
        rng = self._rng
        rate_p = 1.0 / self.rate
        want_units = self.report_latency
        if self.loads_only:
            for pages, counts, load_fraction, unit in _tier_share_rows(shares, tiers):
                # Thin writes out before the 1-in-N event sampling.
                records = rng.binomial(rng.binomial(counts, load_fraction), rate_p)
                all_pages.append(pages)
                all_records.append(records)
                if want_units:
                    share_units.append(unit)
        else:
            for pages, counts, _load_fraction, unit in _tier_share_rows(shares, tiers):
                all_pages.append(pages)
                all_records.append(rng.binomial(counts, rate_p))
                if want_units:
                    share_units.append(unit)
        return all_pages, all_records, share_units

    def merge(self, drawn: "tuple[list, list, list]") -> PebsBatch:
        """The merge stage: concatenate, drop zero-record entries, and
        merge duplicate pages (record-weighted mean for latencies)."""
        all_pages, all_records, share_units = drawn
        if not all_pages:
            return PebsBatch.empty(self.rate)
        pages = np.concatenate(all_pages) if len(all_pages) > 1 else all_pages[0]
        records = np.concatenate(all_records) if len(all_records) > 1 else all_records[0]
        hit = records > 0
        pages = pages[hit]
        records = records[hit]
        if pages.size == 0:
            return PebsBatch.empty(self.rate)
        if len(all_pages) == 1 and _strictly_increasing(pages):
            # One contributing share with already-unique sorted pages
            # (the common single-group-window case): the merge pass has
            # nothing to merge, so skip np.unique/bincount entirely.
            # The boolean-mask indexing above already produced fresh
            # arrays, so nothing here aliases solver scratch.
            uniq = pages
            merged = records
            latencies = None
            if self.report_latency:
                # One share, one unit latency; the merged-path division
                # (records * unit / records) is reproduced exactly so
                # the emitted floats match bit for bit.
                lat = np.full(uniq.size, share_units[0], dtype=float)
                latencies = (lat * merged) / np.maximum(merged, 1)
        else:
            # The same page can appear in several groups; merge duplicates
            # (record-weighted mean for latencies).  bincount accumulates in
            # input-element order, i.e. bit-identically to a np.add.at loop,
            # and integer-valued float64 sums are exact far beyond any
            # realistic record count.
            uniq, inverse = np.unique(pages, return_inverse=True)
            merged = np.bincount(inverse, weights=records, minlength=uniq.size).astype(np.int64)
            latencies = None
            if self.report_latency:
                sizes = [p.size for p in all_pages]
                lat = np.repeat(np.asarray(share_units, dtype=float), sizes)[hit]
                weighted = np.bincount(inverse, weights=lat * records, minlength=uniq.size)
                latencies = weighted / np.maximum(merged, 1)
        total = int(merged.sum())
        return PebsBatch(
            pages=uniq,
            counts=merged,
            rate=self.rate,
            overhead_cycles=total * self.cycles_per_record,
            latencies=latencies,
        )

    def sample(
        self, shares: Sequence[GroupTierShare], tiers: "tuple[Tier, ...]" = (Tier.SLOW,)
    ) -> PebsBatch:
        """Draw one window's PEBS records from the given tier(s).

        PACT samples only slow-tier loads by default (§4.3.5): sampling
        the fast tier as well would double PEBS overhead for little
        policy value, since demotion candidates come from the LRU lists.
        Split into :meth:`draw` (the sequenced RNG stage) and
        :meth:`merge` so the machine can attribute their wall time to
        separate observability spans.
        """
        return self.merge(self.draw(shares, tiers=tiers))


def _strictly_increasing(pages: np.ndarray) -> bool:
    """True when ``pages`` is sorted ascending with no duplicates."""
    if pages.size <= 1:
        return True
    return bool(np.all(pages[1:] > pages[:-1]))


def _tier_share_rows(shares, tiers: "tuple[Tier, ...]"):
    """Yield ``(pages, counts, load_fraction, unit_stall_cycles)`` for
    the shares in ``tiers``, in share order, from either a columnar
    :class:`ShareBatch` (views, no object churn) or a share sequence."""
    if isinstance(shares, ShareBatch):
        codes = tuple(int(t) for t in tiers)
        tier_codes = shares.tier_codes
        for i in range(shares.n):
            if int(tier_codes[i]) not in codes:
                continue
            yield (
                shares.pages_of(i),
                shares.counts_of(i),
                float(shares.load_fraction[i]),
                float(shares.unit_stall_cycles[i]),
            )
        return
    for share in shares:
        if share.tier not in tiers:
            continue
        yield share.pages, share.counts, _load_fraction(share), share.unit_stall_cycles


def _load_fraction(share: GroupTierShare) -> float:
    """Fraction of a share's misses that are loads (PEBS-qualifying)."""
    return share.load_fraction
