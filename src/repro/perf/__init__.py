"""repro.perf: simulator-throughput measurement and regression gating.

See :mod:`repro.perf.harness` for the suite definition and the
comparison semantics; ``python -m repro perf`` is the CLI entry point.
"""

from repro.perf.harness import (
    DEFAULT_BASELINE_PATH,
    DEFAULT_REPORT_PATH,
    DEFAULT_THRESHOLD,
    PERF_SCHEMA,
    PerfScenario,
    QUICK_NAMES,
    SUITE,
    calibration_score,
    compare,
    load_report,
    run_scenario,
    run_suite,
    scenarios,
    span_rows,
    write_report,
)

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_REPORT_PATH",
    "DEFAULT_THRESHOLD",
    "PERF_SCHEMA",
    "PerfScenario",
    "QUICK_NAMES",
    "SUITE",
    "calibration_score",
    "compare",
    "load_report",
    "run_scenario",
    "run_suite",
    "scenarios",
    "span_rows",
    "write_report",
]
