"""Simulator-throughput regression harness (``python -m repro perf``).

Every paper figure is a sweep of hundreds of ``Machine.run()`` calls, so
simulator throughput is a first-class deliverable (the Mess framework,
arXiv:2405.10170, even reports it as a headline metric).  This harness
pins it down:

* a fixed suite of macro scenarios -- the three largest workloads
  (bc-kron, silo, gpt-2) under PACT, Memtis, and NoTier at the paper's
  1:4 ratio -- measured in **windows per second** (best of N repeats,
  observability off: the configuration the sweeps actually run in),
* one additional *profiled* repeat per scenario for a per-span wall-time
  breakdown through the existing :class:`~repro.obs.SpanProfiler`,
* a calibration microbenchmark (fixed numpy kernel) so throughput can
  be compared across machines of different speeds: regressions are
  judged on calibration-normalised ratios,
* a bit-identity guard: each scenario's ``runtime_cycles`` is recorded
  and must match the committed baseline exactly -- an optimisation that
  changes simulated results is a bug, not a speedup.

The committed baseline lives at ``benchmarks/perf_baseline.json``;
fresh reports are written to ``benchmarks/out/BENCH_perf.json``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.baselines import make_policy
from repro.obs import Observability
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads import make_workload

#: Report format version (bump when the JSON layout changes).
PERF_SCHEMA = 1

#: Default committed baseline and report locations.
DEFAULT_BASELINE_PATH = os.path.join("benchmarks", "perf_baseline.json")
DEFAULT_REPORT_PATH = os.path.join("benchmarks", "out", "BENCH_perf.json")

#: Repo-root copy of the report, committed so the perf trajectory is
#: tracked in-repo across PRs.
DEFAULT_ROOT_REPORT_PATH = "BENCH_perf.json"

#: Default on-disk location for the harness's recorded traffic traces.
DEFAULT_TRACE_DIR = os.path.join("benchmarks", ".cache", "traces")

#: Regression threshold: fail when calibration-normalised throughput
#: drops by more than this fraction vs the baseline.
DEFAULT_THRESHOLD = 0.3


@dataclass(frozen=True)
class PerfScenario:
    """One timed macro run: workload x policy at fixed work and seed."""

    name: str
    workload: str
    policy: str
    total_misses: int = 24_000_000
    ratio: str = "1:4"
    seed: int = 0
    #: RNG schema the scenario runs under (see MachineConfig.rng_schema).
    rng_schema: int = 2

    def config(self) -> MachineConfig:
        return MachineConfig(rng_schema=self.rng_schema)

    def build_workload(self, trace_store=None):
        """The scenario's workload; replayed when a trace store is given."""
        workload = make_workload(self.workload, total_misses=self.total_misses)
        if trace_store is not None:
            workload = trace_store.replay(workload)
        return workload

    def build(self, trace_store=None) -> Machine:
        return Machine(
            workload=self.build_workload(trace_store),
            policy=make_policy(self.policy),
            config=self.config(),
            ratio=self.ratio,
            seed=self.seed,
        )


@dataclass(frozen=True)
class MultiRunScenario:
    """One timed multi-run group: seeds x ratios of a (workload, policy).

    Models the shape campaign sweeps actually execute -- many runs of
    the same pair differing only in seed and capacity ratio -- so the
    harness times the lockstep :class:`~repro.sim.runbatch.MultiMachine`
    path when replaying and the serial live path when not.  Both paths
    produce bit-identical per-run results; ``run_runtime_cycles`` pins
    each member and ``runtime_cycles`` (their ordered sum) feeds the
    same baseline identity gate as the single-run scenarios.
    """

    name: str
    workload: str
    policy: str
    total_misses: int = 24_000_000
    seeds: "tuple[int, ...]" = (0, 1, 2)
    ratios: "tuple[str, ...]" = ("1:2", "1:4")
    #: RNG schema the scenario runs under (see MachineConfig.rng_schema).
    rng_schema: int = 2

    def config(self) -> MachineConfig:
        return MachineConfig(rng_schema=self.rng_schema)

    def runs(self) -> "tuple[tuple[int, str], ...]":
        """Member (seed, ratio) pairs in fixed seed-major order."""
        return tuple((seed, ratio) for seed in self.seeds for ratio in self.ratios)

    def build_workload(self, trace_store=None):
        workload = make_workload(self.workload, total_misses=self.total_misses)
        if trace_store is not None:
            workload = trace_store.replay(workload)
        return workload

    def build_machines(self, trace_store=None, obs=None) -> List[Machine]:
        return [
            Machine(
                workload=self.build_workload(trace_store),
                policy=make_policy(self.policy),
                config=self.config(),
                ratio=ratio,
                seed=seed,
                obs=obs,
            )
            for seed, ratio in self.runs()
        ]


SUITE: "tuple[PerfScenario, ...]" = tuple(
    PerfScenario(name=f"{label}-{policy.lower()}", workload=workload, policy=policy)
    for label, workload in (("graph", "bc-kron"), ("silo", "silo"), ("gpt2", "gpt-2"))
    for policy in ("PACT", "Memtis", "NoTier")
)

#: Multi-run additions to the suite: the acceptance-critical PACT case
#: and the heaviest dynamic baseline, each swept across seeds and
#: ratios, exercising the lockstep executor.
MULTI_SUITE: "tuple[MultiRunScenario, ...]" = (
    MultiRunScenario(name="graph-pact-multi", workload="bc-kron", policy="PACT"),
    MultiRunScenario(name="memtis-multi", workload="bc-kron", policy="Memtis"),
)

#: ``--quick`` subset: same scenario parameters, graph workload only
#: (the acceptance-critical PACT case plus both baselines for context,
#: and the multi-run grids that exercise the lockstep executor).
QUICK_NAMES = (
    "graph-pact",
    "graph-memtis",
    "graph-notier",
    "graph-pact-multi",
    "memtis-multi",
)


def scenarios(quick: bool = False, rng_schema: int = 2) -> "tuple[object, ...]":
    from dataclasses import replace

    full = tuple(replace(s, rng_schema=rng_schema) for s in SUITE + MULTI_SUITE)
    if not quick:
        return full
    return tuple(s for s in full if s.name in QUICK_NAMES)


def calibration_score(repeats: int = 3) -> float:
    """Machine-speed yardstick: fixed numpy kernel iterations per second.

    The kernel mixes the primitives the hot loop leans on (sort, unique,
    bincount, reductions) over fixed pseudo-random data, so the score
    moves with the host's effective numpy throughput.  Normalising
    windows/sec by this score makes baselines comparable across hosts
    (and across background load on the same host).
    """
    rng = np.random.default_rng(12345)
    pages = rng.integers(0, 1 << 15, size=200_000)
    values = rng.random(200_000)
    best = 0.0
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        for _ in range(5):
            uniq, inverse = np.unique(pages, return_inverse=True)
            sums = np.bincount(inverse, weights=values, minlength=uniq.size)
            order = np.argsort(values)
            _ = values[order[-64:]].sum() + sums.sum()
        dt = time.perf_counter() - t0
        best = max(best, 5.0 / dt)
    return best


def _cprofile_run(name: str, run_once, profile_dir: str) -> str:
    """Execute ``run_once()`` under cProfile; dump pstats + text summary.

    Writes ``<profile_dir>/<name>.pstats`` (binary, loadable with
    :mod:`pstats`/snakeviz) and a ``.txt`` sibling with the top
    cumulative entries, for hot-spot triage next to ``BENCH_perf.json``.
    Returns the pstats path.
    """
    import cProfile
    import io
    import pstats

    os.makedirs(profile_dir, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    run_once()
    profiler.disable()
    path = os.path.join(profile_dir, f"{name}.pstats")
    profiler.dump_stats(path)
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(40)
    with open(os.path.join(profile_dir, f"{name}.txt"), "w") as fh:
        fh.write(stream.getvalue())
    return path


def run_scenario(
    scenario: PerfScenario,
    repeats: int = 2,
    profile: bool = True,
    trace_store=None,
    profile_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Time one scenario; best-of-``repeats`` plus a profiled extra run.

    The timed repeats run with observability off -- the configuration
    experiment sweeps use -- so the headline windows/sec reflects real
    sweep throughput.  The span breakdown comes from one additional run
    with the profiler enabled (observability never changes results).

    With ``trace_store`` the scenario replays its recorded traffic
    stream (:mod:`repro.workloads.tracestore`).  The stream is recorded
    up front so every timed repeat measures warm-cache replay -- the
    state sweeps actually run in, where one recording serves the whole
    policy grid.
    """
    if trace_store is not None:
        trace_store.ensure(
            make_workload(scenario.workload, total_misses=scenario.total_misses),
            200_000,
        )
    best_wps = 0.0
    best_wall = float("inf")
    windows = 0
    runtime_cycles = 0.0
    for _ in range(max(repeats, 1)):
        machine = scenario.build(trace_store)
        t0 = time.perf_counter()
        result = machine.run()
        wall = time.perf_counter() - t0
        windows = result.windows
        runtime_cycles = result.runtime_cycles
        if result.windows / wall > best_wps:
            best_wps = result.windows / wall
            best_wall = wall
    record: Dict[str, object] = {
        "workload": scenario.workload,
        "policy": scenario.policy,
        "total_misses": scenario.total_misses,
        "ratio": scenario.ratio,
        "seed": scenario.seed,
        "rng_schema": scenario.rng_schema,
        "windows": windows,
        "windows_per_sec": best_wps,
        "wall_seconds": best_wall,
        "runtime_cycles": runtime_cycles,
    }
    if profile:
        obs = Observability(trace=False)
        machine = Machine(
            workload=scenario.build_workload(trace_store),
            policy=make_policy(scenario.policy),
            config=scenario.config(),
            ratio=scenario.ratio,
            seed=scenario.seed,
            obs=obs,
        )
        profiled = machine.run()
        if profiled.runtime_cycles != runtime_cycles:
            raise AssertionError(
                f"{scenario.name}: observed run diverged from timed run "
                f"({profiled.runtime_cycles!r} != {runtime_cycles!r})"
            )
        record["spans"] = {
            label: {"seconds": t["seconds"], "calls": t["calls"]}
            for label, t in obs.timings().items()
        }
    if profile_dir is not None:
        record["cprofile"] = _cprofile_run(
            scenario.name,
            lambda: scenario.build(trace_store).run(),
            profile_dir,
        )
    return record


def run_multi_scenario(
    scenario: MultiRunScenario,
    repeats: int = 2,
    profile: bool = True,
    trace_store=None,
    profile_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Time one multi-run grid; best-of-``repeats`` plus a profiled leg.

    With ``trace_store`` the timed repeats run all members in lockstep
    through :class:`~repro.sim.runbatch.MultiMachine` (the configuration
    campaign sweeps use); without one, members run serially on live
    generators.  Either way each member's ``runtime_cycles`` is recorded
    in ``run_runtime_cycles`` and the profiled extra leg re-runs every
    member serially with observability on, asserting per-run equality --
    so a replay-mode report and a ``--no-replay`` report must agree on
    ``runtime_cycles`` exactly (the CI smoke leg checks precisely that).
    """
    from repro.sim.runbatch import MultiMachine

    if trace_store is not None:
        trace_store.ensure(
            make_workload(scenario.workload, total_misses=scenario.total_misses),
            200_000,
        )
    best_wps = 0.0
    best_wall = float("inf")
    windows = 0
    run_cycles: List[float] = []
    for _ in range(max(repeats, 1)):
        machines = scenario.build_machines(trace_store)
        t0 = time.perf_counter()
        if trace_store is not None:
            results = MultiMachine(machines).run()
        else:
            results = [machine.run() for machine in machines]
        wall = time.perf_counter() - t0
        windows = sum(result.windows for result in results)
        run_cycles = [result.runtime_cycles for result in results]
        if windows / wall > best_wps:
            best_wps = windows / wall
            best_wall = wall
    runtime_cycles = 0.0  # ordered left-fold: deterministic across modes
    for cycles in run_cycles:
        runtime_cycles += cycles
    record: Dict[str, object] = {
        "workload": scenario.workload,
        "policy": scenario.policy,
        "total_misses": scenario.total_misses,
        "seeds": list(scenario.seeds),
        "ratios": list(scenario.ratios),
        "runs": len(run_cycles),
        "rng_schema": scenario.rng_schema,
        "windows": windows,
        "windows_per_sec": best_wps,
        "wall_seconds": best_wall,
        "runtime_cycles": runtime_cycles,
        "run_runtime_cycles": run_cycles,
    }
    if profile:
        spans: Dict[str, Dict[str, float]] = {}
        for (seed, ratio), expected in zip(scenario.runs(), run_cycles):
            obs = Observability(trace=False)
            machine = Machine(
                workload=scenario.build_workload(trace_store),
                policy=make_policy(scenario.policy),
                config=scenario.config(),
                ratio=ratio,
                seed=seed,
                obs=obs,
            )
            profiled = machine.run()
            if profiled.runtime_cycles != expected:
                raise AssertionError(
                    f"{scenario.name} seed={seed} ratio={ratio}: serial observed "
                    f"run diverged from timed run "
                    f"({profiled.runtime_cycles!r} != {expected!r})"
                )
            for label, t in obs.timings().items():
                agg = spans.setdefault(label, {"seconds": 0.0, "calls": 0})
                agg["seconds"] += t["seconds"]
                agg["calls"] += t["calls"]
        record["spans"] = spans
    if profile_dir is not None:

        def _run_once():
            machines = scenario.build_machines(trace_store)
            if trace_store is not None:
                MultiMachine(machines).run()
            else:
                for machine in machines:
                    machine.run()

        record["cprofile"] = _cprofile_run(scenario.name, _run_once, profile_dir)
    return record


def run_suite(
    quick: bool = False,
    repeats: int = 2,
    profile: bool = True,
    progress=None,
    replay: bool = True,
    trace_dir: Optional[str] = DEFAULT_TRACE_DIR,
    rng_schema: int = 2,
    profile_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Run the (quick or full) suite and return the report document.

    ``replay=True`` (the default, matching how sweeps run) records each
    scenario's traffic stream once into ``trace_dir`` and times replay;
    bit-identity of replay means ``runtime_cycles`` still guards against
    result drift either way.  ``rng_schema`` selects the RNG schema all
    scenarios run under -- the suite defaults to schema 2 (counter-keyed
    substreams, the configuration sweeps should run in); schema-1 legs
    gate bit-identity against a legacy baseline.
    """
    trace_store = None
    if replay:
        from repro.workloads.tracestore import TraceStore

        trace_store = TraceStore(trace_dir)
    report: Dict[str, object] = {
        "schema": PERF_SCHEMA,
        "quick": quick,
        "repeats": repeats,
        "replay": replay,
        "rng_schema": rng_schema,
        "calibration_ops_per_sec": calibration_score(),
        "scenarios": {},
    }
    for scenario in scenarios(quick, rng_schema=rng_schema):
        runner = (
            run_multi_scenario
            if isinstance(scenario, MultiRunScenario)
            else run_scenario
        )
        record = runner(
            scenario,
            repeats=repeats,
            profile=profile,
            trace_store=trace_store,
            profile_dir=profile_dir,
        )
        report["scenarios"][scenario.name] = record
        if progress is not None:
            progress(scenario.name, record)
    if trace_store is not None:
        report["trace_cache"] = trace_store.stats()
    return report


def compare(
    current: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[str]:
    """Problems in ``current`` vs ``baseline``; empty list = pass.

    Two classes of failure:

    * **bit-identity**: a scenario's ``runtime_cycles`` differs from the
      baseline's (JSON round-trips IEEE doubles exactly, so equality is
      the right test) -- simulated results must not drift;
    * **regression**: calibration-normalised windows/sec dropped by more
      than ``threshold`` (fraction) vs the baseline.

    Scenarios missing from either side are skipped (``--quick`` runs a
    subset against the full committed baseline).
    """
    problems: List[str] = []
    cur_cal = float(current.get("calibration_ops_per_sec", 0.0))
    base_cal = float(baseline.get("calibration_ops_per_sec", 0.0))
    if cur_cal <= 0.0 or base_cal <= 0.0:
        problems.append("calibration score missing from report or baseline")
        return problems
    cur_schema = int(current.get("rng_schema", 1))
    base_schema = int(baseline.get("rng_schema", 1))
    if cur_schema != base_schema:
        problems.append(
            f"rng schema mismatch: report is schema {cur_schema} but baseline "
            f"is schema {base_schema} (runtime_cycles are not comparable)"
        )
        return problems
    base_scenarios = baseline.get("scenarios", {})
    for name, cur in current.get("scenarios", {}).items():
        base = base_scenarios.get(name)
        if base is None:
            continue
        if cur["runtime_cycles"] != base["runtime_cycles"]:
            problems.append(
                f"{name}: runtime_cycles {cur['runtime_cycles']!r} != "
                f"baseline {base['runtime_cycles']!r} (results must be bit-identical)"
            )
        if "run_runtime_cycles" in cur and "run_runtime_cycles" in base:
            if list(cur["run_runtime_cycles"]) != list(base["run_runtime_cycles"]):
                problems.append(
                    f"{name}: per-run runtime_cycles differ from baseline "
                    f"(multi-run members must be bit-identical)"
                )
        cur_norm = float(cur["windows_per_sec"]) / cur_cal
        base_norm = float(base["windows_per_sec"]) / base_cal
        if base_norm > 0.0 and cur_norm < (1.0 - threshold) * base_norm:
            problems.append(
                f"{name}: normalised throughput {cur_norm / base_norm:.2f}x of baseline "
                f"(threshold {1.0 - threshold:.2f}x): "
                f"{cur['windows_per_sec']:.1f} win/s vs {base['windows_per_sec']:.1f} win/s"
            )
    return problems


def load_report(path: str) -> Optional[Dict[str, object]]:
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def write_report(report: Dict[str, object], path: str) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")


def span_rows(record: Dict[str, object]) -> List[List[str]]:
    """Per-span table rows (label, total wall ms, calls) for one scenario."""
    spans = record.get("spans") or {}
    rows = []
    for label in sorted(spans):
        t = spans[label]
        rows.append([label, f"{t['seconds'] * 1e3:.1f} ms", f"{int(t['calls'])}"])
    return rows


__all__ = [
    "PERF_SCHEMA",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_REPORT_PATH",
    "DEFAULT_ROOT_REPORT_PATH",
    "DEFAULT_TRACE_DIR",
    "DEFAULT_THRESHOLD",
    "PerfScenario",
    "MultiRunScenario",
    "SUITE",
    "MULTI_SUITE",
    "QUICK_NAMES",
    "scenarios",
    "calibration_score",
    "run_scenario",
    "run_multi_scenario",
    "run_suite",
    "compare",
    "load_report",
    "write_report",
    "span_rows",
]
