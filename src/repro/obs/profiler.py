"""Span-style wall-clock profiling for the simulator's hot loop.

``with obs.profile("stall_solve"):`` accumulates wall time and call
counts per label, so large sweeps can report where host time actually
goes (solver vs. policy vs. migration) without an external profiler.

Timings are *observability of the simulator process*, not simulated
results: they are intentionally kept out of
:meth:`MetricsRegistry.snapshot` / ``RunResult.metrics_summary`` so the
deterministic-telemetry guarantee (serial == parallel == cached) is
never polluted by wall-clock noise.
"""

from __future__ import annotations

import time
from typing import Dict


class _Span:
    """Context manager timing one labelled region."""

    __slots__ = ("_profiler", "_label", "_start")

    def __init__(self, profiler: "SpanProfiler", label: str) -> None:
        self._profiler = profiler
        self._label = label

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler._add(self._label, time.perf_counter() - self._start)


class _NullSpan:
    """Shared do-nothing span for disabled profilers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


def null_profile(label: str) -> _NullSpan:  # noqa: ARG001
    """Module-level no-op span factory.

    Components that hold a ``profile`` handle (policies, the migration
    engine) default to this when no observability bundle is attached,
    so their hot paths stay branch-free: ``with self._profile(label):``
    costs one no-op context manager either way.
    """
    return _NULL_SPAN


class SpanProfiler:
    """Accumulates (total seconds, calls) per span label."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}

    def profile(self, label: str):
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, label)

    def _add(self, label: str, seconds: float) -> None:
        self._seconds[label] = self._seconds.get(label, 0.0) + seconds
        self._calls[label] = self._calls.get(label, 0) + 1

    def timings(self) -> Dict[str, Dict[str, float]]:
        """Per-label ``{"seconds": total, "calls": n}``, sorted by label."""
        return {
            label: {"seconds": self._seconds[label], "calls": float(self._calls[label])}
            for label in sorted(self._seconds)
        }

    def clear(self) -> None:
        self._seconds.clear()
        self._calls.clear()
