"""repro.obs: window-level observability for the simulator loop.

One :class:`Observability` object travels with one
:class:`~repro.sim.machine.Machine` and bundles the three concerns the
paper's evaluation needs (per-window stall/MLP breakdowns, adaptivity
traces, loop-health counters):

* a :class:`~repro.obs.registry.MetricsRegistry` that the machine, the
  migration engine, the stall solver, and policies publish into,
* a bounded :class:`~repro.obs.recorder.TraceRecorder` ring buffer of
  :class:`~repro.sim.metrics.WindowRecord` rows with JSONL/CSV export,
* a :class:`~repro.obs.profiler.SpanProfiler` for host wall-clock spans
  around the hot loop.

Guarantees:

* **Zero perturbation** -- publishing reads simulator state, never
  mutates it: a run with observability enabled is bit-identical to the
  same run without it, and cache fingerprints ignore disabled
  observability entirely.
* **Deterministic telemetry** -- ``summary()`` contains only simulated
  quantities with sorted keys, so serial, parallel, and cache-restored
  runs report identical metrics.  Wall-clock spans live separately in
  ``profiler.timings()``.
* **Bounded memory** -- the recorder's ring replaces the old unbounded
  trace list; overflow drops the oldest windows and reports the count.

``NULL_OBS`` is the disabled singleton a machine uses when nothing asks
for telemetry: every publish is a no-op behind a single flag check.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.obs.profiler import SpanProfiler
from repro.obs.recorder import (
    DEFAULT_TRACE_CAPACITY,
    NullRecorder,
    TraceRecorder,
)
from repro.obs.registry import HistogramSummary, MetricsRegistry

__all__ = [
    "Observability",
    "MetricsRegistry",
    "HistogramSummary",
    "TraceRecorder",
    "NullRecorder",
    "SpanProfiler",
    "DEFAULT_TRACE_CAPACITY",
    "NULL_OBS",
]


class Observability:
    """Bundles a registry, a trace recorder, and a span profiler."""

    def __init__(
        self,
        enabled: bool = True,
        trace: bool = True,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        downsample: int = 1,
    ) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.recorder: Union[TraceRecorder, NullRecorder]
        if enabled and trace:
            self.recorder = TraceRecorder(capacity=trace_capacity, downsample=downsample)
        else:
            self.recorder = NullRecorder()
        self.profiler = SpanProfiler(enabled=enabled)

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(enabled=False, trace=False)

    @property
    def wants_trace(self) -> bool:
        """Whether window records should be built and retained."""
        return self.recorder.keeps_records

    # -- publishing (no-ops when disabled) -----------------------------------

    def count(self, name: str, delta: float = 1.0) -> None:
        if self.enabled:
            self.registry.count(name, delta)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.registry.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.registry.observe(name, value)

    def profile(self, label: str):
        """Span context manager; a shared no-op span when disabled."""
        return self.profiler.profile(label)

    # -- reading -------------------------------------------------------------

    def window_metrics(self) -> Dict[str, float]:
        """Current gauges (the per-window metric snapshot for traces)."""
        if not self.enabled:
            return {}
        return self.registry.gauges()

    def summary(self) -> Dict[str, float]:
        """Deterministic run-level metric summary (empty when disabled)."""
        if not self.enabled:
            return {}
        return self.registry.snapshot()

    def timings(self) -> Dict[str, Dict[str, float]]:
        """Host wall-clock span totals (never part of ``summary()``)."""
        return self.profiler.timings()


#: Shared disabled instance: all publishes are no-ops, nothing is stored.
NULL_OBS = Observability.disabled()


def resolve(obs: Optional[Observability], trace: bool) -> Observability:
    """The observability a machine should use.

    An explicit ``obs`` wins; otherwise ``trace=True`` gets a fresh
    enabled bundle (metrics + ring-buffer trace) and ``trace=False``
    gets the shared no-op singleton -- the pre-observability fast path.
    """
    if obs is not None:
        return obs
    if trace:
        return Observability()
    return NULL_OBS
