"""Bounded window-trace recording with downsampling and export.

:class:`TraceRecorder` replaces the old unbounded ``Machine._trace``
list: a ring buffer of per-window trace rows whose memory footprint is
capped regardless of run length.  When the buffer wraps, the *oldest*
windows are dropped (the tail of a run is what adaptivity analyses
inspect) and the drop count is reported so truncation is never silent.
``downsample=N`` keeps one window in every N, stretching the same
capacity over proportionally longer runs.

Storage is **columnar**: scalar fields live in preallocated growable
numpy arrays (one per column, grown geometrically up to the ring
capacity) and only the dict/str fields stay as per-row objects.  The
machine appends plain field values via :meth:`TraceRecorder.append_window`
-- no :class:`~repro.sim.metrics.WindowRecord` allocation per window --
and ``records()`` materialises the dataclass views lazily, so
``repro.obs`` consumers, the experiment cache, and the benches see
exactly the shapes they always did.

:class:`NullRecorder` is the disabled twin: appends are no-ops, so a
machine without tracing pays one predicate check per window and stores
nothing.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import IO, Dict, List, Optional, Union

import numpy as np

from repro.sim.metrics import (
    WINDOW_FLOAT_COLUMNS,
    WINDOW_INT_COLUMNS,
    WINDOW_OBJECT_COLUMNS,
    WindowRecord,
)

PathLike = Union[str, Path]

#: Default ring capacity: bounds trace memory even at the simulator's
#: 200k-window budget while keeping every window of typical runs.
DEFAULT_TRACE_CAPACITY = 65_536

#: Initial per-column allocation (grown geometrically up to capacity).
_INITIAL_COLUMN_SIZE = 1_024


def record_to_dict(record: WindowRecord) -> dict:
    """JSON-serialisable view of one window record."""
    return dataclasses.asdict(record)


class TraceRecorder:
    """Fixed-capacity ring buffer of per-window trace rows (columnar)."""

    #: Whether this recorder actually keeps records (NullRecorder: False).
    keeps_records = True

    def __init__(
        self, capacity: int = DEFAULT_TRACE_CAPACITY, downsample: int = 1
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if downsample <= 0:
            raise ValueError("downsample must be positive")
        self.capacity = capacity
        self.downsample = downsample
        self.dropped = 0
        self.skipped = 0
        self._alloc = 0
        self._int_cols: Dict[str, np.ndarray] = {}
        self._float_cols: Dict[str, np.ndarray] = {}
        self._obj_cols: Dict[str, List[object]] = {}
        self._next = 0
        self._count = 0

    def __len__(self) -> int:
        return min(self._count, self.capacity)

    # -- appending -----------------------------------------------------------

    def append(self, record: WindowRecord) -> None:
        """Add one window (subject to downsampling and the ring bound)."""
        self.append_window(
            **{f.name: getattr(record, f.name) for f in dataclasses.fields(WindowRecord)}
        )

    def append_window(
        self,
        window: int,
        duration_cycles: float,
        stall_cycles: float,
        slow_misses: float,
        fast_misses: float,
        promoted: int,
        demoted: int,
        mlp_slow: float,
        mlp_fast: float,
        fast_resident_fraction: float,
        phase: str = "",
        policy_debug: Optional[Dict[str, float]] = None,
        label_stalls: Optional[Dict[str, float]] = None,
        metrics: Optional[Dict[str, float]] = None,
    ) -> None:
        """Add one window from plain field values (no record object)."""
        if self.downsample > 1 and window % self.downsample != 0:
            self.skipped += 1
            return
        if self._count >= self.capacity:
            self.dropped += 1
        i = self._next
        if i >= self._alloc:
            self._grow()
        ic = self._int_cols
        ic["window"][i] = window
        ic["slow_misses"][i] = slow_misses
        ic["fast_misses"][i] = fast_misses
        ic["promoted"][i] = promoted
        ic["demoted"][i] = demoted
        fc = self._float_cols
        fc["duration_cycles"][i] = duration_cycles
        fc["stall_cycles"][i] = stall_cycles
        fc["mlp_slow"][i] = mlp_slow
        fc["mlp_fast"][i] = mlp_fast
        fc["fast_resident_fraction"][i] = fast_resident_fraction
        oc = self._obj_cols
        oc["phase"][i] = phase
        oc["policy_debug"][i] = policy_debug if policy_debug is not None else {}
        oc["label_stalls"][i] = label_stalls if label_stalls is not None else {}
        oc["metrics"][i] = metrics if metrics is not None else {}
        self._next = (self._next + 1) % self.capacity
        self._count += 1

    def _grow(self) -> None:
        """Extend the column arrays geometrically (capped at capacity)."""
        new_alloc = min(
            self.capacity, max(_INITIAL_COLUMN_SIZE, 2 * self._alloc)
        )
        if not self._int_cols:
            self._int_cols = {
                name: np.empty(new_alloc, dtype=np.int64) for name in WINDOW_INT_COLUMNS
            }
            self._float_cols = {
                name: np.empty(new_alloc, dtype=np.float64)
                for name in WINDOW_FLOAT_COLUMNS
            }
            self._obj_cols = {
                name: [None] * new_alloc for name in WINDOW_OBJECT_COLUMNS
            }
        else:
            grow_by = new_alloc - self._alloc
            for name, col in self._int_cols.items():
                self._int_cols[name] = np.concatenate(
                    [col, np.empty(grow_by, dtype=np.int64)]
                )
            for name, col in self._float_cols.items():
                self._float_cols[name] = np.concatenate(
                    [col, np.empty(grow_by, dtype=np.float64)]
                )
            for name in self._obj_cols:
                self._obj_cols[name].extend([None] * grow_by)
        self._alloc = new_alloc

    # -- reading -------------------------------------------------------------

    def _materialise(self, i: int) -> WindowRecord:
        ic, fc, oc = self._int_cols, self._float_cols, self._obj_cols
        return WindowRecord(
            window=int(ic["window"][i]),
            duration_cycles=float(fc["duration_cycles"][i]),
            stall_cycles=float(fc["stall_cycles"][i]),
            slow_misses=int(ic["slow_misses"][i]),
            fast_misses=int(ic["fast_misses"][i]),
            promoted=int(ic["promoted"][i]),
            demoted=int(ic["demoted"][i]),
            mlp_slow=float(fc["mlp_slow"][i]),
            mlp_fast=float(fc["mlp_fast"][i]),
            fast_resident_fraction=float(fc["fast_resident_fraction"][i]),
            phase=oc["phase"][i],
            policy_debug=oc["policy_debug"][i],
            label_stalls=oc["label_stalls"][i],
            metrics=oc["metrics"][i],
        )

    def _indices(self) -> List[int]:
        """Retained row indices, oldest first."""
        kept = len(self)
        if kept < self.capacity:
            return list(range(kept))
        return list(range(self._next, self.capacity)) + list(range(self._next))

    def records(self) -> List[WindowRecord]:
        """Retained records, oldest first (materialised lazily)."""
        return [self._materialise(i) for i in self._indices()]

    def column_lists(self) -> Dict[str, list]:
        """Retained rows as per-column python lists, oldest first.

        The export fast path: one fancy-index + ``tolist()`` per scalar
        column instead of one :class:`WindowRecord` per row, so writing
        a 50k-window trace allocates 14 lists, not 50k dataclasses.
        """
        if not self._int_cols:
            names = WINDOW_INT_COLUMNS + WINDOW_FLOAT_COLUMNS + WINDOW_OBJECT_COLUMNS
            return {name: [] for name in names}
        idx = np.asarray(self._indices(), dtype=np.intp)
        out: Dict[str, list] = {}
        for name, col in self._int_cols.items():
            out[name] = col[idx].tolist()
        for name, col in self._float_cols.items():
            out[name] = col[idx].tolist()
        for name, col in self._obj_cols.items():
            out[name] = [col[i] for i in idx]
        return out

    # -- export --------------------------------------------------------------

    def _row_dicts(self) -> List[dict]:
        """JSON-ready row dicts straight from the columns."""
        cols = self.column_lists()
        names = [f.name for f in dataclasses.fields(WindowRecord)]
        return [{name: cols[name][i] for name in names} for i in range(len(self))]

    def write_jsonl(self, target: Union[PathLike, IO[str]]) -> int:
        """Write one JSON object per retained window; returns row count."""
        rows = self._row_dicts()
        if hasattr(target, "write"):
            for row in rows:
                target.write(json.dumps(row, sort_keys=True) + "\n")
        else:
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("w") as fh:
                for row in rows:
                    fh.write(json.dumps(row, sort_keys=True) + "\n")
        return len(rows)

    def write_csv(self, target: PathLike) -> int:
        """Write retained windows as CSV (scalar columns only)."""
        columns = [
            f.name
            for f in dataclasses.fields(WindowRecord)
            if f.name not in ("policy_debug", "label_stalls", "metrics")
        ]
        cols = self.column_lists()
        count = len(self)
        path = Path(target)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(columns)
            for i in range(count):
                writer.writerow([cols[col][i] for col in columns])
        return count


class NullRecorder:
    """No-op recorder used when tracing is disabled."""

    keeps_records = False
    capacity = 0
    downsample = 1
    dropped = 0
    skipped = 0

    def __len__(self) -> int:
        return 0

    def append(self, record: WindowRecord) -> None:
        """Discard the record."""

    def append_window(self, **fields) -> None:  # noqa: ARG002 - interface parity
        """Discard the window."""

    def records(self) -> List[WindowRecord]:
        return []

    def column_lists(self) -> Dict[str, list]:
        names = WINDOW_INT_COLUMNS + WINDOW_FLOAT_COLUMNS + WINDOW_OBJECT_COLUMNS
        return {name: [] for name in names}

    def write_jsonl(self, target) -> int:  # noqa: ARG002 - interface parity
        return 0

    def write_csv(self, target) -> int:  # noqa: ARG002 - interface parity
        return 0
