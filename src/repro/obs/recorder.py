"""Bounded window-trace recording with downsampling and export.

:class:`TraceRecorder` replaces the old unbounded ``Machine._trace``
list: a ring buffer of :class:`~repro.sim.metrics.WindowRecord` rows
whose memory footprint is capped regardless of run length.  When the
buffer wraps, the *oldest* windows are dropped (the tail of a run is
what adaptivity analyses inspect) and the drop count is reported so
truncation is never silent.  ``downsample=N`` keeps one window in every
N, stretching the same capacity over proportionally longer runs.

:class:`NullRecorder` is the disabled twin: ``append`` is a no-op, so a
machine without tracing pays one predicate check per window and stores
nothing.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import IO, List, Optional, Union

from repro.sim.metrics import WindowRecord

PathLike = Union[str, Path]

#: Default ring capacity: bounds trace memory even at the simulator's
#: 200k-window budget while keeping every window of typical runs.
DEFAULT_TRACE_CAPACITY = 65_536


def record_to_dict(record: WindowRecord) -> dict:
    """JSON-serialisable view of one window record."""
    return dataclasses.asdict(record)


class TraceRecorder:
    """Fixed-capacity ring buffer of per-window trace records."""

    #: Whether this recorder actually keeps records (NullRecorder: False).
    keeps_records = True

    def __init__(
        self, capacity: int = DEFAULT_TRACE_CAPACITY, downsample: int = 1
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if downsample <= 0:
            raise ValueError("downsample must be positive")
        self.capacity = capacity
        self.downsample = downsample
        self.dropped = 0
        self.skipped = 0
        self._ring: List[Optional[WindowRecord]] = [None] * capacity
        self._next = 0
        self._count = 0

    def __len__(self) -> int:
        return min(self._count, self.capacity)

    def append(self, record: WindowRecord) -> None:
        """Add one window (subject to downsampling and the ring bound)."""
        if self.downsample > 1 and record.window % self.downsample != 0:
            self.skipped += 1
            return
        if self._count >= self.capacity:
            self.dropped += 1
        self._ring[self._next] = record
        self._next = (self._next + 1) % self.capacity
        self._count += 1

    def records(self) -> List[WindowRecord]:
        """Retained records, oldest first."""
        kept = len(self)
        if kept < self.capacity:
            rows = self._ring[:kept]
        else:
            rows = self._ring[self._next :] + self._ring[: self._next]
        return [row for row in rows if row is not None]

    # -- export --------------------------------------------------------------

    def write_jsonl(self, target: Union[PathLike, IO[str]]) -> int:
        """Write one JSON object per retained window; returns row count."""
        rows = self.records()
        if hasattr(target, "write"):
            for rec in rows:
                target.write(json.dumps(record_to_dict(rec), sort_keys=True) + "\n")
        else:
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("w") as fh:
                for rec in rows:
                    fh.write(json.dumps(record_to_dict(rec), sort_keys=True) + "\n")
        return len(rows)

    def write_csv(self, target: PathLike) -> int:
        """Write retained windows as CSV (scalar columns only)."""
        rows = self.records()
        columns = [
            f.name
            for f in dataclasses.fields(WindowRecord)
            if f.name not in ("policy_debug", "label_stalls", "metrics")
        ]
        path = Path(target)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(columns)
            for rec in rows:
                writer.writerow([getattr(rec, col) for col in columns])
        return len(rows)


class NullRecorder:
    """No-op recorder used when tracing is disabled."""

    keeps_records = False
    capacity = 0
    downsample = 1
    dropped = 0
    skipped = 0

    def __len__(self) -> int:
        return 0

    def append(self, record: WindowRecord) -> None:
        """Discard the record."""

    def records(self) -> List[WindowRecord]:
        return []

    def write_jsonl(self, target) -> int:  # noqa: ARG002 - interface parity
        return 0

    def write_csv(self, target) -> int:  # noqa: ARG002 - interface parity
        return 0
