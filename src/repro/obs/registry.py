"""Metric primitives: counters, gauges, and summary histograms.

The registry is the single sink every simulator component publishes
into: :class:`~repro.sim.machine.Machine` (window counts, per-tier
utilisation and effective latency), the migration engine (promotion /
demotion / cost counters), the stall solver (fixed-point residual), and
policies (eviction-bar level, top-bin occupancy).  Three metric kinds
cover the paper's introspection needs:

* **counters** accumulate monotonically (``promoted_pages``,
  ``empty_windows``),
* **gauges** hold the latest value (``util_fast``, ``eviction_bar``),
* **histograms** keep count / sum / min / max so distributions
  (window durations) can be summarised without storing every sample.

Everything is plain floats in plain dicts: snapshots are deterministic
(sorted keys), JSON-serialisable, and picklable, so telemetry survives
the experiment layer's on-disk cache and worker-process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class HistogramSummary:
    """Streaming count/sum/min/max summary of one metric's samples."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self, prefix: str) -> Dict[str, float]:
        if self.count == 0:
            return {}
        return {
            f"{prefix}/count": float(self.count),
            f"{prefix}/mean": self.mean,
            f"{prefix}/min": self.minimum,
            f"{prefix}/max": self.maximum,
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms with deterministic export."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, HistogramSummary] = {}

    # -- publishing ----------------------------------------------------------

    def count(self, name: str, delta: float = 1.0) -> None:
        """Increment a monotonic counter."""
        self._counters[name] = self._counters.get(name, 0.0) + float(delta)

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time gauge."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Feed one sample into a summary histogram."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = HistogramSummary()
        hist.add(float(value))

    # -- reading -------------------------------------------------------------

    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    def gauges(self) -> Dict[str, float]:
        """Current gauge values, sorted by name (per-window snapshot)."""
        return {name: self._gauges[name] for name in sorted(self._gauges)}

    def counters(self) -> Dict[str, float]:
        """Current counter values, sorted by name."""
        return {name: self._counters[name] for name in sorted(self._counters)}

    def snapshot(self) -> Dict[str, float]:
        """Flat, sorted view of every metric (the run-level summary).

        Counters appear under their own name, gauges likewise, and each
        histogram expands to ``name/count|mean|min|max``.  Keys are
        sorted so two identical runs serialise identically.
        """
        flat: Dict[str, float] = {}
        flat.update(self._counters)
        flat.update(self._gauges)
        for name, hist in self._histograms.items():
            flat.update(hist.as_dict(name))
        return {name: flat[name] for name in sorted(flat)}

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
