"""Trace export: persist run results and window traces to JSON/CSV.

Research workflows want raw per-window data for external plotting and
post-hoc analysis; these writers keep the on-disk formats stable and
round-trippable.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from repro.sim.metrics import RunResult

PathLike = Union[str, Path]

_TRACE_COLUMNS = (
    "window",
    "duration_cycles",
    "stall_cycles",
    "slow_misses",
    "fast_misses",
    "promoted",
    "demoted",
    "mlp_slow",
    "mlp_fast",
    "fast_resident_fraction",
    "phase",
)


def result_to_dict(result: RunResult, include_trace: bool = True) -> dict:
    """A JSON-serialisable view of a run result."""
    payload = {
        "workload": result.workload,
        "policy": result.policy,
        "ratio": result.ratio,
        "runtime_cycles": result.runtime_cycles,
        "runtime_ms": result.runtime_ms,
        "windows": result.windows,
        "promoted": result.promoted,
        "demoted": result.demoted,
        "migration_cost_cycles": result.migration_cost_cycles,
        "total_stall_cycles": result.total_stall_cycles,
        "total_misses": result.total_misses,
        "tier_misses": {tier.name.lower(): v for tier, v in result.tier_misses.items()},
        "empty_windows": result.empty_windows,
        "metrics_summary": result.metrics_summary,
    }
    if include_trace and result.trace is not None:
        payload["trace"] = [
            {
                **{col: getattr(rec, col) for col in _TRACE_COLUMNS},
                "policy_debug": rec.policy_debug,
                "metrics": rec.metrics,
            }
            for rec in result.trace
        ]
    return payload


def write_json(result: RunResult, path: PathLike, include_trace: bool = True) -> Path:
    """Write the run result (optionally with its trace) as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result, include_trace), indent=2))
    return path


def _is_recorder(source) -> bool:
    """Duck-typed: TraceRecorder/NullRecorder expose ``keeps_records``."""
    return getattr(source, "keeps_records", None) is not None


def write_trace_csv(source, path: PathLike) -> Path:
    """Write the per-window trace as CSV.

    ``source`` is a traced :class:`RunResult`, or -- the fast path -- a
    :class:`~repro.obs.recorder.TraceRecorder`, whose columns are
    written directly without materialising a record object per row.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_TRACE_COLUMNS)
        if _is_recorder(source):
            cols = source.column_lists()
            for i in range(len(source)):
                writer.writerow([cols[col][i] for col in _TRACE_COLUMNS])
        else:
            if source.trace is None:
                raise ValueError(
                    "run was not traced; construct the Machine with trace=True"
                )
            for rec in source.trace:
                writer.writerow([getattr(rec, col) for col in _TRACE_COLUMNS])
    return path


def trace_rows(source) -> list:
    """JSON-serialisable per-window rows.

    Accepts a traced :class:`RunResult` or a recorder; the recorder path
    builds rows columnar-first (no per-row :class:`WindowRecord`).
    """
    if _is_recorder(source):
        cols = source.column_lists()
        return [
            {
                **{col: cols[col][i] for col in _TRACE_COLUMNS},
                "policy_debug": cols["policy_debug"][i],
                "metrics": cols["metrics"][i],
            }
            for i in range(len(source))
        ]
    if source.trace is None:
        raise ValueError("run was not traced; construct the Machine with trace=True")
    return [
        {
            **{col: getattr(rec, col) for col in _TRACE_COLUMNS},
            "policy_debug": rec.policy_debug,
            "metrics": rec.metrics,
        }
        for rec in source.trace
    ]


def write_trace_jsonl(source, target) -> int:
    """Write the per-window trace as JSONL (one window per line).

    ``target`` may be a path or an open text stream; returns the number
    of rows written.  ``source`` is a traced :class:`RunResult`
    (including ones restored from the experiment cache) or a
    :class:`~repro.obs.recorder.TraceRecorder` for the columnar path.
    """
    rows = trace_rows(source)
    if hasattr(target, "write"):
        for row in rows:
            target.write(json.dumps(row, sort_keys=True) + "\n")
        return len(rows)
    path = Path(target)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
    return len(rows)


def read_json(path: PathLike) -> dict:
    """Load a previously exported run-result JSON."""
    return json.loads(Path(path).read_text())
