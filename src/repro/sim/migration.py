"""Page migration engine: applies decisions, charges costs, counts moves.

Wraps :class:`repro.mem.tiered.TieredMemory` with the mechanics the
paper's systems share: ``move_pages()`` cost accounting, THP-aware
whole-huge-page moves (§5.2), LRU victim demotion, and cumulative
promotion/demotion counters (the paper's Table 2 metric).

With an N-tier topology the engine routes migrations hop-by-hop:
promotions always target tier 0; demotions follow the topology's
demotion mode -- ``"through"`` moves a victim one tier down (cascading
further demotions when the intermediate tier is full), ``"direct"``
sends it straight to the bottom tier.  Every hop is separately subject
to capacity admission (and the optional :attr:`MigrationEngine.admission`
hook), and its copy traffic is charged to the two tiers it actually
touches.  Both modes reduce to the single fast->slow hop on the default
two-tier pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.common.units import PAGE_SIZE, PAGES_PER_HUGE_PAGE
from repro.mem.page import Tier, expand_huge_pages, huge_page_of
from repro.mem.tiered import TieredMemory
from repro.sim.config import MachineConfig


def _no_pages() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


@dataclass
class MigrationOutcome:
    """Result of applying one window's migration orders."""

    promoted: int = 0
    demoted: int = 0
    cost_cycles: float = 0.0
    bytes_moved: float = 0.0
    promoted_pages: np.ndarray = field(default_factory=_no_pages)
    demoted_pages: np.ndarray = field(default_factory=_no_pages)
    #: Copy traffic per tier index touched (each hop charges half its
    #: bytes to the source tier's link and half to the destination's).
    link_bytes: Dict[int, float] = field(default_factory=dict)

    def merge(self, other: "MigrationOutcome") -> None:
        self.promoted += other.promoted
        self.demoted += other.demoted
        self.cost_cycles += other.cost_cycles
        self.bytes_moved += other.bytes_moved
        for tier, nbytes in other.link_bytes.items():
            self.link_bytes[tier] = self.link_bytes.get(tier, 0.0) + nbytes
        if other.promoted_pages.size:
            self.promoted_pages = np.concatenate([self.promoted_pages, other.promoted_pages])
        if other.demoted_pages.size:
            self.demoted_pages = np.concatenate([self.demoted_pages, other.demoted_pages])


class MigrationEngine:
    """Applies promotion/demotion orders against the tiered memory."""

    def __init__(self, memory: TieredMemory, config: MachineConfig, obs=None):
        self.memory = memory
        self.config = config
        self.num_tiers = memory.num_tiers
        #: Demotion routing for multi-hop hierarchies (see module doc).
        self.demotion_mode = config.demotion_mode
        #: Optional per-hop admission gate: ``(src, dst, pages) -> pages``
        #: lets a policy veto or trim individual hops (e.g. refuse to
        #: demote compressible-unfriendly pages into a compressed tier).
        self.admission: Optional[Callable[[int, int, np.ndarray], np.ndarray]] = None
        #: Optional :class:`repro.obs.Observability` sink for cumulative
        #: promotion/demotion/cost counters (None = no publishing).
        self._obs = obs
        self.total_promoted = 0
        self.total_demoted = 0
        self.total_cost_cycles = 0.0

    # -- helpers ---------------------------------------------------------------

    def _expand_thp(self, pages: np.ndarray) -> np.ndarray:
        """With THP enabled, widen selections to whole 2MB regions."""
        if not self.config.thp or pages.size == 0:
            return pages
        return expand_huge_pages(huge_page_of(pages), self.memory.footprint_pages)

    def _cost(self, moved: np.ndarray) -> float:
        """Migration cost in cycles for the pages actually moved."""
        if moved.size == 0:
            return 0.0
        if not self.config.thp:
            return self.config.migration_cycles(pages_4k=int(moved.size))
        # Whole huge pages move as single units; stragglers (huge pages
        # clipped by the footprint edge or partially resident) move 4KB-wise.
        huge_ids, counts = np.unique(huge_page_of(moved), return_counts=True)
        whole = int((counts == PAGES_PER_HUGE_PAGE).sum())
        loose = int(counts[counts != PAGES_PER_HUGE_PAGE].sum())
        return self.config.migration_cycles(pages_4k=loose, huge_pages=whole)

    def _demote_dst(self, src: int) -> int:
        """Destination tier for a demotion out of ``src``."""
        bottom = self.num_tiers - 1
        if self.demotion_mode == "direct":
            return bottom
        return min(src + 1, bottom)

    def _admit(self, src: int, dst: int, pages: np.ndarray) -> np.ndarray:
        if self.admission is None or pages.size == 0:
            return pages
        return np.asarray(self.admission(src, dst, pages), dtype=np.int64)

    # -- operations -------------------------------------------------------------

    def demote_lru(
        self, count: int, protect: np.ndarray, victim_mode: str = "cold"
    ) -> MigrationOutcome:
        """Demote up to ``count`` reclaim victims from the fast tier.

        ``victim_mode`` selects the reclaim walker (see
        :class:`repro.sim.policy_api.Decision`): ``"cold"`` only touches
        genuinely inactive pages, ``"lru_tail"`` takes the coldest pages
        unconditionally, and ``"fifo"`` walks arrival order -- evicting
        hot pages and causing refault ping-pong, as simple watermark
        reclaim does.
        """
        if victim_mode not in ("cold", "lru_tail", "fifo"):
            raise ValueError(f"unknown victim mode {victim_mode!r}")
        max_activity = None
        if victim_mode == "cold":
            max_activity = (
                self.config.cold_activity_fraction * self.memory.mean_activity(Tier.FAST)
            )
        victims = self.memory.lru_victims(
            Tier.FAST,
            count,
            protect=protect,
            max_activity=max_activity,
            fifo=victim_mode == "fifo",
        )
        return self.demote(victims)

    def demote(self, pages: np.ndarray) -> MigrationOutcome:
        """Demote pages one hop down (or straight to the bottom tier).

        Pages are routed per source tier; a hop into a *full*
        intermediate tier first cascades that tier's own LRU victims
        further down to make room (demote-through semantics).
        """
        pages = self._expand_thp(np.asarray(pages, dtype=np.int64))
        outcome = MigrationOutcome()
        if pages.size == 0:
            return outcome
        place = self.memory.tier_of(pages)
        for src in range(self.num_tiers - 1):
            sub = pages[place == src]
            if sub.size == 0:
                continue
            dst = self._demote_dst(src)
            sub = self._admit(src, dst, sub)
            if sub.size == 0:
                continue
            if dst < self.num_tiers - 1:
                deficit = sub.size - self.memory.free_pages(dst)
                if deficit > 0:
                    outcome.merge(self._cascade(dst, deficit, protect=sub))
            moved = self.memory.move(sub, dst, src=src)
            outcome.merge(self._account(moved, promoted=False, src=src, dst=dst))
        return outcome

    def _cascade(self, tier: int, count: int, protect: np.ndarray) -> MigrationOutcome:
        """Push ``count`` LRU victims out of an intermediate tier.

        Recursion depth is bounded by the tier chain: each level demotes
        one hop further down, and the bottom tier always has room.
        """
        outcome = MigrationOutcome()
        victims = self.memory.lru_victims(tier, count, protect=protect)
        if victims.size == 0:
            return outcome
        dst = self._demote_dst(tier)
        victims = self._admit(tier, dst, victims)
        if victims.size == 0:
            return outcome
        if dst < self.num_tiers - 1:
            deficit = victims.size - self.memory.free_pages(dst)
            if deficit > 0:
                outcome.merge(self._cascade(dst, deficit, protect=victims))
        moved = self.memory.move(victims, dst, src=tier)
        outcome.merge(self._account(moved, promoted=False, src=tier, dst=dst))
        return outcome

    def promote(self, pages: np.ndarray, make_room: bool = False) -> MigrationOutcome:
        """Promote pages to tier 0; optionally demote LRU victims first.

        ``make_room`` models policies that reclaim on-demand (TPP's
        watermark-based demotion); PACT instead reserves space ahead of
        time through its eager-demotion rule.  Pages are promoted per
        source tier, nearest tier first.
        """
        pages = self._expand_thp(np.asarray(pages, dtype=np.int64))
        outcome = MigrationOutcome()
        if pages.size == 0:
            return outcome
        if make_room:
            deficit = pages.size - self.memory.free_pages(Tier.FAST)
            if deficit > 0:
                outcome.merge(self.demote_lru(deficit, protect=pages))
        place = self.memory.tier_of(pages)
        top = int(Tier.FAST)
        for src in range(1, self.num_tiers):
            sub = pages[place == src]
            if sub.size == 0:
                continue
            sub = self._admit(src, top, sub)
            if sub.size == 0:
                continue
            moved = self.memory.move(sub, Tier.FAST, src=src)
            outcome.merge(self._account(moved, promoted=True, src=src, dst=top))
        return outcome

    def _account(
        self, moved: np.ndarray, promoted: bool, src: int, dst: int
    ) -> MigrationOutcome:
        cost = self._cost(moved)
        count = int(moved.size)
        if promoted:
            self.total_promoted += count
        else:
            self.total_demoted += count
        self.total_cost_cycles += cost
        if self._obs is not None and count:
            self._obs.count("migrate/promoted_pages" if promoted else "migrate/demoted_pages", count)
            self._obs.count("migrate/cost_cycles", cost)
        bytes_moved = float(count) * PAGE_SIZE * 2.0  # read src + write dst
        link_bytes: Dict[int, float] = {}
        if count:
            # Half the copy traffic crosses each endpoint's link; the
            # halves are exact (counts of 4KB pages), so summing them
            # per tier reproduces the historical bytes_moved/2 split.
            link_bytes[int(src)] = bytes_moved / 2.0
            link_bytes[int(dst)] = link_bytes.get(int(dst), 0.0) + bytes_moved / 2.0
        return MigrationOutcome(
            promoted=count if promoted else 0,
            demoted=0 if promoted else count,
            cost_cycles=cost,
            bytes_moved=bytes_moved,
            link_bytes=link_bytes,
            promoted_pages=moved if promoted else _no_pages(),
            demoted_pages=_no_pages() if promoted else moved,
        )
