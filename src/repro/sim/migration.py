"""Page migration engine: applies decisions, charges costs, counts moves.

Wraps :class:`repro.mem.tiered.TieredMemory` with the mechanics the
paper's systems share: ``move_pages()`` cost accounting, THP-aware
whole-huge-page moves (§5.2), LRU victim demotion, and cumulative
promotion/demotion counters (the paper's Table 2 metric).

With an N-tier topology the engine routes migrations hop-by-hop:
promotions always target tier 0; demotions follow the topology's
demotion mode -- ``"through"`` moves a victim one tier down (cascading
further demotions when the intermediate tier is full), ``"direct"``
sends it straight to the bottom tier.  Every hop is separately subject
to capacity admission (and the optional :attr:`MigrationEngine.admission`
hook), and its copy traffic is charged to the two tiers it actually
touches.  Both modes reduce to the single fast->slow hop on the default
two-tier pair.

The window hot path is a fused plan/apply split
(:meth:`MigrationEngine.apply_window`): the plan phase replays the
per-hop control flow against a :class:`~repro.mem.tiered.PlacementOverlay`
-- one ``tier_of`` gather per order batch, victim selection and capacity
clipping against the *planned* placement -- and resolves the whole
window (reclaim, explicit demotions, cascades, promotions) into a single
:class:`MovePlan`; the apply phase commits the plan with one fused
placement scatter (:meth:`~repro.mem.tiered.TieredMemory.apply_moves`)
and then accounts every hop in order.  The per-hop methods
(:meth:`~MigrationEngine.demote_lru` / :meth:`~MigrationEngine.demote` /
:meth:`~MigrationEngine.promote`, reachable together through
:meth:`~MigrationEngine.apply_window_legacy`) stay importable as the
exactness reference -- the property tests pin the two paths
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.common.units import PAGE_SIZE, PAGES_PER_HUGE_PAGE
from repro.mem.page import Tier, expand_huge_pages, huge_page_of
from repro.mem.tiered import PlacementOverlay, TieredMemory
from repro.obs.profiler import null_profile as _null_profile
from repro.sim.config import MachineConfig


def _no_pages() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


class MigrationOutcome:
    """Result of applying one window's migration orders.

    Page arrays accumulate as parts lists and materialise (once) on
    first read of :attr:`promoted_pages` / :attr:`demoted_pages`:
    merging ``k`` hop outcomes is O(k) appends plus a single
    concatenation, not the O(k^2) repeated ``np.concatenate`` a field
    per merge would cost across multi-hop cascades.
    """

    __slots__ = (
        "promoted",
        "demoted",
        "cost_cycles",
        "bytes_moved",
        "link_bytes",
        "_promoted_parts",
        "_demoted_parts",
    )

    def __init__(
        self,
        promoted: int = 0,
        demoted: int = 0,
        cost_cycles: float = 0.0,
        bytes_moved: float = 0.0,
        promoted_pages: Optional[np.ndarray] = None,
        demoted_pages: Optional[np.ndarray] = None,
        link_bytes: Optional[Dict[int, float]] = None,
    ):
        self.promoted = promoted
        self.demoted = demoted
        self.cost_cycles = cost_cycles
        self.bytes_moved = bytes_moved
        #: Copy traffic per tier index touched (each hop charges half its
        #: bytes to the source tier's link and half to the destination's).
        self.link_bytes: Dict[int, float] = {} if link_bytes is None else link_bytes
        self._promoted_parts: List[np.ndarray] = []
        self._demoted_parts: List[np.ndarray] = []
        if promoted_pages is not None and promoted_pages.size:
            self._promoted_parts.append(promoted_pages)
        if demoted_pages is not None and demoted_pages.size:
            self._demoted_parts.append(demoted_pages)

    @staticmethod
    def _materialise(parts: List[np.ndarray]) -> np.ndarray:
        if not parts:
            return _no_pages()
        if len(parts) > 1:
            # Collapse in place so repeated reads don't re-concatenate.
            parts[:] = [np.concatenate(parts)]
        return parts[0]

    @property
    def promoted_pages(self) -> np.ndarray:
        """Pages promoted this window, in hop order."""
        return self._materialise(self._promoted_parts)

    @property
    def demoted_pages(self) -> np.ndarray:
        """Pages demoted this window, in hop order."""
        return self._materialise(self._demoted_parts)

    def merge(self, other: "MigrationOutcome") -> None:
        self.promoted += other.promoted
        self.demoted += other.demoted
        self.cost_cycles += other.cost_cycles
        self.bytes_moved += other.bytes_moved
        for tier, nbytes in other.link_bytes.items():
            self.link_bytes[tier] = self.link_bytes.get(tier, 0.0) + nbytes
        self._promoted_parts.extend(other._promoted_parts)
        self._demoted_parts.extend(other._demoted_parts)


@dataclass
class MovePlan:
    """One window's migrations resolved into ordered, pre-clipped hops.

    Each hop is ``(pages, src, dst, promoted)`` with the page array
    sorted, deduped, and clipped exactly as the corresponding live
    :meth:`TieredMemory.move` call would have returned it; hop order is
    the live path's execution order (cascades ahead of the hop that
    triggered them).

    ``program`` mirrors the per-hop path's *outcome merge tree*: a
    nested list whose leaves are hop indices and whose inner lists are
    the sub-outcomes (phases, cascade chains) the legacy path summed
    before merging upward.  Replaying it keeps the float association of
    ``cost_cycles`` -- the one outcome field whose per-hop terms are
    inexact -- bit-identical to the reference, where a flat left fold
    over the hops can drift by an ulp on multi-hop windows.
    """

    hops: List[Tuple[np.ndarray, int, int, bool]] = field(default_factory=list)
    #: Nested merge program; ints index :attr:`hops`.
    program: List = field(default_factory=list)

    @property
    def moves(self) -> List[Tuple[np.ndarray, int, int]]:
        """The hops as ``(pages, src, dst)`` for ``apply_moves``."""
        return [(pages, src, dst) for pages, src, dst, _ in self.hops]


class MigrationEngine:
    """Applies promotion/demotion orders against the tiered memory."""

    def __init__(self, memory: TieredMemory, config: MachineConfig, obs=None):
        self.memory = memory
        self.config = config
        self.num_tiers = memory.num_tiers
        #: Demotion routing for multi-hop hierarchies (see module doc).
        self.demotion_mode = config.demotion_mode
        #: Optional per-hop admission gate: ``(src, dst, pages) -> pages``
        #: lets a policy veto or trim individual hops (e.g. refuse to
        #: demote compressible-unfriendly pages into a compressed tier).
        self.admission: Optional[Callable[[int, int, np.ndarray], np.ndarray]] = None
        #: Optional :class:`repro.obs.Observability` sink for cumulative
        #: promotion/demotion/cost counters (None = no publishing).
        self._obs = obs
        self._profile = obs.profile if obs is not None else _null_profile
        self.total_promoted = 0
        self.total_demoted = 0
        self.total_cost_cycles = 0.0

    # -- helpers ---------------------------------------------------------------

    def _expand_thp(self, pages: np.ndarray) -> np.ndarray:
        """With THP enabled, widen selections to whole 2MB regions."""
        if not self.config.thp or pages.size == 0:
            return pages
        return expand_huge_pages(huge_page_of(pages), self.memory.footprint_pages)

    def _cost(self, moved: np.ndarray) -> float:
        """Migration cost in cycles for the pages actually moved."""
        if moved.size == 0:
            return 0.0
        if not self.config.thp:
            return self.config.migration_cycles(pages_4k=int(moved.size))
        # Whole huge pages move as single units; stragglers (huge pages
        # clipped by the footprint edge or partially resident) move 4KB-wise.
        huge_ids, counts = np.unique(huge_page_of(moved), return_counts=True)
        whole = int((counts == PAGES_PER_HUGE_PAGE).sum())
        loose = int(counts[counts != PAGES_PER_HUGE_PAGE].sum())
        return self.config.migration_cycles(pages_4k=loose, huge_pages=whole)

    def _demote_dst(self, src: int) -> int:
        """Destination tier for a demotion out of ``src``."""
        bottom = self.num_tiers - 1
        if self.demotion_mode == "direct":
            return bottom
        return min(src + 1, bottom)

    def _admit(self, src: int, dst: int, pages: np.ndarray) -> np.ndarray:
        if self.admission is None or pages.size == 0:
            return pages
        return np.asarray(self.admission(src, dst, pages), dtype=np.int64)

    # -- operations -------------------------------------------------------------

    def demote_lru(
        self, count: int, protect: np.ndarray, victim_mode: str = "cold"
    ) -> MigrationOutcome:
        """Demote up to ``count`` reclaim victims from the fast tier.

        ``victim_mode`` selects the reclaim walker (see
        :class:`repro.sim.policy_api.Decision`): ``"cold"`` only touches
        genuinely inactive pages, ``"lru_tail"`` takes the coldest pages
        unconditionally, and ``"fifo"`` walks arrival order -- evicting
        hot pages and causing refault ping-pong, as simple watermark
        reclaim does.
        """
        if victim_mode not in ("cold", "lru_tail", "fifo"):
            raise ValueError(f"unknown victim mode {victim_mode!r}")
        if count <= 0:
            # Nothing to reclaim: skip the mean-activity threshold and
            # the victim walk entirely.
            return MigrationOutcome()
        max_activity = None
        if victim_mode == "cold":
            max_activity = (
                self.config.cold_activity_fraction * self.memory.mean_activity(Tier.FAST)
            )
        victims = self.memory.lru_victims(
            Tier.FAST,
            count,
            protect=protect,
            max_activity=max_activity,
            fifo=victim_mode == "fifo",
        )
        return self.demote(victims)

    def demote(self, pages: np.ndarray) -> MigrationOutcome:
        """Demote pages one hop down (or straight to the bottom tier).

        Pages are routed per source tier; a hop into a *full*
        intermediate tier first cascades that tier's own LRU victims
        further down to make room (demote-through semantics).
        """
        pages = self._expand_thp(np.asarray(pages, dtype=np.int64))
        outcome = MigrationOutcome()
        if pages.size == 0:
            return outcome
        place = self.memory.tier_of(pages)
        for src in range(self.num_tiers - 1):
            sub = pages[place == src]
            if sub.size == 0:
                continue
            dst = self._demote_dst(src)
            sub = self._admit(src, dst, sub)
            if sub.size == 0:
                continue
            if dst < self.num_tiers - 1:
                deficit = sub.size - self.memory.free_pages(dst)
                if deficit > 0:
                    outcome.merge(self._cascade(dst, deficit, protect=sub))
            moved = self.memory.move(sub, dst, src=src)
            outcome.merge(self._account(moved, promoted=False, src=src, dst=dst))
        return outcome

    def _cascade(self, tier: int, count: int, protect: np.ndarray) -> MigrationOutcome:
        """Push ``count`` LRU victims out of an intermediate tier.

        Recursion depth is bounded by the tier chain: each level demotes
        one hop further down, and the bottom tier always has room.
        """
        outcome = MigrationOutcome()
        victims = self.memory.lru_victims(tier, count, protect=protect)
        if victims.size == 0:
            return outcome
        dst = self._demote_dst(tier)
        victims = self._admit(tier, dst, victims)
        if victims.size == 0:
            return outcome
        if dst < self.num_tiers - 1:
            deficit = victims.size - self.memory.free_pages(dst)
            if deficit > 0:
                outcome.merge(self._cascade(dst, deficit, protect=victims))
        moved = self.memory.move(victims, dst, src=tier)
        outcome.merge(self._account(moved, promoted=False, src=tier, dst=dst))
        return outcome

    def promote(self, pages: np.ndarray, make_room: bool = False) -> MigrationOutcome:
        """Promote pages to tier 0; optionally demote LRU victims first.

        ``make_room`` models policies that reclaim on-demand (TPP's
        watermark-based demotion); PACT instead reserves space ahead of
        time through its eager-demotion rule.  Pages are promoted per
        source tier, nearest tier first.
        """
        pages = self._expand_thp(np.asarray(pages, dtype=np.int64))
        outcome = MigrationOutcome()
        if pages.size == 0:
            return outcome
        if make_room:
            deficit = pages.size - self.memory.free_pages(Tier.FAST)
            if deficit > 0:
                outcome.merge(self.demote_lru(deficit, protect=pages))
        place = self.memory.tier_of(pages)
        top = int(Tier.FAST)
        for src in range(1, self.num_tiers):
            sub = pages[place == src]
            if sub.size == 0:
                continue
            sub = self._admit(src, top, sub)
            if sub.size == 0:
                continue
            moved = self.memory.move(sub, Tier.FAST, src=src)
            outcome.merge(self._account(moved, promoted=True, src=src, dst=top))
        return outcome

    # -- fused window apply ------------------------------------------------------

    def apply_window(self, decision) -> MigrationOutcome:
        """Apply one window's :class:`~repro.sim.policy_api.Decision`, fused.

        Three phases, each under its own profiler span: ``migrate_plan``
        resolves reclaim + demotions + promotions (and any cascades)
        into a :class:`MovePlan` against a placement overlay without
        touching live state; ``migrate_move`` commits the plan with one
        fused scatter; ``migrate_account`` charges costs and counters
        hop by hop in plan order.  Bit-identical to
        :meth:`apply_window_legacy` (the per-hop reference): the plan
        phase replays its exact control flow and clipping arithmetic,
        and the account phase runs the same float accumulations in the
        same hop order.
        """
        with self._profile("migrate_plan"):
            plan = self.plan_window(decision)
        with self._profile("migrate_move"):
            if plan.hops:
                self.memory.apply_moves(plan.moves)
        with self._profile("migrate_account"):
            outcome = MigrationOutcome()
            for node in plan.program:
                outcome.merge(self._account_node(node, plan))
        return outcome

    def _account_node(self, node, plan: MovePlan) -> MigrationOutcome:
        """Evaluate one node of the plan's merge program (see MovePlan)."""
        if isinstance(node, int):
            pages, src, dst, promoted = plan.hops[node]
            return self._account(pages, promoted=promoted, src=src, dst=dst)
        out = MigrationOutcome()
        for child in node:
            out.merge(self._account_node(child, plan))
        return out

    def apply_window_legacy(self, decision) -> MigrationOutcome:
        """Per-hop reference implementation of :meth:`apply_window`.

        Applies the decision through the mutate-as-you-go ``demote_lru``
        / ``demote`` / ``promote`` path (one ``memory.move`` per hop).
        Kept importable as the exactness oracle for the fused path's
        property tests, like ``split_groups_legacy`` in the stall model.
        """
        total = MigrationOutcome()
        if decision.demote_lru > 0:
            total.merge(
                self.demote_lru(
                    decision.demote_lru,
                    protect=decision.promote,
                    victim_mode=decision.demote_victim_mode,
                )
            )
        if decision.demote.size:
            total.merge(self.demote(decision.demote))
        if decision.promote.size:
            total.merge(self.promote(decision.promote, make_room=False))
        return total

    def plan_window(self, decision) -> MovePlan:
        """Resolve a decision into ordered pre-clipped hops (no mutation).

        The overlay starts as a copy of live placement/occupancy, so
        the first order batch (always the LRU reclaim, which is what
        consults activity state) sees exactly the live state, and every
        later batch sees the placement its predecessors will have
        produced -- the same intermediate states the per-hop path
        marches through.
        """
        plan = MovePlan()
        overlay = self.memory.overlay()
        if decision.demote_lru > 0:
            self._plan_demote_lru(
                overlay,
                plan,
                decision.demote_lru,
                protect=decision.promote,
                victim_mode=decision.demote_victim_mode,
            )
        if decision.demote.size:
            plan.program.append(self._plan_demote(overlay, plan, decision.demote))
        if decision.promote.size:
            plan.program.append(self._plan_promote(overlay, plan, decision.promote))
        return plan

    def _plan_demote_lru(
        self,
        overlay: PlacementOverlay,
        plan: MovePlan,
        count: int,
        protect: np.ndarray,
        victim_mode: str,
    ) -> None:
        if victim_mode not in ("cold", "lru_tail", "fifo"):
            raise ValueError(f"unknown victim mode {victim_mode!r}")
        if count <= 0:
            return
        max_activity = None
        if victim_mode == "cold":
            # Reclaim is planned first, against a pristine overlay, so
            # the live mean is exactly the mean the per-hop path uses.
            max_activity = (
                self.config.cold_activity_fraction * self.memory.mean_activity(Tier.FAST)
            )
        victims = overlay.lru_victims(
            Tier.FAST,
            count,
            protect=protect,
            max_activity=max_activity,
            fifo=victim_mode == "fifo",
        )
        plan.program.append(self._plan_demote(overlay, plan, victims))

    def _plan_demote(
        self, overlay: PlacementOverlay, plan: MovePlan, pages: np.ndarray
    ) -> List:
        node: List = []
        pages = self._expand_thp(np.asarray(pages, dtype=np.int64))
        if pages.size == 0:
            return node
        place = overlay.tier_of(pages)
        for src in range(self.num_tiers - 1):
            sub = pages[place == src]
            if sub.size == 0:
                continue
            dst = self._demote_dst(src)
            sub = self._admit(src, dst, sub)
            if sub.size == 0:
                continue
            if dst < self.num_tiers - 1:
                deficit = sub.size - overlay.free_pages(dst)
                if deficit > 0:
                    node.append(self._plan_cascade(overlay, plan, dst, deficit, protect=sub))
            moved = overlay.clip_move(sub, dst, src=src)
            if moved.size:
                plan.hops.append((moved, src, dst, False))
                node.append(len(plan.hops) - 1)
        return node

    def _plan_cascade(
        self,
        overlay: PlacementOverlay,
        plan: MovePlan,
        tier: int,
        count: int,
        protect: np.ndarray,
    ) -> List:
        node: List = []
        victims = overlay.lru_victims(tier, count, protect=protect)
        if victims.size == 0:
            return node
        dst = self._demote_dst(tier)
        victims = self._admit(tier, dst, victims)
        if victims.size == 0:
            return node
        if dst < self.num_tiers - 1:
            deficit = victims.size - overlay.free_pages(dst)
            if deficit > 0:
                node.append(self._plan_cascade(overlay, plan, dst, deficit, protect=victims))
        moved = overlay.clip_move(victims, dst, src=tier)
        if moved.size:
            plan.hops.append((moved, tier, dst, False))
            node.append(len(plan.hops) - 1)
        return node

    def _plan_promote(
        self, overlay: PlacementOverlay, plan: MovePlan, pages: np.ndarray
    ) -> List:
        node: List = []
        pages = self._expand_thp(np.asarray(pages, dtype=np.int64))
        if pages.size == 0:
            return node
        place = overlay.tier_of(pages)
        top = int(Tier.FAST)
        for src in range(1, self.num_tiers):
            sub = pages[place == src]
            if sub.size == 0:
                continue
            sub = self._admit(src, top, sub)
            if sub.size == 0:
                continue
            moved = overlay.clip_move(sub, top, src=src)
            if moved.size:
                plan.hops.append((moved, src, top, True))
                node.append(len(plan.hops) - 1)
        return node

    def _account(
        self, moved: np.ndarray, promoted: bool, src: int, dst: int
    ) -> MigrationOutcome:
        cost = self._cost(moved)
        count = int(moved.size)
        if promoted:
            self.total_promoted += count
        else:
            self.total_demoted += count
        self.total_cost_cycles += cost
        if self._obs is not None and count:
            self._obs.count("migrate/promoted_pages" if promoted else "migrate/demoted_pages", count)
            self._obs.count("migrate/cost_cycles", cost)
        bytes_moved = float(count) * PAGE_SIZE * 2.0  # read src + write dst
        link_bytes: Dict[int, float] = {}
        if count:
            # Half the copy traffic crosses each endpoint's link; the
            # halves are exact (counts of 4KB pages), so summing them
            # per tier reproduces the historical bytes_moved/2 split.
            link_bytes[int(src)] = bytes_moved / 2.0
            link_bytes[int(dst)] = link_bytes.get(int(dst), 0.0) + bytes_moved / 2.0
        return MigrationOutcome(
            promoted=count if promoted else 0,
            demoted=0 if promoted else count,
            cost_cycles=cost,
            bytes_moved=bytes_moved,
            link_bytes=link_bytes,
            promoted_pages=moved if promoted else _no_pages(),
            demoted_pages=_no_pages() if promoted else moved,
        )
