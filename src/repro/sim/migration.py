"""Page migration engine: applies decisions, charges costs, counts moves.

Wraps :class:`repro.mem.tiered.TieredMemory` with the mechanics the
paper's systems share: ``move_pages()`` cost accounting, THP-aware
whole-huge-page moves (§5.2), LRU victim demotion, and cumulative
promotion/demotion counters (the paper's Table 2 metric).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.units import PAGE_SIZE, PAGES_PER_HUGE_PAGE
from repro.mem.page import Tier, expand_huge_pages, huge_page_of
from repro.mem.tiered import TieredMemory
from repro.sim.config import MachineConfig


def _no_pages() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


@dataclass
class MigrationOutcome:
    """Result of applying one window's migration orders."""

    promoted: int = 0
    demoted: int = 0
    cost_cycles: float = 0.0
    bytes_moved: float = 0.0
    promoted_pages: np.ndarray = field(default_factory=_no_pages)
    demoted_pages: np.ndarray = field(default_factory=_no_pages)

    def merge(self, other: "MigrationOutcome") -> None:
        self.promoted += other.promoted
        self.demoted += other.demoted
        self.cost_cycles += other.cost_cycles
        self.bytes_moved += other.bytes_moved
        if other.promoted_pages.size:
            self.promoted_pages = np.concatenate([self.promoted_pages, other.promoted_pages])
        if other.demoted_pages.size:
            self.demoted_pages = np.concatenate([self.demoted_pages, other.demoted_pages])


class MigrationEngine:
    """Applies promotion/demotion orders against the tiered memory."""

    def __init__(self, memory: TieredMemory, config: MachineConfig, obs=None):
        self.memory = memory
        self.config = config
        #: Optional :class:`repro.obs.Observability` sink for cumulative
        #: promotion/demotion/cost counters (None = no publishing).
        self._obs = obs
        self.total_promoted = 0
        self.total_demoted = 0
        self.total_cost_cycles = 0.0

    # -- helpers ---------------------------------------------------------------

    def _expand_thp(self, pages: np.ndarray) -> np.ndarray:
        """With THP enabled, widen selections to whole 2MB regions."""
        if not self.config.thp or pages.size == 0:
            return pages
        return expand_huge_pages(huge_page_of(pages), self.memory.footprint_pages)

    def _cost(self, moved: np.ndarray) -> float:
        """Migration cost in cycles for the pages actually moved."""
        if moved.size == 0:
            return 0.0
        if not self.config.thp:
            return self.config.migration_cycles(pages_4k=int(moved.size))
        # Whole huge pages move as single units; stragglers (huge pages
        # clipped by the footprint edge or partially resident) move 4KB-wise.
        huge_ids, counts = np.unique(huge_page_of(moved), return_counts=True)
        whole = int((counts == PAGES_PER_HUGE_PAGE).sum())
        loose = int(counts[counts != PAGES_PER_HUGE_PAGE].sum())
        return self.config.migration_cycles(pages_4k=loose, huge_pages=whole)

    # -- operations -------------------------------------------------------------

    def demote_lru(
        self, count: int, protect: np.ndarray, victim_mode: str = "cold"
    ) -> MigrationOutcome:
        """Demote up to ``count`` reclaim victims from the fast tier.

        ``victim_mode`` selects the reclaim walker (see
        :class:`repro.sim.policy_api.Decision`): ``"cold"`` only touches
        genuinely inactive pages, ``"lru_tail"`` takes the coldest pages
        unconditionally, and ``"fifo"`` walks arrival order -- evicting
        hot pages and causing refault ping-pong, as simple watermark
        reclaim does.
        """
        if victim_mode not in ("cold", "lru_tail", "fifo"):
            raise ValueError(f"unknown victim mode {victim_mode!r}")
        max_activity = None
        if victim_mode == "cold":
            max_activity = (
                self.config.cold_activity_fraction * self.memory.mean_activity(Tier.FAST)
            )
        victims = self.memory.lru_victims(
            Tier.FAST,
            count,
            protect=protect,
            max_activity=max_activity,
            fifo=victim_mode == "fifo",
        )
        return self.demote(victims)

    def demote(self, pages: np.ndarray) -> MigrationOutcome:
        pages = self._expand_thp(np.asarray(pages, dtype=np.int64))
        moved = self.memory.move(pages, Tier.SLOW)
        return self._account(moved, promoted=False)

    def promote(self, pages: np.ndarray, make_room: bool = False) -> MigrationOutcome:
        """Promote pages; optionally demote LRU victims to make room.

        ``make_room`` models policies that reclaim on-demand (TPP's
        watermark-based demotion); PACT instead reserves space ahead of
        time through its eager-demotion rule.
        """
        pages = self._expand_thp(np.asarray(pages, dtype=np.int64))
        outcome = MigrationOutcome()
        if pages.size == 0:
            return outcome
        if make_room:
            deficit = pages.size - self.memory.free_pages(Tier.FAST)
            if deficit > 0:
                outcome.merge(self.demote_lru(deficit, protect=pages))
        moved = self.memory.move(pages, Tier.FAST)
        outcome.merge(self._account(moved, promoted=True))
        return outcome

    def _account(self, moved: np.ndarray, promoted: bool) -> MigrationOutcome:
        cost = self._cost(moved)
        count = int(moved.size)
        if promoted:
            self.total_promoted += count
        else:
            self.total_demoted += count
        self.total_cost_cycles += cost
        if self._obs is not None and count:
            self._obs.count("migrate/promoted_pages" if promoted else "migrate/demoted_pages", count)
            self._obs.count("migrate/cost_cycles", cost)
        return MigrationOutcome(
            promoted=count if promoted else 0,
            demoted=0 if promoted else count,
            cost_cycles=cost,
            bytes_moved=float(count) * PAGE_SIZE * 2.0,  # read src + write dst
            promoted_pages=moved if promoted else _no_pages(),
            demoted_pages=_no_pages() if promoted else moved,
        )
