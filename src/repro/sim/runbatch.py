"""Multi-run SoA simulation: R machines over one trace in lockstep.

A campaign sweep spends most of its wall-clock re-simulating the same
(workload, policy) pair under different seeds and capacity ratios.  All
of those runs replay the *same* recorded trace, so their window loops
are structurally identical: every run pulls the same window, splits it
by its own placement, and solves an independent fixed point.  The only
cross-window coupling (pending migration bytes, PEBS overhead, the
contender's duration feedback) is *per run* -- there is no coupling
across runs at all.

:class:`MultiMachine` exploits that: it steps R fully-constructed
:class:`~repro.sim.machine.Machine` instances window by window, keeping
each machine's prepare/finish phases (placement, counters, RNG streams,
policy) exactly as they run solo, but fusing the R per-window stall
solves into one :meth:`~repro.hw.stall.StallModel.solve_many` call.
Every run's result is **bit-identical** to running its machine alone --
the property tests assert it -- so multi-run execution is purely an
execution strategy, invisible to caches and digests.

Under RNG schema 2 (:mod:`repro.hw.substream`) members do not even
carry per-run sequential streams through the loop: every sampler and
jitter draw is keyed by each member's own (seed, purpose, window), so
lockstep grouping, member order, and serial execution all consume the
same keyed values by construction.

Constraints (a :class:`ValueError` asks the caller to fall back to
serial execution):

* every machine replays the same recorded trace (same fingerprint and
  window count), non-looping, so the runs stay in lockstep;
* observability and tracing are off (the batched solver publishes no
  fixed-point residual gauge);
* identical tier count, tier specs, and clock, so one solver serves all.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.sim.machine import Machine
from repro.sim.metrics import RunResult


class MultiMachine:
    """Lockstep executor for runs that replay one recorded trace."""

    def __init__(self, machines: Sequence[Machine]):
        if not machines:
            raise ValueError("MultiMachine needs at least one machine")
        self.machines = list(machines)
        self._validate()

    def _validate(self) -> None:
        from repro.workloads.tracestore import ReplayWorkload

        first = self.machines[0]
        ref = first.workload
        if not isinstance(ref, ReplayWorkload) or ref.loop:
            raise ValueError("multi-run execution needs non-looping replay workloads")
        model0 = first.stall_model
        for m in self.machines:
            wl = m.workload
            if not isinstance(wl, ReplayWorkload) or wl.loop:
                raise ValueError("multi-run execution needs non-looping replay workloads")
            if (
                wl.replay_fingerprint != ref.replay_fingerprint
                or wl.trace_windows != ref.trace_windows
            ):
                raise ValueError("all runs must replay the same recorded trace")
            if m.obs.enabled or m.trace_enabled:
                raise ValueError("multi-run execution requires observability off")
            if (
                m.num_tiers != first.num_tiers
                or m.stall_model.spec != model0.spec
                or m.stall_model.freq_ghz != model0.freq_ghz
                or m.stall_model.prefetch_traffic_factor != model0.prefetch_traffic_factor
            ):
                raise ValueError("all runs must share one tier topology and clock")

    def step(self) -> None:
        """Advance every run by one window (one batched solve)."""
        machines = self.machines
        traffics = [m.workload.next_window() for m in machines]
        # One trace drives all runs, so windows are empty together.
        if not traffics[0].groups:
            for m in machines:
                m._step_empty_window()
            return
        preps = [m._prepare_window(t) for m, t in zip(machines, traffics)]
        outcomes = machines[0].stall_model.solve_many(
            [p[3] for p in preps],
            [t.compute_cycles for t in traffics],
            [p[4] for p in preps],
            [p[5] for p in preps],
        )
        for m, traffic, prep, outcome in zip(machines, traffics, preps, outcomes):
            m._finish_window(traffic, prep[0], prep[1], prep[2], outcome)

    def run(self, max_windows: int = 200_000) -> List[RunResult]:
        """Simulate all runs to completion; results in machine order."""
        lead = self.machines[0]
        while not lead.workload.done and lead._window < max_windows:
            self.step()
        return [m.result() for m in self.machines]


__all__ = ["MultiMachine"]
