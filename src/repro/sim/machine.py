"""The machine: wires a workload, tiered memory, hardware, and a policy.

One :class:`Machine` simulates one run.  Time advances in sampling
windows; each window the machine

1. pulls the workload's traffic and first-touch-allocates new pages,
2. splits traffic by page placement and solves ground-truth stalls
   (with bandwidth contention from the app, any MLC contender, and last
   window's migration copies),
3. draws PEBS samples and advances the CHA/TOR and perf counters,
4. hands the policy an :class:`Observation` and applies its
   :class:`Decision` through the migration engine,
5. charges migration costs: synchronously for hint-fault designs,
   partially (interference factor) for background migration threads.

Runtime is the sum of window durations plus synchronous migration cost;
the paper's slowdown metric compares it to an ideal all-DRAM run.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.common.rngutil import split
from repro.hw import drawplan
from repro.hw.cha import ChaTorCounters
from repro.hw.pebs import PebsBatch, PebsSampler
from repro.hw.perf import PerfCounters
from repro.hw.stall import ShareBatch, StallModel
from repro.obs import Observability, resolve as resolve_obs
from repro.mem.page import Tier, tier_key
from repro.mem.tiered import TieredMemory
from repro.sim.config import MachineConfig
from repro.sim.metrics import RunResult
from repro.sim.migration import MigrationEngine, MigrationOutcome
from repro.sim.policy_api import Decision, Observation, TieringPolicy
from repro.workloads.base import Workload
from repro.workloads.mlc import MlcContender

#: Duration guess for the first window's contender traffic (20 ms).
_INITIAL_WINDOW_CYCLES = 44_000_000.0


class Machine:
    """One simulated run of ``workload`` under ``policy``."""

    def __init__(
        self,
        workload: Workload,
        policy: TieringPolicy,
        config: Optional[MachineConfig] = None,
        ratio: str = "1:1",
        fast_capacity_override: Optional[int] = None,
        contender: Optional[MlcContender] = None,
        seed: int = 0,
        trace: bool = False,
        obs: Optional[Observability] = None,
    ):
        self.workload = workload
        self.policy = policy
        self.config = config if config is not None else MachineConfig()
        self.ratio = ratio
        self.contender = contender
        #: Observability bundle: an explicit ``obs`` wins, else
        #: ``trace=True`` builds an enabled one, else the no-op singleton.
        self.obs = resolve_obs(obs, trace)
        self.trace_enabled = self.obs.wants_trace

        footprint = workload.footprint_pages
        caps = self.config.tier_capacities(footprint, ratio)
        if fast_capacity_override is not None:
            caps[0] = fast_capacity_override
        specs = self.config.tier_specs()
        if self.config.topology is not None:
            costs = self.config.topology.page_frame_costs(footprint)
        else:
            costs = [None] * len(specs)
        # Elide zero-capacity *interior* tiers before building anything:
        # an empty middle tier contributes no placement, no stall share,
        # and no counter stream, so collapsing it keeps the run
        # bit-identical to the equivalent shorter hierarchy (per-tier
        # RNG draws included).  Tier 0 and the bottom tier always stay.
        keep = [i for i in range(len(caps)) if caps[i] > 0 or i == 0 or i == len(caps) - 1]
        caps = [caps[i] for i in keep]
        specs = [specs[i] for i in keep]
        costs = [costs[i] for i in keep]
        self.num_tiers = len(caps)
        #: Ordered tier keys (Tier enums for tiers 0/1, ints beyond).
        self.tiers = tuple(tier_key(t) for t in range(self.num_tiers))
        self.memory = TieredMemory(
            footprint_pages=footprint,
            capacities=caps,
            specs=specs,
            page_frame_costs=costs,
        )
        #: Resolved RNG schema: 1 = sequential per-subsystem streams,
        #: 2 = counter-keyed substreams (:mod:`repro.hw.substream`).
        self.rng_schema = self.config.rng_schema_effective
        pebs_rng, cha_rng, perf_rng = split(seed, "pebs", "cha", "perf")
        self.stall_model = StallModel(
            specs,
            freq_ghz=self.config.freq_ghz,
            obs=self.obs if self.obs.enabled else None,
        )
        self.cha = ChaTorCounters(
            noise=self.config.counter_noise, rng=cha_rng, num_tiers=self.num_tiers
        )
        self.perf = PerfCounters(
            noise=self.config.counter_noise, rng=perf_rng, num_tiers=self.num_tiers
        )
        if policy.access_sampler == "chmu":
            from repro.hw.chmu import ChmuSampler

            self.pebs = ChmuSampler(footprint_pages=footprint)
        else:
            self.pebs = PebsSampler(
                rate=self.config.pebs_rate,
                rng=pebs_rng,
                report_latency=policy.wants_pebs_latency,
            )
        self.engine = MigrationEngine(
            self.memory, self.config, obs=self.obs if self.obs.enabled else None
        )
        #: Schema-2 keyed substreams.  The schema-1 generators above are
        #: still constructed (they fix the sampler/counter objects'
        #: defaults) but never drawn from under schema 2.
        self._keyed_pebs = None
        self._keyed_cha = None
        self._keyed_perf = None
        #: Whole-run prestaged keyed PEBS records (set by drawplan).
        self._pebs_records = None
        if self.rng_schema == 2:
            from repro.hw.substream import KeyedJitter, KeyedPebsSampler

            if policy.needs_pebs and isinstance(self.pebs, PebsSampler):
                self._keyed_pebs = KeyedPebsSampler(
                    seed=seed,
                    rate=self.pebs.rate,
                    cycles_per_record=self.pebs.cycles_per_record,
                    sampled_codes=[int(t) for t in self._pebs_tiers()],
                    num_tiers=self.num_tiers,
                    loads_only=self.pebs.loads_only,
                    report_latency=self.pebs.report_latency,
                )
            if self.config.counter_noise > 0.0:
                self._keyed_cha = KeyedJitter(seed, "cha", self.config.counter_noise)
                self._keyed_perf = KeyedJitter(seed, "perf", self.config.counter_noise)

        self._pending_overhead_cycles = 0.0
        self._pending_bytes: Dict[Tier, float] = {}
        self._last_duration = _INITIAL_WINDOW_CYCLES
        self._last_perf = self.perf.read()
        self._last_tor = self.cha.read()
        self._runtime_cycles = 0.0
        self._window = 0
        self._empty_windows = 0
        #: Whole-run plans (:mod:`repro.hw.drawplan`): a pre-split
        #: ShareBatch per recorded window, presampled PEBS/CHMU batches,
        #: and (for static no-PEBS runs without a contender) the
        #: pre-solved per-window hardware outcomes.  All stay ``None``
        #: outside static replayed runs.
        self._split_plan = None
        self._pebs_plan = None
        self._solve_plan = None
        #: Dynamic-replay prestages: trace-determined split/touch inputs
        #: and the positive-record PEBS subset (:mod:`repro.hw.drawplan`).
        self._entry_meta = None
        self._pebs_pos = None
        #: Per-window placement gather shared by split/merge/touch
        #: (set by :meth:`_prepare_window`, valid until migration).
        self._entry_tiers = None
        #: This window's prestaged float counts from the entry meta
        #: plan, consumed by the touch in :meth:`_finish_window`.
        self._window_meta = None
        #: Static runs whose policy never reads activity/LRU state skip
        #: the per-window touch -- nothing observable depends on it.
        self._skip_touch = bool(
            policy.static_placement and not policy.reads_page_activity
        )
        #: Only the schema-1 PEBS/CHMU samplers walk per-share page
        #: lists; every other consumer of a window's ShareBatch (the
        #: solver, the TOR/perf counters, the keyed schema-2 samplers,
        #: the trace recorder) reads row columns only, so the split can
        #: skip building the page/count partition entirely.
        self._misses_only_split = not (
            policy.needs_pebs and self._keyed_pebs is None
        )

        workload.reset()
        policy.attach(self)
        self._preallocate()
        drawplan.attach(self)

    def _preallocate(self) -> None:
        """Place the footprint before the measured region starts.

        All evaluated applications allocate their memory during a load
        phase (graph construction, model load, DB population) that
        precedes the measured run, so placement is settled up front:
        either by the policy's static plan (Soar) or by first-touch in
        the workload's allocation order.
        """
        plan = self.policy.placement_plan(self.workload, self.memory)
        order = plan if plan is not None else self.workload.allocation_order()
        self.memory.allocate_first_touch(order, prefer=self.policy.alloc_prefer)

    # -- main loop ---------------------------------------------------------------

    def run(self, max_windows: int = 200_000) -> RunResult:
        """Simulate until the workload finishes (or ``max_windows``)."""
        while not self.workload.done and self._window < max_windows:
            self.step()
        return self.result()

    def step(self) -> None:
        """Advance the simulation by one sampling window."""
        traffic = self.workload.next_window()
        if not traffic.groups:
            self._step_empty_window()
            return
        all_pages, all_counts, touched, shares, extra_bytes, extra_cycles = (
            self._prepare_window(traffic)
        )
        if self._solve_plan is not None and extra_cycles == 0.0 and not extra_bytes:
            # Static no-PEBS replay: the whole run was solved up front
            # (extra inputs are provably zero every window -- checked
            # anyway so a surprise carry-over falls back to a live solve).
            outcome = self._solve_plan.outcome_for(self._window)
        else:
            with self.obs.profile("stall_solve"):
                outcome = self.stall_model.solve(
                    shares, traffic.compute_cycles, extra_bytes=extra_bytes, extra_cycles=extra_cycles
                )
        self._finish_window(traffic, all_pages, all_counts, touched, outcome)

    def _prepare_window(self, traffic):
        """Everything before the stall solve: traffic concat, first-touch
        allocation, the (group, tier) split, and contention inputs.

        Split out of :meth:`step` so the multi-run driver
        (:mod:`repro.sim.runbatch`) can prepare every run's window, solve
        them all in one batched call, then finish each run."""
        # Concatenate the window's traffic once and reuse it for both
        # the touched-page set (first-touch allocation, the policy's
        # Observation) and the LRU/activity touch in _finish_window --
        # ``traffic.touched_pages()`` would redo the same concatenation.
        groups = traffic.groups
        if traffic.flat_pages is not None and traffic.flat_counts is not None:
            # Replayed windows are contiguous slices of one flat trace
            # column; reuse the slice instead of re-concatenating.
            all_pages, all_counts = traffic.flat_pages, traffic.flat_counts
        elif len(groups) == 1:
            all_pages, all_counts = groups[0].pages, groups[0].counts
        else:
            all_pages = np.concatenate([g.pages for g in groups])
            all_counts = np.concatenate([g.counts for g in groups])
        # The sorted touched-page set exists for two consumers: first-touch
        # allocation and the Observation's touched_slow/touched_fast
        # fields.  Once the footprint is fully allocated (normally right
        # after _preallocate) and the policy declares it never reads the
        # touched fields, the np.unique -- the single most expensive op
        # in the window loop -- is skipped entirely.
        if self.memory.fully_allocated and not self.policy.needs_touched_pages:
            touched = None
        else:
            touched = np.unique(all_pages[all_counts > 0])
            self.memory.allocate_first_touch(touched, prefer=self.policy.alloc_prefer)

        if self._split_plan is not None:
            # Static placement under replay: the whole run was split up
            # front; this window's ShareBatch is a pre-sliced view.
            shares = self._split_plan.window_batch(self._window)
            entry_tiers = None
            self._window_meta = None
        else:
            # One placement gather serves the split, the keyed PEBS
            # merge, and the LRU/activity touch: placement cannot change
            # between here and the window's migration apply.
            entry_tiers = self.memory.placement[all_pages]
            meta = self._entry_meta
            if meta is not None:
                key_base, counts_f = meta.window(self._window)
                shares = self.stall_model.split_groups(
                    traffic.groups,
                    self.memory.placement,
                    pages=all_pages,
                    counts=all_counts,
                    tiers=entry_tiers,
                    misses_only=self._misses_only_split,
                    key_base=key_base,
                    counts_f=counts_f,
                    counts_positive=meta.counts_positive,
                    assume_allocated=self.memory.fully_allocated,
                )
                self._window_meta = counts_f
            else:
                shares = self.stall_model.split_groups(
                    traffic.groups,
                    self.memory.placement,
                    pages=all_pages,
                    counts=all_counts,
                    tiers=entry_tiers,
                    misses_only=self._misses_only_split,
                )
                self._window_meta = None
        self._entry_tiers = entry_tiers

        extra_bytes = dict(self._pending_bytes)
        if self.contender is not None:
            for tier, nbytes in self.contender.extra_bytes(
                self._last_duration, self.config.freq_ghz
            ).items():
                extra_bytes[tier] = extra_bytes.get(tier, 0.0) + nbytes
        extra_cycles = self._pending_overhead_cycles
        self._pending_overhead_cycles = 0.0
        self._pending_bytes = {}
        return all_pages, all_counts, touched, shares, extra_bytes, extra_cycles

    def _finish_window(self, traffic, all_pages, all_counts, touched, outcome) -> None:
        """Everything after the stall solve: counters, observation,
        policy decision, migration, and window bookkeeping."""
        # Sample after the solve so TPEBS-style latency reporting sees
        # each share's effective (loaded) latency; the PEBS processing
        # overhead is charged to the next window (the dedicated thread
        # drains records asynchronously, §4.6).  The hw_draw child span
        # covers the RNG stage (sampler thinning draws, keyed jitter
        # fetches); hw_merge covers the record merge and the counter
        # advances, so sampler regressions are attributable per stage.
        with self.obs.profile("hw_observe"):
            with self.obs.profile("hw_draw"):
                pebs_drawn, cha_jitter, perf_jitter = self._draw_hw(
                    traffic, all_pages, all_counts, outcome.shares
                )
            with self.obs.profile("hw_merge"):
                pebs_batch = self._merge_hw(
                    pebs_drawn, traffic, all_pages, outcome.shares
                )
                self._pending_overhead_cycles += pebs_batch.overhead_cycles
                self.cha.advance(outcome.shares, jitter=cha_jitter)
                self.perf.advance(outcome, jitter=perf_jitter)
        # Count-zero entries are deliberately kept: they stamp
        # ``last_touch`` (as they always have) while adding no activity.
        if not self._skip_touch:
            # The prestaged float counts (when replay provides them)
            # save the per-window int->float conversion.
            wm = self._window_meta
            self.memory.touch(
                all_pages,
                self._window,
                counts=all_counts if wm is None else wm,
            )

        obs = self._observe(pebs_batch, touched, outcome.duration_cycles)
        with self.obs.profile("policy_observe"):
            decision = self.policy.observe(obs)
        with self.obs.profile("migration_apply"):
            migration = self._apply(decision)
        if self.policy.static_placement and (migration.promoted or migration.demoted):
            raise RuntimeError(
                f"policy {self.policy.name!r} declares static_placement "
                f"but migrated pages in window {self._window}"
            )

        duration = outcome.duration_cycles
        duration += self.policy.window_overhead_cycles(obs)
        migration.cost_cycles *= self.policy.migration_cost_multiplier
        if self.policy.synchronous_migration:
            duration += migration.cost_cycles
        else:
            interference = migration.cost_cycles * self.config.migration.background_interference
            self._pending_overhead_cycles += interference
        if migration.bytes_moved > 0:
            # Charge each hop's copy traffic to the links it actually
            # crossed (on two tiers this is the historical half/half
            # split of ``bytes_moved``, bit for bit).
            for tier in self.tiers:
                nbytes = migration.link_bytes.get(int(tier), 0.0)
                if nbytes > 0.0:
                    self._pending_bytes[tier] = self._pending_bytes.get(tier, 0.0) + nbytes

        self._runtime_cycles += duration
        self._last_duration = duration
        if self.obs.enabled:
            self._publish_window(outcome, migration, duration)
        if self.trace_enabled:
            self._record(traffic.phase, outcome, migration, obs, duration)
        self._window += 1

    def _step_empty_window(self) -> None:
        """One window in which the workload emitted no traffic.

        Idle phases (and workload stubs that stall between bursts) must
        still advance the window clock -- otherwise ``run()``'s
        ``max_windows`` budget never binds and the loop spins forever --
        and must still pay overheads already charged to this window
        (PEBS drain, background-migration interference).  Pending link
        bytes from last window's migration copies are *kept* for the
        next window with traffic, where contention can be modelled.
        """
        duration = self._pending_overhead_cycles
        self._pending_overhead_cycles = 0.0
        self._runtime_cycles += duration
        self._window += 1
        self._empty_windows += 1
        if self.obs.enabled:
            self.obs.count("machine/windows")
            self.obs.count("machine/empty_windows")
            self.obs.observe("machine/window_duration_cycles", duration)

    # -- internals ----------------------------------------------------------------

    def _pebs_tiers(self):
        # Lower tiers first (nearest to farthest), then the fast tier if
        # the policy samples it -- the two-tier order was (SLOW, FAST).
        if self.policy.sample_fast_tier:
            return self.tiers[1:] + (self.tiers[0],)
        return self.tiers[1:]

    def _draw_hw(self, traffic, all_pages, all_counts, shares):
        """The window's RNG stage: sampler draws and jitter factors.

        Returns ``(pebs_drawn, cha_jitter, perf_jitter)``.  Under
        schema 1 the jitters are ``None`` (the counters draw their own
        streams) and ``pebs_drawn`` is a planned batch, the sampler's
        sequenced draw tuple, or ``None`` (CHMU accumulates in the merge
        stage).  Under schema 2 every stochastic input comes from keyed
        substreams: prestaged tensors when replay made them plannable,
        live per-window keyed draws otherwise -- bit-identical either
        way.
        """
        pebs_drawn = None
        cha_jitter = None
        perf_jitter = None
        if self.rng_schema == 2:
            from repro.hw.substream import entry_load_fractions

            if self._keyed_cha is not None and shares.n:
                T = self.num_tiers
                pairs = self._keyed_cha.window_values(
                    self._window, 2 * len(traffic.groups) * T
                ).reshape(-1, 2)
                cha_jitter = pairs[
                    np.asarray(shares.group_index, dtype=np.int64) * T
                    + np.asarray(shares.tier_codes, dtype=np.int64)
                ]
            if self._keyed_perf is not None:
                perf_jitter = self._keyed_perf.window_values(
                    self._window, 2 * self.num_tiers
                )
            if self.policy.needs_pebs:
                if self._pebs_plan is not None:
                    pebs_drawn = self._pebs_plan.batch_for(self._window)
                elif self._keyed_pebs is not None:
                    if self._pebs_pos is not None:
                        # Positive-record subset prestaged: nothing to
                        # draw; the merge stage reads the plan directly.
                        pebs_drawn = None
                    elif self._pebs_records is not None:
                        pebs_drawn = self._pebs_records.window_records(self._window)
                    else:
                        lf = (
                            entry_load_fractions(traffic.groups)
                            if self._keyed_pebs.loads_only
                            else None
                        )
                        pebs_drawn = self._keyed_pebs.window_records(
                            self._window, all_counts, lf
                        )
            return pebs_drawn, cha_jitter, perf_jitter
        if self.policy.needs_pebs:
            if self._pebs_plan is not None:
                pebs_drawn = self._pebs_plan.batch_for(self._window)
            elif isinstance(self.pebs, PebsSampler):
                pebs_drawn = self.pebs.draw(shares, tiers=self._pebs_tiers())
        return pebs_drawn, cha_jitter, perf_jitter

    def _merge_hw(self, pebs_drawn, traffic, all_pages, shares) -> PebsBatch:
        """The window's merge stage: turn draws into a PebsBatch."""
        if not self.policy.needs_pebs:
            return PebsBatch.empty(self.pebs.rate)
        if isinstance(pebs_drawn, PebsBatch):
            # Planned batches (static replay) arrive fully merged.
            return pebs_drawn
        if self.rng_schema == 2 and self._keyed_pebs is not None:
            if self._pebs_pos is not None:
                pos_idx, pages_pos, recs_pos, srt = self._pebs_pos.window(
                    self._window
                )
                return self._keyed_pebs.merge_window_pos(
                    pos_idx, pages_pos, recs_pos, self._entry_tiers, srt
                )
            from repro.hw.substream import entry_group_indices

            batch = None
            entry_groups = None
            if self._keyed_pebs.report_latency:
                batch = shares
                entry_groups = entry_group_indices(traffic.groups)
            return self._keyed_pebs.merge_window(
                pebs_drawn,
                all_pages,
                self.memory.placement,
                batch=batch,
                entry_groups=entry_groups,
                tier_of=self._entry_tiers,
            )
        if pebs_drawn is not None:
            return self.pebs.merge(pebs_drawn)
        # CHMU: RNG-free accumulation, schema-independent.
        return self.pebs.sample(shares, tiers=self._pebs_tiers())

    def _observe(
        self, pebs_batch: PebsBatch, touched: Optional[np.ndarray], duration: float
    ) -> Observation:
        perf_now = self.perf.read()
        tor_now = self.cha.read()
        perf_delta = perf_now.delta(self._last_perf)
        tor_mlp = {tier: tor_now.mlp_since(self._last_tor, tier) for tier in self.tiers}
        tor_occ = {
            tier: tor_now.occupancy[tier] - self._last_tor.occupancy[tier]
            for tier in self.tiers
        }
        tor_busy = {
            tier: tor_now.busy_cycles[tier] - self._last_tor.busy_cycles[tier]
            for tier in self.tiers
        }
        self._last_perf = perf_now
        self._last_tor = tor_now
        obs = Observation(
            window=self._window,
            window_cycles=duration,
            perf=perf_delta,
            tor_mlp=tor_mlp,
            pebs=pebs_batch,
            memory=self.memory,
            tor_occupancy_delta=tor_occ,
            tor_busy_delta=tor_busy,
            progress=self.workload.progress,
            num_tiers=self.num_tiers,
        )
        if touched is not None:
            # touched is None only when the policy declared (via
            # needs_touched_pages) that it never reads these fields.
            # "Slow" means any tier below tier 0.
            placement = self.memory.placement[touched]
            obs.touched_slow = touched[placement >= 1]
            obs.touched_fast = touched[placement == int(Tier.FAST)]
        return obs

    def _apply(self, decision: Decision) -> MigrationOutcome:
        if decision.empty:
            return MigrationOutcome()
        total = self.engine.apply_window(decision)
        self.policy.on_migration(total)
        return total

    def _publish_window(self, outcome, migration, duration) -> None:
        """Publish this window's loop-health metrics into the registry."""
        o = self.obs
        o.count("machine/windows")
        # Zero-delta so the empty-window count is always reported, even
        # (especially) when it is zero.
        o.count("machine/empty_windows", 0.0)
        o.observe("machine/window_duration_cycles", duration)
        o.gauge("migrate/promoted_last_window", migration.promoted)
        o.gauge("migrate/demoted_last_window", migration.demoted)
        if self.config.topology is None:
            # Default pair: keep the historical gauge names (dashboards
            # and the trace-digest tests pin them).
            o.gauge(
                "machine/fast_resident_fraction", self.memory.resident_fraction(Tier.FAST)
            )
            for tier, tag in ((Tier.FAST, "fast"), (Tier.SLOW, "slow")):
                load = outcome.tier_loads[tier]
                o.gauge(f"hw/util_{tag}", load.utilisation)
                o.gauge(f"hw/effective_latency_{tag}_cycles", load.effective_latency_cycles)
                used = self.memory.used[tier]
                cap = self.memory.capacity[tier]
                o.gauge(f"mem/occupancy_{tag}", used / cap if cap > 0 else 0.0)
        else:
            o.gauge("machine/tier0/resident_fraction", self.memory.resident_fraction(Tier.FAST))
            for i, tier in enumerate(self.tiers):
                load = outcome.tier_loads[tier]
                o.gauge(f"machine/tier{i}/util", load.utilisation)
                o.gauge(f"machine/tier{i}/effective_latency_cycles", load.effective_latency_cycles)
                o.gauge(f"machine/tier{i}/occupancy", self.memory.occupancy_fraction(i))

    def _record(self, phase, outcome, migration, obs, duration) -> None:
        loads = outcome.tier_loads
        # "Slow" aggregates every tier below tier 0; mlp_slow reports the
        # nearest lower tier (the CXL link on the paper's testbed).
        slow_misses = 0.0
        for tier in self.tiers[1:]:
            slow_misses += loads[tier].misses
        label_stalls: Dict[str, float] = {}
        shares = outcome.shares
        if isinstance(shares, ShareBatch):
            stalls = shares.misses_f * shares.unit_stall_cycles
            for i, label in enumerate(shares.labels):
                prefix = label.split(":", 1)[0] if label else ""
                label_stalls[prefix] = label_stalls.get(prefix, 0.0) + float(stalls[i])
        else:
            for share in shares:
                prefix = share.label.split(":", 1)[0] if share.label else ""
                label_stalls[prefix] = label_stalls.get(prefix, 0.0) + share.stall_cycles()
        self.obs.recorder.append_window(
            window=self._window,
            duration_cycles=duration,
            stall_cycles=outcome.total_stall_cycles,
            slow_misses=slow_misses,
            fast_misses=loads[self.tiers[0]].misses,
            promoted=migration.promoted,
            demoted=migration.demoted,
            mlp_slow=loads[self.tiers[1]].mlp,
            mlp_fast=loads[self.tiers[0]].mlp,
            fast_resident_fraction=self.memory.resident_fraction(Tier.FAST),
            phase=phase,
            policy_debug=self.policy.debug_info(),
            label_stalls=label_stalls,
            metrics=self.obs.window_metrics(),
        )

    def result(self) -> RunResult:
        perf = self.perf.read()
        return RunResult(
            workload=self.workload.name,
            policy=self.policy.name,
            ratio=self.ratio,
            runtime_cycles=self._runtime_cycles,
            windows=self._window,
            promoted=self.engine.total_promoted,
            demoted=self.engine.total_demoted,
            migration_cost_cycles=self.engine.total_cost_cycles,
            total_stall_cycles=sum(perf.stall_cycles.values()),
            total_misses=sum(perf.llc_misses.values()),
            tier_misses=dict(perf.llc_misses),
            empty_windows=self._empty_windows,
            trace=self.obs.recorder.records() if self.trace_enabled else None,
            workload_metrics=self.workload.final_metrics(),
            fast_pages=(
                np.flatnonzero(self.memory.placement == int(Tier.FAST)).tolist()
                if self.trace_enabled
                else None
            ),
            metrics_summary=self.obs.summary(),
        )
