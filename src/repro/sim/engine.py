"""High-level run helpers with shared ideal-baseline caching.

Every figure in the paper reports slowdown relative to an ideal
DRAM-only execution of the same workload (§5.1).  Those baselines are
cached in the experiment layer's content-addressed store
(:mod:`repro.exp.cache`): in-process by default, and persisted to disk
when a cache directory is configured -- so sweeps, benches, and separate
bench *processes* all pay for each baseline exactly once.

The cache key covers the workload's parameters, the full
:class:`MachineConfig`, the seed, the window budget, and the contender's
complete parameter set (threads, pinned tier, per-thread bandwidth) --
two differently-configured runs can never alias.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.metrics import RunResult
from repro.sim.policy_api import NoTierPolicy, SlowOnlyPolicy, TieringPolicy
from repro.workloads.base import Workload
from repro.workloads.mlc import MlcContender

#: Default window budget (mirrors :meth:`Machine.run`).
DEFAULT_MAX_WINDOWS = 200_000


def run_policy(
    workload: Workload,
    policy: TieringPolicy,
    ratio: str = "1:1",
    config: Optional[MachineConfig] = None,
    seed: int = 0,
    contender: Optional[MlcContender] = None,
    trace: bool = False,
    max_windows: int = DEFAULT_MAX_WINDOWS,
    obs=None,
) -> RunResult:
    """Run one workload under one policy at one fast:slow ratio.

    Pass an :class:`repro.obs.Observability` as ``obs`` to collect
    metric telemetry (and a bounded window trace) for the run.
    """
    machine = Machine(
        workload=workload,
        policy=policy,
        config=config,
        ratio=ratio,
        contender=contender,
        seed=seed,
        trace=trace,
        obs=obs,
    )
    return machine.run(max_windows=max_windows)


def _cached_reference_run(
    kind: str,
    workload: Workload,
    config: Optional[MachineConfig],
    seed: int,
    contender: Optional[MlcContender],
    use_cache: bool,
    max_windows: int,
) -> RunResult:
    # Imported lazily so the sim layer never depends on repro.exp at
    # module-load time (repro.exp builds on the sim layer).
    from repro.exp.cache import (
        content_hash,
        get_default_store,
        run_fingerprint,
        workload_fingerprint,
    )

    config = config if config is not None else MachineConfig()
    fingerprint = run_fingerprint(
        kind=kind,
        workload_fp=workload_fingerprint(workload),
        policy_fp=None,
        ratio=None,
        seed=seed,
        config=config,
        contender=contender,
        max_windows=max_windows,
        trace=False,
    )
    key = content_hash(fingerprint)
    store = get_default_store()
    if use_cache:
        cached = store.get(key)
        if cached is not None:
            return cached
    override = workload.footprint_pages if kind == "ideal" else 0
    policy = NoTierPolicy() if kind == "ideal" else SlowOnlyPolicy()
    machine = Machine(
        workload=workload,
        policy=policy,
        config=config,
        ratio="1:1",
        fast_capacity_override=override,
        contender=contender,
        seed=seed,
    )
    result = machine.run(max_windows=max_windows)
    if use_cache:
        store.put(key, result, fingerprint=fingerprint)
    return result


def ideal_baseline(
    workload: Workload,
    config: Optional[MachineConfig] = None,
    seed: int = 0,
    contender: Optional[MlcContender] = None,
    use_cache: bool = True,
    max_windows: int = DEFAULT_MAX_WINDOWS,
) -> RunResult:
    """All-in-DRAM run of the workload (the slowdown denominator)."""
    return _cached_reference_run(
        "ideal", workload, config, seed, contender, use_cache, max_windows
    )


def slow_only_run(
    workload: Workload,
    config: Optional[MachineConfig] = None,
    seed: int = 0,
    contender: Optional[MlcContender] = None,
    use_cache: bool = True,
    max_windows: int = DEFAULT_MAX_WINDOWS,
) -> RunResult:
    """All-in-slow-tier run (the gray 'CXL' line in the figures)."""
    return _cached_reference_run(
        "slow_only", workload, config, seed, contender, use_cache, max_windows
    )


def clear_baseline_cache() -> None:
    """Drop the in-process layer of the shared result store.

    Disk entries (when a cache directory is configured) survive; delete
    the directory or run with ``REPRO_NO_CACHE=1`` for a cold start.
    """
    from repro.exp.cache import get_default_store

    get_default_store().clear_memory()
