"""High-level experiment runner with ideal-baseline caching.

Every figure in the paper reports slowdown relative to an ideal
DRAM-only execution of the same workload (§5.1).  The runner caches
those baselines per (workload, seed, config, contention) so sweeps over
policies and ratios pay for each baseline once.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.metrics import RunResult
from repro.sim.policy_api import NoTierPolicy, SlowOnlyPolicy, TieringPolicy
from repro.workloads.base import Workload
from repro.workloads.mlc import MlcContender

WorkloadFactory = Callable[[], Workload]

_baseline_cache: Dict[Tuple, RunResult] = {}


def run_policy(
    workload: Workload,
    policy: TieringPolicy,
    ratio: str = "1:1",
    config: Optional[MachineConfig] = None,
    seed: int = 0,
    contender: Optional[MlcContender] = None,
    trace: bool = False,
    max_windows: int = 200_000,
) -> RunResult:
    """Run one workload under one policy at one fast:slow ratio."""
    machine = Machine(
        workload=workload,
        policy=policy,
        config=config,
        ratio=ratio,
        contender=contender,
        seed=seed,
        trace=trace,
    )
    return machine.run(max_windows=max_windows)


def ideal_baseline(
    workload: Workload,
    config: Optional[MachineConfig] = None,
    seed: int = 0,
    contender: Optional[MlcContender] = None,
    use_cache: bool = True,
) -> RunResult:
    """All-in-DRAM run of the workload (the slowdown denominator)."""
    config = config if config is not None else MachineConfig()
    key = _cache_key("ideal", workload, config, seed, contender)
    if use_cache and key in _baseline_cache:
        return _baseline_cache[key]
    machine = Machine(
        workload=workload,
        policy=NoTierPolicy(),
        config=config,
        ratio="1:1",
        fast_capacity_override=workload.footprint_pages,
        contender=contender,
        seed=seed,
    )
    result = machine.run()
    if use_cache:
        _baseline_cache[key] = result
    return result


def slow_only_run(
    workload: Workload,
    config: Optional[MachineConfig] = None,
    seed: int = 0,
    contender: Optional[MlcContender] = None,
    use_cache: bool = True,
) -> RunResult:
    """All-in-slow-tier run (the gray 'CXL' line in the figures)."""
    config = config if config is not None else MachineConfig()
    key = _cache_key("slow", workload, config, seed, contender)
    if use_cache and key in _baseline_cache:
        return _baseline_cache[key]
    machine = Machine(
        workload=workload,
        policy=SlowOnlyPolicy(),
        config=config,
        ratio="1:1",
        fast_capacity_override=0,
        contender=contender,
        seed=seed,
    )
    result = machine.run()
    if use_cache:
        _baseline_cache[key] = result
    return result


def clear_baseline_cache() -> None:
    _baseline_cache.clear()


def _cache_key(
    kind: str,
    workload: Workload,
    config: MachineConfig,
    seed: int,
    contender: Optional[MlcContender],
) -> Tuple:
    contention = (contender.threads, int(contender.tier)) if contender else (0, -1)
    return (
        kind,
        workload.name,
        workload.seed,
        workload.footprint_pages,
        workload.total_misses,
        workload.misses_per_window,
        config,
        seed,
        contention,
    )
