"""Machine configuration: tier specs, ratios, window and cost parameters."""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.common.units import (
    CPU_FREQ_GHZ,
    CXL_SPEC,
    DEFAULT_WINDOW_MS,
    DRAM_SPEC,
    TierSpec,
)
from repro.hw.pebs import DEFAULT_PEBS_RATE
from repro.mem.topology import TierTopology

#: The fast:slow capacity ratios evaluated in the paper (§5.1).
PAPER_RATIOS = ("8:1", "4:1", "2:1", "1:1", "1:2", "1:4", "1:8")

#: Environment default for :attr:`MachineConfig.rng_schema`; configs
#: that leave the field unset resolve it at construction time, so an
#: env-selected schema 2 materialises in the config (and therefore in
#: cache fingerprints -- the env can never poison schema-1 cache keys).
ENV_RNG_SCHEMA = "REPRO_RNG_SCHEMA"

#: Supported RNG schemas: 1 = sequential per-subsystem streams (the
#: exactness reference), 2 = Philox counter-keyed per-window substreams.
RNG_SCHEMAS = (1, 2)


def _env_rng_schema() -> Optional[int]:
    raw = os.environ.get(ENV_RNG_SCHEMA, "").strip()
    if not raw:
        return None
    try:
        schema = int(raw)
    except ValueError:
        raise ValueError(f"{ENV_RNG_SCHEMA} must be an integer, got {raw!r}") from None
    if schema not in RNG_SCHEMAS:
        raise ValueError(f"{ENV_RNG_SCHEMA} must be one of {RNG_SCHEMAS}, got {schema}")
    return schema


def _split_ratio(ratio: str) -> List[float]:
    """Raw (unnormalised) parts of a colon-separated ratio string."""
    try:
        parts = [float(p) for p in ratio.split(":")]
    except (ValueError, AttributeError):
        raise ValueError(f"ratio must look like '1:4', got {ratio!r}") from None
    if len(parts) < 2:
        raise ValueError(f"ratio must look like '1:4', got {ratio!r}")
    if not all(math.isfinite(p) for p in parts):
        raise ValueError(f"ratio parts must be finite, got {ratio!r}")
    if len(parts) == 2:
        # Exact historical two-tier contract: both parts strictly positive.
        if parts[0] <= 0 or parts[1] <= 0:
            raise ValueError("ratio parts must be positive")
    else:
        # N-part ratios allow zero-capacity *middle* tiers ("1:0:4"
        # expresses an empty intermediate tier); the endpoints must
        # still be real tiers.
        if any(p < 0 for p in parts):
            raise ValueError("ratio parts must be positive")
        if parts[0] <= 0 or parts[-1] <= 0:
            raise ValueError("first and last ratio parts must be positive")
    return parts


def parse_ratio_parts(ratio: str) -> List[float]:
    """Per-tier capacity fractions for an N-part ratio string.

    ``"1:4"`` -> ``[0.2, 0.8]``; ``"1:4:16"`` -> ``[1/21, 4/21, 16/21]``.
    Two-part strings keep the exact historical parse (same rejection of
    non-finite and non-positive parts, same float arithmetic).
    """
    parts = _split_ratio(ratio)
    total = 0.0
    for p in parts:
        total += p
    return [p / total for p in parts]


def parse_ratio(ratio: str) -> float:
    """Fast-tier (tier 0) fraction of the footprint for a ratio string."""
    return parse_ratio_parts(ratio)[0]


@dataclass(frozen=True)
class MigrationCost:
    """Cost model of ``move_pages()`` (per-batch syscall + per-page copy)."""

    #: Fixed per-4KB-page cost: fault/syscall handling, TLB shootdown.
    page_fixed_us: float = 1.0
    #: Copy cost per 4KB page.
    page_copy_us: float = 0.6
    #: Fixed cost of moving one 2MB huge page.
    huge_fixed_us: float = 6.0
    #: Per-4KB copy cost within a huge-page move (sequential copy is fast).
    huge_copy_us_per_4k: float = 0.25
    #: Fraction of background-migration cost that interferes with the app
    #: (a dedicated migration thread overlaps most of its work).
    background_interference: float = 0.35


@dataclass(frozen=True)
class MachineConfig:
    """Full description of the simulated testbed."""

    fast_spec: TierSpec = DRAM_SPEC
    slow_spec: TierSpec = CXL_SPEC
    freq_ghz: float = CPU_FREQ_GHZ
    window_ms: float = DEFAULT_WINDOW_MS
    pebs_rate: int = DEFAULT_PEBS_RATE
    counter_noise: float = 0.01
    thp: bool = False
    migration: MigrationCost = field(default_factory=MigrationCost)
    #: Slack multiplier for slow-tier capacity (it can always hold the
    #: whole footprint, as on the paper's 96 GB-per-socket testbed).
    slow_slack: float = 1.0
    #: A fast-tier page qualifies as an "inactive" demotion victim when
    #: its decayed access intensity is below this fraction of the fast
    #: tier's mean -- the simulator's model of the kernel's LRU
    #: inactive list (constantly-touched pages are never demotable).
    cold_activity_fraction: float = 0.25
    #: Optional N-tier topology.  ``None`` (the default) selects the
    #: legacy two-tier ``fast_spec``/``slow_spec`` pair; a topology that
    #: *is* exactly that pair is normalised back to ``None`` so the
    #: compatibility path (and its cache fingerprints) always applies.
    #: Omitted from cache fingerprints when ``None`` -- see
    #: ``_canonical_omit_none`` and :func:`repro.exp.cache.canonical`.
    topology: Optional[TierTopology] = None
    #: RNG schema.  ``None``/1 (equivalent; 1 normalises to ``None``)
    #: selects the legacy sequential per-subsystem streams -- the
    #: bit-exactness reference every golden digest pins.  2 selects
    #: Philox counter-keyed substreams (:mod:`repro.hw.substream`):
    #: every sampler/jitter draw is keyed by (seed, purpose, window)
    #: instead of stream position, making draws decision-independent
    #: and whole-run prestageable for any policy.  Unset configs read
    #: ``REPRO_RNG_SCHEMA`` at construction; like ``topology``, the
    #: field is omitted from cache fingerprints when ``None`` so
    #: schema-1 configs fingerprint exactly as before the field existed.
    rng_schema: Optional[int] = None

    #: Fields :func:`repro.exp.cache.canonical` drops when ``None``, so
    #: default configs fingerprint exactly as they did before the field
    #: existed (pinned cache keys must survive the tier-graph refactor).
    _canonical_omit_none = ("topology", "rng_schema")

    def __post_init__(self) -> None:
        if self.topology is not None and self.topology.is_default_pair(
            self.fast_spec, self.slow_spec
        ):
            object.__setattr__(self, "topology", None)
        schema = self.rng_schema
        if schema is None:
            schema = _env_rng_schema()
        elif schema not in RNG_SCHEMAS:
            raise ValueError(f"rng_schema must be one of {RNG_SCHEMAS}, got {schema!r}")
        # Schema 1 is the default; storing it as None keeps the
        # canonical form (and thus every pinned fingerprint) identical
        # to configs that predate the field.
        object.__setattr__(self, "rng_schema", None if schema == 1 else schema)

    @property
    def rng_schema_effective(self) -> int:
        """The resolved schema number (``None`` reads as schema 1)."""
        return 1 if self.rng_schema is None else self.rng_schema

    @property
    def num_tiers(self) -> int:
        return 2 if self.topology is None else self.topology.num_tiers

    def tier_specs(self) -> "List[TierSpec]":
        """Effective per-tier specs, fastest first.

        For the default pair these are the ``fast_spec``/``slow_spec``
        objects themselves; for a topology, compression latency is
        folded into the affected tiers' specs.
        """
        if self.topology is None:
            return [self.fast_spec, self.slow_spec]
        return self.topology.effective_specs()

    def fast_capacity(self, footprint_pages: int, ratio: str) -> int:
        """Fast-tier capacity in pages for a paper-style ratio string."""
        frac = parse_ratio(ratio)
        return max(int(math.ceil(footprint_pages * frac)), 1)

    def slow_capacity(self, footprint_pages: int) -> int:
        return int(math.ceil(footprint_pages * max(self.slow_slack, 1.0)))

    def tier_capacities(self, footprint_pages: int, ratio: str) -> "List[int]":
        """Per-tier capacities in pages for a ratio string.

        Mirrors the two-tier contract exactly: tier 0 takes its ratio
        fraction (at least one page), the bottom tier always holds the
        whole footprint scaled by ``slow_slack``.  Intermediate tiers
        take their ratio fractions and may be zero-capacity.  A ratio
        with fewer parts than tiers is padded by repeating its last
        part ("1:4" on three tiers reads as "1:4:4"), so two-tier ratio
        strings remain usable on any topology.
        """
        n = self.num_tiers
        if n == 2:
            return [
                self.fast_capacity(footprint_pages, ratio),
                self.slow_capacity(footprint_pages),
            ]
        parts = _split_ratio(ratio)
        if len(parts) > n:
            raise ValueError(
                f"ratio {ratio!r} has {len(parts)} parts but the topology has {n} tiers"
            )
        parts = parts + [parts[-1]] * (n - len(parts))
        total = 0.0
        for p in parts:
            total += p
        caps = []
        for i in range(n - 1):
            frac = parts[i] / total
            cap = int(math.ceil(footprint_pages * frac))
            caps.append(max(cap, 1) if i == 0 else cap)
        caps.append(self.slow_capacity(footprint_pages))
        return caps

    @property
    def demotion_mode(self) -> str:
        """Multi-hop demotion routing ("through" cascades, "direct" skips)."""
        return "through" if self.topology is None else self.topology.demotion

    def with_(self, **kwargs) -> "MachineConfig":
        """A modified copy (frozen-dataclass convenience)."""
        return replace(self, **kwargs)

    def migration_cycles(self, pages_4k: int = 0, huge_pages: int = 0) -> float:
        """Cycles consumed migrating the given page counts."""
        us = (
            pages_4k * (self.migration.page_fixed_us + self.migration.page_copy_us)
            + huge_pages * self.migration.huge_fixed_us
            + huge_pages * 512 * self.migration.huge_copy_us_per_4k
        )
        return us * 1_000.0 * self.freq_ghz
