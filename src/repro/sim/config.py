"""Machine configuration: tier specs, ratios, window and cost parameters."""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.common.units import (
    CPU_FREQ_GHZ,
    CXL_SPEC,
    DEFAULT_WINDOW_MS,
    DRAM_SPEC,
    TierSpec,
)
from repro.hw.pebs import DEFAULT_PEBS_RATE

#: The fast:slow capacity ratios evaluated in the paper (§5.1).
PAPER_RATIOS = ("8:1", "4:1", "2:1", "1:1", "1:2", "1:4", "1:8")


def parse_ratio(ratio: str) -> float:
    """Fast-tier fraction of the footprint for a ``fast:slow`` ratio string."""
    try:
        fast_s, slow_s = ratio.split(":")
        fast, slow = float(fast_s), float(slow_s)
    except ValueError:
        raise ValueError(f"ratio must look like '1:4', got {ratio!r}") from None
    if not (math.isfinite(fast) and math.isfinite(slow)):
        raise ValueError(f"ratio parts must be finite, got {ratio!r}")
    if fast <= 0 or slow <= 0:
        raise ValueError("ratio parts must be positive")
    return fast / (fast + slow)


@dataclass(frozen=True)
class MigrationCost:
    """Cost model of ``move_pages()`` (per-batch syscall + per-page copy)."""

    #: Fixed per-4KB-page cost: fault/syscall handling, TLB shootdown.
    page_fixed_us: float = 1.0
    #: Copy cost per 4KB page.
    page_copy_us: float = 0.6
    #: Fixed cost of moving one 2MB huge page.
    huge_fixed_us: float = 6.0
    #: Per-4KB copy cost within a huge-page move (sequential copy is fast).
    huge_copy_us_per_4k: float = 0.25
    #: Fraction of background-migration cost that interferes with the app
    #: (a dedicated migration thread overlaps most of its work).
    background_interference: float = 0.35


@dataclass(frozen=True)
class MachineConfig:
    """Full description of the simulated testbed."""

    fast_spec: TierSpec = DRAM_SPEC
    slow_spec: TierSpec = CXL_SPEC
    freq_ghz: float = CPU_FREQ_GHZ
    window_ms: float = DEFAULT_WINDOW_MS
    pebs_rate: int = DEFAULT_PEBS_RATE
    counter_noise: float = 0.01
    thp: bool = False
    migration: MigrationCost = field(default_factory=MigrationCost)
    #: Slack multiplier for slow-tier capacity (it can always hold the
    #: whole footprint, as on the paper's 96 GB-per-socket testbed).
    slow_slack: float = 1.0
    #: A fast-tier page qualifies as an "inactive" demotion victim when
    #: its decayed access intensity is below this fraction of the fast
    #: tier's mean -- the simulator's model of the kernel's LRU
    #: inactive list (constantly-touched pages are never demotable).
    cold_activity_fraction: float = 0.25

    def fast_capacity(self, footprint_pages: int, ratio: str) -> int:
        """Fast-tier capacity in pages for a paper-style ratio string."""
        frac = parse_ratio(ratio)
        return max(int(math.ceil(footprint_pages * frac)), 1)

    def slow_capacity(self, footprint_pages: int) -> int:
        return int(math.ceil(footprint_pages * max(self.slow_slack, 1.0)))

    def with_(self, **kwargs) -> "MachineConfig":
        """A modified copy (frozen-dataclass convenience)."""
        return replace(self, **kwargs)

    def migration_cycles(self, pages_4k: int = 0, huge_pages: int = 0) -> float:
        """Cycles consumed migrating the given page counts."""
        us = (
            pages_4k * (self.migration.page_fixed_us + self.migration.page_copy_us)
            + huge_pages * self.migration.huge_fixed_us
            + huge_pages * 512 * self.migration.huge_copy_us_per_4k
        )
        return us * 1_000.0 * self.freq_ghz
