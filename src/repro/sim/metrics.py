"""Run results, window traces, and the paper's slowdown metric."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.common.units import cycles_to_ms
from repro.mem.page import Tier


@dataclass
class WindowRecord:
    """Per-window trace row (kept only when tracing is enabled)."""

    window: int
    duration_cycles: float
    stall_cycles: float
    slow_misses: float
    fast_misses: float
    promoted: int
    demoted: int
    mlp_slow: float
    mlp_fast: float
    fast_resident_fraction: float
    phase: str = ""
    policy_debug: Dict[str, float] = field(default_factory=dict)
    #: Ground-truth stall cycles per traffic-label prefix (the text
    #: before ':' in a group label) -- lets colocation benches attribute
    #: stalls to individual co-running processes.
    label_stalls: Dict[str, float] = field(default_factory=dict)
    #: Observability gauge snapshot for this window (per-tier utilisation
    #: and effective latency, eviction-bar level, solver residual, ...).
    #: Empty when the run carries no :mod:`repro.obs` bundle.
    metrics: Dict[str, float] = field(default_factory=dict)


#: Column schema for columnar window-trace storage
#: (:class:`repro.obs.recorder.TraceRecorder` keeps one array per scalar
#: column and materialises :class:`WindowRecord` views lazily).  The
#: int/float split preserves JSON round-trips exactly: miss and
#: migration counts must re-serialise as integers, not ``5.0``.
WINDOW_INT_COLUMNS = ("window", "slow_misses", "fast_misses", "promoted", "demoted")
WINDOW_FLOAT_COLUMNS = (
    "duration_cycles",
    "stall_cycles",
    "mlp_slow",
    "mlp_fast",
    "fast_resident_fraction",
)
WINDOW_OBJECT_COLUMNS = ("phase", "policy_debug", "label_stalls", "metrics")


@dataclass
class RunResult:
    """Outcome of one full simulation."""

    workload: str
    policy: str
    ratio: str
    runtime_cycles: float
    windows: int
    promoted: int
    demoted: int
    migration_cost_cycles: float
    total_stall_cycles: float
    total_misses: float
    tier_misses: Dict[Tier, float]
    #: Windows in which the workload emitted no traffic (idle phases).
    #: They count toward ``windows`` and the ``max_windows`` budget.
    empty_windows: int = 0
    trace: Optional[List[WindowRecord]] = None
    #: Workload-reported end-of-run metrics (``Workload.final_metrics``),
    #: e.g. per-member finish windows for colocated workloads.  Must stay
    #: JSON-serialisable so results survive the on-disk experiment cache.
    workload_metrics: Dict[str, Any] = field(default_factory=dict)
    #: Page ids resident in the fast tier when the run ended (recorded
    #: only for traced runs; lets benches inspect final placement even
    #: when the run executed in a worker process or came from cache).
    fast_pages: Optional[List[int]] = None
    #: Run-level observability snapshot (:meth:`Observability.summary`):
    #: deterministic, JSON-serialisable, empty when observability is off.
    #: Travels through the experiment cache and worker processes so
    #: cached and parallel runs carry identical telemetry.
    metrics_summary: Dict[str, float] = field(default_factory=dict)

    @property
    def runtime_ms(self) -> float:
        return cycles_to_ms(self.runtime_cycles)

    def slowdown(self, baseline: "RunResult") -> float:
        """Normalised slowdown vs. an ideal run (0.25 = 25% slower, §5.1)."""
        if baseline.runtime_cycles <= 0:
            raise ValueError("baseline runtime must be positive")
        return self.runtime_cycles / baseline.runtime_cycles - 1.0

    def speedup_over(self, other: "RunResult") -> float:
        """Relative performance improvement of this run over ``other``."""
        if self.runtime_cycles <= 0:
            raise ValueError("runtime must be positive")
        return other.runtime_cycles / self.runtime_cycles - 1.0


def improvement(slowdown_self: float, slowdown_other: float) -> float:
    """Paper-style improvement: runtime reduction of self vs. other.

    Both arguments are slowdowns relative to the same ideal baseline, so
    runtimes are proportional to (1 + slowdown).
    """
    return (1.0 + slowdown_other) / (1.0 + slowdown_self) - 1.0
