"""The contract between the simulated kernel and a tiering policy.

Once per sampling window the machine hands the policy an
:class:`Observation` -- exactly the information a real tiering system
can see: perf-counter deltas, TOR-derived per-tier MLP, PEBS samples,
page-table placement, LRU state, and (for hint-fault-driven designs)
which slow-tier pages faulted.  The policy answers with a
:class:`Decision`: pages to promote and demote this window.

Policies must not reach into :mod:`repro.hw.stall` ground truth; the
test suite enforces the boundary by validating PACT's estimates against
ground truth rather than letting the policy consume it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.hw.pebs import PebsBatch
from repro.hw.perf import PerfDelta
from repro.mem.page import Tier
from repro.mem.tiered import TieredMemory


def no_pages() -> np.ndarray:
    """An empty page-id array (the usual 'no migration' answer)."""
    return np.empty(0, dtype=np.int64)


@dataclass
class Observation:
    """Everything a policy may see about one sampling window."""

    window: int
    #: Duration of the window in cycles (elapsed time signal).
    window_cycles: float
    #: Perf-counter deltas over the window (LLC misses, stalls, bytes).
    perf: PerfDelta
    #: Per-tier MLP recovered from TOR counter deltas (dT1/dT2).
    tor_mlp: Dict[Tier, float]
    #: PEBS records for this window (slow-tier loads by default).
    pebs: PebsBatch
    #: Kernel-visible memory state: placement, LRU clocks, capacities.
    memory: TieredMemory
    #: Raw TOR counter deltas (T1 = occupancy integral, T2 = busy cycles),
    #: so policies aggregating over longer sampling periods can recompute
    #: MLP from summed deltas instead of averaging per-window ratios.
    tor_occupancy_delta: Dict[Tier, float] = field(default_factory=dict)
    tor_busy_delta: Dict[Tier, float] = field(default_factory=dict)
    #: Slow-tier pages touched this window (what NUMA hint faults see).
    touched_slow: np.ndarray = field(default_factory=no_pages)
    #: Fast-tier pages touched this window (page-table scan visibility).
    touched_fast: np.ndarray = field(default_factory=no_pages)
    #: Workload progress fraction, for trace labelling only.
    progress: float = 0.0
    #: Number of tiers in the (effective) hierarchy this run.
    num_tiers: int = 2

    @property
    def fast_free(self) -> int:
        return self.memory.free_pages(Tier.FAST)

    @property
    def lower_tiers(self):
        """Tier keys below tier 0, nearest first (``[Tier.SLOW]`` on two)."""
        return [t for t in self.tor_mlp if int(t) >= 1]

    def lower_misses(self) -> float:
        """Total LLC misses served by tiers below tier 0 this window.

        Ordered accumulation from 0.0, so on two tiers this is exactly
        ``perf.llc_misses[Tier.SLOW]``.
        """
        total = 0.0
        for tier in self.lower_tiers:
            total += self.perf.llc_misses.get(tier, 0.0)
        return total

    def lower_latency_cycles(self) -> float:
        """Miss-weighted effective latency of the lower tiers.

        With a single lower tier this short-circuits to that tier's
        latency exactly (no multiply/divide round-trip); with several it
        weights each tier's loaded latency by its miss share.
        """
        lower = self.lower_tiers
        if len(lower) == 1:
            return self.perf.effective_latency_cycles.get(lower[0], 0.0)
        weighted = 0.0
        misses = 0.0
        for tier in lower:
            m = self.perf.llc_misses.get(tier, 0.0)
            weighted += self.perf.effective_latency_cycles.get(tier, 0.0) * m
            misses += m
        if misses <= 0.0:
            return self.perf.effective_latency_cycles.get(lower[0], 0.0) if lower else 0.0
        return weighted / misses

    def lower_mlp(self) -> float:
        """MLP of the nearest lower tier (the paper's CXL-link MLP)."""
        lower = self.lower_tiers
        return self.tor_mlp[lower[0]] if lower else 1.0


@dataclass
class Decision:
    """Migration orders for one window."""

    promote: np.ndarray = field(default_factory=no_pages)
    demote: np.ndarray = field(default_factory=no_pages)
    #: Ask the kernel to demote this many extra LRU victims first
    #: (eager-demotion style space reservation).
    demote_lru: int = 0
    #: How reclaim picks those victims:
    #: * ``"cold"``     -- only genuinely inactive pages (kernel LRU
    #:   inactive-list semantics; a constantly-touched page is immune),
    #: * ``"lru_tail"`` -- coldest-first but with no activity floor
    #:   (aggressive watermark reclaim),
    #: * ``"fifo"``     -- physical LRU-list arrival order, hot pages
    #:   included (simple watermark walkers; the source of promotion/
    #:   demotion ping-pong).
    demote_victim_mode: str = "cold"

    @staticmethod
    def none() -> "Decision":
        return Decision()

    @property
    def empty(self) -> bool:
        return self.promote.size == 0 and self.demote.size == 0 and self.demote_lru == 0


class TieringPolicy(abc.ABC):
    """Base class for all tiering systems (PACT and the baselines)."""

    #: Display name used in benches and result tables.
    name: str = "policy"

    #: True when migrations happen in the application's critical path
    #: (hint-fault designs); False for background migration threads.
    synchronous_migration: bool = True

    #: Tier preferred by first-touch allocation under this policy.
    alloc_prefer: Tier = Tier.FAST

    #: Whether this policy wants fast-tier PEBS samples too.
    sample_fast_tier: bool = False

    #: Whether this policy consumes PEBS samples at all.  Policies that
    #: do not (NoTier, hint-fault-only designs) skip PEBS entirely and
    #: pay no sampling overhead.
    needs_pebs: bool = True

    #: Request per-record exposed-latency reporting from PEBS
    #: (Sapphire-Rapids TPEBS; used by latency-weighted attribution).
    wants_pebs_latency: bool = False

    #: Whether this policy reads ``Observation.touched_slow`` /
    #: ``touched_fast`` (hint-fault and page-table-scan designs: NBT,
    #: Nomad, TPP).  Policies that declare ``False`` let the machine
    #: skip building the sorted touched-page set each window -- the
    #: most expensive single operation in the window loop -- once the
    #: footprint is fully allocated.  Defaults to ``True`` (safe).
    needs_touched_pages: bool = True

    #: Access-sampling backend: "pebs" (host event sampling) or "chmu"
    #: (CXL 3.2 controller-side hotness monitoring, §4.3.5).
    access_sampler: str = "pebs"

    #: Declares that page placement never changes after preallocation:
    #: ``observe`` always returns an empty :class:`Decision` and the
    #: policy never drives the migration engine.  Static runs under a
    #: replayed trace let the machine pre-split every window's traffic
    #: and pre-draw every sample for the whole run up front
    #: (:mod:`repro.hw.drawplan`).  The machine hard-fails if a policy
    #: declaring this ever migrates a page.  Defaults to ``False``.
    static_placement: bool = False

    #: Whether this policy (or anything observing the run on its behalf)
    #: reads the memory's page-activity / LRU-clock state -- via
    #: ``Observation.memory`` (``activity``, ``mean_activity``,
    #: ``activity_sum``, ``last_touch``) or by issuing ``demote_lru``
    #: orders.  Policies that declare ``False`` *and* are static let the
    #: machine skip the per-window LRU/activity touch entirely: with no
    #: reader the scatter-add changes nothing observable.  Defaults to
    #: ``True`` (safe).
    reads_page_activity: bool = True

    #: Scales the engine's migration cost for this policy (transactional
    #: double-copy designs pay more than a plain ``move_pages()``).
    migration_cost_multiplier: float = 1.0

    def attach(self, machine) -> None:
        """Called once before the run; override to inspect the machine
        configuration (THP mode, tier specs, window length)."""

    def placement_plan(self, workload, memory: TieredMemory) -> Optional[np.ndarray]:
        """Optional static placement: page ids in fast-tier priority order.

        Profiling-driven allocators (Soar) return a full ordering here;
        the machine fills the fast tier from its head.  Return ``None``
        (the default) for first-touch allocation in the workload's
        allocation order.
        """
        return None

    @abc.abstractmethod
    def observe(self, obs: Observation) -> Decision:
        """Consume one window's observation and return migration orders."""

    def debug_info(self) -> Dict[str, float]:
        """Optional per-window internals surfaced into run traces."""
        return {}

    def window_overhead_cycles(self, obs: Observation) -> float:
        """Extra critical-path cycles this policy imposes per window
        beyond migration cost (page-protection faults, shadow upkeep).
        Charged synchronously to the window's duration."""
        return 0.0

    def on_migration(self, outcome) -> None:
        """Feedback after the engine applies a decision: which pages
        actually moved (orders can be clipped by capacity or by victim
        eligibility).  Override to maintain placement-dependent state."""


class NoTierPolicy(TieringPolicy):
    """First-touch placement with no migration (the paper's NoTier)."""

    name = "NoTier"
    synchronous_migration = False
    needs_pebs = False
    needs_touched_pages = False
    static_placement = True
    reads_page_activity = False

    def observe(self, obs: Observation) -> Decision:  # noqa: ARG002
        return Decision.none()


class SlowOnlyPolicy(TieringPolicy):
    """Allocate everything on the slow tier (the paper's 'CXL' line)."""

    name = "CXL"
    synchronous_migration = False
    alloc_prefer = Tier.SLOW
    needs_pebs = False
    needs_touched_pages = False
    static_placement = True
    reads_page_activity = False

    def observe(self, obs: Observation) -> Decision:  # noqa: ARG002
        return Decision.none()
