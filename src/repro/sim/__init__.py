"""Simulation layer: machine, runner, migration engine, metrics, config."""

from repro.sim.config import MachineConfig, MigrationCost, PAPER_RATIOS, parse_ratio
from repro.sim.engine import (
    clear_baseline_cache,
    ideal_baseline,
    run_policy,
    slow_only_run,
)
from repro.sim.machine import Machine
from repro.sim.metrics import RunResult, WindowRecord, improvement
from repro.sim.migration import MigrationEngine, MigrationOutcome, MovePlan
from repro.sim.traceio import read_json, result_to_dict, write_json, write_trace_csv
from repro.sim.policy_api import (
    Decision,
    NoTierPolicy,
    Observation,
    SlowOnlyPolicy,
    TieringPolicy,
    no_pages,
)

__all__ = [
    "Decision",
    "Machine",
    "MachineConfig",
    "MigrationCost",
    "MigrationEngine",
    "MigrationOutcome",
    "MovePlan",
    "NoTierPolicy",
    "Observation",
    "PAPER_RATIOS",
    "RunResult",
    "SlowOnlyPolicy",
    "TieringPolicy",
    "WindowRecord",
    "clear_baseline_cache",
    "ideal_baseline",
    "improvement",
    "read_json",
    "result_to_dict",
    "no_pages",
    "parse_ratio",
    "run_policy",
    "slow_only_run",
    "write_json",
    "write_trace_csv",
]
