"""Plain-text table and series rendering for the benchmark harness.

The benches print rows shaped like the paper's tables and figures;
these helpers keep the formatting consistent across all of them.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a monospace table with one separator line under the header."""
    str_rows: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    lines = [_render_row(headers, widths)]
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(_render_row(row, widths))
    return "\n".join(lines)


def format_series(label: str, xs: Sequence[object], ys: Sequence[float], unit: str = "") -> str:
    """Render an (x, y) series as aligned columns, one point per line."""
    lines = [f"# series: {label}" + (f" ({unit})" if unit else "")]
    for x, y in zip(xs, ys):
        lines.append(f"  {_cell(x):>12}  {y:12.4f}")
    return "\n".join(lines)


def format_count(n: float) -> str:
    """Human-readable count formatting in the paper's style (550K, 1.2M)."""
    n = float(n)
    if n >= 1e9:
        return f"{n / 1e9:.1f}B"
    if n >= 1e6:
        return f"{n / 1e6:.1f}M"
    if n >= 1e3:
        return f"{n / 1e3:.0f}K"
    return f"{n:.0f}"


def format_pct(x: float, digits: int = 1) -> str:
    """Format a ratio as a signed percentage string."""
    return f"{100.0 * x:+.{digits}f}%"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _render_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    padded = [str(c).ljust(w) for c, w in zip(cells, widths)]
    return " | ".join(padded).rstrip()
