"""Histogram binning rules used by the adaptive promotion policy.

The Freedman-Diaconis rule picks a bin width from the interquartile
range, which makes it robust to the heavy right tails that PAC
distributions exhibit (§4.5):

    W = 2 * (Q3 - Q1) / cbrt(n)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def freedman_diaconis_width(q1: float, q3: float, n: int) -> float:
    """Bin width from the Freedman-Diaconis rule.

    Returns 0.0 when the rule degenerates (no spread or no data); the
    caller is expected to fall back to its previous width in that case.
    """
    if n <= 0:
        return 0.0
    iqr = q3 - q1
    if iqr <= 0.0:
        return 0.0
    return 2.0 * iqr / float(n) ** (1.0 / 3.0)


def bin_index(value: float, width: float, num_bins: int) -> int:
    """Map a non-negative value onto one of ``num_bins`` bins.

    Bin ``num_bins - 1`` is the highest-priority bin; values beyond the
    covered range clamp into it.
    """
    if num_bins <= 0:
        raise ValueError("num_bins must be positive")
    if width <= 0.0:
        return num_bins - 1 if value > 0.0 else 0
    idx = int(value / width)
    if idx >= num_bins:
        return num_bins - 1
    if idx < 0:
        return 0
    return idx


def bin_indices(values: Sequence[float], width: float, num_bins: int) -> np.ndarray:
    """Vectorised :func:`bin_index` over an array of values."""
    arr = np.asarray(values, dtype=float)
    if num_bins <= 0:
        raise ValueError("num_bins must be positive")
    if width <= 0.0:
        return np.where(arr > 0.0, num_bins - 1, 0).astype(np.int64)
    idx = (arr / width).astype(np.int64)
    return np.clip(idx, 0, num_bins - 1)


def histogram_counts(values: Sequence[float], width: float, num_bins: int) -> np.ndarray:
    """Per-bin page counts for a set of values under the current width."""
    idx = bin_indices(values, width, num_bins)
    return np.bincount(idx, minlength=num_bins)
