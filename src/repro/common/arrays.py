"""Sort-based set primitives for the window loop's hot paths.

numpy's ``np.unique`` routes through a hash table on this numpy
version; at the window loop's typical sizes (a few hundred to a few
tens of thousands of int64 page ids) an explicit sort + run-flag pass
is several times faster while producing the *identical* sorted-unique
array.  The helpers here are drop-in replacements used by the tracker,
the PEBS merge, and the migration engine -- every caller relies on the
output being bit-for-bit what ``np.unique`` would return, which holds
by construction: a sorted unique sequence of a given multiset is
unique.
"""

from __future__ import annotations

import numpy as np


def sorted_unique(values: np.ndarray) -> np.ndarray:
    """``np.unique(values)`` for 1-D integer arrays, via sort + run flags."""
    if values.size <= 1:
        return values.copy()
    ordered = np.sort(values)
    keep = np.empty(ordered.size, dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def sorted_unique_counts(values: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """``np.unique(values, return_counts=True)`` via sort + run flags."""
    if values.size == 0:
        return values.copy(), np.zeros(0, dtype=np.intp)
    ordered = np.sort(values)
    keep = np.empty(ordered.size, dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    starts = np.flatnonzero(keep)
    counts = np.diff(np.r_[starts, ordered.size])
    return ordered[keep], counts


def merge_sorted_unique(base: np.ndarray, extra: np.ndarray) -> np.ndarray:
    """Union of two sorted-unique arrays, sorted ascending.

    ``extra`` may contain values already in ``base``; the result is the
    sorted set union (what rebuilding via ``np.flatnonzero`` over a
    membership mask would produce).  O(base + extra) via a positional
    merge instead of a full re-sort.
    """
    if extra.size == 0:
        return base
    if base.size == 0:
        return extra
    # Positional merge: find each extra value's insertion point, drop
    # duplicates, then interleave with one allocation.
    pos = np.searchsorted(base, extra)
    hit = (pos < base.size) & (base[np.minimum(pos, base.size - 1)] == extra)
    fresh = extra[~hit]
    if fresh.size == 0:
        return base
    pos = pos[~hit]
    out = np.empty(base.size + fresh.size, dtype=base.dtype)
    dest = pos + np.arange(fresh.size)
    out[dest] = fresh
    mask = np.ones(out.size, dtype=bool)
    mask[dest] = False
    out[mask] = base
    return out
