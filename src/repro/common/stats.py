"""Small statistics helpers shared across the library.

These are deliberately dependency-light (numpy only) so that the core
policies do not require scipy at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length samples.

    Returns 0.0 for degenerate inputs (fewer than two points or zero
    variance) rather than raising, since the model-fit benches feed it
    arbitrary workload populations.
    """
    ax = np.asarray(x, dtype=float)
    ay = np.asarray(y, dtype=float)
    if ax.size != ay.size:
        raise ValueError("pearson() requires equal-length samples")
    if ax.size < 2:
        return 0.0
    sx = ax.std()
    sy = ay.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(((ax - ax.mean()) * (ay - ay.mean())).mean() / (sx * sy))


def quantiles_linear(values: np.ndarray, qs: np.ndarray) -> np.ndarray:
    """``np.quantile(values, qs)`` bit for bit, minus the generic machinery.

    ``np.quantile`` spends more time in axis/dtype dispatch than in the
    partition for the small arrays the policies feed it every window.
    This replica implements only the default ``'linear'`` method for a
    1-D float64 array with no NaNs, reproducing numpy's arithmetic
    exactly: virtual index ``q * (n - 1)``, a partition at the floor and
    ceil positions, then numpy's ``_lerp`` including its ``t >= 0.5``
    rewrite (``b - diff * (1 - t)``) so rounding matches in every bit.
    """
    n = values.size
    if qs.size <= 2 and n:
        # One or two quantiles (every per-window caller): python floats
        # are IEEE doubles, so the virtual-index and _lerp arithmetic
        # below matches the array path bit for bit while skipping a
        # dozen two-element array dispatches.
        kth = []
        pos = []
        for q in qs.tolist():
            virtual = q * (n - 1.0)
            prev = float(np.floor(virtual))
            lo = int(prev)
            hi = min(lo + 1, n - 1)
            kth.append(lo)
            kth.append(hi)
            pos.append((lo, hi, virtual - prev))
        part = np.partition(values, kth)
        out = np.empty(qs.size, dtype=np.float64)
        for i, (lo, hi, gamma) in enumerate(pos):
            a = float(part[lo])
            b = float(part[hi])
            diff = b - a
            if gamma >= 0.5:
                out[i] = b - diff * (1.0 - gamma)
            else:
                out[i] = a + diff * gamma
        return out
    virtual = qs * (n - 1.0)
    prev = np.floor(virtual)
    gamma = virtual - prev
    lo = prev.astype(np.intp)
    hi = np.minimum(lo + 1, n - 1)
    # partition() accepts unsorted/duplicate kth, so skip the np.unique
    # numpy's generic path pays -- the handful of positions the callers
    # use never makes deduplication worthwhile.
    part = np.partition(values, np.concatenate([lo, hi]))
    a, b = part[lo], part[hi]
    diff = b - a
    out = a + diff * gamma
    mask = gamma >= 0.5
    out[mask] = b[mask] - diff[mask] * (1.0 - gamma[mask])
    return out


_QUARTILE_QS = np.array([0.25, 0.75])


def quartiles(values: Sequence[float]) -> "tuple[float, float]":
    """Return (Q1, Q3) of ``values`` using linear interpolation."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return (0.0, 0.0)
    q1, q3 = quantiles_linear(arr, _QUARTILE_QS)
    return float(q1), float(q3)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; values must be positive."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 0.0
    if np.any(arr <= 0):
        raise ValueError("geometric_mean() requires positive values")
    return float(np.exp(np.log(arr).mean()))


def cdf_points(values: Sequence[float]) -> "tuple[np.ndarray, np.ndarray]":
    """Empirical CDF of ``values`` as (sorted values, cumulative fraction)."""
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        return arr, arr
    frac = np.arange(1, arr.size + 1, dtype=float) / arr.size
    return arr, frac


@dataclass
class StreamingStats:
    """Online mean/variance/min/max via Welford's algorithm."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def add(self, value: float) -> None:
        """Fold one observation into the running moments."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(float(value))

    @property
    def variance(self) -> float:
        """Population variance of the observations seen so far."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def std(self) -> float:
        return self.variance**0.5

    def merge(self, other: "StreamingStats") -> "StreamingStats":
        """Return a new ``StreamingStats`` combining two streams."""
        if other.count == 0:
            return self
        if self.count == 0:
            return other
        total = self.count + other.count
        delta = other.mean - self.mean
        merged = StreamingStats(
            count=total,
            mean=self.mean + delta * other.count / total,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )
        merged._m2 = self._m2 + other._m2 + delta**2 * self.count * other.count / total
        return merged
