"""Reservoir sampling (Vitter's Algorithm R).

PACT uses a fixed-size reservoir of PAC values to estimate the quartiles
that feed the Freedman-Diaconis bin-width rule (§4.5, Algorithm 3).  The
reservoir keeps a uniform sample of all values observed so far without
knowing the stream length in advance: the first ``k`` observations fill
the buffer, after which observation ``n`` replaces a random slot with
probability ``k / n``.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.common.stats import _QUARTILE_QS, quantiles_linear


class Reservoir:
    """Fixed-capacity uniform sample over an unbounded stream of floats."""

    def __init__(self, capacity: int = 100, rng: Optional[np.random.Generator] = None):
        if capacity <= 0:
            raise ValueError("reservoir capacity must be positive")
        self.capacity = capacity
        self._rng = rng if rng is not None else np.random.default_rng(0)
        # Preallocated sample buffer; only the first ``_size`` slots are
        # live.  An ndarray (rather than a list) keeps quartiles() free
        # of a per-call list-to-array conversion.
        self._data = np.empty(capacity, dtype=np.float64)
        self._size = 0
        self._seen = 0

    def __len__(self) -> int:
        return self._size

    @property
    def seen(self) -> int:
        """Total number of observations offered to the reservoir."""
        return self._seen

    @property
    def full(self) -> bool:
        return self._size >= self.capacity

    def offer(self, value: float) -> bool:
        """Offer one observation; return True if it entered the buffer."""
        self._seen += 1
        if self._size < self.capacity:
            self._data[self._size] = value
            self._size += 1
            return True
        # Algorithm 3, lines 4-6: replace slot rnd if rnd < capacity.
        slot = int(self._rng.integers(0, self._seen))
        if slot < self.capacity:
            self._data[slot] = value
            return True
        return False

    def offer_many(self, values: Iterable[float]) -> None:
        """Offer a batch of observations; bit-identical to looped ``offer``.

        The steady-state loop draws one bounded integer per observation,
        with the bound advancing by one each draw.  numpy's broadcast
        ``integers(0, highs)`` consumes the generator stream exactly as
        the equivalent sequence of scalar calls does (same values, same
        state afterwards), so the whole batch collapses into a single
        vectorised draw; only the rare replacement hits (``capacity/seen``
        each, i.e. O(capacity * log(seen)) in total) touch the buffer.
        """
        if isinstance(values, np.ndarray):
            values = values.astype(np.float64, copy=False).ravel()
        else:
            values = np.asarray(list(values), dtype=np.float64)
        if values.size == 0:
            return
        start = 0
        room = self.capacity - self._size
        if room > 0:
            take = min(room, values.size)
            self._data[self._size : self._size + take] = values[:take]
            self._size += take
            self._seen += take
            start = take
        rest = values[start:]
        if rest.size == 0:
            return
        highs = self._seen + 1 + np.arange(rest.size, dtype=np.int64)
        slots = self._rng.integers(0, highs)
        self._seen += int(rest.size)
        hit = slots < self.capacity
        # Duplicate slots resolve last-write-wins, exactly as in the loop.
        self._data[slots[hit]] = rest[hit]

    def values(self) -> np.ndarray:
        """Copy of the current sample."""
        return self._data[: self._size].copy()

    def quartiles(self) -> "tuple[float, float]":
        """(Q1, Q3) of the current sample; (0, 0) when empty."""
        if self._size == 0:
            return (0.0, 0.0)
        q1, q3 = quantiles_linear(self._data[: self._size], _QUARTILE_QS)
        return float(q1), float(q3)

    def clear(self) -> None:
        """Drop the sample and the stream counter."""
        self._size = 0
        self._seen = 0
