"""Reservoir sampling (Vitter's Algorithm R).

PACT uses a fixed-size reservoir of PAC values to estimate the quartiles
that feed the Freedman-Diaconis bin-width rule (§4.5, Algorithm 3).  The
reservoir keeps a uniform sample of all values observed so far without
knowing the stream length in advance: the first ``k`` observations fill
the buffer, after which observation ``n`` replaces a random slot with
probability ``k / n``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np


class Reservoir:
    """Fixed-capacity uniform sample over an unbounded stream of floats."""

    def __init__(self, capacity: int = 100, rng: Optional[np.random.Generator] = None):
        if capacity <= 0:
            raise ValueError("reservoir capacity must be positive")
        self.capacity = capacity
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._buffer: List[float] = []
        self._seen = 0

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def seen(self) -> int:
        """Total number of observations offered to the reservoir."""
        return self._seen

    @property
    def full(self) -> bool:
        return len(self._buffer) >= self.capacity

    def offer(self, value: float) -> bool:
        """Offer one observation; return True if it entered the buffer."""
        self._seen += 1
        if len(self._buffer) < self.capacity:
            self._buffer.append(float(value))
            return True
        # Algorithm 3, lines 4-6: replace slot rnd if rnd < capacity.
        slot = int(self._rng.integers(0, self._seen))
        if slot < self.capacity:
            self._buffer[slot] = float(value)
            return True
        return False

    def offer_many(self, values: Iterable[float]) -> None:
        """Offer a batch of observations; bit-identical to looped ``offer``.

        The steady-state loop draws one bounded integer per observation,
        with the bound advancing by one each draw.  numpy's broadcast
        ``integers(0, highs)`` consumes the generator stream exactly as
        the equivalent sequence of scalar calls does (same values, same
        state afterwards), so the whole batch collapses into a single
        vectorised draw; only the rare replacement hits (``capacity/seen``
        each, i.e. O(capacity * log(seen)) in total) touch the buffer.
        """
        if isinstance(values, np.ndarray):
            values = values.astype(float, copy=False).ravel()
        else:
            values = np.asarray(list(values), dtype=float)
        if values.size == 0:
            return
        start = 0
        room = self.capacity - len(self._buffer)
        if room > 0:
            take = min(room, values.size)
            self._buffer.extend(values[:take].tolist())
            self._seen += take
            start = take
        rest = values[start:]
        if rest.size == 0:
            return
        highs = self._seen + 1 + np.arange(rest.size, dtype=np.int64)
        slots = self._rng.integers(0, highs)
        self._seen += int(rest.size)
        hit = slots < self.capacity
        # Later writes to the same slot win, exactly as in the loop.
        for slot, value in zip(slots[hit].tolist(), rest[hit].tolist()):
            self._buffer[slot] = value

    def values(self) -> np.ndarray:
        """Copy of the current sample."""
        return np.asarray(self._buffer, dtype=float)

    def quartiles(self) -> "tuple[float, float]":
        """(Q1, Q3) of the current sample; (0, 0) when empty."""
        if not self._buffer:
            return (0.0, 0.0)
        q1, q3 = np.percentile(self._buffer, [25.0, 75.0])
        return float(q1), float(q3)

    def clear(self) -> None:
        """Drop the sample and the stream counter."""
        self._buffer.clear()
        self._seen = 0
