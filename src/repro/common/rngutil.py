"""Deterministic random-number utilities.

Every stochastic component of the simulator draws from a
``numpy.random.Generator`` that is derived from an explicit seed so that
runs are reproducible.  ``split`` derives independent child generators
for subsystems (workload, PEBS, policy, ...) from a parent seed without
the subsystems perturbing each other's streams.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np


def make_rng(seed: int) -> np.random.Generator:
    """Create a generator from an explicit integer seed."""
    return np.random.default_rng(seed)


def split(seed: int, *labels: str) -> "tuple[np.random.Generator, ...]":
    """Derive one independent generator per label from ``seed``.

    The derivation hashes each label together with the seed, so adding a
    new subsystem does not shift the streams of existing ones.
    """
    seqs = [np.random.SeedSequence((seed, _stable_hash(label))) for label in labels]
    return tuple(np.random.default_rng(s) for s in seqs)


def child_seeds(seed: int, n: int) -> Iterator[int]:
    """Yield ``n`` distinct child seeds derived from ``seed``."""
    state = np.random.SeedSequence(seed)
    for child in state.spawn(n):
        yield int(child.generate_state(1)[0])


def _stable_hash(label: str) -> int:
    """A platform-stable 64-bit hash of ``label`` (``hash()`` is salted)."""
    acc = 1469598103934665603  # FNV-1a offset basis
    for byte in label.encode("utf-8"):
        acc ^= byte
        acc = (acc * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return acc
