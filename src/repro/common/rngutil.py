"""Deterministic random-number utilities.

Every stochastic component of the simulator draws from a
``numpy.random.Generator`` that is derived from an explicit seed so that
runs are reproducible.  ``split`` derives independent child generators
for subsystems (workload, PEBS, policy, ...) from a parent seed without
the subsystems perturbing each other's streams.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np


def make_rng(seed: int) -> np.random.Generator:
    """Create a generator from an explicit integer seed."""
    return np.random.default_rng(seed)


def split(seed: int, *labels: str) -> "tuple[np.random.Generator, ...]":
    """Derive one independent generator per label from ``seed``.

    The derivation hashes each label together with the seed, so adding a
    new subsystem does not shift the streams of existing ones.
    """
    seqs = [np.random.SeedSequence((seed, _stable_hash(label))) for label in labels]
    return tuple(np.random.default_rng(s) for s in seqs)


#: Domain tag mixed into every schema-2 key derivation so keyed
#: substreams can never alias the schema-1 ``split`` streams (which
#: hash ``(seed, label)`` without it).
_KEYED_DOMAIN = 0x52E2  # "Repro schEma 2"


def philox_key(seed: int, purpose: str) -> np.ndarray:
    """A 128-bit Philox key for one ``(seed, purpose)`` substream family.

    Schema-2 keyed draws (:mod:`repro.hw.substream`) identify every
    draw by *what it is*, not by when it happens: the key fixes the
    (seed, purpose) family and the Philox counter word selects the
    window.  The derivation hashes the purpose label the same
    platform-stable way ``split`` does, with an extra domain tag so the
    key material is independent of any schema-1 stream.
    """
    ss = np.random.SeedSequence((seed, _KEYED_DOMAIN, _stable_hash(purpose)))
    return ss.generate_state(2, dtype=np.uint64)


def keyed_generator(key: np.ndarray, counter: int) -> np.random.Generator:
    """The generator for one keyed substream at one counter position.

    Same ``(key, counter)`` always yields the same draw sequence --
    Philox is a pure function of (key, counter) -- so a value drawn
    here is reproducible from its identity alone, independent of every
    other substream.  The counter occupies the highest of Philox's four
    64-bit counter words, leaving the low words free for the
    generator's own in-stream advancement.
    """
    bitgen = np.random.Philox(counter=[0, 0, 0, int(counter)], key=key)
    return np.random.Generator(bitgen)


def child_seeds(seed: int, n: int) -> Iterator[int]:
    """Yield ``n`` distinct child seeds derived from ``seed``."""
    state = np.random.SeedSequence(seed)
    for child in state.spawn(n):
        yield int(child.generate_state(1)[0])


def _stable_hash(label: str) -> int:
    """A platform-stable 64-bit hash of ``label`` (``hash()`` is salted)."""
    acc = 1469598103934665603  # FNV-1a offset basis
    for byte in label.encode("utf-8"):
        acc ^= byte
        acc = (acc * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return acc
