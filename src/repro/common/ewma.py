"""Exponentially-weighted moving averages.

Used by baseline policies (Memtis-style cooling, Colloid latency
smoothing) and by PACT's optional cooling mechanism (§4.3.4).
"""

from __future__ import annotations


class Ewma:
    """Scalar EWMA: ``value <- (1 - alpha) * value + alpha * sample``."""

    def __init__(self, alpha: float, initial: float = 0.0):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._value = float(initial)
        self._primed = False

    @property
    def value(self) -> float:
        return self._value

    @property
    def primed(self) -> bool:
        """True once at least one sample has been folded in."""
        return self._primed

    def update(self, sample: float) -> float:
        """Fold one sample in and return the new smoothed value."""
        if not self._primed:
            self._value = float(sample)
            self._primed = True
        else:
            self._value += self.alpha * (float(sample) - self._value)
        return self._value

    def reset(self, initial: float = 0.0) -> None:
        self._value = float(initial)
        self._primed = False
