"""Units, physical constants, and the paper's testbed parameters.

All simulation time accounting is done in CPU *cycles*; wall-clock
conversions use the testbed frequency.  The constants here mirror the
experimental platform of §5.1 of the paper: a dual-socket Intel Skylake
(10-core Xeon, 2.2 GHz) with

* local DRAM:  90 ns loaded latency, 52 GB/s bandwidth,
* cross-socket NUMA: 140 ns, 32 GB/s,
* emulated CXL (uncore-throttled remote node): 190 ns.
"""

from __future__ import annotations

from dataclasses import dataclass

# ---------------------------------------------------------------------------
# Sizes.
# ---------------------------------------------------------------------------

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

PAGE_SIZE = 4 * KB
HUGE_PAGE_SIZE = 2 * MB
PAGES_PER_HUGE_PAGE = HUGE_PAGE_SIZE // PAGE_SIZE  # 512
CACHE_LINE_SIZE = 64

# ---------------------------------------------------------------------------
# Time.
# ---------------------------------------------------------------------------

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000

#: Default CPU frequency of the paper's Skylake testbed (§5.1).
CPU_FREQ_GHZ = 2.2

#: Default PAC sampling window (§4.3.3).
DEFAULT_WINDOW_MS = 20.0


def cycles_per_ns(freq_ghz: float = CPU_FREQ_GHZ) -> float:
    """Cycles elapsed per nanosecond at ``freq_ghz``."""
    return freq_ghz


def ns_to_cycles(ns: float, freq_ghz: float = CPU_FREQ_GHZ) -> float:
    """Convert nanoseconds to CPU cycles."""
    return ns * freq_ghz


def cycles_to_ns(cycles: float, freq_ghz: float = CPU_FREQ_GHZ) -> float:
    """Convert CPU cycles to nanoseconds."""
    return cycles / freq_ghz


def cycles_to_ms(cycles: float, freq_ghz: float = CPU_FREQ_GHZ) -> float:
    """Convert CPU cycles to milliseconds."""
    return cycles / freq_ghz / NS_PER_MS


# ---------------------------------------------------------------------------
# Memory-tier latency / bandwidth points (paper §5.1).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TierSpec:
    """Latency/bandwidth characteristics of one memory tier."""

    name: str
    #: Unloaded (idle) access latency in nanoseconds.
    latency_ns: float
    #: Peak sustainable bandwidth in GB/s.
    bandwidth_gbps: float

    @property
    def latency_cycles(self) -> float:
        """Idle latency expressed in CPU cycles at the testbed frequency."""
        return ns_to_cycles(self.latency_ns)

    def bytes_per_ns(self) -> float:
        """Peak bandwidth expressed as bytes per nanosecond."""
        return self.bandwidth_gbps * GB / NS_PER_S


#: Local DRAM on the Skylake testbed.
DRAM_SPEC = TierSpec("dram", latency_ns=90.0, bandwidth_gbps=52.0)

#: Cross-socket NUMA memory.
NUMA_SPEC = TierSpec("numa", latency_ns=140.0, bandwidth_gbps=32.0)

#: Emulated CXL memory (remote node with throttled uncore), 2.1x DRAM latency.
CXL_SPEC = TierSpec("cxl", latency_ns=190.0, bandwidth_gbps=30.0)

#: Memory-semantic NVMe/flash tier (CXL-attached SSD class devices):
#: microsecond-scale loads, single-digit GB/s.  Used by the N-tier
#: topologies; not part of the paper's two-tier testbed.
NVME_SPEC = TierSpec("nvme", latency_ns=2_000.0, bandwidth_gbps=6.0)

#: The three latency configurations used in the Fig. 2 model study.
LATENCY_CONFIGS = (DRAM_SPEC, NUMA_SPEC, CXL_SPEC)
