"""Terminal charts: sparklines and bar charts for bench reports.

Keeps figure-shaped bench output human-scannable without any plotting
dependency.
"""

from __future__ import annotations

from typing import Dict, Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline of a numeric series."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _SPARK_LEVELS[0] * len(vals)
    span = hi - lo
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def bar_chart(data: Dict[str, float], width: int = 40, unit: str = "") -> str:
    """Horizontal ASCII bar chart, one labelled row per entry."""
    if not data:
        return ""
    label_w = max(len(k) for k in data)
    peak = max(abs(v) for v in data.values()) or 1.0
    lines = []
    for key, value in data.items():
        bar = "#" * max(int(abs(value) / peak * width), 1 if value else 0)
        suffix = f" {value:.3f}{unit}"
        lines.append(f"{key.ljust(label_w)} | {bar}{suffix}")
    return "\n".join(lines)


def series_with_sparkline(label: str, values: Sequence[float]) -> str:
    """A one-line series summary: label, sparkline, min/max."""
    vals = [float(v) for v in values]
    if not vals:
        return f"{label}: (empty)"
    return (
        f"{label}: {sparkline(vals)}  "
        f"[min {min(vals):.3g}, max {max(vals):.3g}, n={len(vals)}]"
    )
