"""Shared utilities: units, RNG derivation, statistics, sampling, binning."""

from repro.common.charts import bar_chart, series_with_sparkline, sparkline
from repro.common.ewma import Ewma
from repro.common.histogram import (
    bin_index,
    bin_indices,
    freedman_diaconis_width,
    histogram_counts,
)
from repro.common.reservoir import Reservoir
from repro.common.rngutil import child_seeds, make_rng, split
from repro.common.stats import (
    StreamingStats,
    cdf_points,
    geometric_mean,
    pearson,
    quartiles,
)
from repro.common.units import (
    CACHE_LINE_SIZE,
    CPU_FREQ_GHZ,
    CXL_SPEC,
    DEFAULT_WINDOW_MS,
    DRAM_SPEC,
    GB,
    HUGE_PAGE_SIZE,
    KB,
    LATENCY_CONFIGS,
    MB,
    NUMA_SPEC,
    PAGE_SIZE,
    PAGES_PER_HUGE_PAGE,
    TierSpec,
    cycles_to_ms,
    cycles_to_ns,
    ns_to_cycles,
)

__all__ = [
    "Ewma",
    "bar_chart",
    "series_with_sparkline",
    "sparkline",
    "Reservoir",
    "StreamingStats",
    "TierSpec",
    "bin_index",
    "bin_indices",
    "cdf_points",
    "child_seeds",
    "cycles_to_ms",
    "cycles_to_ns",
    "freedman_diaconis_width",
    "geometric_mean",
    "histogram_counts",
    "make_rng",
    "ns_to_cycles",
    "pearson",
    "quartiles",
    "split",
    "CACHE_LINE_SIZE",
    "CPU_FREQ_GHZ",
    "CXL_SPEC",
    "DEFAULT_WINDOW_MS",
    "DRAM_SPEC",
    "GB",
    "HUGE_PAGE_SIZE",
    "KB",
    "LATENCY_CONFIGS",
    "MB",
    "NUMA_SPEC",
    "PAGE_SIZE",
    "PAGES_PER_HUGE_PAGE",
]
