"""Baseline tiering systems the paper compares against (§5).

Each baseline is a behaviourally faithful model of the published
system's *policy* -- what it observes, when it migrates, what it pays --
driven by the same simulated counters and memory state as PACT.
``make_policy``/``ALL_POLICIES`` give the benches a uniform way to sweep
the full comparison set.
"""

from typing import Callable, Dict, List

from repro.baselines.alto import AltoPolicy
from repro.baselines.colloid import ColloidPolicy
from repro.baselines.memtis import MemtisPolicy
from repro.baselines.nbt import NbtPolicy
from repro.baselines.nomad import NomadPolicy
from repro.baselines.soar import SoarPolicy
from repro.baselines.tpp import TppPolicy
from repro.core.pact import FrequencyPolicy, PactPolicy
from repro.sim.policy_api import NoTierPolicy, SlowOnlyPolicy, TieringPolicy

_FACTORIES: Dict[str, Callable[[], TieringPolicy]] = {
    "PACT": PactPolicy,
    "Frequency": FrequencyPolicy,
    "Colloid": ColloidPolicy,
    "Alto": AltoPolicy,
    "NBT": NbtPolicy,
    "TPP": TppPolicy,
    "Memtis": MemtisPolicy,
    "Nomad": NomadPolicy,
    "Soar": SoarPolicy,
    "NoTier": NoTierPolicy,
    "CXL": SlowOnlyPolicy,
}

#: Comparison set of the main figures: PACT vs. the 7 systems + NoTier.
ALL_POLICIES: List[str] = [
    "PACT",
    "Colloid",
    "Alto",
    "NBT",
    "TPP",
    "Memtis",
    "Nomad",
    "Soar",
    "NoTier",
]


def make_policy(name: str, **kwargs) -> TieringPolicy:
    """Instantiate a fresh policy by display name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(f"unknown policy {name!r}; known: {sorted(_FACTORIES)}") from None
    return factory(**kwargs)


__all__ = [
    "ALL_POLICIES",
    "AltoPolicy",
    "ColloidPolicy",
    "MemtisPolicy",
    "NbtPolicy",
    "NomadPolicy",
    "SoarPolicy",
    "TppPolicy",
    "make_policy",
]
