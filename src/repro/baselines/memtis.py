"""Memtis: PEBS-driven hotness classification (Lee et al., SOSP '23).

Memtis samples accesses with PEBS, keeps per-page hotness counters in a
histogram, and classifies the hottest pages -- as many as fit the fast
tier -- as the "hot set"; only hot-classified pages are promoted, under
a migration budget, by a background thread.  Counters are periodically
halved (cooling).  It is THP-aware: in huge-page mode hotness is
aggregated and decided per 2MB region, which is why it becomes the
second-best system under THP in the paper (§5.2, Figure 5).

Histogram maintenance is O(Δ) per window: the set of *active* units
(hotness > 0) is kept as an incrementally merged sorted id list --
units enter it the first window they are sampled and leave it only if
cooling underflows their counter to zero -- so the hot-set threshold is
one gather plus a quantile over the active values instead of a
full-histogram compare-and-compress every window.  The gathered value
array is bit-identical to the boolean-compress it replaces (both are in
ascending unit order over the same set), which the incremental-state
property tests pin.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.arrays import merge_sorted_unique, sorted_unique
from repro.common.stats import quantiles_linear
from repro.mem.page import HUGE_SHIFT, Tier
from repro.obs.profiler import null_profile as _null_profile
from repro.sim.policy_api import Decision, Observation, TieringPolicy


class MemtisPolicy(TieringPolicy):
    """Hotness histogram + hot-set threshold + budgeted background moves."""

    name = "Memtis"
    synchronous_migration = False  # kmigrated-style background thread
    needs_pebs = True
    needs_touched_pages = False
    sample_fast_tier = True  # Memtis samples both tiers to split hot/cold

    def __init__(
        self,
        cooling_period_windows: int = 10,
        budget_fraction: float = 0.01,
        hysteresis: float = 1.2,
    ):
        self.cooling_period_windows = cooling_period_windows
        #: Per-window migration budget as a fraction of fast capacity.
        self.budget_fraction = budget_fraction
        #: A slow page must beat the hot-set threshold by this factor
        #: before being promoted (avoids threshold ping-pong).
        self.hysteresis = hysteresis
        self._hotness: Optional[np.ndarray] = None
        self._thp = False
        self._footprint = 0
        #: Sorted unit ids with hotness > 0, maintained incrementally.
        self._active_units = np.empty(0, dtype=np.int64)
        self._profile = _null_profile

    def attach(self, machine) -> None:
        self._thp = machine.config.thp
        self._footprint = machine.workload.footprint_pages
        units = self._footprint >> HUGE_SHIFT if self._thp else self._footprint
        self._hotness = np.zeros(max(units, 1) + 1, dtype=float)
        self._active_units = np.empty(0, dtype=np.int64)
        obs = getattr(machine, "obs", None)
        self._profile = obs.profile if obs is not None else _null_profile

    def _unit_of(self, pages: np.ndarray) -> np.ndarray:
        return pages >> HUGE_SHIFT if self._thp else pages

    def observe(self, obs: Observation) -> Decision:
        pages = obs.pebs.pages
        with self._profile("policy_track"):
            if pages.size:
                units = self._unit_of(pages)
                fresh = units[
                    (self._hotness[units] == 0.0) & (obs.pebs.counts > 0)
                ]
                np.add.at(self._hotness, units, obs.pebs.counts)
                if fresh.size:
                    self._active_units = merge_sorted_unique(
                        self._active_units, sorted_unique(fresh)
                    )
            if obs.window > 0 and obs.window % self.cooling_period_windows == 0:
                self._hotness *= 0.5
                # Halving keeps a positive counter positive until float
                # underflow; prune the (pathologically rare) underflows
                # so the active list stays exactly {u: hotness[u] > 0}.
                if self._active_units.size:
                    alive = self._hotness[self._active_units] > 0.0
                    if not alive.all():
                        self._active_units = self._active_units[alive]
        if pages.size == 0:
            return Decision.none()
        with self._profile("policy_bin"):
            threshold = self._hot_threshold(obs)
        with self._profile("policy_select"):
            in_slow = obs.memory.tier_of(pages) >= 1
            slow_pages = pages[in_slow]
            if slow_pages.size == 0:
                return Decision.none()
            # threshold == 0 means the whole sampled set fits the fast
            # tier: every accessed slow page classifies as hot.
            hot_mask = (
                self._hotness[self._unit_of(slow_pages)] > threshold * self.hysteresis
            )
            candidates = slow_pages[hot_mask]
            if candidates.size == 0:
                return Decision.none()
            budget = max(int(obs.memory.capacity[Tier.FAST] * self.budget_fraction), 1)
            if self._thp:
                # Decisions are per-2MB unit; a unit consumes 512 pages
                # of budget.
                units = np.unique(self._unit_of(candidates))
                unit_budget = max(budget >> HUGE_SHIFT, 1)
                if units.size > unit_budget:
                    hot = self._hotness[units]
                    keep = np.argpartition(hot, units.size - unit_budget)[-unit_budget:]
                    units = units[keep]
                candidates = units << HUGE_SHIFT  # engine expands to full 2MB
            elif candidates.size > budget:
                hot = self._hotness[candidates]
                keep = np.argpartition(hot, candidates.size - budget)[-budget:]
                candidates = candidates[keep]
            need = max(candidates.size - obs.memory.free_pages(Tier.FAST), 0)
            if self._thp and need > 0:
                need = max(
                    candidates.size * 512 - obs.memory.free_pages(Tier.FAST), 0
                )
        return Decision(promote=candidates, demote_lru=int(need))

    def _hot_threshold(self, obs: Observation) -> float:
        """Hotness value above which pages would fit the fast tier.

        Memtis picks the histogram threshold so the hot set's size
        matches fast-tier capacity; with dense per-unit counters this is
        a quantile query -- served from the incrementally maintained
        active-unit list (one gather) instead of compressing the whole
        histogram against zero each window.
        """
        active_units = self._active_units
        if active_units.size == 0:
            return 0.0
        capacity_units = obs.memory.capacity[Tier.FAST]
        if self._thp:
            capacity_units >>= HUGE_SHIFT
        if active_units.size <= capacity_units:
            return 0.0
        frac = 1.0 - capacity_units / active_units.size
        active = self._hotness[active_units]
        return float(quantiles_linear(active, np.asarray([frac]))[0])

    def debug_info(self):
        return {"hot_units": float(self._active_units.size)}
