"""Colloid: latency-balancing tiered memory (Vuppala & Agarwal, SOSP '24).

Colloid's principle is *balance access latency across tiers*: when the
slow tier's loaded latency exceeds the fast tier's, shift traffic toward
the fast tier (promote hot slow pages); when a loaded fast tier becomes
slower than the idle slow tier, back off.  The promotion volume each
interval is proportional to the observed latency imbalance, which makes
Colloid strong on average but migration-hungry: the paper measures
1.2M-9M promotions on bc-kron (2.1-10.4x PACT) and degradation toward
NoTier under heavy fast-tier pressure (§5.2).
"""

from __future__ import annotations

import numpy as np

from repro.mem.page import Tier
from repro.sim.policy_api import Decision, Observation, TieringPolicy


class ColloidPolicy(TieringPolicy):
    """Latency-imbalance-proportional promotion of recently hot pages."""

    name = "Colloid"
    synchronous_migration = True  # built on NUMA hint-fault machinery
    needs_pebs = True
    needs_touched_pages = False

    def __init__(
        self,
        gain: float = 3.0,
        max_batch_fraction: float = 0.12,
        watermark: float = 0.93,
    ):
        #: Promotion volume per unit latency imbalance.
        self.gain = gain
        #: Per-window promotion cap as a fraction of fast capacity.
        self.max_batch_fraction = max_batch_fraction
        self.watermark = watermark

    def _imbalance(self, obs: Observation) -> float:
        """Relative latency gap between tiers, >0 when slow is slower.

        On more than two tiers "slow" is the miss-weighted loaded
        latency of every tier below tier 0.
        """
        lat = obs.perf.effective_latency_cycles
        fast = lat.get(Tier.FAST, 0.0)
        slow = obs.lower_latency_cycles()
        if fast <= 0.0:
            return 0.0
        return (slow - fast) / fast

    def observe(self, obs: Observation) -> Decision:
        imbalance = self._imbalance(obs)
        slow_misses = obs.lower_misses()
        if imbalance <= 0.0 or slow_misses <= 0.0 or obs.pebs.pages.size == 0:
            return Decision.none()
        # Traffic-proportional control: move enough of the observed hot
        # set to shift the latency balance, capped per interval.
        cap = max(int(obs.memory.capacity[Tier.FAST] * self.max_batch_fraction), 1)
        want = int(min(self.gain * imbalance * obs.pebs.pages.size, cap))
        if want <= 0:
            return Decision.none()
        pages = obs.pebs.pages
        counts = obs.pebs.counts
        in_slow = obs.memory.tier_of(pages) >= 1
        pages, counts = pages[in_slow], counts[in_slow]
        if pages.size == 0:
            return Decision.none()
        if pages.size > want:
            top = np.argpartition(counts, pages.size - want)[-want:]
            pages = pages[top]
        capacity = obs.memory.capacity[Tier.FAST]
        used_after = obs.memory.used[Tier.FAST] + pages.size
        demote_lru = max(int(used_after - self.watermark * capacity), 0)
        return Decision(
            promote=pages,
            demote_lru=demote_lru,
            demote_victim_mode="fifo",
        )
