"""Soar: offline profiling-driven object placement (Liu et al., OSDI '25).

Soar profiles a workload offline, scores each *object* (allocation) by
amortized offcore latency -- criticality per unit size -- and statically
places the highest-density objects in the fast tier before the run.  No
runtime migration happens at all.  Its strengths and weaknesses in the
paper (§5.4) both come from this design: with representative profiling
it beats online systems on stable workloads (603.bwaves, bc-urand,
sssp-kron), but a single huge object whose criticality cannot be split
(bc-kron's ~16GB edge structure) wastes its budget, and it cannot adapt
to phase changes.

The profiling pass here uses only policy-visible signals: it replays the
workload pinned to the slow tier, attributes Equation-1 stall estimates
to pages via PEBS samples, and aggregates them per object.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.pac import PacModelCoefficients, attribute_stalls
from repro.mem.page import Tier
from repro.mem.tiered import TieredMemory
from repro.sim.policy_api import Decision, Observation, TieringPolicy
from repro.workloads.base import Workload


class _ObjectProfiler(TieringPolicy):
    """Collects per-page attributed stalls during the profiling run."""

    name = "soar-profiler"
    synchronous_migration = False

    def __init__(self, footprint_pages: int, coefficients: PacModelCoefficients):
        self.page_stalls = np.zeros(footprint_pages, dtype=float)
        self.coefficients = coefficients

    def observe(self, obs: Observation) -> Decision:
        misses = obs.lower_misses()
        mlp = obs.lower_mlp()
        if misses > 0 and obs.pebs.pages.size:
            stalls = self.coefficients.tier_stalls(misses, mlp)
            attributed = attribute_stalls(stalls, obs.pebs.counts)
            np.add.at(self.page_stalls, obs.pebs.pages, attributed)
        return Decision.none()


class SoarPolicy(TieringPolicy):
    """Static object placement from an offline criticality profile."""

    name = "Soar"
    synchronous_migration = False
    needs_pebs = False  # nothing sampled during the measured run
    needs_touched_pages = False
    static_placement = True  # placement fixed by the offline plan

    def __init__(
        self,
        profile: Optional[Dict[str, float]] = None,
        profile_windows: int = 60,
        seed: int = 29,
    ):
        #: Object name -> criticality density (stall cycles per page).
        #: When None, a profiling run is performed at placement time.
        self._profile = profile
        self.profile_windows = profile_windows
        self._seed = seed
        self._machine = None

    def attach(self, machine) -> None:
        self._machine = machine

    def placement_plan(self, workload: Workload, memory: TieredMemory) -> np.ndarray:
        if self._profile is None:
            self._profile = self.profile_offline(workload)
        # Greedy whole-object packing: highest criticality density first,
        # but an object only goes to the fast tier if it fits *entirely*
        # (objects are placement-indivisible in Soar -- the source of its
        # bc-kron weakness, where one huge critical object cannot fit).
        ranked = sorted(
            workload.objects,
            key=lambda region: self._profile.get(region.name, 0.0),
            reverse=True,
        )
        budget = memory.capacity[Tier.FAST]
        chosen, skipped = [], []
        split_done = False
        for region in ranked:
            if region.num_pages <= budget:
                chosen.append(region.pages())
                budget -= region.num_pages
            elif not split_done and budget > 0:
                # The first object that does not fit is placed head-first
                # up to the remaining capacity; object-level scoring
                # cannot tell which of its pages matter (§5.4's bc-kron
                # case: one huge critical object dilutes the ranking).
                pages = region.pages()
                chosen.append(pages[:budget])
                skipped.append(pages[budget:])
                budget = 0
                split_done = True
            else:
                skipped.append(region.pages())
        parts = chosen + skipped
        plan = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        if plan.size != workload.footprint_pages:
            missing = np.setdiff1d(
                np.arange(workload.footprint_pages, dtype=np.int64), plan
            )
            plan = np.concatenate([plan, missing])
        return plan

    def profile_offline(self, workload: Workload) -> Dict[str, float]:
        """Run the slow-tier profiling pass and score each object."""
        from repro.sim.machine import Machine  # deferred: avoids cycle

        config = self._machine.config if self._machine is not None else None
        slow_spec = config.slow_spec if config is not None else _default_slow_spec()
        coefficients = PacModelCoefficients.default_for(slow_spec)
        profiler = _ObjectProfiler(workload.footprint_pages, coefficients)
        machine = Machine(
            workload=workload,
            policy=profiler,
            config=config,
            fast_capacity_override=0,
            seed=self._seed,
        )
        machine.run(max_windows=self.profile_windows)
        profile: Dict[str, float] = {}
        for region in workload.objects:
            total = float(profiler.page_stalls[region.start_page : region.end_page].sum())
            profile[region.name] = total / region.num_pages
        # The profiling pass consumed the workload; rewind for the
        # measured run (offline profiling uses a separate execution).
        workload.reset()
        return profile

    def observe(self, obs: Observation) -> Decision:  # noqa: ARG002
        return Decision.none()


def _default_slow_spec():
    from repro.common.units import CXL_SPEC

    return CXL_SPEC
