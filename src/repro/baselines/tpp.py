"""TPP: Transparent Page Placement (Maruf et al., ASPLOS '23).

TPP's promotion path is NUMA-hint-fault driven: accesses to slow-tier
pages trap, and the faulting page is promoted essentially immediately
(with a short LRU-recency check).  Demotion is watermark-based reclaim
from the fast tier's LRU tail.  Both run in the application's critical
path, so under constrained fast tiers TPP ping-pongs pages and its
migration volume explodes -- the paper measures 116M-285M promotions on
bc-kron and ~800% slowdown (§5.2, Table 2).
"""

from __future__ import annotations

import numpy as np

from repro.mem.page import Tier
from repro.sim.policy_api import Decision, Observation, TieringPolicy


class TppPolicy(TieringPolicy):
    """Hint-fault promotion with watermark LRU demotion."""

    name = "TPP"
    synchronous_migration = True  # fault-path migration
    needs_pebs = False

    #: TPP migrates in the fault path, with TLB shootdowns per page.
    migration_cost_multiplier = 1.5

    #: Critical-path cost of one NUMA hint fault (trap + handler).
    hint_fault_cycles = 2500.0

    def __init__(self, promotion_fraction: float = 1.0, watermark: float = 0.95):
        #: Fraction of faulting slow pages promoted per window (the
        #: hint-fault sampling does not catch every page every scan).
        self.promotion_fraction = promotion_fraction
        #: Fast-tier fill level above which reclaim kicks in.
        self.watermark = watermark

    def observe(self, obs: Observation) -> Decision:
        faulted = obs.touched_slow
        if faulted.size == 0:
            return Decision.none()
        take = max(int(faulted.size * self.promotion_fraction), 1)
        # Hint faults arrive in access order, not sorted: take a spread.
        promote = faulted if take >= faulted.size else faulted[
            np.linspace(0, faulted.size - 1, take).astype(np.int64)
        ]
        capacity = obs.memory.capacity[Tier.FAST]
        used_after = obs.memory.used[Tier.FAST] + promote.size
        demote_lru = max(int(used_after - self.watermark * capacity), 0)
        return Decision(
            promote=promote,
            demote_lru=demote_lru,
            demote_victim_mode="fifo",  # watermark reclaim walks the physical LRU list
        )

    def window_overhead_cycles(self, obs: Observation) -> float:
        """Hint-fault storm: the scanner unmaps across the whole address
        space, so touched slow pages trap (and start migrations) and
        touched fast pages still take cheap refault traps."""
        return (
            obs.touched_slow.size + 0.3 * obs.touched_fast.size
        ) * self.hint_fault_cycles
