"""Nomad: non-exclusive tiering via transactional migration (OSDI '24).

Nomad promotes pages asynchronously and *transactionally*: the slow-tier
copy is retained as a shadow while the fast copy is installed, so a
migration can abort without stalling the application.  The costs this
design pays, which the paper's evaluation surfaces (§5.2: slowdowns
consistently above 100% on bc-kron, promotion counts of only 5K-32K):

* every promotion copies twice (populate + commit) and keeps shadow
  state, modelled as a migration-cost multiplier,
* shadow pages occupy slow-tier slots after promotion (non-exclusive
  placement), shrinking the effective capacity pool,
* under write traffic, in-flight transactions abort and retry, so the
  achieved promotion rate drops exactly when migration is most needed,
  leaving the hot set stranded on the slow tier.
"""

from __future__ import annotations

import numpy as np

from repro.mem.page import Tier
from repro.sim.policy_api import Decision, Observation, TieringPolicy


class NomadPolicy(TieringPolicy):
    """Conservative two-touch promotion with transactional overheads."""

    name = "Nomad"
    synchronous_migration = True  # copy traffic + shadow bookkeeping
    needs_pebs = False

    #: Cost multiplier for transactional double-copy migration.
    migration_cost_multiplier = 2.5

    def __init__(
        self,
        rate_limit_fraction: float = 0.004,
        abort_pressure_scale: float = 8.0,
        seed: int = 23,
    ):
        #: Promotion cap per window (fraction of fast capacity) before
        #: abort effects; Nomad is deliberately conservative.
        self.rate_limit_fraction = rate_limit_fraction
        #: How quickly fast-tier pressure inflates the abort rate.
        self.abort_pressure_scale = abort_pressure_scale
        self._rng = np.random.default_rng(seed)
        self._touched_last: np.ndarray = np.empty(0, dtype=np.int64)

    def attach(self, machine) -> None:
        self._touched_last = np.empty(0, dtype=np.int64)
        # Shadow copies + staging reserve a slice of the fast tier.
        machine.memory.capacity[Tier.FAST] = int(
            machine.memory.capacity[Tier.FAST] * 0.85
        )

    def observe(self, obs: Observation) -> Decision:
        touched = obs.touched_slow
        promote = np.intersect1d(touched, self._touched_last)
        self._touched_last = touched
        if promote.size == 0:
            return Decision.none()
        limit = max(int(obs.memory.capacity[Tier.FAST] * self.rate_limit_fraction), 1)
        if promote.size > limit:
            promote = self._rng.choice(promote, size=limit, replace=False)
        # Transaction aborts: the fuller the fast tier, the more often a
        # migration loses the race with a concurrent write and retries.
        pressure = obs.memory.used[Tier.FAST] / max(obs.memory.capacity[Tier.FAST], 1)
        abort_prob = min(0.9, max(pressure - 0.5, 0.0) * self.abort_pressure_scale / 4.0)
        survived = promote[self._rng.random(promote.size) >= abort_prob]
        if survived.size == 0:
            return Decision.none()
        need = max(survived.size - obs.memory.free_pages(Tier.FAST), 0)
        return Decision(promote=survived, demote_lru=int(need), demote_victim_mode="lru_tail")

    #: Critical-path cycles per touched slow page and per touched fast
    #: page: Nomad write-protects pages to detect racing writes during
    #: transactional copies and services the resulting minor faults.
    protection_fault_cycles = 1800.0

    def window_overhead_cycles(self, obs: Observation) -> float:
        protected = obs.touched_slow.size + 0.25 * obs.touched_fast.size
        return protected * self.protection_fault_cycles
