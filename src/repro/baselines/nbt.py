"""NBT: Linux NUMA Balancing Tiering (upstream memory-tiering mode).

NUMA balancing unmaps a sliding window of pages each scan period; the
next access to an unmapped slow-tier page takes a hint fault.  A page is
promoted once it has faulted in two consecutive scan windows (the
``MPOL_F_MORON``-era two-touch filter), subject to a promotion-rate
limit.  Reclaim is watermark-driven from the fast-tier LRU tail.  The
net behaviour is aggressive recency chasing: good short-term working-set
capture, migration volumes an order of magnitude above PACT's
(Table 2), and degradation under fast-tier pressure.
"""

from __future__ import annotations

import numpy as np

from repro.mem.page import Tier
from repro.sim.policy_api import Decision, Observation, TieringPolicy


class NbtPolicy(TieringPolicy):
    """Two-touch hint-fault promotion with a rate limit."""

    name = "NBT"
    synchronous_migration = True
    needs_pebs = False

    #: Critical-path cost of one NUMA hint fault (trap + handler).
    hint_fault_cycles = 2000.0

    def __init__(
        self,
        scan_fraction: float = 0.5,
        rate_limit_fraction: float = 0.10,
        watermark: float = 0.98,
        seed: int = 17,
    ):
        #: Fraction of slow-tier touched pages the scanner unmaps/window.
        self.scan_fraction = scan_fraction
        #: Promotion cap per window, as a fraction of fast-tier capacity
        #: (models the kernel's MB/s promotion rate limit).
        self.rate_limit_fraction = rate_limit_fraction
        self.watermark = watermark
        self._rng = np.random.default_rng(seed)
        self._faulted_last: np.ndarray = np.empty(0, dtype=np.int64)

    def attach(self, machine) -> None:
        self._faulted_last = np.empty(0, dtype=np.int64)

    def observe(self, obs: Observation) -> Decision:
        touched = obs.touched_slow
        if touched.size == 0:
            self._faulted_last = np.empty(0, dtype=np.int64)
            return Decision.none()
        scanned = touched[self._rng.random(touched.size) < self.scan_fraction]
        # Two-touch: promote pages that also faulted in the last window.
        promote = np.intersect1d(scanned, self._faulted_last, assume_unique=False)
        self._faulted_last = scanned
        limit = max(int(obs.memory.capacity[Tier.FAST] * self.rate_limit_fraction), 1)
        if promote.size > limit:
            promote = self._rng.choice(promote, size=limit, replace=False)
        if promote.size == 0:
            return Decision.none()
        capacity = obs.memory.capacity[Tier.FAST]
        used_after = obs.memory.used[Tier.FAST] + promote.size
        demote_lru = max(int(used_after - self.watermark * capacity), 0)
        return Decision(
            promote=promote,
            demote_lru=demote_lru,
            demote_victim_mode="lru_tail",
        )

    def window_overhead_cycles(self, obs: Observation) -> float:
        """The balancing scanner unmaps a window of pages each period;
        their next accesses trap in the application's critical path."""
        return self.scan_fraction * obs.touched_slow.size * self.hint_fault_cycles
