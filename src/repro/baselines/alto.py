"""Alto: MLP-regulated promotion (Liu et al., OSDI '25), atop Colloid.

Alto observes that when system-wide MLP is high, slow-tier latency is
already being hidden and aggressive promotion buys little, so it
throttles the promotion rate as MLP rises.  The paper runs Alto layered
on Colloid (§5.4); it lands between Colloid and PACT in migration volume
(Table 2) because its MLP signal is *system-wide* and period-level --
it cannot tell which tier, or which pages, the parallelism comes from.
"""

from __future__ import annotations

from repro.baselines.colloid import ColloidPolicy
from repro.sim.policy_api import Decision, Observation


class AltoPolicy(ColloidPolicy):
    """Colloid whose promotion gain is scaled down by aggregate MLP."""

    name = "Alto"

    def __init__(self, mlp_reference: float = 2.0, min_throttle: float = 0.1, **kwargs):
        super().__init__(**kwargs)
        #: MLP at which promotion runs at full Colloid aggressiveness.
        self.mlp_reference = mlp_reference
        #: Lower bound on the throttle (never fully stops promotion).
        self.min_throttle = min_throttle
        self._base_gain = self.gain
        self._base_batch = self.max_batch_fraction

    def observe(self, obs: Observation) -> Decision:
        # System-wide MLP: miss-weighted across all tiers, as a single
        # offcore counter would report it.
        total = 0.0
        weighted = 0.0
        for tier in obs.tor_mlp:
            misses = obs.perf.llc_misses.get(tier, 0.0)
            total += misses
            weighted += misses * obs.tor_mlp.get(tier, 1.0)
        mlp = weighted / total if total > 0 else 1.0
        throttle = max(min(self.mlp_reference / mlp, 1.0), self.min_throttle)
        self.gain = self._base_gain * throttle
        self.max_batch_fraction = self._base_batch * throttle
        return super().observe(obs)
